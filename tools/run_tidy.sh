#!/usr/bin/env bash
# clang-tidy driver for the tegrec library.
#
# Usage: tools/run_tidy.sh [build-dir]
#
# Runs clang-tidy (config: .clang-tidy, warnings-as-errors) over every
# library translation unit under src/, using the compile database the
# build exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally).
#
# Toolchain gating: clang-tidy is not part of the project's build
# prerequisites (the reference container is gcc-only), so a missing
# binary is a SKIP (exit 0 with a notice), not a failure — the CI lint
# job installs it and is the enforcing environment.  Override the binary
# with CLANG_TIDY=clang-tidy-18 etc.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_tidy: '$tidy' not found on PATH — skipping (install clang-tidy" \
       "or set CLANG_TIDY to enforce locally; CI enforces this gate)."
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json missing." >&2
  echo "          Configure first: cmake -B '$build_dir' -S '$repo_root'" >&2
  exit 2
fi

cd "$repo_root"
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run_tidy: $("$tidy" --version | head -1)"
echo "run_tidy: checking ${#sources[@]} translation units under src/"

# run-clang-tidy parallelises across TUs when available; otherwise a
# sequential loop (same exit semantics: non-zero on any finding, since
# .clang-tidy sets WarningsAsErrors: '*').
runner="${RUN_CLANG_TIDY:-run-clang-tidy}"
if command -v "$runner" >/dev/null 2>&1; then
  "$runner" -clang-tidy-binary "$tidy" -p "$build_dir" -quiet \
    "^$repo_root/src/.*\.cpp$"
else
  status=0
  for tu in "${sources[@]}"; do
    "$tidy" -p "$build_dir" --quiet "$tu" || status=1
  done
  exit "$status"
fi
