// Summary statistics and forecast error metrics.
//
// The paper evaluates temperature predictors with MAPE (Eq. 3); the tests
// and benches also use RMSE, mean/stddev and min/max summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace tegrec::util {

double mean(const std::vector<double>& v);
/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& v);
double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);
double sum(const std::vector<double>& v);

/// Mean Absolute Percentage Error in percent, Eq. (3) of the paper:
///   M = (100/n) * sum |(A_t - F_t) / A_t| %
/// Entries with |A_t| below `eps` are skipped to avoid division blow-ups.
double mape_percent(const std::vector<double>& actual,
                    const std::vector<double>& forecast, double eps = 1e-9);

double rmse(const std::vector<double>& actual, const std::vector<double>& forecast);
double max_abs_error(const std::vector<double>& actual,
                     const std::vector<double>& forecast);

/// Streaming accumulator for mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tegrec::util
