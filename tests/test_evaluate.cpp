#include "predict/evaluate.hpp"

#include <gtest/gtest.h>

#include "predict/mlr.hpp"
#include "predict/persistence.hpp"

namespace tegrec::predict {
namespace {

// A small, fast synthetic trace with thermal-like smoothness.
thermal::TemperatureTrace small_trace() {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 10;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 120.0, 30.0, 0.0}};
  config.sample_dt_s = 1.0;
  config.sim_dt_s = 0.1;
  config.seed = 17;
  return thermal::generate_trace(config);
}

TEST(Evaluate, ProducesSeriesAndAggregates) {
  const auto trace = small_trace();
  MlrPredictor mlr;
  EvaluationOptions options;
  options.window = 20;
  const EvaluationResult res = evaluate_online(mlr, trace, options);
  EXPECT_EQ(res.predictor_name, "MLR");
  EXPECT_FALSE(res.mape_percent.empty());
  EXPECT_EQ(res.mape_percent.size(), res.time_s.size());
  EXPECT_GE(res.max_mape_percent, res.mean_mape_percent);
  EXPECT_GE(res.mean_fit_time_ms, 0.0);
}

TEST(Evaluate, MlrSubPercentOnThermalTrace) {
  // The paper's headline prediction claim: MLR's 1 s MAPE stays around or
  // below the percent level even on this small noisy trace (the full-scale
  // check lives in test_integration.cpp).
  const auto trace = small_trace();
  MlrPredictor mlr;
  EvaluationOptions options;
  options.window = 20;
  const EvaluationResult res = evaluate_online(mlr, trace, options);
  EXPECT_LT(res.mean_mape_percent, 1.0);
}

TEST(Evaluate, MlrBeatsPersistence) {
  const auto trace = small_trace();
  EvaluationOptions options;
  options.window = 20;
  MlrPredictor mlr;
  PersistencePredictor naive;
  const double mlr_mape = evaluate_online(mlr, trace, options).mean_mape_percent;
  const double naive_mape =
      evaluate_online(naive, trace, options).mean_mape_percent;
  EXPECT_LT(mlr_mape, naive_mape * 1.05);  // at worst on par, typically better
}

TEST(Evaluate, LongerHorizonNoMoreAccurate) {
  const auto trace = small_trace();
  EvaluationOptions h1;
  h1.window = 20;
  h1.horizon_steps = 1;
  EvaluationOptions h4 = h1;
  h4.horizon_steps = 4;
  MlrPredictor a, b;
  const double mape1 = evaluate_online(a, trace, h1).mean_mape_percent;
  const double mape4 = evaluate_online(b, trace, h4).mean_mape_percent;
  EXPECT_LE(mape1, mape4 * 1.2);
}

TEST(Evaluate, RefitCadenceReducesFitCalls) {
  const auto trace = small_trace();
  EvaluationOptions every;
  every.window = 20;
  every.refit_every = 1;
  EvaluationOptions sparse = every;
  sparse.refit_every = 10;
  MlrPredictor a, b;
  const auto r1 = evaluate_online(a, trace, every);
  const auto r2 = evaluate_online(b, trace, sparse);
  // Same number of scored steps either way.
  EXPECT_EQ(r1.mape_percent.size(), r2.mape_percent.size());
  // Sparse refitting cannot be dramatically less accurate on this signal.
  EXPECT_LT(r2.mean_mape_percent, r1.mean_mape_percent + 1.0);
}

TEST(Evaluate, OptionValidation) {
  const auto trace = small_trace();
  MlrPredictor mlr;
  EvaluationOptions bad;
  bad.window = mlr.num_lags();  // must exceed lag order
  EXPECT_THROW(evaluate_online(mlr, trace, bad), std::invalid_argument);
  bad = EvaluationOptions{};
  bad.horizon_steps = 0;
  EXPECT_THROW(evaluate_online(mlr, trace, bad), std::invalid_argument);
  bad = EvaluationOptions{};
  bad.refit_every = 0;
  EXPECT_THROW(evaluate_online(mlr, trace, bad), std::invalid_argument);
}

TEST(Evaluate, TraceTooShortThrows) {
  thermal::TemperatureTrace tiny(1.0, 4);
  tiny.append({50.0, 40.0, 30.0, 20.0}, 25.0);
  tiny.append({50.0, 40.0, 30.0, 20.0}, 25.0);
  MlrPredictor mlr;
  EvaluationOptions options;
  options.window = 20;
  EXPECT_THROW(evaluate_online(mlr, tiny, options), std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::predict
