#include "sim/spool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "sim/result_io.hpp"
#include "util/atomic_file.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::sim {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSpecSuffix = ".spec";
constexpr const char* kLeaseSuffix = ".lease";
constexpr const char* kReasonSuffix = ".reason";

const char* dir_name(SpoolJobState state) {
  switch (state) {
    case SpoolJobState::kPending:
      return "pending";
    case SpoolJobState::kClaimed:
      return "claimed";
    case SpoolJobState::kDone:
      return "done";
    case SpoolJobState::kFailed:
      return "failed";
    case SpoolJobState::kUnknown:
      break;
  }
  return "";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Lease files are "owner <id>\nseq <n>\n"; extracts the owner.
std::string lease_owner(const std::string& lease_content) {
  const std::string prefix = "owner ";
  if (lease_content.compare(0, prefix.size(), prefix) != 0) return "";
  const std::size_t end = lease_content.find('\n');
  return lease_content.substr(
      prefix.size(),
      end == std::string::npos ? std::string::npos : end - prefix.size());
}

}  // namespace

SpoolQueue::SpoolQueue(SpoolOptions options) : options_(std::move(options)) {
  if (options_.root.empty()) {
    throw std::invalid_argument("SpoolOptions.root must not be empty");
  }
  if (options_.faults == nullptr) options_.faults = &util::process_faults();
  if (!options_.now_ms) options_.now_ms = util::monotonic_now_ms;
  for (const char* sub : {"pending", "claimed", "attempts", "failed", "done"}) {
    std::error_code ec;
    fs::create_directories(options_.root + "/" + sub, ec);
    if (ec) {
      throw std::runtime_error("cannot create spool directory " +
                               options_.root + "/" + sub + ": " +
                               ec.message());
    }
  }
}

std::string SpoolQueue::dir(SpoolJobState state) const {
  return options_.root + "/" + dir_name(state);
}

std::string SpoolQueue::spec_path(SpoolJobState state,
                                  const std::string& id) const {
  return dir(state) + "/" + id + kSpecSuffix;
}

std::string SpoolQueue::lease_path(const std::string& id) const {
  return dir(SpoolJobState::kClaimed) + "/" + id + kLeaseSuffix;
}

std::string SpoolQueue::enqueue(const ExperimentSpec& spec) {
  if (spec.trace.kind != TraceSource::Kind::kGenerated) {
    throw std::invalid_argument(
        "only generated trace sources can be spooled: a spool job is its "
        "canonical text, and csv/inline sources do not round-trip through "
        "from_text on another machine");
  }
  const std::string id = spec.fingerprint();
  if (state(id) != SpoolJobState::kUnknown) return id;  // idempotent

  util::AtomicWriteOptions write_options;
  write_options.fault_site = "spool.enqueue";
  write_options.faults = options_.faults;
  util::atomic_write_file(spec_path(SpoolJobState::kPending, id),
                          spec.canonical_text(), write_options);
  return id;
}

SpoolJobState SpoolQueue::state(const std::string& id) const {
  for (const SpoolJobState s :
       {SpoolJobState::kDone, SpoolJobState::kFailed, SpoolJobState::kClaimed,
        SpoolJobState::kPending}) {
    std::error_code ec;
    if (fs::exists(spec_path(s, id), ec)) return s;
  }
  return SpoolJobState::kUnknown;
}

SpoolJobStatus SpoolQueue::status(const std::string& id) const {
  SpoolJobStatus result;
  result.id = id;
  result.state = state(id);
  result.failed_attempts = failed_attempts(id);
  if (result.state == SpoolJobState::kClaimed) {
    const std::optional<std::string> lease =
        util::read_file_if_exists(lease_path(id));
    if (lease.has_value()) result.owner = lease_owner(*lease);
  }
  return result;
}

std::vector<std::string> SpoolQueue::list(SpoolJobState state) const {
  std::vector<std::string> ids;
  if (state == SpoolJobState::kUnknown) return ids;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(dir(state), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp-") != std::string::npos) continue;
    if (!ends_with(name, kSpecSuffix)) continue;
    ids.push_back(name.substr(0, name.size() - std::string(kSpecSuffix).size()));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<std::string> SpoolQueue::failure_reason(
    const std::string& id) const {
  return util::read_file_if_exists(dir(SpoolJobState::kFailed) + "/" + id +
                                   kReasonSuffix);
}

void SpoolQueue::write_lease(const std::string& id, const std::string& owner,
                             std::uint64_t seq) {
  util::AtomicWriteOptions write_options;
  write_options.fault_site = "spool.lease";
  write_options.faults = options_.faults;
  const std::string content =
      "owner " + owner + "\nseq " + std::to_string(seq) + "\n";
  try {
    util::atomic_write_file(lease_path(id), content, write_options);
  } catch (const util::AtomicWriteCrash&) {
    throw;
  } catch (const std::exception&) {
    // A lease that fails to publish just looks frozen to observers and the
    // job is reclaimed after the stale window — safe, merely slower.
  }
}

std::optional<SpoolQueue::Claim> SpoolQueue::try_claim(
    const std::string& owner) {
  for (const std::string& id : list(SpoolJobState::kPending)) {
    if (!util::rename_file(spec_path(SpoolJobState::kPending, id),
                           spec_path(SpoolJobState::kClaimed, id))) {
      continue;  // lost the race for this job; try the next one
    }
    {
      util::MutexLock lock(mutex_);
      heartbeat_seqs_[id] = 1;
    }
    write_lease(id, owner, 1);
    const std::optional<std::string> text =
        util::read_file_if_exists(spec_path(SpoolJobState::kClaimed, id));
    if (!text.has_value()) continue;  // reclaimed from under us already
    return Claim{id, *text};
  }
  return std::nullopt;
}

void SpoolQueue::heartbeat(const std::string& id, const std::string& owner) {
  if (options_.faults->should_fire("spool.heartbeat.drop")) return;
  std::uint64_t seq = 0;
  {
    util::MutexLock lock(mutex_);
    seq = ++heartbeat_seqs_[id];
  }
  write_lease(id, owner, seq);
}

void SpoolQueue::complete(const std::string& id) {
  // Rename first: once the job is in done/ no reclaimer can touch it, so
  // removing the lease afterwards cannot race a reclaim.
  util::rename_file(spec_path(SpoolJobState::kClaimed, id),
                    spec_path(SpoolJobState::kDone, id));
  std::error_code ec;
  fs::remove(lease_path(id), ec);
  util::MutexLock lock(mutex_);
  heartbeat_seqs_.erase(id);
  observations_.erase(id);
}

std::size_t SpoolQueue::failed_attempts(const std::string& id) const {
  const std::string prefix = id + ".a";
  std::size_t count = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.root + "/attempts", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, prefix.size(), prefix) == 0) ++count;
  }
  return count;
}

bool SpoolQueue::record_failure(const std::string& id,
                                const std::string& reason) {
  // O_EXCL marker per attempt; looping past occupied slots keeps racing
  // recorders from double-counting (each marker is created exactly once).
  std::size_t attempt = failed_attempts(id) + 1;
  const std::string attempts_dir = options_.root + "/attempts";
  while (!util::create_file_exclusive(
      attempts_dir + "/" + id + ".a" + std::to_string(attempt), reason)) {
    ++attempt;
    if (attempt > options_.max_attempts + 1) break;  // bounded paranoia
  }
  return attempt >= options_.max_attempts;
}

bool SpoolQueue::fail_attempt(const std::string& id,
                              const std::string& reason) {
  const bool dead = record_failure(id, reason);
  const SpoolJobState target =
      dead ? SpoolJobState::kFailed : SpoolJobState::kPending;
  if (util::rename_file(spec_path(SpoolJobState::kClaimed, id),
                        spec_path(target, id)) &&
      dead) {
    util::AtomicWriteOptions write_options;
    write_options.fault_site = "spool.reason";
    write_options.faults = options_.faults;
    try {
      util::atomic_write_file(
          dir(SpoolJobState::kFailed) + "/" + id + kReasonSuffix,
          "dead-lettered after " + std::to_string(failed_attempts(id)) +
              " failed attempts; last error: " + reason + "\n",
          write_options);
    } catch (const std::exception&) {
      // The reason file is advisory; the dead-letter state is the spec's
      // location, which is already final.
    }
  }
  std::error_code ec;
  fs::remove(lease_path(id), ec);
  util::MutexLock lock(mutex_);
  heartbeat_seqs_.erase(id);
  observations_.erase(id);
  return dead;
}

std::size_t SpoolQueue::reclaim_stale() {
  std::size_t moved = 0;
  const std::vector<std::string> claimed = list(SpoolJobState::kClaimed);
  const std::uint64_t now = options_.now_ms();

  // Drop observations for jobs that left claimed/ (completed or already
  // reclaimed) so a re-claimed id starts a fresh window.
  {
    util::MutexLock lock(mutex_);
    for (auto it = observations_.begin(); it != observations_.end();) {
      if (std::find(claimed.begin(), claimed.end(), it->first) ==
          claimed.end()) {
        it = observations_.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (const std::string& id : claimed) {
    // A lease that has not been published yet reads as "" — still a stable
    // observation, so a worker that died in the claim->lease gap is
    // reclaimed after the same window.
    const std::string lease =
        util::read_file_if_exists(lease_path(id)).value_or("");
    bool stale = false;
    {
      util::MutexLock lock(mutex_);
      Observation& obs = observations_[id];
      if (obs.first_seen_ms == 0 || obs.lease_content != lease) {
        obs.lease_content = lease;
        obs.first_seen_ms = now == 0 ? 1 : now;  // 0 marks "unobserved"
      } else if (now - obs.first_seen_ms >= options_.stale_after_ms) {
        stale = true;
      }
    }
    if (!stale) continue;

    if (!util::rename_file(spec_path(SpoolJobState::kClaimed, id),
                           spec_path(SpoolJobState::kPending, id))) {
      continue;  // another reclaimer (or the resurrected owner) won
    }
    ++moved;
    std::error_code ec;
    fs::remove(lease_path(id), ec);
    {
      util::MutexLock lock(mutex_);
      observations_.erase(id);
    }
    // Marker only after winning the rename: racing reclaimers cannot
    // double-count the interrupted attempt.
    const std::string reason =
        "lease stale (owner '" + lease_owner(lease) + "')";
    if (record_failure(id, reason) &&
        util::rename_file(spec_path(SpoolJobState::kPending, id),
                          spec_path(SpoolJobState::kFailed, id))) {
      util::AtomicWriteOptions write_options;
      write_options.fault_site = "spool.reason";
      write_options.faults = options_.faults;
      try {
        util::atomic_write_file(
            dir(SpoolJobState::kFailed) + "/" + id + kReasonSuffix,
            "dead-lettered after " + std::to_string(failed_attempts(id)) +
                " interrupted attempts; " + reason + "\n",
            write_options);
      } catch (const std::exception&) {
      }
    }
  }
  maintenance();
  return moved;
}

std::size_t SpoolQueue::maintenance() {
  // A temp younger than the staleness window may belong to a live writer
  // mid-publish; older ones are debris from a writer that died between
  // write and rename (the lease of a SIGKILLed worker, typically).
  std::size_t removed = 0;
  for (const SpoolJobState state :
       {SpoolJobState::kPending, SpoolJobState::kClaimed,
        SpoolJobState::kFailed}) {
    removed += util::remove_stale_temp_files(dir(state),
                                             options_.stale_after_ms);
  }
  return removed;
}

// ------------------------------------------------------------------ worker

namespace {

/// Joins the heartbeat thread on every exit path from process().
class HeartbeatGuard {
 public:
  HeartbeatGuard(SpoolQueue& queue, std::string id, std::string owner,
                 std::uint64_t period_ms)
      : queue_(queue), id_(std::move(id)), owner_(std::move(owner)) {
    thread_ = std::thread([this, period_ms] {
      for (;;) {
        {
          // The heartbeat call happens outside the locked scope (it does
          // file IO and must not serialise against the destructor); a
          // spurious wakeup therefore costs one harmless early heartbeat.
          util::UniqueLock lock(mutex_);
          if (!done_) {
            cv_.wait_for(lock.native(), std::chrono::milliseconds(period_ms));
          }
          if (done_) return;
        }
        queue_.heartbeat(id_, owner_);
      }
    });
  }

  ~HeartbeatGuard() {
    {
      util::MutexLock lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  /// queue_/id_/owner_ are written only before the thread starts (ctor
  /// init list) and read only by the heartbeat thread; the thread launch
  /// and join order them.
  SpoolQueue& queue_;
  const std::string id_;
  const std::string owner_;
  util::Mutex mutex_;
  std::condition_variable cv_;
  bool done_ TEGREC_GUARDED_BY(mutex_) = false;
  // tegrec-lint: allow(guarded-member) started in ctor, joined in dtor
  std::thread thread_;
};

}  // namespace

SpoolWorker::SpoolWorker(SpoolQueue& queue, ArtifactStore& store,
                         SpoolWorkerOptions options)
    : queue_(queue), store_(store), options_(std::move(options)) {}

void SpoolWorker::process(const SpoolQueue::Claim& claim) {
  const ExperimentSpec spec = ExperimentSpec::from_text(claim.spec_text);
  const std::string fingerprint_text = spec.fingerprint_text();

  // A previous owner may have crashed between publishing the artifact and
  // marking the job done — the store hit makes recovery idempotent.
  if (const std::optional<std::string> artifact = store_.get(claim.id)) {
    if (decode_result(*artifact, fingerprint_text).has_value()) {
      queue_.complete(claim.id);
      ++stats_.store_hits;
      ++stats_.completed;
      return;
    }
    store_.remove(claim.id);  // torn/corrupt artifact: self-heal, re-run
  }

  {
    HeartbeatGuard heartbeat(queue_, claim.id, options_.owner,
                             options_.heartbeat_ms);
    const ExperimentResult result = run_experiment(spec);
    // Publish before complete: a crash between the two leaves a claimed job
    // whose artifact already exists, which the next claimant short-circuits.
    store_.put(claim.id, encode_result(result, fingerprint_text));
    // The guard must die *before* complete(): a beat landing after
    // complete() removed the lease would resurrect it as orphan debris.
  }
  queue_.complete(claim.id);
  ++stats_.executed;
  ++stats_.completed;
}

bool SpoolWorker::run_one() {
  const std::optional<SpoolQueue::Claim> claim = queue_.try_claim(options_.owner);
  if (!claim.has_value()) return false;
  try {
    process(*claim);
  } catch (const util::AtomicWriteCrash&) {
    throw;  // simulated process death mid-publish: die like one
  } catch (const std::exception& error) {
    queue_.fail_attempt(claim->id, error.what());
    ++stats_.failures;
  }
  return true;
}

SpoolWorkerStats SpoolWorker::run() {
  std::uint64_t idle_since_ms = 0;
  while (true) {
    if (options_.stop_flag != nullptr &&
        options_.stop_flag->load(std::memory_order_relaxed)) {
      break;
    }
    stats_.reclaimed += queue_.reclaim_stale();
    if (run_one()) {
      idle_since_ms = 0;
      if (options_.max_jobs > 0 &&
          stats_.completed + stats_.failures >= options_.max_jobs) {
        break;
      }
      continue;
    }
    const std::uint64_t now = queue_.options().now_ms();
    if (idle_since_ms == 0) idle_since_ms = now == 0 ? 1 : now;
    if (options_.idle_exit_ms > 0 &&
        now - idle_since_ms >= options_.idle_exit_ms) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
  }
  return stats_;
}

}  // namespace tegrec::sim
