#include "teg/string_bank.hpp"

#include <gtest/gtest.h>

#include "teg/array.hpp"

namespace tegrec::teg {
namespace {

const DeviceParams kDev = tgm_199_1_4_0_8();

SeriesString string_at(double dt_hi, double dt_lo, std::size_t n = 20,
                       std::size_t groups = 5) {
  std::vector<double> dts(n);
  for (std::size_t i = 0; i < n; ++i) {
    dts[i] = dt_hi + (dt_lo - dt_hi) * static_cast<double>(i) /
                         static_cast<double>(n - 1);
  }
  const TegArray array(kDev, dts);
  return array.build_string(ArrayConfig::uniform(n, groups));
}

TEST(StringBank, EmptyThrows) {
  EXPECT_THROW(StringBank(std::vector<SeriesString>{}), std::invalid_argument);
}

TEST(StringBank, SingleRowEqualsString) {
  const SeriesString s = string_at(35.0, 12.0);
  const StringBank bank({s});
  EXPECT_NEAR(bank.equivalent_voc_v(), s.total_voc_v(), 1e-12);
  EXPECT_NEAR(bank.equivalent_resistance_ohm(), s.total_resistance_ohm(), 1e-12);
  EXPECT_NEAR(bank.mpp_power_w(), s.mpp_power_w(), 1e-9);
}

TEST(StringBank, IdenticalRowsScalePower) {
  const SeriesString s = string_at(35.0, 12.0);
  const StringBank bank({s, s, s});
  // Three identical rows in parallel: same voltage, triple power.
  EXPECT_NEAR(bank.mpp_voltage_v(), s.mpp_voltage_v(), 1e-9);
  EXPECT_NEAR(bank.mpp_power_w(), 3.0 * s.mpp_power_w(), 1e-9);
}

TEST(StringBank, RowCurrentsSumToBankCurrent) {
  const StringBank bank({string_at(35.0, 12.0), string_at(28.0, 9.0)});
  const double v = 0.8 * bank.mpp_voltage_v();
  const auto currents = bank.row_currents_at_voltage(v);
  double total = 0.0;
  for (double i : currents) total += i;
  EXPECT_NEAR(total, bank.current_at_voltage(v), 1e-9);
}

TEST(StringBank, MismatchedRowsLoseVsRowwiseIdeal) {
  // Rows with different MPP voltages cannot all be at MPP at the shared
  // port — the 2-D analogue of Fig. 3(a).
  const StringBank bank({string_at(40.0, 20.0), string_at(18.0, 6.0)});
  EXPECT_LT(bank.mpp_power_w(), bank.rowwise_ideal_power_w() - 1e-9);
}

TEST(StringBank, MatchedRowsReachRowwiseIdeal) {
  const SeriesString s = string_at(30.0, 10.0);
  const StringBank bank({s, s});
  EXPECT_NEAR(bank.mpp_power_w(), bank.rowwise_ideal_power_w(), 1e-9);
}

TEST(StringBank, WeakRowBackFedAtHighVoltage) {
  const SeriesString strong = string_at(40.0, 25.0);
  const SeriesString weak = string_at(12.0, 4.0);
  const StringBank bank({strong, weak});
  const auto currents = bank.row_currents_at_voltage(strong.mpp_voltage_v());
  EXPECT_GT(currents[0], 0.0);
  EXPECT_LT(currents[1], 0.0);  // back-fed
}

TEST(StringBank, IdealPowerIsSumOfRowIdeals) {
  const SeriesString a = string_at(30.0, 10.0);
  const SeriesString b = string_at(22.0, 8.0);
  const StringBank bank({a, b});
  EXPECT_NEAR(bank.ideal_power_w(), a.ideal_power_w() + b.ideal_power_w(), 1e-12);
}

TEST(StringBank, MppDominatesVoltageSweep) {
  const StringBank bank({string_at(36.0, 14.0), string_at(30.0, 11.0)});
  for (double frac = 0.0; frac <= 1.0; frac += 0.02) {
    EXPECT_LE(bank.power_at_voltage(frac * bank.equivalent_voc_v()),
              bank.mpp_power_w() + 1e-9);
  }
}

}  // namespace
}  // namespace tegrec::teg
