#include "predict/history.hpp"

#include <stdexcept>

namespace tegrec::predict {

TemperatureHistory::TemperatureHistory(std::size_t num_modules,
                                       std::size_t capacity)
    : num_modules_(num_modules), capacity_(capacity) {
  if (num_modules == 0) throw std::invalid_argument("TemperatureHistory: N == 0");
  if (capacity < 2) throw std::invalid_argument("TemperatureHistory: capacity < 2");
}

void TemperatureHistory::push(const std::vector<double>& temps) {
  if (temps.size() != num_modules_) {
    throw std::invalid_argument("TemperatureHistory::push: wrong width");
  }
  rows_.push_back(temps);
  if (rows_.size() > capacity_) rows_.pop_front();
}

const std::vector<double>& TemperatureHistory::row(std::size_t r) const {
  if (r >= rows_.size()) throw std::out_of_range("TemperatureHistory::row");
  return rows_[r];
}

const std::vector<double>& TemperatureHistory::latest() const {
  if (rows_.empty()) throw std::out_of_range("TemperatureHistory::latest: empty");
  return rows_.back();
}

std::vector<double> TemperatureHistory::lag_window(std::size_t module,
                                                   std::size_t lags) const {
  if (module >= num_modules_) {
    throw std::out_of_range("TemperatureHistory::lag_window: module");
  }
  if (lags == 0 || lags > rows_.size()) {
    throw std::out_of_range("TemperatureHistory::lag_window: lags");
  }
  std::vector<double> out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    out[k] = rows_[rows_.size() - 1 - k][module];
  }
  return out;
}

void TemperatureHistory::clear() { rows_.clear(); }

}  // namespace tegrec::predict
