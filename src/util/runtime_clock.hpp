// The library's one sanctioned wall-clock access point.
//
// PR 1 fixed a real nondeterminism bug: switching overhead was charged
// from *measured* wall-clock compute time, so simulated energies varied
// run to run.  The fix split the two roles — deterministic
// OverheadParams::compute_budget_s is what enters the physics, measured
// time only ever feeds runtime *statistics* (Table I's "Average Runtime"
// column).  tegrec_lint's `determinism` rule now enforces that split
// mechanically: std::chrono clocks are banned in the simulation layers
// (src/core, src/teg, src/sim, src/thermal, src/power, src/predict), and
// runtime-stats measurement flows through this wrapper instead.  src/util
// is the rule's allowlist, so this header is the only door; anything a
// MonotonicTimer measures must stay out of simulated quantities.
#pragma once

#include <chrono>
#include <cstdint>

namespace tegrec::util {

/// Monotonic stopwatch for runtime statistics.  Starts at construction.
class MonotonicTimer {
 public:
  MonotonicTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart [s].
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/restart [ms].
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic milliseconds since an arbitrary epoch — the spool's lease
/// clock.  Only ever compared against itself within one process (lease
/// staleness is judged by how long an observer has watched a heartbeat
/// stay unchanged on its *own* clock), so the epoch never needs to agree
/// across workers.  Simulation code must not let this feed simulated
/// quantities; SpoolOptions::now_ms lets tests substitute a fake clock.
inline std::uint64_t monotonic_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace tegrec::util
