#include "util/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace tegrec::util {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyVectorEdgeCases) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(sum({}), 0.0);
  EXPECT_THROW(min_value({}), std::invalid_argument);
  EXPECT_THROW(max_value({}), std::invalid_argument);
}

TEST(Stats, MinMaxSum) {
  const std::vector<double> v{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 3.0);
  EXPECT_DOUBLE_EQ(sum(v), 4.0);
}

TEST(Mape, MatchesEquation3) {
  // M = 100/n * sum |(A-F)/A|: two samples at 10% and 20% error -> 15%.
  const std::vector<double> actual{100.0, 50.0};
  const std::vector<double> forecast{90.0, 60.0};
  EXPECT_NEAR(mape_percent(actual, forecast), 15.0, 1e-12);
}

TEST(Mape, PerfectForecastIsZero) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mape_percent(v, v), 0.0);
}

TEST(Mape, SkipsNearZeroActuals) {
  EXPECT_DOUBLE_EQ(mape_percent({0.0, 100.0}, {5.0, 110.0}), 10.0);
}

TEST(Mape, AllZeroActualsGiveZero) {
  EXPECT_DOUBLE_EQ(mape_percent({0.0, 0.0}, {1.0, 2.0}), 0.0);
}

TEST(Mape, SizeMismatchThrows) {
  EXPECT_THROW(mape_percent({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Rmse, KnownValue) {
  EXPECT_NEAR(rmse({1.0, 2.0}, {2.0, 4.0}), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
  EXPECT_THROW(rmse({1.0}, {}), std::invalid_argument);
}

TEST(MaxAbsError, PicksWorstSample) {
  EXPECT_DOUBLE_EQ(max_abs_error({1.0, 5.0, 2.0}, {1.1, 4.0, 2.0}), 1.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

// MAPE is scale-invariant: scaling both series leaves it unchanged.
class MapeScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(MapeScaleInvariance, ScaleInvariant) {
  const double scale = GetParam();
  const std::vector<double> actual{80.0, 90.0, 100.0, 85.0};
  const std::vector<double> forecast{82.0, 88.0, 101.0, 84.0};
  std::vector<double> sa = actual, sf = forecast;
  for (double& x : sa) x *= scale;
  for (double& x : sf) x *= scale;
  EXPECT_NEAR(mape_percent(sa, sf), mape_percent(actual, forecast), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, MapeScaleInvariance,
                         ::testing::Values(0.01, 0.5, 2.0, 1000.0));

}  // namespace
}  // namespace tegrec::util
