// DC-DC charger conversion-efficiency model (LTM4607-class buck-boost).
//
// Section III.B of the paper: the charger converts the array's output
// voltage to the battery's 13.8 V charging voltage, and its efficiency
// falls off as the input voltage deviates from the output voltage — the
// reason the reconfiguration algorithm constrains the group count to
// [nmin, nmax].  We model
//
//   eta(Vin, Pin) = (eta_peak - k_v * ln^2(Vin/Vout)) * Pin / (Pin + P_fix)
//
// clamped to [0, eta_peak], with a hard operating window on Vin taken from
// the LTM4607 datasheet (4.5..36 V).  P_fix captures quiescent/gate losses
// that dominate at light load.
#pragma once

#include <cstddef>

namespace tegrec::power {

struct ConverterParams {
  double output_voltage_v = 13.8;  ///< lead-acid charging rail
  double eta_peak = 0.965;         ///< best-case efficiency at Vin == Vout
  double voltage_penalty = 0.055;  ///< k_v, loss per ln^2(Vin/Vout)
  double fixed_loss_w = 0.35;      ///< quiescent + switching floor
  double min_input_v = 4.5;        ///< datasheet operating window
  double max_input_v = 36.0;
  double max_input_power_w = 400.0;///< thermal limit
};

class Converter {
 public:
  explicit Converter(const ConverterParams& params = {});

  const ConverterParams& params() const { return params_; }

  /// True if the input voltage lies inside the operating window.
  bool input_in_range(double vin_v) const;

  /// Conversion efficiency for an operating point; 0 outside the window
  /// or for non-positive input power.
  double efficiency(double vin_v, double pin_w) const;

  /// Power delivered to the battery rail.
  double output_power_w(double vin_v, double pin_w) const;

  /// Range of group counts n such that a series string of n groups with
  /// per-group MPP voltage ~`group_vmpp_v` lands inside the efficient
  /// window [vout/width_factor, vout*width_factor]: the paper's
  /// [nmin, nmax].  Returns {1, 1} degenerately if the group voltage is
  /// non-positive.
  struct GroupRange {
    std::size_t nmin = 1;
    std::size_t nmax = 1;
  };
  GroupRange efficient_group_range(double group_vmpp_v, std::size_t max_groups,
                                   double width_factor = 2.0) const;

 private:
  ConverterParams params_;
};

}  // namespace tegrec::power
