// DNOR — Durable Near-Optimal Reconfiguration (Algorithm 2).
//
// The paper's headline contribution: INOR wrapped in a prediction-based
// switch-or-hold rule.  Every tp + 1 seconds the controller
//   1. runs INOR on the current distribution to get C_new,
//   2. forecasts the next tp seconds of per-module temperatures (MLR by
//      default — the most accurate/fastest of the three tested methods),
//   3. integrates the predicted output energy of C_old and C_new over the
//      coming tp + 1 seconds, and
//   4. actuates only if  E_old <= E_new - E_overhead,
// so a configuration survives until the predicted loss of keeping it
// exceeds the cost of switching — cutting actuation energy by ~100x while
// keeping output within a few percent of INOR's (Table I).
#pragma once

#include <memory>
#include <utility>

#include "core/inor.hpp"
#include "core/reconfigurer.hpp"
#include "predict/mlr.hpp"
#include "predict/predictor.hpp"
#include "switchfab/overhead.hpp"

namespace tegrec::core {

struct DnorParams {
  double control_period_s = 0.5;  ///< sensing cadence (matches INOR/EHTR)
  double tp_s = 2.0;              ///< prediction lead; decisions every tp+1 s
  std::size_t history_window = 30;///< sliding window for predictor fitting
  InorOptions inor;               ///< candidate-generation window
  switchfab::OverheadParams overhead;  ///< E_overhead model for the rule
};

class DnorReconfigurer final : public Reconfigurer {
 public:
  /// `predictor` defaults to MLR with its standard parameters; inject BPNN
  /// or SVR to reproduce the predictor ablation.
  DnorReconfigurer(const teg::DeviceParams& device,
                   const power::ConverterParams& converter,
                   const DnorParams& params = {},
                   std::unique_ptr<predict::Predictor> predictor = nullptr);

  std::string name() const override { return "DNOR"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;
  AlgorithmCost algorithm_cost() const override {
    return AlgorithmCost::dnor();
  }

  /// DNOR is checkpoint-pure through its archived history: the predictor is
  /// re-fit from history_ before every decision, so serialising the window
  /// plus the decision-cadence scalars reproduces the exact future decision
  /// stream — but only when the predictor's refit is itself pure (MLR/SVR;
  /// BPNN's persistent SGD RNG breaks the contract and reports false here).
  bool supports_checkpoint() const override;
  std::string checkpoint_state() const override;
  void restore_checkpoint_state(const std::string& state) override;

  /// Decision counters (exposed for the experiment harnesses).
  std::size_t decisions_made() const { return decisions_; }
  std::size_t switches_taken() const { return switches_; }

 private:
  teg::DeviceParams device_;
  power::Converter converter_;
  DnorParams params_;
  std::unique_ptr<predict::Predictor> predictor_;
  std::unique_ptr<predict::TemperatureHistory> history_;

  double next_decision_time_s_ = 0.0;
  bool has_config_ = false;
  teg::ArrayConfig current_;
  std::size_t decisions_ = 0;
  std::size_t switches_ = 0;

  /// Predicted output energies of the hold/switch candidates over now + the
  /// forecast rows, sharing one cached ArrayEvaluator per row.
  std::pair<double, double> predicted_energies_j(
      const teg::ArrayConfig& c_old, const teg::ArrayConfig& c_new,
      const std::vector<double>& now_temps,
      const std::vector<std::vector<double>>& forecast, double ambient_c) const;
};

}  // namespace tegrec::core
