// Persistence (naive last-value) predictor.
//
// Forecasts T_{t+1,i} = T_{t,i}.  Not one of the paper's three methods but
// the standard sanity baseline: any learned predictor must beat it on MAPE
// to justify its runtime, and the property tests pin that ordering.
#pragma once

#include "predict/predictor.hpp"

namespace tegrec::predict {

class PersistencePredictor final : public Predictor {
 public:
  std::string name() const override { return "Persistence"; }
  std::size_t num_lags() const override { return 1; }
  void fit(const TemperatureHistory& history) override;
  bool is_fitted() const override { return fitted_; }
  std::vector<double> predict_next(const TemperatureHistory& history) const override;

 private:
  bool fitted_ = false;
};

}  // namespace tegrec::predict
