// Common interface of all reconfiguration controllers.
//
// The simulator calls update() once per control period with the freshly
// sensed temperature distribution; the controller returns the
// configuration the array should use until the next call, whether the
// algorithm actually executed this period (sensing/compute overhead is
// charged only then), whether the fabric must actuate, and the measured
// compute time (the paper's "average runtime" column).
#pragma once

#include <string>
#include <vector>

#include "teg/config.hpp"

namespace tegrec::core {

struct UpdateResult {
  teg::ArrayConfig config;     ///< configuration to use from now on
  bool invoked = false;        ///< the decision algorithm ran this period
  bool switched = false;       ///< config differs from the previous one
  /// The controller commands a fabric rebuild this period.  The periodic
  /// schemes (INOR, EHTR) rebuild on every invocation — the paper's
  /// "switching at every time point" — even when the configuration happens
  /// to repeat; DNOR actuates only when its prediction rule says to.
  bool actuate = false;
  double compute_time_s = 0.0; ///< wall-clock cost of this invocation
};

class Reconfigurer {
 public:
  virtual ~Reconfigurer() = default;

  virtual std::string name() const = 0;

  /// `delta_t_k[i]` is module i's sensed face temperature difference at
  /// `time_s`; `ambient_c` the heatsink temperature.
  virtual UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                              double ambient_c) = 0;

  /// Resets internal state (history, held configuration) for a fresh run.
  virtual void reset() = 0;
};

}  // namespace tegrec::core
