// Multi-row (2-D) radiator walkthrough.
//
// Section III.A of the paper treats the 2-D radiator as parallel 1-D
// tubes.  This example builds the structure explicitly: a 4-row core with
// a skewed header, per-row INOR reconfiguration, and the parallel bank at
// the charger — showing where the reduction is exact and where the rows'
// voltage mismatch costs power.
//
//   ./build/examples/two_row_radiator
#include <cstdio>

#include "core/bank.hpp"
#include "thermal/radiator2d.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  // A 4-row core, 25 modules per row, with a header that feeds the last
  // row 40% more coolant than the first.
  thermal::Radiator2DLayout layout;
  layout.num_rows = 4;
  layout.row.num_modules = 25;
  layout.flow_imbalance = 0.4;

  thermal::StreamConditions total;
  total.hot_inlet_c = 92.0;
  total.cold_inlet_c = 25.0;
  total.hot_capacity_w_k = 2400.0;
  total.cold_capacity_w_k = 2200.0;

  const auto shares = thermal::row_flow_shares(layout);
  const auto row_dts = thermal::row_module_delta_t(layout, total);

  std::printf("4-row radiator, header imbalance 0.4:\n");
  util::TextTable rows_table({"row", "flow share", "dT inlet (K)", "dT exit (K)"});
  for (std::size_t r = 0; r < layout.num_rows; ++r) {
    rows_table.begin_row()
        .add(static_cast<long long>(r))
        .add(shares[r], 3)
        .add(row_dts[r].front(), 1)
        .add(row_dts[r].back(), 1);
  }
  std::printf("%s\n", rows_table.render().c_str());

  // Per-row arrays and the two bank strategies.
  const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
  const power::Converter converter{power::ConverterParams{}};
  std::vector<teg::TegArray> rows;
  for (const auto& dts : row_dts) {
    rows.emplace_back(device, dts, total.cold_inlet_c);
  }

  const auto independent =
      core::bank_search(rows, converter, core::BankStrategy::kIndependent);
  const auto matched =
      core::bank_search(rows, converter, core::BankStrategy::kVoltageMatched);

  std::printf("per-row configurations (voltage-matched pass):\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("  row %zu: n=%zu groups, VMPP %.2f V (independent: n=%zu, %.2f V)\n",
                r, matched.row_configs[r].num_groups(),
                rows[r].mpp_voltage_v(matched.row_configs[r]),
                independent.row_configs[r].num_groups(),
                rows[r].mpp_voltage_v(independent.row_configs[r]));
  }

  std::printf("\nbank output, independent rows:   %.2f W\n",
              independent.output_power_w);
  std::printf("bank output, voltage-matched:    %.2f W  (%+.2f%%)\n",
              matched.output_power_w,
              100.0 * (matched.output_power_w / independent.output_power_w - 1.0));
  std::printf("row-wise ideal (decoupled rows): %.2f W\n",
              matched.bank.rowwise_ideal_power_w());
  std::printf("per-module ideal:                %.2f W\n",
              matched.bank.ideal_power_w());

  // Who back-feeds whom at the shared port?
  const auto currents =
      matched.bank.row_currents_at_voltage(matched.bank.mpp_voltage_v());
  std::printf("\nrow currents at the bank MPP voltage (negative = back-fed):\n");
  for (std::size_t r = 0; r < currents.size(); ++r) {
    std::printf("  row %zu: %+.3f A\n", r, currents[r]);
  }
  return 0;
}
