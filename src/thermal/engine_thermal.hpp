// Heat-source/coolant lumped thermal model with thermostat and pump
// dynamics.
//
// Produces the two time series the paper measured on the truck: coolant
// inlet temperature (thermocouple at the radiator entrance) and coolant
// volumetric flow (Recordall meter).  A single thermal mass integrates the
// source's heat-to-coolant power against the radiator's rejection, with a
// wax thermostat throttling radiator flow below its opening window and a
// crankshaft-driven pump scaling flow with load.  The model is agnostic to
// what the heat source is: for industrial duty cycles (boiler/kiln
// scenarios) the "engine power" series is a firing schedule, the
// "thermostat" a process-control valve, and the constants are retuned
// through the same struct.  Steps flagged engine-off by the workload
// (kStopStart idle-stop dwells) inject no heat and drop pump flow to a
// thermosiphon trickle, so the loop cools until the next launch.  A
// below-thermostat `initial_coolant_c` (cold soak) reproduces the
// cold-start warm-up transient.
#pragma once

#include <cstdint>
#include <vector>

#include "thermal/coolant.hpp"
#include "thermal/drive_cycle.hpp"
#include "thermal/heat_exchanger.hpp"
#include "util/rng.hpp"

namespace tegrec::thermal {

/// Constants of the lumped engine cooling loop.
struct EngineThermalParams {
  /// Thermal capacitance of engine block + coolant charge [J/K].
  double thermal_mass_j_k = 110000.0;
  /// Fraction of fuel/mechanical power rejected into the coolant.  Diesel
  /// engines put roughly a third of fuel energy into coolant + EGR.
  double heat_to_coolant_fraction = 0.62;
  /// Thermostat starts opening at this coolant temperature [deg C].
  double thermostat_open_c = 86.0;
  /// Fully open at this temperature [deg C].
  double thermostat_full_c = 95.0;
  /// Minimum bypass leak through a "closed" thermostat (fraction of pump flow).
  double thermostat_leak = 0.06;
  /// Pump flow at idle / at rated power [L/min].
  double pump_flow_idle_lpm = 22.0;
  double pump_flow_max_lpm = 95.0;
  /// Cooling fan adds this much air speed when engaged [m/s].
  double fan_air_speed_ms = 3.5;
  /// Fan engages above this coolant temperature [deg C].
  double fan_on_c = 97.0;
  /// Radiator frontal area for ram air mass flow [m^2].
  double radiator_face_area_m2 = 0.32;
  /// Grille-shutter limit on face air velocity [m/s]: modern vehicles cap
  /// radiator airflow at speed for aero/thermal reasons; this also keeps
  /// the longitudinal temperature profile steep at highway speed.
  double max_air_speed_ms = 6.0;
  /// Initial coolant temperature (warm engine at departure) [deg C].
  double initial_coolant_c = 84.0;
  /// Ambient temperature [deg C].
  double ambient_c = 25.0;
  /// 1-sigma measurement noise on the thermocouple / flow meter.
  double temp_noise_c = 0.05;
  double flow_noise_lpm = 0.5;
  /// Combustion/load process noise on the coolant temperature, modelled as
  /// an Ornstein-Uhlenbeck disturbance (deg C, 1-sigma stationary).
  double process_noise_c = 0.15;
  double process_noise_reversion = 0.4;  ///< OU mean-reversion rate [1/s]
};

/// One sample of the cooling-loop state.
struct CoolantSample {
  double time_s = 0.0;
  double coolant_inlet_c = 0.0;   ///< radiator hot-side inlet temperature
  double coolant_flow_lpm = 0.0;  ///< radiator branch volumetric flow
  double air_speed_ms = 0.0;      ///< face air velocity (ram + fan)
  double ambient_c = 0.0;
};

/// Full cooling-loop trace aligned with a drive cycle.
struct CoolantTrace {
  double dt_s = 0.1;
  std::vector<CoolantSample> samples;

  std::size_t num_steps() const { return samples.size(); }
  double duration_s() const { return dt_s * static_cast<double>(num_steps()); }
};

/// Fraction of pump flow routed through the radiator for a coolant
/// temperature; linear ramp between open and full-open with a closed leak.
double thermostat_fraction(const EngineThermalParams& params, double coolant_c);

/// Pump volumetric flow for an engine power (load proxy) [L/min].
double pump_flow_lpm(const EngineThermalParams& params, double engine_power_kw,
                     double max_engine_power_kw);

/// Integrates the cooling loop over the drive cycle.  The radiator heat
/// rejection uses the same epsilon-NTU model (`exchanger`) the TEG layer
/// samples, closing the loop between vehicle load and coolant temperature.
/// If `ambient_c_series` is non-null it must have one entry per cycle step
/// and overrides the constant `params.ambient_c` (weather/altitude drives).
CoolantTrace simulate_cooling_loop(const EngineThermalParams& params,
                                   const HeatExchangerParams& exchanger,
                                   const VehicleParams& vehicle,
                                   const DriveCycle& cycle, std::uint64_t seed,
                                   const std::vector<double>* ambient_c_series = nullptr);

}  // namespace tegrec::thermal
