// Row-wise reconfiguration of a 2-D (multi-row) TEG bank.
//
// The paper reduces the 2-D radiator to independent 1-D problems; this
// module implements that reduction and quantifies its cost.  Two search
// strategies over the per-row configurations:
//
//  * kIndependent — run INOR on every row in isolation (the paper's
//    reduction).  Each row lands near its own MPP, but rows with unequal
//    flow develop unequal MPP voltages and back-feed each other at the
//    common charger port.
//  * kVoltageMatched — after the independent pass, re-run each row's INOR
//    restricted to group counts whose string MPP voltage is closest to the
//    bank median, trading a little per-row optimality for parallel
//    alignment.  Recovers most of the back-feed loss at O(rows * N) cost.
#pragma once

#include <vector>

#include "core/inor.hpp"
#include "power/converter.hpp"
#include "teg/array.hpp"
#include "teg/string_bank.hpp"

namespace tegrec::core {

enum class BankStrategy { kIndependent, kVoltageMatched };

struct BankSearchResult {
  std::vector<teg::ArrayConfig> row_configs;
  teg::StringBank bank;          ///< evaluated at the found configuration
  double output_power_w = 0.0;   ///< post-converter bank power
};

/// Searches per-row configurations for a bank of row arrays.  Every
/// element of `rows` is one row's TegArray (typically from
/// thermal::row_module_delta_t).  All rows share `converter`.
BankSearchResult bank_search(const std::vector<teg::TegArray>& rows,
                             const power::Converter& converter,
                             BankStrategy strategy = BankStrategy::kVoltageMatched);

/// Post-converter power of a bank at its best common operating voltage.
double bank_power_w(const teg::StringBank& bank, const power::Converter& converter);

}  // namespace tegrec::core
