#include "sim/result_io.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/float_cmp.hpp"
#include "util/parse.hpp"

namespace tegrec::sim {

namespace {

constexpr const char* kMagic = "# tegrec-result v1";

// ----------------------------------------------------------------- encode

void emit_table(std::ostringstream& os, const util::CsvTable& table) {
  os << "# table rows = " << table.rows.size() << '\n'
     << util::csv_to_string(table, util::kCsvExactPrecision);
}

util::CsvTable simulation_summary_table(const SimulationResult& run) {
  util::CsvTable t;
  t.header = {"energy_output_j",   "switch_overhead_j",
              "avg_runtime_ms",    "runtime_per_invocation_ms",
              "ideal_energy_j",    "num_invocations",
              "num_switch_events", "total_switch_actuations",
              "battery_energy_j",  "final_soc"};
  t.rows.push_back({run.energy_output_j, run.switch_overhead_j,
                    run.avg_runtime_ms, run.runtime_per_invocation_ms,
                    run.ideal_energy_j, static_cast<double>(run.num_invocations),
                    static_cast<double>(run.num_switch_events),
                    static_cast<double>(run.total_switch_actuations),
                    run.battery_energy_j, run.final_soc});
  return t;
}

util::CsvTable steps_table(const SimulationResult& run) {
  util::CsvTable t;
  t.header = {"time_s",  "gross_power_w",     "net_power_w",
              "ideal_power_w", "invoked",     "switched",
              "switch_actuations", "overhead_energy_j", "compute_time_s"};
  for (const StepRecord& s : run.steps) {
    t.rows.push_back({s.time_s, s.gross_power_w, s.net_power_w, s.ideal_power_w,
                      s.invoked ? 1.0 : 0.0, s.switched ? 1.0 : 0.0,
                      static_cast<double>(s.switch_actuations),
                      s.overhead_energy_j, s.compute_time_s});
  }
  return t;
}

// ----------------------------------------------------------------- decode
//
// Internal failures throw std::runtime_error; decode_result() converts
// every throw into nullopt (a cache miss).

class LineReader {
 public:
  explicit LineReader(const std::string& text) : is_(text) {}

  std::string next() {
    std::string line;
    if (!std::getline(is_, line)) {
      throw std::runtime_error("result artifact truncated");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  /// Consumes a "<prefix><suffix>" line and returns the suffix.
  std::string expect_prefix(const std::string& prefix) {
    const std::string line = next();
    if (line.rfind(prefix, 0) != 0) {
      throw std::runtime_error("result artifact: expected '" + prefix +
                               "', got '" + line + "'");
    }
    return line.substr(prefix.size());
  }

  util::CsvTable read_table() {
    const std::size_t rows = static_cast<std::size_t>(
        util::parse_u64(expect_prefix("# table rows = ")));
    std::string csv = next();  // header
    csv += '\n';
    for (std::size_t i = 0; i < rows; ++i) {
      csv += next();
      csv += '\n';
    }
    util::CsvTable table = util::csv_from_string(csv);
    if (table.rows.size() != rows) {
      throw std::runtime_error("result artifact: row count mismatch");
    }
    return table;
  }

 private:
  std::istringstream is_;
};

double cell(const util::CsvTable& table, std::size_t row,
            const std::string& name) {
  for (std::size_t c = 0; c < table.header.size(); ++c) {
    if (table.header[c] == name) return table.rows.at(row).at(c);
  }
  throw std::runtime_error("result artifact: missing column " + name);
}

SimulationResult decode_run(LineReader& reader) {
  SimulationResult run;
  run.algorithm = reader.expect_prefix("# run algorithm = ");
  const util::CsvTable summary = reader.read_table();
  if (summary.rows.size() != 1) {
    throw std::runtime_error("result artifact: bad summary table");
  }
  run.energy_output_j = cell(summary, 0, "energy_output_j");
  run.switch_overhead_j = cell(summary, 0, "switch_overhead_j");
  run.avg_runtime_ms = cell(summary, 0, "avg_runtime_ms");
  run.runtime_per_invocation_ms = cell(summary, 0, "runtime_per_invocation_ms");
  run.ideal_energy_j = cell(summary, 0, "ideal_energy_j");
  run.num_invocations =
      static_cast<std::size_t>(cell(summary, 0, "num_invocations"));
  run.num_switch_events =
      static_cast<std::size_t>(cell(summary, 0, "num_switch_events"));
  run.total_switch_actuations =
      static_cast<std::size_t>(cell(summary, 0, "total_switch_actuations"));
  run.battery_energy_j = cell(summary, 0, "battery_energy_j");
  run.final_soc = cell(summary, 0, "final_soc");

  const util::CsvTable steps = reader.read_table();
  run.steps.resize(steps.rows.size());
  for (std::size_t i = 0; i < steps.rows.size(); ++i) {
    StepRecord& s = run.steps[i];
    s.time_s = cell(steps, i, "time_s");
    s.gross_power_w = cell(steps, i, "gross_power_w");
    s.net_power_w = cell(steps, i, "net_power_w");
    s.ideal_power_w = cell(steps, i, "ideal_power_w");
    // 0/1 flags round-tripped at exact precision: bit-value compare.
    s.invoked = !util::is_exactly_zero(cell(steps, i, "invoked"));
    s.switched = !util::is_exactly_zero(cell(steps, i, "switched"));
    s.switch_actuations =
        static_cast<std::size_t>(cell(steps, i, "switch_actuations"));
    s.overhead_energy_j = cell(steps, i, "overhead_energy_j");
    s.compute_time_s = cell(steps, i, "compute_time_s");
  }
  return run;
}

ExperimentResult decode_or_throw(const std::string& text,
                                 const std::string& expected_fp_text) {
  LineReader reader(text);
  if (reader.next() != kMagic) {
    throw std::runtime_error("result artifact: bad magic");
  }
  const std::string kind = reader.expect_prefix("# kind = ");
  const std::size_t fp_lines = static_cast<std::size_t>(
      util::parse_u64(reader.expect_prefix("# fingerprint-lines = ")));
  std::string fp_text;
  for (std::size_t i = 0; i < fp_lines; ++i) {
    fp_text += reader.next();
    fp_text += '\n';
  }
  if (fp_text != expected_fp_text) {
    // A different spec hashed to this fingerprint (or the schema moved
    // under the artifact): miss, never a wrong result.
    throw std::runtime_error("result artifact: fingerprint text mismatch");
  }

  ExperimentResult out;
  if (kind == "comparison") {
    out.kind = ExperimentKind::kComparison;
    const std::size_t num_runs = static_cast<std::size_t>(
        util::parse_u64(reader.expect_prefix("# runs = ")));
    for (std::size_t i = 0; i < num_runs; ++i) {
      out.comparison.runs.push_back(decode_run(reader));
    }
  } else if (kind == "montecarlo") {
    out.kind = ExperimentKind::kMonteCarlo;
    const util::CsvTable samples = reader.read_table();
    out.monte_carlo.samples.resize(samples.rows.size());
    for (std::size_t i = 0; i < samples.rows.size(); ++i) {
      MonteCarloSample& s = out.monte_carlo.samples[i];
      s.seed = (static_cast<std::uint64_t>(cell(samples, i, "seed_hi")) << 32) |
               static_cast<std::uint64_t>(cell(samples, i, "seed_lo"));
      s.dnor_energy_j = cell(samples, i, "dnor_energy_j");
      s.baseline_energy_j = cell(samples, i, "baseline_energy_j");
      s.gain = cell(samples, i, "gain");
      s.dnor_overhead_j = cell(samples, i, "dnor_overhead_j");
      s.dnor_switches = cell(samples, i, "dnor_switches");
    }
    detail::fold_monte_carlo_stats(out.monte_carlo);
  } else if (kind == "sweep") {
    out.kind = ExperimentKind::kSweep;
    const util::CsvTable points = reader.read_table();
    out.sweep.resize(points.rows.size());
    for (std::size_t i = 0; i < points.rows.size(); ++i) {
      SweepPoint& p = out.sweep[i];
      p.value = cell(points, i, "value");
      p.dnor_energy_j = cell(points, i, "dnor_energy_j");
      p.baseline_energy_j = cell(points, i, "baseline_energy_j");
      p.gain = cell(points, i, "gain");
      p.dnor_ratio_to_ideal = cell(points, i, "dnor_ratio_to_ideal");
    }
  } else {
    throw std::runtime_error("result artifact: unknown kind " + kind);
  }
  if (reader.next() != "# end") {
    throw std::runtime_error("result artifact: missing terminator");
  }
  return out;
}

}  // namespace

std::string encode_result(const ExperimentResult& result,
                          const std::string& fingerprint_text) {
  std::ostringstream os;
  os << kMagic << '\n';
  std::size_t fp_lines = 0;
  for (const char c : fingerprint_text) fp_lines += c == '\n' ? 1 : 0;
  switch (result.kind) {
    case ExperimentKind::kComparison: {
      os << "# kind = comparison\n"
         << "# fingerprint-lines = " << fp_lines << '\n'
         << fingerprint_text;
      os << "# runs = " << result.comparison.runs.size() << '\n';
      for (const SimulationResult& run : result.comparison.runs) {
        os << "# run algorithm = " << run.algorithm << '\n';
        emit_table(os, simulation_summary_table(run));
        emit_table(os, steps_table(run));
      }
      break;
    }
    case ExperimentKind::kMonteCarlo: {
      os << "# kind = montecarlo\n"
         << "# fingerprint-lines = " << fp_lines << '\n'
         << fingerprint_text;
      util::CsvTable samples;
      // Seeds are u64; CSV cells are doubles, which are only exact to
      // 2^53, so the seed travels as two 32-bit halves.
      samples.header = {"seed_hi",         "seed_lo",
                        "dnor_energy_j",   "baseline_energy_j",
                        "gain",            "dnor_overhead_j",
                        "dnor_switches"};
      for (const MonteCarloSample& s : result.monte_carlo.samples) {
        samples.rows.push_back({static_cast<double>(s.seed >> 32),
                                static_cast<double>(s.seed & 0xffffffffULL),
                                s.dnor_energy_j, s.baseline_energy_j, s.gain,
                                s.dnor_overhead_j, s.dnor_switches});
      }
      emit_table(os, samples);
      break;
    }
    case ExperimentKind::kSweep: {
      os << "# kind = sweep\n"
         << "# fingerprint-lines = " << fp_lines << '\n'
         << fingerprint_text;
      util::CsvTable points;
      points.header = {"value", "dnor_energy_j", "baseline_energy_j", "gain",
                       "dnor_ratio_to_ideal"};
      for (const SweepPoint& p : result.sweep) {
        points.rows.push_back({p.value, p.dnor_energy_j, p.baseline_energy_j,
                               p.gain, p.dnor_ratio_to_ideal});
      }
      emit_table(os, points);
      break;
    }
  }
  os << "# end\n";
  return os.str();
}

std::optional<ExperimentResult> decode_result(
    const std::string& text, const std::string& expected_fingerprint_text) {
  try {
    return decode_or_throw(text, expected_fingerprint_text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace tegrec::sim
