#include "predict/svr.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tegrec::predict {
namespace {

TemperatureHistory ar1_history(std::size_t modules, std::size_t steps, double a,
                               double c) {
  TemperatureHistory h(modules, steps);
  std::vector<double> x(modules);
  for (std::size_t m = 0; m < modules; ++m) x[m] = 75.0 + 2.0 * m;
  for (std::size_t t = 0; t < steps; ++t) {
    h.push(x);
    for (auto& v : x) v = a * v + c;
  }
  return h;
}

TEST(Svr, FitsLinearProcessWithinTube) {
  SvrPredictor svr(SvrParams{.lags = 2, .iterations = 800});
  const TemperatureHistory h = ar1_history(5, 40, 0.97, 2.5);
  svr.fit(h);
  ASSERT_TRUE(svr.is_fitted());
  const auto pred = svr.predict_next(h);
  for (std::size_t m = 0; m < 5; ++m) {
    const double expected = 0.97 * h.latest()[m] + 2.5;
    EXPECT_NEAR(pred[m], expected, 0.8) << "module " << m;
  }
}

TEST(Svr, PredictsConstantSignal) {
  SvrPredictor svr(SvrParams{.lags = 3, .iterations = 600});
  TemperatureHistory h(3, 30);
  for (int t = 0; t < 30; ++t) h.push({90.0, 80.0, 70.0});
  svr.fit(h);
  const auto pred = svr.predict_next(h);
  EXPECT_NEAR(pred[0], 90.0, 1.0);
  EXPECT_NEAR(pred[2], 70.0, 1.0);
}

TEST(Svr, SupportFractionReflectsTubeFit) {
  // A perfectly linear relation with a generous tube: most points inside.
  SvrPredictor svr(SvrParams{.lags = 2, .epsilon = 0.3, .iterations = 800});
  const TemperatureHistory h = ar1_history(4, 40, 0.99, 1.0);
  svr.fit(h);
  EXPECT_LT(svr.support_fraction(), 0.6);
}

TEST(Svr, WeightsExposedAfterFit) {
  SvrPredictor svr(SvrParams{.lags = 3, .iterations = 400});
  const TemperatureHistory h = ar1_history(4, 30, 0.98, 1.5);
  svr.fit(h);
  ASSERT_EQ(svr.weights().size(), 3u);
  // The lags of a smooth AR(1) trajectory are nearly collinear, so the
  // individual weights are not identified — but their sum (the response to
  // a uniform shift of the window) must approximate the AR slope.
  double weight_sum = 0.0;
  for (double w : svr.weights()) weight_sum += w;
  EXPECT_GT(weight_sum, 0.5);
  EXPECT_LT(weight_sum, 1.3);
}

TEST(Svr, ModuleStrideSubsampling) {
  SvrPredictor svr(SvrParams{.lags = 2, .iterations = 200, .module_stride = 2});
  const TemperatureHistory h = ar1_history(8, 25, 0.98, 1.0);
  svr.fit(h);
  EXPECT_EQ(svr.predict_next(h).size(), 8u);
}

TEST(Svr, ErrorsOnMisuse) {
  EXPECT_THROW(SvrPredictor(SvrParams{.lags = 0}), std::invalid_argument);
  EXPECT_THROW(SvrPredictor(SvrParams{.c = 0.0}), std::invalid_argument);
  EXPECT_THROW(SvrPredictor(SvrParams{.epsilon = -0.1}), std::invalid_argument);
  EXPECT_THROW(SvrPredictor(SvrParams{.module_stride = 0}),
               std::invalid_argument);
  SvrPredictor svr;
  TemperatureHistory h(2, 10);
  h.push({1.0, 2.0});
  EXPECT_THROW(svr.fit(h), std::invalid_argument);
  EXPECT_THROW(svr.predict_next(h), std::logic_error);
}

TEST(Svr, NameAndLags) {
  SvrPredictor svr(SvrParams{.lags = 7});
  EXPECT_EQ(svr.name(), "SVR");
  EXPECT_EQ(svr.num_lags(), 7u);
}

TEST(Svr, RobustToOutliers) {
  // The eps-insensitive loss is robust: a few corrupted rows shouldn't
  // destroy the fit (unlike plain least squares).
  util::Rng rng(3);
  SvrPredictor svr(SvrParams{.lags = 2, .iterations = 800});
  TemperatureHistory h(4, 50);
  std::vector<double> x(4, 85.0);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> row = x;
    if (t == 20 || t == 35) {
      for (auto& v : row) v += 30.0;  // sensor glitch rows
    }
    h.push(row);
    for (auto& v : x) v = 0.99 * v + 0.9;
  }
  svr.fit(h);
  const auto pred = svr.predict_next(h);
  for (double p : pred) {
    EXPECT_GT(p, 70.0);
    EXPECT_LT(p, 100.0);
  }
}

}  // namespace
}  // namespace tegrec::predict
