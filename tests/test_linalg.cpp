#include "util/linalg.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tegrec::util {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityMultiplyIsNoop) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix result = a * Matrix::identity(2);
  EXPECT_DOUBLE_EQ(result(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(result(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a{{1.0, 2.0, 3.0}};          // 1x3
  Matrix b{{1.0}, {2.0}, {3.0}};      // 3x1
  const Matrix p = a * b;
  ASSERT_EQ(p.rows(), 1u);
  ASSERT_EQ(p.cols(), 1u);
  EXPECT_DOUBLE_EQ(p(0, 0), 14.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  const std::vector<double> y = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Matrix, AddSubtract) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}};
  const Matrix s = a + b;
  const Matrix d = b - a;
  EXPECT_DOUBLE_EQ(s(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 2.0);
}

TEST(Matrix, RowColExtraction) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.row(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(a.col(0), (std::vector<double>{1.0, 3.0}));
  EXPECT_THROW(a.row(2), std::out_of_range);
  EXPECT_THROW(a.col(2), std::out_of_range);
}

TEST(CholeskySolve, SolvesSpdSystem) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> x = cholesky_solve(a, {1.0, 2.0});
  // Verify A x = b.
  EXPECT_NEAR(4.0 * x[0] + 1.0 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1.0 * x[0] + 3.0 * x[1], 2.0, 1e-12);
}

TEST(CholeskySolve, RecoversFromSemidefiniteWithJitter) {
  // Rank-1 matrix plus consistent RHS: strict Cholesky fails, the jitter
  // retry must still return something close to a solution.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> x = cholesky_solve(a, {2.0, 2.0});
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-4);
}

TEST(LeastSquares, ExactFitLine) {
  // y = 3 + 2 t sampled without noise: recover intercept and slope.
  Matrix x(5, 2);
  std::vector<double> y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = static_cast<double>(i);
    y[i] = 3.0 + 2.0 * static_cast<double>(i);
  }
  const std::vector<double> beta = least_squares(x, y);
  // The default ridge term biases coefficients by O(1e-8); allow for it.
  EXPECT_NEAR(beta[0], 3.0, 1e-6);
  EXPECT_NEAR(beta[1], 2.0, 1e-6);
}

TEST(LeastSquares, MatchesQrOnRandomProblems) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 12, n = 4;
    Matrix a(m, n);
    std::vector<double> b(m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
      b[r] = rng.uniform(-1.0, 1.0);
    }
    const auto x1 = least_squares(a, b);
    const auto x2 = qr_least_squares(a, b);
    for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(x1[c], x2[c], 1e-6);
  }
}

TEST(QrLeastSquares, UnderdeterminedThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(qr_least_squares(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorHelpers, DotNormAxpy) {
  const std::vector<double> a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  std::vector<double> y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
  EXPECT_THROW(dot(a, {1.0}), std::invalid_argument);
}

TEST(VectorHelpers, Scaled) {
  EXPECT_EQ(scaled({1.0, -2.0}, -3.0), (std::vector<double>{-3.0, 6.0}));
}

// Property sweep: the normal-equation solver must keep residuals orthogonal
// to the column space for a range of problem shapes.
class LeastSquaresProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeastSquaresProperty, ResidualOrthogonalToColumns) {
  const std::size_t n = GetParam();
  const std::size_t m = 3 * n + 2;
  Rng rng(1000 + n);
  Matrix a(m, n);
  std::vector<double> b(m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian(0.0, 1.0);
    b[r] = rng.gaussian(0.0, 1.0);
  }
  const auto x = least_squares(a, b);
  const auto ax = a * x;
  for (std::size_t c = 0; c < n; ++c) {
    double corr = 0.0;
    for (std::size_t r = 0; r < m; ++r) corr += a(r, c) * (b[r] - ax[r]);
    EXPECT_NEAR(corr, 0.0, 1e-6) << "column " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LeastSquaresProperty,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace tegrec::util
