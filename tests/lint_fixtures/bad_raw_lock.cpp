// lock-discipline fixture: raw mutex primitives planted at known lines;
// the RAII door (util::Mutex / util::MutexLock) must stay clean.
#include "util/mutex.hpp"

namespace demo {

std::mutex raw_mutex;  // fires: raw mutex type outside util/mutex.hpp

void bad() {
  raw_mutex.lock();            // fires: raw .lock()
  raw_mutex.unlock();          // fires: raw .unlock()
  if (raw_mutex.try_lock()) {  // fires: raw .try_lock()
    raw_mutex.unlock();  // tegrec-lint: allow(lock-discipline) fixture
  }
}

void good(tegrec::util::Mutex& mutex) {
  tegrec::util::MutexLock lock(mutex);  // clean: the sanctioned door
}

}  // namespace demo
