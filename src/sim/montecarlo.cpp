#include "sim/montecarlo.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/service.hpp"
#include "sim/spec.hpp"
#include "util/parallel.hpp"

namespace tegrec::sim {

MonteCarloSummary run_monte_carlo(const MonteCarloOptions& options) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::kMonteCarlo;
  spec.trace.kind = TraceSource::Kind::kGenerated;
  spec.trace.generator = options.base_trace;
  spec.comparison = options.comparison;
  spec.mc_num_seeds = options.num_seeds;
  spec.mc_first_seed = options.first_seed;
  spec.mc_num_threads = options.num_threads;
  return ExperimentService::shared().submit(spec).wait()->monte_carlo;
}

namespace detail {

void fold_monte_carlo_stats(MonteCarloSummary& summary) {
  // Fold the running statistics serially in seed order: floating-point
  // accumulation order is part of the bit-identical guarantee.
  for (const MonteCarloSample& sample : summary.samples) {
    // A zero-harvest baseline makes that seed's gain NaN (undefined, not
    // zero — see ComparisonResult::dnor_gain_over_baseline).  Keep the
    // sample row honest but leave it out of the aggregate, so one
    // degenerate drive reduces gain.count() instead of poisoning the
    // statistics of every valid seed.  The disk-cache decoder re-folds
    // through this same function, so cached summaries agree.
    if (!std::isnan(sample.gain)) summary.gain.add(sample.gain);
    summary.dnor_energy_j.add(sample.dnor_energy_j);
    summary.dnor_overhead_j.add(sample.dnor_overhead_j);
    summary.dnor_switches.add(sample.dnor_switches);
  }
}

MonteCarloSummary run_monte_carlo_direct(const MonteCarloOptions& options) {
  if (options.num_seeds == 0) {
    throw std::invalid_argument("run_monte_carlo: zero seeds");
  }
  if (!options.comparison.include_dnor || !options.comparison.include_baseline) {
    throw std::invalid_argument(
        "run_monte_carlo: DNOR and baseline must both be enabled");
  }
  MonteCarloSummary summary;
  summary.samples.resize(options.num_seeds);

  // Each seed is an independent drive with its own RNG stream; sample k
  // writes only slot k, so any thread count produces the same samples.
  util::parallel_for(
      options.num_seeds, options.num_threads, [&](std::size_t k) {
        thermal::TraceGeneratorConfig config = options.base_trace;
        config.seed = options.first_seed + k;
        const thermal::TemperatureTrace trace = thermal::generate_trace(config);
        const ComparisonResult res =
            run_comparison_direct(trace, options.comparison);

        MonteCarloSample& sample = summary.samples[k];
        sample.seed = config.seed;
        sample.dnor_energy_j = res.by_name("DNOR").energy_output_j;
        sample.baseline_energy_j = res.by_name("Baseline").energy_output_j;
        sample.gain = res.dnor_gain_over_baseline();
        sample.dnor_overhead_j = res.by_name("DNOR").switch_overhead_j;
        sample.dnor_switches =
            static_cast<double>(res.by_name("DNOR").num_switch_events);
      });

  fold_monte_carlo_stats(summary);
  return summary;
}

}  // namespace detail

}  // namespace tegrec::sim
