// Known-bad fixture for `float-eq` / `float-tol`.  Never compiled.
// Line numbers are asserted by tests/test_lint.cpp — edit with care.
#include <cmath>

bool checks(double x, double y, int n, double kNamedTolerance) {
  const bool a = x == 0.0;                       // LINE 6: float-eq
  const bool b = 1.5 != y;                       // LINE 7: float-eq
  const bool c = n == 1;                         // int compare: clean
  const bool d = std::abs(x - y) < 1e-9;         // LINE 9: float-tol
  const bool e = std::abs(x - y) < kNamedTolerance;  // named: clean
  const bool f = std::abs(x - y) <= 0.5;         // LINE 11: float-tol
  const bool g = std::abs(x) < 1e-9;             // no difference: clean
  return a || b || c || d || e || f || g;
}

// Comments talking about 1.0 == 2.0 or steady_clock must never fire.
const char* kProse = "string mentioning x == 0.0 and printf( stays clean";
