#include "thermal/ambient.hpp"

#include <gtest/gtest.h>

#include "thermal/trace.hpp"
#include "util/stats.hpp"

namespace tegrec::thermal {
namespace {

TEST(Ambient, ConstantByDefault) {
  const AmbientProfile profile;
  const auto series = ambient_series(profile, 100, 0.5, 1);
  ASSERT_EQ(series.size(), 100u);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 25.0);
}

TEST(Ambient, LinearDrift) {
  AmbientProfile profile;
  profile.drift_c_per_hour = 3.6;  // 1e-3 C/s
  const auto series = ambient_series(profile, 1001, 1.0, 1);
  EXPECT_DOUBLE_EQ(series[0], 25.0);
  EXPECT_NEAR(series[1000], 26.0, 1e-9);
}

TEST(Ambient, SinusoidalComponent) {
  AmbientProfile profile;
  profile.sine_amplitude_c = 2.0;
  profile.sine_period_s = 100.0;
  const auto series = ambient_series(profile, 101, 1.0, 1);
  EXPECT_NEAR(series[25], 27.0, 1e-9);   // quarter period: +amplitude
  EXPECT_NEAR(series[75], 23.0, 1e-9);   // three quarters: -amplitude
  EXPECT_NEAR(series[100], 25.0, 1e-9);  // full period
}

TEST(Ambient, StepEvents) {
  AmbientProfile profile;
  profile.steps = {{50.0, -5.0}, {80.0, 5.0}};  // tunnel in / out
  const auto series = ambient_series(profile, 101, 1.0, 1);
  EXPECT_DOUBLE_EQ(series[49], 25.0);
  EXPECT_DOUBLE_EQ(series[50], 20.0);
  EXPECT_DOUBLE_EQ(series[79], 20.0);
  EXPECT_DOUBLE_EQ(series[80], 25.0);
}

TEST(Ambient, NoiseDeterministicBySeed) {
  AmbientProfile profile;
  profile.noise_sigma_c = 0.5;
  const auto a = ambient_series(profile, 200, 0.5, 7);
  const auto b = ambient_series(profile, 200, 0.5, 7);
  const auto c = ambient_series(profile, 200, 0.5, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Noise centred on the base.
  EXPECT_NEAR(util::mean(a), 25.0, 1.0);
}

TEST(Ambient, Validation) {
  const AmbientProfile ok;
  EXPECT_THROW(ambient_series(ok, 0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(ambient_series(ok, 10, 0.0, 1), std::invalid_argument);
  AmbientProfile bad;
  bad.noise_sigma_c = -1.0;
  EXPECT_THROW(ambient_series(bad, 10, 1.0, 1), std::invalid_argument);
  bad = AmbientProfile{};
  bad.sine_period_s = 0.0;
  EXPECT_THROW(ambient_series(bad, 10, 1.0, 1), std::invalid_argument);
}

TEST(Ambient, PropagatesIntoGeneratedTrace) {
  TraceGeneratorConfig config;
  config.layout.num_modules = 8;
  config.segments = {{DriveSegment::Kind::kCruise, 40.0, 50.0, 0.0}};
  config.ambient.base_c = 25.0;
  config.ambient.steps = {{20.0, 10.0}};  // heat wave mid-drive
  config.seed = 3;
  const TemperatureTrace trace = generate_trace(config);
  EXPECT_NEAR(trace.ambient_c(trace.step_at_time(5.0)), 25.0, 1e-9);
  EXPECT_NEAR(trace.ambient_c(trace.step_at_time(30.0)), 35.0, 1e-9);
}

TEST(Ambient, HotterAmbientShrinksDeltaT) {
  TraceGeneratorConfig cool;
  cool.layout.num_modules = 8;
  cool.segments = {{DriveSegment::Kind::kCruise, 60.0, 50.0, 0.0}};
  cool.seed = 4;
  TraceGeneratorConfig hot = cool;
  hot.ambient.base_c = 40.0;
  hot.engine.ambient_c = 40.0;  // keep the standalone default coherent
  const TemperatureTrace t_cool = generate_trace(cool);
  const TemperatureTrace t_hot = generate_trace(hot);
  const std::size_t last = t_cool.num_steps() - 1;
  EXPECT_GT(util::mean(t_cool.step_delta_t(last)),
            util::mean(t_hot.step_delta_t(last)));
}

TEST(Ambient, SeriesLengthMismatchRejectedByCoolingLoop) {
  const DriveCycle cycle = generate_drive_cycle(
      {{DriveSegment::Kind::kIdle, 10.0, 0.0, 0.0}}, VehicleParams{}, 0.1, 1);
  const std::vector<double> wrong(cycle.num_steps() + 1, 25.0);
  EXPECT_THROW(simulate_cooling_loop(EngineThermalParams{}, HeatExchangerParams{},
                                     VehicleParams{}, cycle, 1, &wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::thermal
