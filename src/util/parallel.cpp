#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace tegrec::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
    queue_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    UniqueLock lock(mutex_);
    while (!queue_.empty() || in_flight_ != 0) idle_.wait(lock.native());
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) task_ready_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ and nothing left to do
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

std::size_t default_parallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t n, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t requested =
      num_threads == 0 ? default_parallelism() : num_threads;
  const std::size_t workers = std::min(requested, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mutex;

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The caller's thread participates alongside workers - 1 pool threads;
  // `drain` traps its own exceptions, so wait_idle() has nothing to rethrow.
  ThreadPool pool(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.submit(drain);
  drain();
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tegrec::util
