#include "sim/artifact_store.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

namespace tegrec::sim {

namespace fs = std::filesystem;

namespace {

constexpr const char* kArtifactSuffix = ".csv";

struct ArtifactEntry {
  fs::path path;
  std::uint64_t size = 0;
  fs::file_time_type mtime;
};

/// Lists artifacts (not temp files) in `dir`; missing dir = empty store.
std::vector<ArtifactEntry> list_artifacts(const std::string& dir) {
  std::vector<ArtifactEntry> entries;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 ||
        name.compare(name.size() - 4, 4, kArtifactSuffix) != 0) {
      continue;
    }
    std::error_code entry_ec;
    const std::uint64_t size = entry.file_size(entry_ec);
    if (entry_ec) continue;
    const fs::file_time_type mtime = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    entries.push_back({entry.path(), size, mtime});
  }
  return entries;
}

}  // namespace

ArtifactStore::ArtifactStore(ArtifactStoreOptions options)
    : options_(std::move(options)) {
  if (!options_.warn) options_.warn = util::warn_to_stderr;
  if (options_.faults == nullptr) options_.faults = &util::process_faults();
}

std::string ArtifactStore::path_for(const std::string& key) const {
  return options_.dir + "/" + key + kArtifactSuffix;
}

std::optional<std::string> ArtifactStore::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(key);
  std::optional<std::string> content = util::read_file_if_exists(path);
  if (content.has_value()) util::touch_file(path);
  return content;
}

bool ArtifactStore::put(const std::string& key, const std::string& content) {
  if (!enabled()) return false;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);

  util::AtomicWriteOptions write_options;
  write_options.retry = options_.retry;
  write_options.fault_site = "artifact";
  write_options.faults = options_.faults;
  try {
    util::atomic_write_file(path_for(key), content, write_options);
  } catch (const util::AtomicWriteCrash&) {
    throw;  // models process death; must not be swallowed as degradation
  } catch (const std::exception& error) {
    {
      util::MutexLock lock(mutex_);
      ++put_failures_;
    }
    warn_once(std::string("artifact store degraded, results not cached: ") +
              error.what());
    return false;
  }
  if (options_.max_bytes > 0) evict_to_cap();
  return true;
}

bool ArtifactStore::remove(const std::string& key) {
  if (!enabled()) return false;
  std::error_code ec;
  return fs::remove(path_for(key), ec);
}

std::size_t ArtifactStore::maintenance() {
  if (!enabled()) return 0;
  std::size_t removed =
      util::remove_stale_temp_files(options_.dir, options_.temp_max_age_ms);
  if (options_.max_bytes > 0) removed += evict_to_cap();
  return removed;
}

std::uint64_t ArtifactStore::total_bytes() const {
  if (!enabled()) return 0;
  std::uint64_t total = 0;
  for (const ArtifactEntry& entry : list_artifacts(options_.dir)) {
    total += entry.size;
  }
  return total;
}

std::uint64_t ArtifactStore::evictions() const {
  util::MutexLock lock(mutex_);
  return evictions_;
}

std::uint64_t ArtifactStore::put_failures() const {
  util::MutexLock lock(mutex_);
  return put_failures_;
}

std::size_t ArtifactStore::evict_to_cap() {
  // Stateless LRU pass: no on-disk index to corrupt.  A crash mid-pass
  // leaves a smaller, fully consistent store; the next pass resumes.
  std::vector<ArtifactEntry> entries = list_artifacts(options_.dir);
  std::uint64_t total = 0;
  for (const ArtifactEntry& entry : entries) total += entry.size;
  if (total <= options_.max_bytes) return 0;

  std::sort(entries.begin(), entries.end(),
            [](const ArtifactEntry& a, const ArtifactEntry& b) {
              return a.mtime < b.mtime;
            });
  std::size_t removed = 0;
  for (const ArtifactEntry& entry : entries) {
    if (total <= options_.max_bytes) break;
    std::error_code ec;
    if (fs::remove(entry.path, ec)) {
      total -= entry.size;
      ++removed;
    }
  }
  if (removed > 0) {
    util::MutexLock lock(mutex_);
    evictions_ += removed;
  }
  return removed;
}

void ArtifactStore::warn_once(const std::string& message) {
  {
    util::MutexLock lock(mutex_);
    if (warned_) return;
    warned_ = true;
  }
  options_.warn(message);
}

}  // namespace tegrec::sim
