// Deterministic random number generation.
//
// Every stochastic component in the library (trace noise, BPNN weight
// initialisation, workload generators) takes an explicit seed so that
// experiments and tests are exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace tegrec::util {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu) : engine_(seed) {}

  double uniform(double lo, double hi);
  double gaussian(double mean, double stddev);
  int uniform_int(int lo, int hi);  ///< inclusive bounds
  bool bernoulli(double p);

  /// Ornstein-Uhlenbeck step: mean-reverting noise used for coolant
  /// temperature fluctuation.  `x` is the current value; returns the next.
  double ou_step(double x, double mean, double reversion, double sigma, double dt);

  std::vector<double> gaussian_vector(std::size_t n, double mean, double stddev);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tegrec::util
