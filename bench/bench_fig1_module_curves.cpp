// Reproduces Fig. 1: I-V (a) and P-V (b) output characteristics of the
// TGM-199-1.4-0.8 module for a family of face temperature differences,
// with the maximum power point marked on each curve.
//
// The paper plots the curves for the dT range a vehicle radiator produces;
// the reproduction prints the same sweeps as aligned columns (one block
// per dT) and a summary table of the MPPs.  Shape checks: I-V lines with
// slope -1/R, P-V parabolas peaking at Voc/2, MPP power growing roughly
// quadratically in dT.
#include <cstdio>

#include "teg/module.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
  const double delta_ts[] = {10.0, 20.0, 30.0, 40.0, 50.0};

  std::printf("=== Fig. 1: TGM-199-1.4-0.8 output characteristics ===\n\n");
  std::printf("device: %d couples, alpha=%.4f V/K, R=%.2f ohm @ %.0f C\n\n",
              device.num_couples, device.seebeck_total_v_k(),
              device.internal_resistance_ohm, device.reference_temp_c);

  // (a)+(b): sampled I-V / P-V sweeps.
  for (double dt : delta_ts) {
    const teg::Module module = teg::Module::from_delta_t(device, dt);
    std::printf("-- dT = %.0f K  (Voc=%.3f V, R=%.3f ohm) --\n", dt,
                module.open_circuit_voltage_v(), module.internal_resistance_ohm());
    util::TextTable table({"V (V)", "I (A)", "P (W)"});
    for (const teg::IvPoint& pt : module.iv_sweep(11)) {
      table.begin_row().add(pt.voltage_v, 3).add(pt.current_a, 3).add(pt.power_w, 3);
    }
    std::printf("%s\n", table.render().c_str());
  }

  // MPP summary (the black dots of Fig. 1).
  std::printf("-- maximum power points --\n");
  util::TextTable mpp({"dT (K)", "VMPP (V)", "IMPP (A)", "PMPP (W)"});
  for (double dt : delta_ts) {
    const teg::Module module = teg::Module::from_delta_t(device, dt);
    mpp.begin_row()
        .add(dt, 0)
        .add(module.mpp_voltage_v(), 3)
        .add(module.mpp_current_a(), 3)
        .add(module.mpp_power_w(), 3);
  }
  std::printf("%s\n", mpp.render().c_str());
  std::printf("shape check: PMPP(2x dT) / PMPP(dT) ~ 4 (quadratic, minus R(T) derating)\n");
  const double p20 = teg::Module::from_delta_t(device, 20.0).mpp_power_w();
  const double p40 = teg::Module::from_delta_t(device, 40.0).mpp_power_w();
  std::printf("  measured: %.2fx\n", p40 / p20);
  return 0;
}
