// tegrec_lint CLI — see lint.hpp for the rule catalogue and
// docs/static_analysis.md for the full story (motivating incidents,
// suppression syntax, baseline ratchet).
//
//   tegrec_lint --root <repo> [--baseline <file>] [--update-baseline]
//               [--json]
//   tegrec_lint --list-rules
//
// Exit status: 0 when every finding is baselined (or none exist),
// 1 on non-baselined findings, 2 on usage/IO errors.  Stale baseline
// entries are reported but do not fail the gate; --update-baseline
// rewrites the baseline to exactly the current findings (the ratchet:
// run it after fixing violations to tighten, never to hide new ones).
//
// --json replaces the human-readable report with one JSON object
// ({"findings": [{rule, file, line, message}, ...], ...}) for editor and
// CI integration; exit-code semantics are unchanged.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

void print_rules() {
  std::cout
      << "tegrec_lint rules (suppress with // tegrec-lint: allow(<rule>)):\n"
      << "  determinism      wall clock / ad-hoc RNG banned in src/{core,teg,"
         "sim,thermal,power,predict}\n"
      << "                   (util/runtime_clock.hpp and util/rng.hpp are the "
         "sanctioned wrappers)\n"
      << "  float-eq         ==/!= against floating-point literals; use "
         "util/float_cmp.hpp\n"
      << "  float-tol        |a-b| compared against a bare literal; name the "
         "tolerance\n"
      << "  cache-key        every field of the content-addressed config "
         "structs must appear\n"
      << "                   in src/sim/spec.cpp's canonical-text bindings\n"
      << "  api-io           no console I/O (std::cout/printf family) in "
         "library code\n"
      << "  raw-publish      no raw file publication (std::ofstream / rename "
         "calls) in src/sim;\n"
      << "                   use the atomic door in util/atomic_file.hpp\n"
      << "  using-namespace  no 'using namespace' in headers\n"
      << "  include-guard    headers use #pragma once\n"
      << "  guarded-member   data members of mutex-owning classes in "
         "src/{util,sim} must carry\n"
      << "                   TEGREC_GUARDED_BY, be std::atomic/const, or "
         "justify an allow\n"
      << "  lock-discipline  no raw .lock()/.unlock()/.try_lock() or "
         "std::mutex outside\n"
      << "                   util/mutex.hpp (the annotated RAII door); no "
         ".detach() anywhere\n"
      << "  annotation-drift concurrency-layer headers that name a mutex "
         "must use TEGREC_*\n"
      << "                   thread-safety annotations\n"
      << "\ncache-key covers these structs:\n";
  for (const auto& spec : tegrec::lint::default_struct_specs()) {
    std::cout << "  " << spec.header_path << ": " << spec.struct_name;
    for (const auto& [field, why] : spec.excluded_fields) {
      std::cout << "\n    excluded field '" << field << "': " << why;
    }
    std::cout << "\n";
  }
}

int usage() {
  std::cerr << "usage: tegrec_lint --root <repo-root> [--baseline <file>]\n"
               "                   [--update-baseline] [--json] | "
               "--list-rules\n";
  return 2;
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_findings_json(const std::vector<tegrec::lint::Finding>& findings,
                         const char* indent) {
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::cout << indent << "{\"rule\": \"" << json_escape(f.rule)
              << "\", \"file\": \"" << json_escape(f.file)
              << "\", \"line\": " << f.line << ", \"message\": \""
              << json_escape(f.message) << "\"}"
              << (i + 1 < findings.size() ? ",\n" : "\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string baseline_path;
  bool update_baseline = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "tegrec_lint: unknown argument '" << arg << "'\n";
      return usage();
    }
  }
  if (root.empty()) return usage();

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::ifstream f(baseline_path);
    if (f) {
      std::string content((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
      baseline = tegrec::lint::parse_baseline(content);
    }
    // A missing baseline file is an empty baseline, so a fresh checkout
    // with no baseline is the strictest gate, not an error.
  }

  tegrec::lint::RepoReport report;
  try {
    report = tegrec::lint::run_repo_lint(root, baseline);
  } catch (const std::exception& e) {
    std::cerr << "tegrec_lint: " << e.what() << "\n";
    return 2;
  }

  if (json) {
    std::cout << "{\n  \"files_scanned\": " << report.files_scanned
              << ",\n  \"findings\": [\n";
    print_findings_json(report.findings, "    ");
    std::cout << "  ],\n  \"baselined\": [\n";
    print_findings_json(report.baselined, "    ");
    std::cout << "  ],\n  \"stale_baseline\": [\n";
    std::size_t i = 0;
    for (const auto& key : report.stale_baseline) {
      std::cout << "    \"" << json_escape(key) << "\""
                << (++i < report.stale_baseline.size() ? ",\n" : "\n");
    }
    std::cout << "  ]\n}\n";
  } else {
    for (const auto& f : report.findings) {
      std::cout << f.file;
      if (f.line > 0) std::cout << ":" << f.line;
      std::cout << ": [" << f.rule << "] " << f.message << "\n";
    }
    for (const auto& key : report.stale_baseline) {
      std::cout << "stale baseline entry (fixed? tighten the ratchet by "
                   "removing it): "
                << key << "\n";
    }
  }

  if (update_baseline && !baseline_path.empty()) {
    std::ofstream out(baseline_path, std::ios::trunc);
    out << "# tegrec_lint baseline — pre-existing findings the gate "
           "tolerates.\n"
        << "# Regenerate with: tegrec_lint --root . --baseline "
           "tools/lint_baseline.txt --update-baseline\n"
        << "# The ratchet only tightens: fix findings and regenerate; never "
           "add entries by hand to\n"
        << "# sneak new violations past CI.  Format: rule|file|detail.\n";
    for (const auto& f : report.findings) {
      out << tegrec::lint::baseline_key(f) << "\n";
    }
    for (const auto& f : report.baselined) {
      out << tegrec::lint::baseline_key(f) << "\n";
    }
    std::cout << "tegrec_lint: baseline rewritten with "
              << report.findings.size() + report.baselined.size()
              << " entries\n";
    return 0;
  }

  if (!json) {
    std::cout << "tegrec_lint: " << report.files_scanned << " files scanned, "
              << report.findings.size() << " finding(s), "
              << report.baselined.size() << " baselined\n";
  }
  return report.findings.empty() ? 0 : 1;
}
