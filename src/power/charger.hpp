// Charger facade: string -> MPPT -> converter -> battery in one call.
//
// This is the "TEG charger" of Section III.B.  Given the array's current
// series string it finds the operating point (settled MPPT), converts to
// the battery rail, and pushes the energy into the battery.
#pragma once

#include "power/battery.hpp"
#include "power/converter.hpp"
#include "power/mppt.hpp"
#include "teg/string.hpp"

namespace tegrec::power {

class Charger {
 public:
  Charger(const ConverterParams& converter_params, const BatteryParams& battery_params);

  const Converter& converter() const { return converter_; }
  const Battery& battery() const { return battery_; }

  /// Harvests from the string for `dt_s` seconds at the tracked operating
  /// point; returns the operating point used.  Energy lands in battery().
  OperatingPoint harvest(const teg::SeriesString& string, double dt_s);

  /// Post-converter power the charger would extract right now, without
  /// advancing the battery — the quantity reconfiguration algorithms
  /// compare configurations by.
  double extractable_power_w(const teg::SeriesString& string) const;

 private:
  Converter converter_;
  Battery battery_;
};

}  // namespace tegrec::power
