#include "thermal/heat_exchanger.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace tegrec::thermal {
namespace {

StreamConditions nominal() {
  StreamConditions c;
  c.hot_inlet_c = 95.0;
  c.cold_inlet_c = 25.0;
  c.hot_capacity_w_k = 2500.0;
  c.cold_capacity_w_k = 2000.0;
  return c;
}

TEST(Effectiveness, ZeroNtuIsZero) {
  EXPECT_DOUBLE_EQ(crossflow_effectiveness(0.0, 0.5), 0.0);
}

TEST(Effectiveness, CrZeroLimitIsExponential) {
  for (double ntu : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(crossflow_effectiveness(ntu, 0.0), 1.0 - std::exp(-ntu), 1e-12);
  }
}

TEST(Effectiveness, BoundedByUnity) {
  for (double ntu : {0.1, 1.0, 5.0, 20.0}) {
    for (double cr : {0.0, 0.3, 0.7, 1.0}) {
      const double e = crossflow_effectiveness(ntu, cr);
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
}

TEST(Effectiveness, MonotoneInNtu) {
  double prev = 0.0;
  for (double ntu = 0.1; ntu < 6.0; ntu += 0.1) {
    const double e = crossflow_effectiveness(ntu, 0.6);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Effectiveness, DecreasesWithCr) {
  // Higher capacity ratio makes a crossflow exchanger less effective.
  const double lo = crossflow_effectiveness(2.0, 0.2);
  const double hi = crossflow_effectiveness(2.0, 0.9);
  EXPECT_GT(lo, hi);
}

TEST(Effectiveness, InvalidArgsThrow) {
  EXPECT_THROW(crossflow_effectiveness(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(crossflow_effectiveness(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(crossflow_effectiveness(1.0, -0.1), std::invalid_argument);
}

TEST(Solve, EnergyBalance) {
  const HeatExchangerParams params;
  const StreamConditions cond = nominal();
  const HeatExchangerSolution sol = solve(params, cond);
  // Heat lost by the hot stream equals heat gained by the cold stream.
  const double q_hot = cond.hot_capacity_w_k * (cond.hot_inlet_c - sol.hot_outlet_c);
  const double q_cold =
      cond.cold_capacity_w_k * (sol.cold_outlet_c - cond.cold_inlet_c);
  EXPECT_NEAR(q_hot, q_cold, 1e-9);
  EXPECT_NEAR(q_hot, sol.heat_rate_w, 1e-9);
}

TEST(Solve, OutletsBetweenInlets) {
  const HeatExchangerParams params;
  const StreamConditions cond = nominal();
  const HeatExchangerSolution sol = solve(params, cond);
  EXPECT_LT(sol.hot_outlet_c, cond.hot_inlet_c);
  EXPECT_GT(sol.hot_outlet_c, cond.cold_inlet_c);
  EXPECT_GT(sol.cold_outlet_c, cond.cold_inlet_c);
  EXPECT_LT(sol.cold_outlet_c, cond.hot_inlet_c);
  EXPECT_GT(sol.cold_mean_c, cond.cold_inlet_c);
}

TEST(Solve, NoTemperatureDifferenceNoHeat) {
  const HeatExchangerParams params;
  StreamConditions cond = nominal();
  cond.hot_inlet_c = cond.cold_inlet_c;
  const HeatExchangerSolution sol = solve(params, cond);
  EXPECT_DOUBLE_EQ(sol.heat_rate_w, 0.0);
}

TEST(Solve, InvalidConditionsThrow) {
  const HeatExchangerParams params;
  StreamConditions cond = nominal();
  cond.hot_capacity_w_k = 0.0;
  EXPECT_THROW(solve(params, cond), std::invalid_argument);
  cond = nominal();
  cond.hot_inlet_c = 20.0;  // below cold inlet
  EXPECT_THROW(solve(params, cond), std::invalid_argument);
}

TEST(TemperatureAt, MatchesEquation1Endpoints) {
  const HeatExchangerParams params;
  const StreamConditions cond = nominal();
  const HeatExchangerSolution sol = solve(params, cond);
  // Eq. (1) at d = 0 gives the hot inlet exactly.
  EXPECT_NEAR(temperature_at(params, cond, sol, 0.0), cond.hot_inlet_c, 1e-12);
  // Large d decays toward the cold mean.
  const double t_end = temperature_at(params, cond, sol, params.tube_length_m);
  EXPECT_GT(t_end, sol.cold_mean_c);
  EXPECT_LT(t_end, cond.hot_inlet_c);
}

TEST(TemperatureAt, ExactExponential) {
  const HeatExchangerParams params;
  const StreamConditions cond = nominal();
  const HeatExchangerSolution sol = solve(params, cond);
  const double d = 1.7;
  const double expected =
      (cond.hot_inlet_c - sol.cold_mean_c) *
          std::exp(-params.k_per_length_w_mk / cond.cold_capacity_w_k * d) +
      sol.cold_mean_c;
  EXPECT_DOUBLE_EQ(temperature_at(params, cond, sol, d), expected);
}

TEST(TemperatureAt, OutOfRangeThrows) {
  const HeatExchangerParams params;
  const StreamConditions cond = nominal();
  const HeatExchangerSolution sol = solve(params, cond);
  EXPECT_THROW(temperature_at(params, cond, sol, -0.1), std::invalid_argument);
  EXPECT_THROW(temperature_at(params, cond, sol, params.tube_length_m + 0.1),
               std::invalid_argument);
}

TEST(TemperatureProfile, StrictlyDecreasingAlongTube) {
  const HeatExchangerParams params;
  const auto profile = temperature_profile(params, nominal(), 100);
  ASSERT_EQ(profile.size(), 100u);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LT(profile[i], profile[i - 1]) << "position " << i;
  }
}

TEST(TemperatureProfile, ZeroCountThrows) {
  EXPECT_THROW(temperature_profile(HeatExchangerParams{}, nominal(), 0),
               std::invalid_argument);
}

// Parameterised sweep: the profile decay factor must track K/Cc as Eq. (1)
// prescribes for several airflow levels.
class ProfileDecay : public ::testing::TestWithParam<double> {};

TEST_P(ProfileDecay, DecayMatchesExponent) {
  const double cold_capacity = GetParam();
  HeatExchangerParams params;
  StreamConditions cond = nominal();
  cond.cold_capacity_w_k = cold_capacity;
  const HeatExchangerSolution sol = solve(params, cond);
  const double t0 = temperature_at(params, cond, sol, 0.0);
  const double t1 = temperature_at(params, cond, sol, params.tube_length_m);
  const double measured = (t1 - sol.cold_mean_c) / (t0 - sol.cold_mean_c);
  const double expected =
      std::exp(-params.k_per_length_w_mk * params.tube_length_m / cold_capacity);
  EXPECT_NEAR(measured, expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Airflows, ProfileDecay,
                         ::testing::Values(500.0, 1000.0, 2000.0, 4000.0, 8000.0));

}  // namespace
}  // namespace tegrec::thermal
