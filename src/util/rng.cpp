#include "util/rng.hpp"

#include <cmath>

namespace tegrec::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::ou_step(double x, double mean, double reversion, double sigma,
                    double dt) {
  const double drift = reversion * (mean - x) * dt;
  const double diffusion = sigma * std::sqrt(dt) * gaussian(0.0, 1.0);
  return x + drift + diffusion;
}

std::vector<double> Rng::gaussian_vector(std::size_t n, double mean,
                                         double stddev) {
  std::vector<double> out(n);
  for (double& x : out) x = gaussian(mean, stddev);
  return out;
}

}  // namespace tegrec::util
