// TEG device (datasheet-level) parameters.
//
// The paper instruments the radiator with Kryotherm TGM-199-1.4-0.8
// bismuth-telluride modules and models each one with Eq. (2):
//
//   E_teg = alpha * dT * N_cpl          (open-circuit EMF)
//   I_teg = E_teg / (R_teg + R_load)
//   P_teg = I_teg^2 * R_load
//
// i.e. a Thevenin source whose EMF is linear in the face temperature
// difference.  We add a mild linear temperature dependence of the internal
// resistance (Bi2Te3 resistivity grows with temperature), which bends the
// P-V peaks slightly as in the published Fig. 1 family of curves.
#pragma once

namespace tegrec::teg {

/// Datasheet constants of one TEG module.
struct DeviceParams {
  int num_couples = 199;                ///< N_cpl thermocouples in series
  double seebeck_v_k_couple = 4.2e-4;   ///< alpha per couple [V/K]
  double internal_resistance_ohm = 1.6; ///< R_teg at reference temperature
  double resistance_temp_coeff = 0.004; ///< dR/R per K of mean temperature
  double reference_temp_c = 25.0;       ///< temperature of the R rating
  double max_delta_t_k = 200.0;         ///< validity bound of the linear model

  /// Total module Seebeck coefficient alpha * N_cpl [V/K].
  double seebeck_total_v_k() const;
  /// Internal resistance at a given module mean temperature [ohm].
  double resistance_at(double mean_temp_c) const;
};

/// Parameters of the TGM-199-1.4-0.8 used throughout the paper.
DeviceParams tgm_199_1_4_0_8();

/// Validates physical plausibility; throws std::invalid_argument otherwise.
void validate(const DeviceParams& params);

}  // namespace tegrec::teg
