// Dense linear algebra primitives used by the prediction subsystem.
//
// The library deliberately implements only what the predictors need:
// a dense row-major matrix, matrix/vector products, Cholesky and QR
// least-squares solvers, and a handful of vector helpers.  Everything is
// double precision; problem sizes are tiny (history windows of tens of
// samples, feature counts below ten), so cache blocking is unnecessary.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace tegrec::util {

/// Dense row-major matrix of doubles.
///
/// Invariants: rows()*cols() == data().size().  Elements are stored
/// contiguously row by row.  All operations check dimensions and throw
/// std::invalid_argument on mismatch.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transposed() const;

  /// Returns *this * other.
  Matrix operator*(const Matrix& other) const;
  /// Returns *this * v (v treated as a column vector).
  std::vector<double> operator*(const std::vector<double>& v) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Extracts row r as a vector.
  std::vector<double> row(std::size_t r) const;
  /// Extracts column c as a vector.
  std::vector<double> col(std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Solves the symmetric positive definite system A x = b via Cholesky
/// factorisation.  Throws std::runtime_error if A is not SPD (within a
/// small numeric tolerance handled by a diagonal jitter retry).
std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b);

/// Solves min_x ||A x - b||_2 by forming the normal equations with a tiny
/// ridge term (A^T A + lambda I) x = A^T b.  Suitable for the small,
/// well-conditioned regression problems in this library.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge = 1e-9);

/// Householder QR least squares: numerically sturdier than the normal
/// equations; used by tests to cross-validate least_squares().
std::vector<double> qr_least_squares(const Matrix& a, const std::vector<double>& b);

// ---- vector helpers ------------------------------------------------------

double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm2(const std::vector<double>& v);
/// y += alpha * x
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);
std::vector<double> scaled(const std::vector<double>& v, double s);

}  // namespace tegrec::util
