#include "thermal/coolant.hpp"

namespace tegrec::thermal {

double FluidProperties::capacity_rate_w_k(double volumetric_flow_m3_s) const {
  return density_kg_m3 * volumetric_flow_m3_s * specific_heat_j_kgk;
}

FluidProperties coolant_glycol50() {
  // 50/50 EG/water near 90 C: rho ~= 1036 kg/m^3, cp ~= 3620 J/(kg K).
  return FluidProperties{1036.0, 3620.0};
}

FluidProperties ambient_air() {
  // Dry air at ~25 C, sea level: rho ~= 1.184 kg/m^3, cp ~= 1006 J/(kg K).
  return FluidProperties{1.184, 1006.0};
}

double lpm_to_m3s(double lpm) { return lpm / 1000.0 / 60.0; }

double m3s_to_lpm(double m3s) { return m3s * 1000.0 * 60.0; }

}  // namespace tegrec::thermal
