// Workload scenario registry: every name materialises, fingerprints are
// stable (golden values), unknown names throw from spec parsing, scenario
// overrides compose, and the physics the names promise actually shows up
// in the traces (cold starts warm up, idle-stop cools between launches).
#include "thermal/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "sim/service.hpp"
#include "sim/spec.hpp"
#include "thermal/trace.hpp"
#include "util/stats.hpp"

namespace tegrec {
namespace {

// ------------------------------------------------------------- registry

TEST(ScenarioRegistry, CatalogIsSortedAndConsistent) {
  const auto& catalog = thermal::scenario_catalog();
  ASSERT_GE(catalog.size(), 5u);
  const std::vector<std::string> names = thermal::scenario_names();
  ASSERT_EQ(names.size(), catalog.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].name, names[i]);
    EXPECT_FALSE(catalog[i].description.empty());
    EXPECT_TRUE(thermal::has_scenario(catalog[i].name));
  }
  EXPECT_FALSE(thermal::has_scenario("no_such_scenario"));
}

TEST(ScenarioRegistry, ExpectedEntriesExist) {
  for (const char* name :
       {"porter_800s", "urban_stop_start", "winter_cold_start",
        "boiler_economiser", "kiln_batch", "alpine_climb"}) {
    EXPECT_TRUE(thermal::has_scenario(name)) << name;
  }
}

TEST(ScenarioRegistry, UnknownNameThrowsListingRegistry) {
  try {
    thermal::scenario("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("porter_800s"), std::string::npos);
  }
}

TEST(ScenarioRegistry, EveryNameMaterialisesATrace) {
  for (const std::string& name : thermal::scenario_names()) {
    thermal::TraceGeneratorConfig config = thermal::scenario(name);
    // Shrink the array, not the schedule: the full workload physics runs,
    // but the per-step module loop stays test-sized.
    config.layout.num_modules = std::min<std::size_t>(
        config.layout.num_modules, 16);
    const thermal::TemperatureTrace trace = thermal::generate_trace(config);
    EXPECT_GT(trace.num_steps(), 100u) << name;
    EXPECT_EQ(trace.num_modules(), config.layout.num_modules) << name;
    for (std::size_t t = 0; t < trace.num_steps(); t += 37) {
      for (double temp : trace.step_temperatures(t)) {
        EXPECT_TRUE(std::isfinite(temp)) << name << " step " << t;
        EXPECT_GT(temp, -60.0) << name;
        EXPECT_LT(temp, 200.0) << name;
      }
    }
  }
}

TEST(ScenarioRegistry, DeterministicResolution) {
  // Resolving the same name twice yields an identical config (spot-checked
  // through the generated trace, which hashes every field that matters).
  thermal::TraceGeneratorConfig a = thermal::scenario("urban_stop_start");
  thermal::TraceGeneratorConfig b = thermal::scenario("urban_stop_start");
  a.layout.num_modules = b.layout.num_modules = 8;
  const auto ta = thermal::generate_trace(a);
  const auto tb = thermal::generate_trace(b);
  ASSERT_EQ(ta.num_steps(), tb.num_steps());
  EXPECT_DOUBLE_EQ(ta.temperature_c(ta.num_steps() / 2, 3),
                   tb.temperature_c(tb.num_steps() / 2, 3));
}

// ------------------------------------------------------- spec integration

sim::ExperimentSpec scenario_spec(const std::string& name) {
  sim::ExperimentSpec spec;
  spec.trace = sim::scenario_source(name);
  return spec;
}

TEST(ScenarioSpec, GoldenFingerprints) {
  // Content addresses of the scenario comparison specs.  These are golden
  // on purpose: they move only when the canonical serialisation, the
  // schema version, or a scenario's physics changes — all of which must
  // invalidate every cached result built from the name.  Update the
  // constants deliberately when that happens.
  EXPECT_EQ(scenario_spec("porter_800s").fingerprint(),
            "4fbc85e56ecbf7714e204b9e84cad880");
  EXPECT_EQ(scenario_spec("urban_stop_start").fingerprint(),
            "cfccca2a59080fcb43b5616d86ecccaa");
  EXPECT_EQ(scenario_spec("winter_cold_start").fingerprint(),
            "f047f4c8e029b8f18cd6b895806c8eb6");
  EXPECT_EQ(scenario_spec("boiler_economiser").fingerprint(),
            "734a012691ab62f7556edb10cd6a4b24");
  EXPECT_EQ(scenario_spec("kiln_batch").fingerprint(),
            "8d5523679c92c877ea9dc9afb60e34c2");
}

TEST(ScenarioSpec, FingerprintsStableAcrossProcessesAndDistinct) {
  std::vector<std::string> prints;
  for (const std::string& name : thermal::scenario_names()) {
    const sim::ExperimentSpec spec = scenario_spec(name);
    EXPECT_EQ(spec.fingerprint(), scenario_spec(name).fingerprint()) << name;
    prints.push_back(spec.fingerprint());
  }
  std::sort(prints.begin(), prints.end());
  EXPECT_EQ(std::unique(prints.begin(), prints.end()), prints.end());
}

TEST(ScenarioSpec, CanonicalTextRoundTrips) {
  for (const std::string& name : thermal::scenario_names()) {
    const sim::ExperimentSpec spec = scenario_spec(name);
    const std::string text = spec.canonical_text();
    EXPECT_NE(text.find("trace.scenario = " + name), std::string::npos) << name;
    const sim::ExperimentSpec back = sim::ExperimentSpec::from_text(text);
    EXPECT_EQ(back.trace.scenario_name, name);
    EXPECT_EQ(back.canonical_text(), text) << name;
    EXPECT_EQ(back.fingerprint(), spec.fingerprint()) << name;
  }
}

TEST(ScenarioSpec, UnknownScenarioThrowsFromParsing) {
  EXPECT_THROW(sim::ExperimentSpec::from_text(
                   "kind = comparison\ntrace.scenario = not_a_scenario\n"),
               std::invalid_argument);
  EXPECT_THROW(sim::scenario_source("not_a_scenario"), std::invalid_argument);
}

TEST(ScenarioSpec, HandSetUnregisteredNameFailsAtSerialisation) {
  // A scenario_name set by hand (bypassing scenario_source) must fail when
  // the spec is serialised, not later when someone re-parses the canonical
  // text — a fingerprint for an unresolvable address must never be minted.
  sim::ExperimentSpec spec;
  spec.trace.scenario_name = "my_private_workload";
  EXPECT_THROW(spec.canonical_text(), std::invalid_argument);
  EXPECT_THROW(spec.fingerprint(), std::invalid_argument);
}

TEST(ScenarioSpec, EmptyScenarioValueThrows) {
  // `trace.scenario =` with nothing after it (deleted name, templating
  // variable that expanded to empty) must not silently run the default
  // workload — same strictness as an unknown key.
  EXPECT_THROW(
      sim::ExperimentSpec::from_text("kind = comparison\ntrace.scenario =\n"),
      std::invalid_argument);
}

TEST(ScenarioSpec, ScenarioRequiresGeneratedSource) {
  EXPECT_THROW(sim::ExperimentSpec::from_text(
                   "kind = comparison\ntrace.source = csv\n"
                   "trace.scenario = porter_800s\ntrace.csv.path = x.csv\n"),
               std::invalid_argument);
}

TEST(ScenarioSpec, GenKeysOverrideOnTopOfScenario) {
  const sim::ExperimentSpec spec = sim::ExperimentSpec::from_text(
      "kind = comparison\ntrace.scenario = kiln_batch\n"
      "trace.gen.layout.num_modules = 8\n");
  // The override applies...
  EXPECT_EQ(spec.trace.generator.layout.num_modules, 8u);
  // ...while the scenario's schedule survives underneath it.
  const thermal::TraceGeneratorConfig reference =
      thermal::scenario("kiln_batch");
  ASSERT_EQ(spec.trace.generator.segments.size(), reference.segments.size());
  EXPECT_EQ(spec.trace.generator.segments[1].kind,
            thermal::DriveSegment::Kind::kBatchCycle);
  EXPECT_DOUBLE_EQ(spec.trace.generator.segments[1].process_power_kw,
                   reference.segments[1].process_power_kw);
  // And the overridden spec fingerprints differently from the pure one.
  EXPECT_NE(spec.fingerprint(), scenario_spec("kiln_batch").fingerprint());
}

TEST(ScenarioSpec, SecondSubmitIsACacheHit) {
  sim::ExperimentSpec spec = scenario_spec("urban_stop_start");
  spec.trace.generator.layout.num_modules = 8;  // keep the test quick
  spec.comparison.include_inor = false;
  spec.comparison.include_ehtr = false;
  sim::ServiceOptions options;
  options.num_workers = 1;
  sim::ExperimentService service(options);
  const auto first = service.submit(spec).wait();
  const sim::JobHandle again = service.submit(spec);
  const auto second = again.wait();
  EXPECT_TRUE(again.from_cache());
  EXPECT_EQ(service.executions(), 1u);
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(first->comparison.runs[0].energy_output_j,
                   second->comparison.runs[0].energy_output_j);
}

// ------------------------------------------------------- workload physics

TEST(ScenarioPhysics, ColdStartBeginsBelowThermostatAndWarms) {
  thermal::TraceGeneratorConfig config = thermal::scenario("winter_cold_start");
  config.layout.num_modules = 16;
  const thermal::TemperatureTrace trace = thermal::generate_trace(config);

  const auto mean_at = [&trace](std::size_t step) {
    const auto temps = trace.step_temperatures(step);
    return util::mean(temps);
  };
  // A cold-soaked loop starts way below thermostat-open...
  EXPECT_LT(mean_at(0), config.engine.thermostat_open_c - 10.0);
  EXPECT_NEAR(mean_at(0), config.ambient.base_c, 2.0);
  // ...and the quarter-window means warm monotonically across the trace.
  const std::size_t quarter = trace.num_steps() / 4;
  double prev = -1e9;
  for (int q = 0; q < 4; ++q) {
    double sum = 0.0;
    for (std::size_t t = static_cast<std::size_t>(q) * quarter;
         t < static_cast<std::size_t>(q + 1) * quarter; ++t) {
      sum += mean_at(t);
    }
    const double window = sum / static_cast<double>(quarter);
    EXPECT_GT(window, prev) << "quarter " << q;
    prev = window;
  }
}

TEST(ScenarioPhysics, StopStartCoolsBetweenLaunches) {
  thermal::TraceGeneratorConfig config = thermal::scenario("urban_stop_start");
  config.layout.num_modules = 16;
  const thermal::TemperatureTrace trace = thermal::generate_trace(config);
  // Idle-stop dwells must actually pull the surface temperature down:
  // count mean-temperature decreases and require a substantial share (a
  // plain warm urban drive trends monotonically warmer or flat).
  std::size_t dips = 0;
  double prev = util::mean(trace.step_temperatures(0));
  double min_c = prev;
  double max_c = prev;
  for (std::size_t t = 1; t < trace.num_steps(); ++t) {
    const double m = util::mean(trace.step_temperatures(t));
    if (m < prev - 1e-3) ++dips;
    prev = m;
    min_c = std::min(min_c, m);
    max_c = std::max(max_c, m);
  }
  EXPECT_GT(dips, trace.num_steps() / 5);
  EXPECT_GT(max_c - min_c, 3.0);  // the sawtooth has real amplitude
}

TEST(ScenarioPhysics, IndustrialScenariosHoldTheirControlBand) {
  for (const char* name : {"boiler_economiser", "kiln_batch"}) {
    thermal::TraceGeneratorConfig config = thermal::scenario(name);
    config.layout.num_modules = 16;
    const thermal::TemperatureTrace trace = thermal::generate_trace(config);
    // Process plants idle hot: the hottest module must stay in a plausible
    // band around the process-control window for the whole schedule.
    for (std::size_t t = 0; t < trace.num_steps(); t += 23) {
      const auto temps = trace.step_temperatures(t);
      EXPECT_GT(util::max_value(temps), 40.0) << name << " step " << t;
      EXPECT_LT(util::max_value(temps), 130.0) << name << " step " << t;
    }
  }
}

}  // namespace
}  // namespace tegrec
