// Deterministic fault injection for crash-safety testing.
//
// The spool queue, the artifact store, and the atomic-write door all have
// failure paths (torn write, crash between write and rename, ENOSPC,
// stale lease) that real hardware exercises rarely and nondeterministically.
// A FaultInjector makes them first-class test inputs: code under test asks
// `should_fire(site)` at each named injection point, and a fault fires
// when the site's per-injector hit counter lands inside an armed range.
// Scheduling is purely count-based — seeded from configuration, never from
// wall clock or ambient randomness (the repo's determinism lint applies) —
// so a failing fault-matrix test replays identically every run.
//
// Sites are dotted lowercase names ("artifact.write_fail",
// "spool.heartbeat.drop").  The config grammar arms hit ranges:
//
//   site@N        fire on exactly the Nth hit (1-based)
//   site@N-M      fire on hits N..M inclusive
//   site@N-       fire on every hit from the Nth on
//   site@*        fire on every hit
//
// with entries separated by ',' or ';', e.g.
// "artifact.write_fail@1-2;artifact.torn@4".  The process-wide injector
// (process_faults()) is armed once from the TEGREC_FAULTS environment
// variable, so multi-process smoke tests can inject faults into a worker
// without recompiling; unit tests construct their own injectors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tegrec::util {

class FaultInjector {
 public:
  /// No faults armed; every should_fire() is false (but still counted).
  FaultInjector() = default;

  /// Arms from a config string (grammar above).  Throws
  /// std::invalid_argument on malformed entries — a typo in a fault plan
  /// must not silently run a fault-free test.
  explicit FaultInjector(const std::string& config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms hits [first, last] (1-based, inclusive) of `site`.
  void arm(const std::string& site, std::uint64_t first, std::uint64_t last);

  /// Counts one hit of `site` and reports whether an armed range covers
  /// it.  Thread-safe; hit order across racing threads is the caller's
  /// scheduling, so deterministic tests drive sites single-threaded.
  bool should_fire(const std::string& site);

  /// Hits recorded for `site` so far (0 for a site never hit).
  std::uint64_t hits(const std::string& site) const;

  /// True when at least one site has an armed range (production runs with
  /// nothing armed skip fault bookkeeping entirely).
  bool armed() const;

 private:
  struct Site {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    std::uint64_t hits = 0;
  };
  mutable Mutex mutex_;
  std::map<std::string, Site> sites_ TEGREC_GUARDED_BY(mutex_);
};

/// The process-wide injector, armed once from the TEGREC_FAULTS
/// environment variable (empty/unset = nothing armed).  Every production
/// code path that takes an optional `FaultInjector*` falls back to this,
/// so external process smoke tests can inject faults via the environment.
FaultInjector& process_faults();

}  // namespace tegrec::util
