// Known-bad fixture: a header with no include guard at all.
inline int thrice(int x) { return 3 * x; }
