#include "thermal/trace.hpp"

#include <cstdio>
#include <gtest/gtest.h>

namespace tegrec::thermal {
namespace {

TemperatureTrace tiny_trace() {
  TemperatureTrace trace(0.5, 3);
  trace.append({50.0, 40.0, 30.0}, 25.0);
  trace.append({51.0, 41.0, 31.0}, 25.0);
  trace.append({52.0, 42.0, 32.0}, 26.0);
  return trace;
}

TEST(TemperatureTrace, AppendAndAccess) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.num_steps(), 3u);
  EXPECT_EQ(trace.num_modules(), 3u);
  EXPECT_DOUBLE_EQ(trace.temperature_c(1, 2), 31.0);
  EXPECT_DOUBLE_EQ(trace.ambient_c(2), 26.0);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 1.5);
}

TEST(TemperatureTrace, StepTemperaturesAndDeltaT) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.step_temperatures(0), (std::vector<double>{50.0, 40.0, 30.0}));
  EXPECT_EQ(trace.step_delta_t(2), (std::vector<double>{26.0, 16.0, 6.0}));
}

TEST(TemperatureTrace, DeltaTClampedAtZero) {
  TemperatureTrace trace(1.0, 2);
  trace.append({24.0, 30.0}, 25.0);  // first module below ambient
  const auto dt = trace.step_delta_t(0);
  EXPECT_DOUBLE_EQ(dt[0], 0.0);
  EXPECT_DOUBLE_EQ(dt[1], 5.0);
}

TEST(TemperatureTrace, ModuleSeries) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.module_series(1), (std::vector<double>{40.0, 41.0, 42.0}));
  EXPECT_THROW(trace.module_series(3), std::out_of_range);
}

TEST(TemperatureTrace, StepAtTime) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.step_at_time(-1.0), 0u);
  EXPECT_EQ(trace.step_at_time(0.0), 0u);
  EXPECT_EQ(trace.step_at_time(0.6), 1u);
  EXPECT_EQ(trace.step_at_time(100.0), 2u);  // clamped
}

TEST(TemperatureTrace, Slice) {
  const TemperatureTrace trace = tiny_trace();
  const TemperatureTrace mid = trace.slice(0.5, 1.0);
  EXPECT_EQ(mid.num_steps(), 1u);
  EXPECT_DOUBLE_EQ(mid.temperature_c(0, 0), 51.0);
  EXPECT_THROW(trace.slice(1.0, 0.5), std::invalid_argument);
}

TEST(TemperatureTrace, WrongWidthAppendThrows) {
  TemperatureTrace trace(1.0, 2);
  EXPECT_THROW(trace.append({1.0}, 25.0), std::invalid_argument);
}

TEST(TemperatureTrace, InvalidConstructionThrows) {
  EXPECT_THROW(TemperatureTrace(0.0, 3), std::invalid_argument);
  EXPECT_THROW(TemperatureTrace(1.0, 0), std::invalid_argument);
}

TEST(TemperatureTrace, OutOfRangeAccessThrows) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_THROW(trace.temperature_c(3, 0), std::out_of_range);
  EXPECT_THROW(trace.temperature_c(0, 3), std::out_of_range);
  EXPECT_THROW(trace.ambient_c(3), std::out_of_range);
}

TEST(TemperatureTrace, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tegrec_trace_test.csv";
  const TemperatureTrace trace = tiny_trace();
  trace.save_csv(path);
  const TemperatureTrace back = TemperatureTrace::load_csv(path);
  ASSERT_EQ(back.num_steps(), trace.num_steps());
  ASSERT_EQ(back.num_modules(), trace.num_modules());
  EXPECT_NEAR(back.dt_s(), trace.dt_s(), 1e-9);
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    EXPECT_NEAR(back.ambient_c(t), trace.ambient_c(t), 1e-9);
    for (std::size_t m = 0; m < trace.num_modules(); ++m) {
      EXPECT_NEAR(back.temperature_c(t, m), trace.temperature_c(t, m), 1e-9);
    }
  }
  std::remove(path.c_str());
}

class GeneratedTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new TemperatureTrace(default_experiment_trace(99));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static TemperatureTrace* trace_;
};

TemperatureTrace* GeneratedTraceTest::trace_ = nullptr;

TEST_F(GeneratedTraceTest, DefaultShape) {
  EXPECT_EQ(trace_->num_modules(), 100u);
  EXPECT_NEAR(trace_->duration_s(), 800.0, 1.0);
  EXPECT_DOUBLE_EQ(trace_->dt_s(), 0.5);
}

TEST_F(GeneratedTraceTest, SpatialProfileDecreasesOnAverage) {
  // Entrance modules must run hotter than exit modules at every step.
  for (std::size_t t = 0; t < trace_->num_steps(); t += 100) {
    const auto temps = trace_->step_temperatures(t);
    EXPECT_GT(temps.front(), temps.back() + 5.0) << "step " << t;
  }
}

TEST_F(GeneratedTraceTest, TemperaturesPhysicallyPlausible) {
  for (std::size_t t = 0; t < trace_->num_steps(); t += 37) {
    const auto temps = trace_->step_temperatures(t);
    for (double temp : temps) {
      EXPECT_GT(temp, 25.0);
      EXPECT_LT(temp, 110.0);
    }
  }
}

TEST_F(GeneratedTraceTest, DeterministicBySeed) {
  const TemperatureTrace again = default_experiment_trace(99);
  EXPECT_DOUBLE_EQ(again.temperature_c(100, 50), trace_->temperature_c(100, 50));
  const TemperatureTrace other = default_experiment_trace(100);
  EXPECT_NE(other.temperature_c(100, 50), trace_->temperature_c(100, 50));
}

TEST(GenerateTrace, SampleCoarserThanSimRequired) {
  TraceGeneratorConfig config;
  config.sample_dt_s = 0.05;
  config.sim_dt_s = 0.1;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::thermal
