// Cached O(groups) evaluation of array configurations.
//
// TegArray::build_string() aggregates a candidate configuration by copying
// Module objects into fresh ParallelGroup containers — O(N) allocations and
// copies per candidate, which dominates EHTR's ~N-candidate scoring loop and
// the simulator's per-step evaluation.  The only per-module quantities those
// aggregates actually consume are the conductance 1/R_i and the Norton
// current Voc_i/R_i (see ParallelGroup's constructor); both are additive
// over a parallel group, so prefix sums computed once per temperature
// distribution turn any contiguous group's Thevenin equivalent into two
// subtractions and a full ArrayConfig's port model into O(num_groups) work
// with zero heap allocation.
//
// The per-group arithmetic (two prefix lookups, a subtraction, a division,
// a multiplication per prefix array) is data-parallel across group
// boundaries, so the hot span overload computes group port models in fixed
// blocks through a runtime-dispatched SIMD kernel (AVX2 gathers on x86-64)
// with a scalar block kernel kept as the oracle.  Both kernels perform the
// identical exactly-rounded IEEE operations per group and feed one shared
// sequential accumulation loop, so every kernel choice returns bit-identical
// port models — enforced by tests/test_ehtr_warm.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "teg/array.hpp"
#include "teg/config.hpp"

namespace tegrec::teg {

/// Thevenin port model V(I) = voc_v - I * r_ohm of a group or string.
struct LinearSource {
  double voc_v = 0.0;
  double r_ohm = 0.0;

  double mpp_current_a() const { return voc_v / (2.0 * r_ohm); }
  double mpp_voltage_v() const { return voc_v / 2.0; }
  double mpp_power_w() const { return voc_v * voc_v / (4.0 * r_ohm); }
};

/// Which block kernel evaluates per-group port models in the span overload.
enum class ScoringKernel {
  kAuto,    ///< SIMD when the host CPU supports it, scalar otherwise
  kScalar,  ///< portable scalar blocks — the reference oracle
  kSimd,    ///< vectorised blocks (AVX2); bit-identical to kScalar
};

class ArrayEvaluator {
 public:
  /// Snapshots the array's per-module aggregates; the evaluator owns its
  /// data and stays valid after the TegArray is destroyed.
  explicit ArrayEvaluator(const TegArray& array);

  std::size_t size() const { return conductance_prefix_.size() - 1; }

  /// True when the host CPU exposes the vector ISA the SIMD kernel needs
  /// (AVX2 on x86-64; false elsewhere).  Decided once at runtime — the
  /// binary carries both kernels.
  static bool simd_available();

  /// Selects the block kernel.  kSimd on a host without SIMD support
  /// throws std::invalid_argument; kAuto (the default) never throws.
  void set_kernel(ScoringKernel kernel);
  ScoringKernel kernel() const { return kernel_; }

  /// Thevenin equivalent of modules [begin, end) wired in parallel.
  LinearSource group_equivalent(std::size_t begin, std::size_t end) const;

  /// Port model of a configuration's series string of parallel groups.
  LinearSource string_equivalent(const ArrayConfig& config) const;

  /// Same port model from raw group starts (first must be 0, strictly
  /// increasing, all < size(); the last group runs to the end).  This is
  /// the streaming hot path: EHTR scores candidates straight out of the
  /// partition backtrack without materialising an ArrayConfig per
  /// candidate.  Group values are computed block-wise by the selected
  /// kernel and accumulated sequentially in group order, so the result is
  /// bit-identical for every kernel and to the ArrayConfig overload.
  LinearSource string_equivalent(std::span<const std::size_t> group_starts) const;

  /// Ideal-charger MPP power of a configuration (closed form).
  double mpp_power_w(const ArrayConfig& config) const {
    return string_equivalent(config).mpp_power_w();
  }

  /// Sum of per-module MPPs: the P_ideal normaliser (config-independent).
  double ideal_power_w() const { return ideal_power_w_; }

  /// Total module conductance sum(1/R_i) — the whole-array prefix value.
  /// Feeds EHTR's warm-start score bound (r_string >= n^2 / conductance
  /// for any n-group partition, by AM-HM).
  double total_conductance_s() const { return conductance_prefix_.back(); }

 private:
  std::vector<double> conductance_prefix_;  ///< prefix sums of 1/R_i
  std::vector<double> norton_prefix_;       ///< prefix sums of Voc_i/R_i
  double ideal_power_w_ = 0.0;
  ScoringKernel kernel_ = ScoringKernel::kAuto;
};

}  // namespace tegrec::teg
