#include "thermal/ambient.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace tegrec::thermal {

std::vector<double> ambient_series(const AmbientProfile& profile,
                                   std::size_t num_steps, double dt_s,
                                   std::uint64_t seed) {
  if (num_steps == 0) throw std::invalid_argument("ambient_series: zero steps");
  if (dt_s <= 0.0) throw std::invalid_argument("ambient_series: dt <= 0");
  if (profile.noise_sigma_c < 0.0) {
    throw std::invalid_argument("ambient_series: negative noise sigma");
  }
  if (profile.sine_period_s <= 0.0) {
    throw std::invalid_argument("ambient_series: non-positive sine period");
  }
  util::Rng rng(seed);
  const double ou_sigma =
      profile.noise_sigma_c * std::sqrt(2.0 * profile.noise_reversion);
  double noise = 0.0;
  std::vector<double> out(num_steps);
  for (std::size_t k = 0; k < num_steps; ++k) {
    const double t = static_cast<double>(k) * dt_s;
    double value = profile.base_c + profile.drift_c_per_hour * t / 3600.0 +
                   profile.sine_amplitude_c *
                       std::sin(2.0 * M_PI * t / profile.sine_period_s);
    for (const AmbientStepEvent& ev : profile.steps) {
      if (t >= ev.time_s) value += ev.delta_c;
    }
    if (profile.noise_sigma_c > 0.0) {
      noise = rng.ou_step(noise, 0.0, profile.noise_reversion, ou_sigma, dt_s);
      value += noise;
    }
    out[k] = value;
  }
  return out;
}

}  // namespace tegrec::thermal
