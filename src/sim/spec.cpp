#include "sim/spec.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "thermal/scenario.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"

namespace tegrec::sim {

namespace {

// --------------------------------------------------------------- FieldIo
//
// One binding definition drives both directions: in emit mode each field
// appends a "key = value" line; in parse mode it looks the key up in the
// pre-split line map (missing keys keep the bound default, so sparse
// hand-written spec files work) and consumes it, so leftovers can be
// reported as unknown keys.  Fields marked exec_* are execution hints
// (thread counts): serialised and parsed like any other field, but
// skipped when emitting the fingerprint text, because they provably do
// not affect results (the library's bit-identical-for-any-thread-count
// guarantee) and must not fragment the cache.
class FieldIo {
 public:
  // Emit mode.
  explicit FieldIo(bool include_exec)
      : parsing_(false), include_exec_(include_exec) {}
  // Parse mode.
  explicit FieldIo(std::map<std::string, std::string> values)
      : parsing_(true), include_exec_(true), values_(std::move(values)) {}

  bool parsing() const { return parsing_; }

  class Scope {
   public:
    Scope(FieldIo& io, const std::string& prefix)
        : io_(io), saved_(io.prefix_) {
      io_.prefix_ += prefix;
    }
    ~Scope() { io_.prefix_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FieldIo& io_;
    std::string saved_;
  };

  void field(const std::string& key, double& v) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) v = util::parse_double(*raw);
      return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    emit(key, buffer);
  }

  void field(const std::string& key, bool& v) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) v = util::parse_bool(*raw);
      return;
    }
    emit(key, v ? "1" : "0");
  }

  void field(const std::string& key, int& v) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) {
        v = static_cast<int>(util::parse_i64(*raw));
      }
      return;
    }
    emit(key, std::to_string(v));
  }

  /// One overload for every unsigned field (size_t and uint64_t are the
  /// same type on LP64, so separate overloads would collide there).
  template <typename T,
            std::enable_if_t<std::is_unsigned_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void field(const std::string& key, T& v) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) {
        v = static_cast<T>(util::parse_u64(*raw));
      }
      return;
    }
    emit(key, std::to_string(v));
  }

  void field(const std::string& key, std::string& v) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) v = *raw;
      return;
    }
    emit(key, v);
  }

  /// Comma-joined double list (one line, order-preserving).
  void field(const std::string& key, std::vector<double>& v) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) {
        v.clear();
        std::string token;
        std::istringstream is(*raw);
        while (std::getline(is, token, ',')) {
          v.push_back(util::parse_double(token));
        }
      }
      return;
    }
    std::string joined;
    char buffer[40];
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::snprintf(buffer, sizeof(buffer), "%.17g", v[i]);
      if (i > 0) joined += ',';
      joined += buffer;
    }
    emit(key, joined);
  }

  template <typename Enum>
  void enum_field(const std::string& key, Enum& v,
                  const std::vector<std::pair<Enum, const char*>>& names) {
    if (parsing_) {
      if (const std::string* raw = lookup(key)) {
        for (const auto& [value, name] : names) {
          if (*raw == name) {
            v = value;
            return;
          }
        }
        throw std::invalid_argument("experiment spec: bad value '" + *raw +
                                    "' for key '" + prefix_ + key + "'");
      }
      return;
    }
    for (const auto& [value, name] : names) {
      if (v == value) {
        emit(key, name);
        return;
      }
    }
    throw std::logic_error("experiment spec: unmapped enum for key '" + key +
                           "'");
  }

  /// Execution-hint variants: identical except excluded from the
  /// fingerprint emission.
  template <typename T>
  void exec_field(const std::string& key, T& v) {
    if (!parsing_ && !include_exec_) return;
    field("exec." + key, v);
  }

  /// Parse mode: whether the key is present (and not yet consumed).  Lets
  /// a binding distinguish "absent, keep the default" from "present but
  /// empty", which for most fields is a parse error downstream anyway but
  /// for strings would silently alias the default.
  bool present(const std::string& key) const {
    return values_.contains(prefix_ + key);
  }

  std::string take_text() { return std::move(text_); }

  /// Parse mode: every key must have been consumed by now.
  void finish_parse() const {
    if (values_.empty()) return;
    std::string keys;
    for (const auto& [key, value] : values_) {
      (void)value;
      if (!keys.empty()) keys += ", ";
      keys += "'" + key + "'";
    }
    throw std::invalid_argument("experiment spec: unknown key(s) " + keys);
  }

 private:
  void emit(const std::string& key, const std::string& value) {
    text_ += prefix_;
    text_ += key;
    text_ += " = ";
    text_ += value;
    text_ += '\n';
  }

  const std::string* lookup(const std::string& key) {
    const auto it = values_.find(prefix_ + key);
    if (it == values_.end()) return nullptr;
    consumed_ = it->second;  // keep the string alive past erase
    values_.erase(it);
    return &consumed_;
  }

  bool parsing_;
  bool include_exec_;
  std::string prefix_;
  std::string text_;
  std::map<std::string, std::string> values_;
  std::string consumed_;
};

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::map<std::string, std::string> split_lines(const std::string& text) {
  std::map<std::string, std::string> values;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("experiment spec: line " +
                                  std::to_string(line_no) +
                                  " is not 'key = value': '" + stripped + "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("experiment spec: empty key on line " +
                                  std::to_string(line_no));
    }
    if (!values.emplace(key, value).second) {
      throw std::invalid_argument("experiment spec: duplicate key '" + key +
                                  "'");
    }
  }
  return values;
}

// -------------------------------------------------------------- bindings

const std::vector<std::pair<ExperimentKind, const char*>> kKindNames = {
    {ExperimentKind::kComparison, "comparison"},
    {ExperimentKind::kMonteCarlo, "montecarlo"},
    {ExperimentKind::kSweep, "sweep"}};

const std::vector<std::pair<TraceSource::Kind, const char*>> kSourceNames = {
    {TraceSource::Kind::kGenerated, "generated"},
    {TraceSource::Kind::kCsvFile, "csv"},
    {TraceSource::Kind::kInline, "inline"}};

// Segment kind names come from thermal::segment_kind_names(): one table
// shared with to_string, so a new kind cannot reach the enum without
// reaching the spec vocabulary.

void bind(FieldIo& io, thermal::RadiatorLayout& p) {
  io.field("num_modules", p.num_modules);
  io.field("surface_coupling", p.surface_coupling);
  io.field("exchanger.k_per_length_w_mk", p.exchanger.k_per_length_w_mk);
  io.field("exchanger.tube_length_m", p.exchanger.tube_length_m);
}

void bind(FieldIo& io, thermal::EngineThermalParams& p) {
  io.field("thermal_mass_j_k", p.thermal_mass_j_k);
  io.field("heat_to_coolant_fraction", p.heat_to_coolant_fraction);
  io.field("thermostat_open_c", p.thermostat_open_c);
  io.field("thermostat_full_c", p.thermostat_full_c);
  io.field("thermostat_leak", p.thermostat_leak);
  io.field("pump_flow_idle_lpm", p.pump_flow_idle_lpm);
  io.field("pump_flow_max_lpm", p.pump_flow_max_lpm);
  io.field("fan_air_speed_ms", p.fan_air_speed_ms);
  io.field("fan_on_c", p.fan_on_c);
  io.field("radiator_face_area_m2", p.radiator_face_area_m2);
  io.field("max_air_speed_ms", p.max_air_speed_ms);
  io.field("initial_coolant_c", p.initial_coolant_c);
  io.field("ambient_c", p.ambient_c);
  io.field("temp_noise_c", p.temp_noise_c);
  io.field("flow_noise_lpm", p.flow_noise_lpm);
  io.field("process_noise_c", p.process_noise_c);
  io.field("process_noise_reversion", p.process_noise_reversion);
}

void bind(FieldIo& io, thermal::VehicleParams& p) {
  io.field("mass_kg", p.mass_kg);
  io.field("frontal_area_m2", p.frontal_area_m2);
  io.field("drag_coefficient", p.drag_coefficient);
  io.field("rolling_resistance", p.rolling_resistance);
  io.field("air_density_kg_m3", p.air_density_kg_m3);
  io.field("driveline_efficiency", p.driveline_efficiency);
  io.field("idle_power_kw", p.idle_power_kw);
  io.field("max_engine_power_kw", p.max_engine_power_kw);
}

void bind(FieldIo& io, thermal::AmbientProfile& p) {
  io.field("base_c", p.base_c);
  io.field("drift_c_per_hour", p.drift_c_per_hour);
  io.field("sine_amplitude_c", p.sine_amplitude_c);
  io.field("sine_period_s", p.sine_period_s);
  io.field("noise_sigma_c", p.noise_sigma_c);
  io.field("noise_reversion", p.noise_reversion);
  std::size_t num_steps = p.steps.size();
  io.field("num_steps", num_steps);
  // resize, not assign: entries the file does not mention keep the base
  // config's values (the library defaults, or the resolved scenario when
  // trace.scenario set one) — the same missing-keys-keep-defaults rule
  // scalar fields follow.  Entries beyond the base count start fresh.
  if (io.parsing()) p.steps.resize(num_steps);
  for (std::size_t i = 0; i < num_steps; ++i) {
    FieldIo::Scope step(io, "step." + std::to_string(i) + ".");
    io.field("time_s", p.steps[i].time_s);
    io.field("delta_c", p.steps[i].delta_c);
  }
}

void bind(FieldIo& io, thermal::TraceGeneratorConfig& g, bool pin_seed) {
  {
    FieldIo::Scope layout(io, "layout.");
    bind(io, g.layout);
  }
  {
    FieldIo::Scope engine(io, "engine.");
    bind(io, g.engine);
  }
  {
    FieldIo::Scope vehicle(io, "vehicle.");
    bind(io, g.vehicle);
  }
  {
    FieldIo::Scope ambient(io, "ambient.");
    bind(io, g.ambient);
  }
  std::size_t num_segments = g.segments.size();
  io.field("num_segments", num_segments);
  // resize, not assign — see the ambient steps binding above.
  if (io.parsing()) g.segments.resize(num_segments);
  for (std::size_t i = 0; i < num_segments; ++i) {
    FieldIo::Scope segment(io, "segment." + std::to_string(i) + ".");
    io.enum_field("kind", g.segments[i].kind, thermal::segment_kind_names());
    io.field("duration_s", g.segments[i].duration_s);
    io.field("target_speed_kmh", g.segments[i].target_speed_kmh);
    io.field("grade_percent", g.segments[i].grade_percent);
    io.field("process_power_kw", g.segments[i].process_power_kw);
    io.field("process_power_end_kw", g.segments[i].process_power_end_kw);
    io.field("period_s", g.segments[i].period_s);
  }
  io.field("sample_dt_s", g.sample_dt_s);
  io.field("sim_dt_s", g.sim_dt_s);
  io.field("surface_time_constant_s", g.surface_time_constant_s);
  // A Monte-Carlo engine overwrites the base seed per sample, so it is
  // immaterial to the result; pin it in the canonical text so base
  // configs differing only in seed share one cache entry.
  std::uint64_t seed = pin_seed ? 0 : g.seed;
  io.field("seed", seed);
  if (io.parsing()) g.seed = seed;
}

void bind(FieldIo& io, teg::DeviceParams& p) {
  io.field("num_couples", p.num_couples);
  io.field("seebeck_v_k_couple", p.seebeck_v_k_couple);
  io.field("internal_resistance_ohm", p.internal_resistance_ohm);
  io.field("resistance_temp_coeff", p.resistance_temp_coeff);
  io.field("reference_temp_c", p.reference_temp_c);
  io.field("max_delta_t_k", p.max_delta_t_k);
}

void bind(FieldIo& io, power::ConverterParams& p) {
  io.field("output_voltage_v", p.output_voltage_v);
  io.field("eta_peak", p.eta_peak);
  io.field("voltage_penalty", p.voltage_penalty);
  io.field("fixed_loss_w", p.fixed_loss_w);
  io.field("min_input_v", p.min_input_v);
  io.field("max_input_v", p.max_input_v);
  io.field("max_input_power_w", p.max_input_power_w);
}

void bind(FieldIo& io, power::BatteryParams& p) {
  io.field("capacity_ah", p.capacity_ah);
  io.field("charge_voltage_v", p.charge_voltage_v);
  io.field("max_charge_current_a", p.max_charge_current_a);
  io.field("internal_resistance_ohm", p.internal_resistance_ohm);
  io.field("initial_soc", p.initial_soc);
}

void bind(FieldIo& io, switchfab::OverheadParams& p) {
  io.field("sensing_delay_s", p.sensing_delay_s);
  io.field("per_switch_delay_s", p.per_switch_delay_s);
  io.field("mppt_settle_s", p.mppt_settle_s);
  io.field("per_switch_energy_j", p.per_switch_energy_j);
  io.field("compute_budget_s", p.compute_budget_s);
}

void bind(FieldIo& io, SimulationOptions& s) {
  {
    FieldIo::Scope device(io, "device.");
    bind(io, s.device);
  }
  {
    FieldIo::Scope converter(io, "converter.");
    bind(io, s.converter);
  }
  {
    FieldIo::Scope battery(io, "battery.");
    bind(io, s.battery);
  }
  {
    FieldIo::Scope overhead(io, "overhead.");
    bind(io, s.overhead);
  }
  io.field("charge_overhead", s.charge_overhead);
  io.field("ehtr_max_groups", s.ehtr_max_groups);
  // Warm-start knobs are fingerprinted even though warm results are proven
  // bit-identical to cold: they select a distinct code path, and the cache
  // key must not encode an equivalence theorem the schema can't check.
  io.field("ehtr_warm_start", s.ehtr_warm_start);
  io.field("ehtr_warm_width", s.ehtr_warm_width);
  io.exec_field("num_threads", s.num_threads);
}

void bind(FieldIo& io, ComparisonOptions& c) {
  {
    FieldIo::Scope sim(io, "sim.");
    bind(io, c.sim);
  }
  io.field("include_dnor", c.include_dnor);
  io.field("include_inor", c.include_inor);
  io.field("include_ehtr", c.include_ehtr);
  io.field("include_baseline", c.include_baseline);
  io.field("control_period_s", c.control_period_s);
}

std::uint64_t inline_trace_hash(const thermal::TemperatureTrace& trace,
                                std::uint64_t basis) {
  std::uint64_t h = basis;
  h = util::fnv1a64_double(trace.dt_s(), h);
  const std::uint64_t dims[2] = {trace.num_modules(), trace.num_steps()};
  h = util::fnv1a64(dims, sizeof(dims), h);
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    for (std::size_t m = 0; m < trace.num_modules(); ++m) {
      h = util::fnv1a64_double(trace.temperature_c(t, m), h);
    }
    h = util::fnv1a64_double(trace.ambient_c(t), h);
  }
  return h;
}

void bind_spec(FieldIo& io, ExperimentSpec& spec) {
  std::string format = "tegrec-spec-v1";
  io.field("format", format);
  if (format != "tegrec-spec-v1") {
    throw std::invalid_argument("experiment spec: unknown format '" + format +
                                "'");
  }
  int schema = kSpecSchemaVersion;
  io.field("schema", schema);
  if (schema != kSpecSchemaVersion) {
    throw std::invalid_argument("experiment spec: unsupported schema version " +
                                std::to_string(schema));
  }
  io.enum_field("kind", spec.kind, kKindNames);
  io.enum_field("trace.source", spec.trace.kind, kSourceNames);
  // A named scenario is bound before the trace.gen.* block: parsing
  // resolves the registry entry into the generator config first, so any
  // trace.gen.* keys in the same file act as overrides on top of it.
  // Emission writes the name *and* the fully resolved config — the
  // fingerprint therefore tracks the actual physics, and editing a
  // registry entry invalidates cached results rather than serving stale
  // ones under an unchanged name.
  const bool scenario_key_given = io.parsing() && io.present("trace.scenario");
  if (io.parsing() || !spec.trace.scenario_name.empty()) {
    io.field("trace.scenario", spec.trace.scenario_name);
  }
  if (scenario_key_given && spec.trace.scenario_name.empty()) {
    // An empty value would silently run the default workload — the same
    // class of bug as an unknown key, so it gets the same treatment.
    throw std::invalid_argument(
        "experiment spec: trace.scenario must name a registered scenario "
        "(or the key must be omitted)");
  }
  if (!spec.trace.scenario_name.empty()) {
    if (spec.trace.kind != TraceSource::Kind::kGenerated) {
      throw std::invalid_argument(
          "experiment spec: trace.scenario requires trace.source = generated");
    }
    if (io.parsing()) {
      spec.trace.generator = thermal::scenario(spec.trace.scenario_name);
    } else if (!thermal::has_scenario(spec.trace.scenario_name)) {
      // Emitting an unregistered name would produce canonical text that
      // from_text cannot re-parse — a fingerprint for an address nobody
      // can ever resolve.  Fail at serialisation, not at the round trip.
      throw std::invalid_argument(
          "experiment spec: scenario_name '" + spec.trace.scenario_name +
          "' is not a registered scenario (use sim::scenario_source)");
    }
  }
  // Only the active source's fields are serialised: an inactive source
  // cannot affect the result, so it must not affect the fingerprint.
  switch (spec.trace.kind) {
    case TraceSource::Kind::kGenerated: {
      FieldIo::Scope gen(io, "trace.gen.");
      bind(io, spec.trace.generator,
           /*pin_seed=*/spec.kind == ExperimentKind::kMonteCarlo);
      break;
    }
    case TraceSource::Kind::kCsvFile:
      io.field("trace.csv.path", spec.trace.csv_path);
      io.field("trace.csv.dt_s", spec.trace.csv_dt_s);
      break;
    case TraceSource::Kind::kInline: {
      if (io.parsing()) {
        throw std::invalid_argument(
            "experiment spec: inline trace sources carry their samples in "
            "memory and cannot be loaded from text");
      }
      if (!spec.trace.inline_trace) {
        throw std::invalid_argument(
            "experiment spec: inline trace source with no trace attached");
      }
      const thermal::TemperatureTrace& trace = *spec.trace.inline_trace;
      // Two independently seeded hashes: the canonical text carries the
      // trace only as this digest, so the content address must be 128 bits
      // wide like the fingerprint itself (a single 64-bit stream would be
      // the one place a constructible collision could serve a wrong
      // result).
      std::string hash =
          util::hex64(inline_trace_hash(trace, util::kFnv1aOffsetBasis)) +
          util::hex64(inline_trace_hash(trace, util::kFnv1aAltBasis));
      double dt_s = trace.dt_s();
      std::size_t num_modules = trace.num_modules();
      std::size_t num_steps = trace.num_steps();
      io.field("trace.inline.hash", hash);
      io.field("trace.inline.dt_s", dt_s);
      io.field("trace.inline.num_modules", num_modules);
      io.field("trace.inline.num_steps", num_steps);
      break;
    }
  }
  {
    FieldIo::Scope comparison(io, "comparison.");
    bind(io, spec.comparison);
  }
  if (spec.kind == ExperimentKind::kMonteCarlo) {
    io.field("mc.num_seeds", spec.mc_num_seeds);
    io.field("mc.first_seed", spec.mc_first_seed);
    io.exec_field("mc.num_threads", spec.mc_num_threads);
  }
  if (spec.kind == ExperimentKind::kSweep) {
    io.field("sweep.parameter", spec.sweep_parameter_name);
    io.field("sweep.values", spec.sweep_values);
    io.exec_field("sweep.num_threads", spec.sweep_num_threads);
  }
}

std::string emit_spec(const ExperimentSpec& spec, bool include_exec) {
  FieldIo io(include_exec);
  // bind_spec only mutates in parse mode; emit reads through the same
  // non-const reference.
  bind_spec(io, const_cast<ExperimentSpec&>(spec));
  return io.take_text();
}

}  // namespace

std::string simulation_options_fingerprint_text(
    const SimulationOptions& options) {
  FieldIo io(/*include_exec=*/false);
  // bind only mutates in parse mode; emit reads through the same
  // non-const reference.
  bind(io, const_cast<SimulationOptions&>(options));
  return io.take_text();
}

TraceSource scenario_source(const std::string& name) {
  TraceSource source;
  source.kind = TraceSource::Kind::kGenerated;
  source.generator = thermal::scenario(name);  // throws on unknown names
  source.scenario_name = name;
  return source;
}

std::string ExperimentSpec::canonical_text() const {
  return emit_spec(*this, /*include_exec=*/true);
}

std::string ExperimentSpec::fingerprint_of_text(
    const std::string& fingerprint_text) {
  const std::uint64_t a =
      util::fnv1a64(fingerprint_text, util::kFnv1aOffsetBasis);
  const std::uint64_t b = util::fnv1a64(fingerprint_text, util::kFnv1aAltBasis);
  return util::hex64(a) + util::hex64(b);
}

std::string ExperimentSpec::fingerprint() const {
  // Execution hints (thread counts) are excluded: results are guaranteed
  // bit-identical for every thread count, so they must share a cache key.
  const std::string text = emit_spec(*this, /*include_exec=*/false);
  if (trace.kind == TraceSource::Kind::kCsvFile) {
    // Content addressing: the cache key follows the file's bytes, not its
    // name, so editing the trace invalidates stale results.
    std::uint64_t a = util::fnv1a64(text, util::kFnv1aOffsetBasis);
    std::uint64_t b = util::fnv1a64(text, util::kFnv1aAltBasis);
    util::fnv1a64_file(trace.csv_path, a, b);
    return util::hex64(a) + util::hex64(b);
  }
  return fingerprint_of_text(text);
}

std::string ExperimentSpec::fingerprint_text() const {
  return emit_spec(*this, /*include_exec=*/false);
}

ExperimentSpec ExperimentSpec::from_text(const std::string& text) {
  FieldIo io(split_lines(text));
  ExperimentSpec spec;
  bind_spec(io, spec);
  io.finish_parse();
  return spec;
}

ExperimentSpec ExperimentSpec::from_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("ExperimentSpec::from_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return from_text(buffer.str());
}

std::shared_ptr<const thermal::TemperatureTrace> materialize_trace(
    const TraceSource& source) {
  switch (source.kind) {
    case TraceSource::Kind::kGenerated:
      return std::make_shared<thermal::TemperatureTrace>(
          thermal::generate_trace(source.generator));
    case TraceSource::Kind::kCsvFile:
      if (source.csv_path.empty()) {
        throw std::invalid_argument("materialize_trace: empty CSV path");
      }
      return std::make_shared<thermal::TemperatureTrace>(
          thermal::TemperatureTrace::load_csv(source.csv_path,
                                              source.csv_dt_s));
    case TraceSource::Kind::kInline:
      if (!source.inline_trace) {
        throw std::invalid_argument("materialize_trace: null inline trace");
      }
      return source.inline_trace;
  }
  throw std::logic_error("materialize_trace: bad source kind");
}

namespace detail {

ExperimentResult run_experiment_impl(const ExperimentSpec& spec,
                                     const ConfigMutator* mutator_override) {
  ExperimentResult out;
  out.kind = spec.kind;
  switch (spec.kind) {
    case ExperimentKind::kComparison: {
      const auto trace = materialize_trace(spec.trace);
      out.comparison = detail::run_comparison_direct(*trace, spec.comparison);
      break;
    }
    case ExperimentKind::kMonteCarlo: {
      if (spec.trace.kind != TraceSource::Kind::kGenerated) {
        throw std::invalid_argument(
            "run_experiment: a Monte-Carlo study needs a generated trace "
            "source (the engine re-seeds it per sample)");
      }
      MonteCarloOptions options;
      options.base_trace = spec.trace.generator;
      options.comparison = spec.comparison;
      options.num_seeds = spec.mc_num_seeds;
      options.first_seed = spec.mc_first_seed;
      options.num_threads = spec.mc_num_threads;
      out.monte_carlo = detail::run_monte_carlo_direct(options);
      break;
    }
    case ExperimentKind::kSweep: {
      if (spec.trace.kind != TraceSource::Kind::kGenerated) {
        throw std::invalid_argument(
            "run_experiment: a sweep needs a generated trace source (the "
            "swept parameter mutates the generator config)");
      }
      const ConfigMutator mutate = mutator_override
                                       ? *mutator_override
                                       : sweep_mutator(spec.sweep_parameter_name);
      out.sweep = detail::sweep_direct(spec.trace.generator, spec.sweep_values,
                                       mutate, spec.comparison,
                                       spec.sweep_num_threads);
      break;
    }
  }
  return out;
}

}  // namespace detail

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  return detail::run_experiment_impl(spec, nullptr);
}

}  // namespace tegrec::sim
