// Reproduces Fig. 5: 1-second prediction percentage error (MAPE, Eq. 3) of
// the three prediction algorithms — MLR, BPNN and SVR — over the drive,
// plus the 2-second MLR check the paper quotes ("even the highest
// percentage error of 2-second MLR prediction ... is only around 0.3%").
//
// Expected shape: MLR lowest and fastest, BPNN/SVR above it; all errors at
// the sub-percent level.
#include <cstdio>

#include "predict/bpnn.hpp"
#include "predict/evaluate.hpp"
#include "predict/mlr.hpp"
#include "predict/persistence.hpp"
#include "predict/svr.hpp"
#include "thermal/trace.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  std::printf("=== Fig. 5: 1 s prediction MAPE of MLR / BPNN / SVR ===\n\n");
  const thermal::TemperatureTrace trace = thermal::default_experiment_trace();

  predict::EvaluationOptions options;
  options.window = 30;
  options.horizon_steps =
      static_cast<std::size_t>(1.0 / trace.dt_s());  // 1 second ahead
  options.start_time_s = 30.0;                        // skip warmup

  predict::MlrPredictor mlr;
  predict::BpnnParams bpnn_params;
  bpnn_params.epochs = 8;           // online refits warm-start
  bpnn_params.module_stride = 5;    // subsample modules for speed
  predict::BpnnPredictor bpnn(bpnn_params);
  predict::SvrParams svr_params;
  svr_params.iterations = 120;
  svr_params.module_stride = 5;
  predict::SvrPredictor svr(svr_params);
  predict::PersistencePredictor naive;

  // evaluate_online itself must stay sequential (each step refits on the
  // previous window), but the four predictors are independent: fan the
  // outer loop over the worker pool, one preassigned result slot each.
  const std::vector<predict::Predictor*> predictors{&mlr, &bpnn, &svr, &naive};
  std::vector<predict::EvaluationResult> results(predictors.size());
  util::parallel_for(predictors.size(), 0, [&](std::size_t i) {
    results[i] = predict::evaluate_online(*predictors[i], trace, options);
  });

  util::TextTable table({"method", "mean MAPE %", "max MAPE %", "fit (ms)",
                         "predict (ms)"});
  for (const auto& r : results) {
    table.begin_row()
        .add(r.predictor_name)
        .add(r.mean_mape_percent, 4)
        .add(r.max_mape_percent, 4)
        .add(r.mean_fit_time_ms, 3)
        .add(r.mean_predict_time_ms, 3);
  }
  std::printf("%s\n", table.render().c_str());

  // Time series excerpt (the plotted curves), every 20 s.
  std::printf("-- MAPE timeline (every 20 s) --\n");
  util::TextTable tl({"time_s", "MLR %", "BPNN %", "SVR %"});
  for (std::size_t i = 0; i < results[0].mape_percent.size(); i += 40) {
    tl.begin_row().add(results[0].time_s[i], 0);
    for (int m = 0; m < 3; ++m) tl.add(results[m].mape_percent[i], 4);
  }
  std::printf("%s\n", tl.render().c_str());

  // 2-second MLR prediction: the paper's "~0.3% worst case" claim.
  predict::EvaluationOptions two_s = options;
  two_s.horizon_steps = static_cast<std::size_t>(2.0 / trace.dt_s());
  predict::MlrPredictor mlr2;
  const auto r2 = predict::evaluate_online(mlr2, trace, two_s);
  std::printf("2 s MLR prediction: mean %.4f %%, max %.4f %%  (paper: max ~0.3%%)\n",
              r2.mean_mape_percent, r2.max_mape_percent);

  std::printf("\nshape check: MLR <= BPNN and MLR <= SVR on mean MAPE -> %s\n",
              (results[0].mean_mape_percent <= results[1].mean_mape_percent &&
               results[0].mean_mape_percent <= results[2].mean_mape_percent)
                  ? "OK"
                  : "VIOLATED");
  return 0;
}
