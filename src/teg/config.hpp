// Array configuration: the C(g1, g2, ..., gn) of Algorithms 1 and 2.
//
// A configuration partitions the N path-ordered modules into n contiguous
// groups; modules inside a group are wired in parallel and the groups are
// chained in series.  Following the paper, a configuration is stored as the
// ordered list of each group's first module index (g1 = 0 always, using
// 0-based indexing internally where the paper is 1-based).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tegrec::teg {

class ArrayConfig {
 public:
  ArrayConfig() = default;
  /// `group_starts` must begin with 0 and be strictly increasing with all
  /// entries < num_modules; throws std::invalid_argument otherwise.
  ArrayConfig(std::vector<std::size_t> group_starts, std::size_t num_modules);

  /// n equal (or near-equal) groups: the fixed r x c baseline topologies.
  /// With num_modules=100, n=10 this is the paper's 10 x 10 baseline.
  static ArrayConfig uniform(std::size_t num_modules, std::size_t num_groups);
  /// All modules in one parallel group.
  static ArrayConfig all_parallel(std::size_t num_modules);
  /// Every module its own group (full series chain).
  static ArrayConfig all_series(std::size_t num_modules);

  std::size_t num_modules() const { return num_modules_; }
  std::size_t num_groups() const { return starts_.size(); }
  const std::vector<std::size_t>& group_starts() const { return starts_; }

  /// First module index of group j.
  std::size_t group_begin(std::size_t j) const;
  /// One-past-last module index of group j.
  std::size_t group_end(std::size_t j) const;
  std::size_t group_size(std::size_t j) const;
  /// Group containing module i.
  std::size_t group_of(std::size_t i) const;

  /// True if the adjacency between modules i and i+1 is a series boundary
  /// (the S_S,i switch closed); false means parallel (S_PT/S_PB closed).
  bool is_series_boundary(std::size_t i) const;

  /// Number of adjacencies whose connection type differs from `other`
  /// (same num_modules required).  Each differing adjacency re-actuates all
  /// three switches of that cell in the fabric.
  std::size_t boundary_distance(const ArrayConfig& other) const;

  bool operator==(const ArrayConfig& other) const = default;

  /// "C(g1=0, g5=..., ...)" style debug string.
  std::string to_string() const;

 private:
  std::vector<std::size_t> starts_;
  std::size_t num_modules_ = 0;
};

}  // namespace tegrec::teg
