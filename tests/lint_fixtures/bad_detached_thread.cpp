// lock-discipline fixture: .detach() is banned repo-wide, not just in
// the concurrency layer — a detached thread outlives its owner.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();  // fires
}

void joined() {
  std::thread worker([] {});
  worker.join();  // clean
}
