#include "util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace tegrec::util {

namespace {

std::string trimmed(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

[[noreturn]] void fail(const char* what, const std::string& text) {
  throw std::invalid_argument(std::string("expected ") + what + ", got '" +
                              text + "'");
}

}  // namespace

double parse_double(const std::string& text) {
  const std::string token = trimmed(text);
  if (token.empty()) fail("a number", text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    fail("a number", text);
  }
  // strtod also accepts "nan"/"inf"; a non-finite flag or spec value would
  // sail through downstream range checks (NaN compares false against
  // everything), so it counts as garbage here.
  if (!std::isfinite(value)) fail("a finite number", text);
  return value;
}

std::uint64_t parse_u64(const std::string& text) {
  const std::string token = trimmed(text);
  // strtoull accepts a leading '-' (wrapping the value); reject it here.
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    fail("a non-negative integer", text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    fail("a non-negative integer", text);
  }
  return value;
}

std::int64_t parse_i64(const std::string& text) {
  const std::string token = trimmed(text);
  if (token.empty()) fail("an integer", text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    fail("an integer", text);
  }
  return value;
}

bool parse_bool(const std::string& text) {
  const std::string token = trimmed(text);
  if (token == "1" || token == "true") return true;
  if (token == "0" || token == "false") return false;
  fail("a boolean (0/1/true/false)", text);
}

}  // namespace tegrec::util
