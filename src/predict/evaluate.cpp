#include "predict/evaluate.hpp"

#include <stdexcept>

#include "util/runtime_clock.hpp"
#include "util/stats.hpp"

namespace tegrec::predict {

EvaluationResult evaluate_online(Predictor& predictor,
                                 const thermal::TemperatureTrace& trace,
                                 const EvaluationOptions& options) {
  if (options.window <= predictor.num_lags()) {
    throw std::invalid_argument("evaluate_online: window must exceed lag order");
  }
  if (options.horizon_steps == 0) {
    throw std::invalid_argument("evaluate_online: zero horizon");
  }
  if (options.refit_every == 0) {
    throw std::invalid_argument("evaluate_online: refit_every == 0");
  }

  EvaluationResult result;
  result.predictor_name = predictor.name();

  TemperatureHistory history(trace.num_modules(), options.window);
  util::RunningStats fit_ms, predict_ms;
  std::vector<double> flat_actual, flat_forecast;
  std::size_t steps_since_fit = options.refit_every;  // force first fit

  const std::size_t start_step = trace.step_at_time(options.start_time_s);
  for (std::size_t t = 0; t + options.horizon_steps < trace.num_steps(); ++t) {
    history.push(trace.step_temperatures(t));
    if (t < start_step || history.size() < options.window) continue;

    if (steps_since_fit >= options.refit_every) {
      const util::MonotonicTimer fit_timer;
      predictor.fit(history);
      fit_ms.add(fit_timer.milliseconds());
      steps_since_fit = 0;
    }
    ++steps_since_fit;

    const util::MonotonicTimer predict_timer;
    const auto forecast = predictor.predict_horizon(history, options.horizon_steps);
    predict_ms.add(predict_timer.milliseconds());

    const std::vector<double> actual =
        trace.step_temperatures(t + options.horizon_steps);
    const std::vector<double>& predicted = forecast.back();
    const double step_mape = util::mape_percent(actual, predicted);
    result.time_s.push_back(static_cast<double>(t) * trace.dt_s());
    result.mape_percent.push_back(step_mape);
    flat_actual.insert(flat_actual.end(), actual.begin(), actual.end());
    flat_forecast.insert(flat_forecast.end(), predicted.begin(), predicted.end());
  }

  if (result.mape_percent.empty()) {
    throw std::invalid_argument("evaluate_online: trace too short for window");
  }
  result.mean_mape_percent = util::mape_percent(flat_actual, flat_forecast);
  result.max_mape_percent = util::max_value(result.mape_percent);
  result.mean_fit_time_ms = fit_ms.mean();
  result.mean_predict_time_ms = predict_ms.mean();
  return result;
}

}  // namespace tegrec::predict
