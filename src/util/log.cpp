#include "util/log.hpp"

#include <cstdio>

namespace tegrec::util {

void warn_to_stderr(const std::string& message) {
  // The one sanctioned console write in library code (see header).
  // tegrec-lint: allow(api-io)
  std::fprintf(stderr, "tegrec: warning: %s\n", message.c_str());
}

}  // namespace tegrec::util
