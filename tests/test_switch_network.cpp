#include "switchfab/switch_network.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tegrec::switchfab {
namespace {

using teg::ArrayConfig;

TEST(SwitchCell, ValidityRules) {
  SwitchCell c;  // default: parallel (both parallel closed, series open)
  EXPECT_TRUE(c.is_valid());
  EXPECT_FALSE(c.is_series());
  c.series_closed = true;  // series AND parallel simultaneously: short!
  EXPECT_FALSE(c.is_valid());
  c.parallel_top_closed = false;
  c.parallel_bottom_closed = false;
  EXPECT_TRUE(c.is_valid());
  EXPECT_TRUE(c.is_series());
  c.parallel_top_closed = true;  // half-parallel with series: invalid
  EXPECT_FALSE(c.is_valid());
}

TEST(SwitchNetwork, DefaultIsAllParallel) {
  const SwitchNetwork net(5);
  EXPECT_EQ(net.num_cells(), 4u);
  EXPECT_TRUE(net.is_valid());
  EXPECT_EQ(net.current_config(), ArrayConfig::all_parallel(5));
  EXPECT_EQ(net.total_actuations(), 0u);
}

TEST(SwitchNetwork, ConstructionWithConfig) {
  const ArrayConfig c({0, 2, 4}, 6);
  const SwitchNetwork net(6, c);
  EXPECT_EQ(net.current_config(), c);
  EXPECT_TRUE(net.is_valid());
  EXPECT_EQ(net.total_actuations(), 0u);  // initial wiring is free
}

TEST(SwitchNetwork, TooSmallThrows) {
  EXPECT_THROW(SwitchNetwork(1), std::invalid_argument);
}

TEST(SwitchNetwork, SizeMismatchThrows) {
  SwitchNetwork net(5);
  EXPECT_THROW(net.apply(ArrayConfig::all_parallel(6)), std::invalid_argument);
  // diff shares apply's validation: a wrong-module-count config must be
  // rejected before any plan is computed.
  EXPECT_THROW(net.diff(ArrayConfig::all_parallel(6)), std::invalid_argument);
  EXPECT_THROW(net.diff(ArrayConfig::all_parallel(4)), std::invalid_argument);
}

TEST(SwitchNetwork, DiffReturnsTheFlipSetWithoutActuating) {
  SwitchNetwork net(12);
  const ArrayConfig a({0, 4, 8}, 12);
  const ArrayConfig b({0, 3, 6, 9}, 12);
  net.apply(a);
  const ActuationPlan plan = net.diff(b);
  // Symmetric difference of series boundaries {4,8} and {3,6,9}: all five
  // differ, i.e. cells 2, 3, 5, 7, 8 — ascending.
  const std::vector<std::size_t> expected{2, 3, 5, 7, 8};
  EXPECT_EQ(plan.flip_cells, expected);
  EXPECT_EQ(plan.num_switch_actuations(), 3u * a.boundary_distance(b));
  // diff is a pure query: nothing actuated, nothing counted.
  EXPECT_EQ(net.current_config(), a);
  EXPECT_EQ(net.total_actuations(), 3u * 2u);  // only the initial apply(a)
  // The plan agrees with what apply then actually performs.
  EXPECT_EQ(net.apply(b), plan.num_switch_actuations());
}

TEST(SwitchNetwork, DiffOfCurrentConfigIsEmpty) {
  SwitchNetwork net(8);
  const ArrayConfig c({0, 2, 5}, 8);
  net.apply(c);
  const ActuationPlan plan = net.diff(c);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_switch_actuations(), 0u);
}

TEST(SwitchNetwork, ApplyCountsThreeSwitchesPerFlippedAdjacency) {
  SwitchNetwork net(10);  // all parallel
  const ArrayConfig c({0, 5}, 10);  // one series boundary at 4|5
  const std::size_t actuated = net.apply(c);
  EXPECT_EQ(actuated, 3u);
  EXPECT_EQ(net.total_actuations(), 3u);
  EXPECT_EQ(net.reconfiguration_events(), 1u);
  EXPECT_EQ(net.current_config(), c);
}

TEST(SwitchNetwork, ReapplySameConfigIsFree) {
  SwitchNetwork net(10);
  const ArrayConfig c({0, 5}, 10);
  net.apply(c);
  const std::size_t again = net.apply(c);
  EXPECT_EQ(again, 0u);
  EXPECT_EQ(net.reconfiguration_events(), 1u);  // no-op apply not counted
}

TEST(SwitchNetwork, ActuationsMatchBoundaryDistance) {
  SwitchNetwork net(12);
  const ArrayConfig a({0, 4, 8}, 12);
  const ArrayConfig b({0, 3, 6, 9}, 12);
  net.apply(a);
  const std::size_t actuated = net.apply(b);
  EXPECT_EQ(actuated, 3u * a.boundary_distance(b));
}

TEST(SwitchNetwork, StateAlwaysValidUnderRandomConfigs) {
  // Property: any sequence of applies keeps every cell in exactly one
  // connection state, and current_config() round-trips.
  util::Rng rng(31);
  const std::size_t n = 20;
  SwitchNetwork net(n);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 1; i < n; ++i) {
      if (rng.bernoulli(0.3)) starts.push_back(i);
    }
    const ArrayConfig c(starts, n);
    net.apply(c);
    EXPECT_TRUE(net.is_valid());
    EXPECT_EQ(net.current_config(), c);
  }
}

TEST(SwitchNetwork, TotalActuationsAccumulate) {
  SwitchNetwork net(6);
  const ArrayConfig a = ArrayConfig::all_series(6);
  const ArrayConfig b = ArrayConfig::all_parallel(6);
  net.apply(a);  // 5 adjacencies flip: 15 actuations
  net.apply(b);  // flip back: 15 more
  EXPECT_EQ(net.total_actuations(), 30u);
  EXPECT_EQ(net.reconfiguration_events(), 2u);
}

TEST(SwitchNetwork, CellAccessBounds) {
  const SwitchNetwork net(4);
  EXPECT_NO_THROW(net.cell(2));
  EXPECT_THROW(net.cell(3), std::out_of_range);
}

}  // namespace
}  // namespace tegrec::switchfab
