// Common interface of all reconfiguration controllers.
//
// The simulator calls update() once per control period with the freshly
// sensed temperature distribution; the controller returns the
// configuration the array should use until the next call, whether the
// algorithm actually executed this period (sensing/compute overhead is
// charged only then), whether the fabric must actuate, and the measured
// compute time (the paper's "average runtime" column).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/algorithm_cost.hpp"
#include "teg/config.hpp"

namespace tegrec::core {

struct UpdateResult {
  teg::ArrayConfig config;     ///< configuration to use from now on
  bool invoked = false;        ///< the decision algorithm ran this period
  bool switched = false;       ///< config differs from the previous one
  /// The controller commands a fabric rebuild this period.  The periodic
  /// schemes (INOR, EHTR) rebuild on every invocation — the paper's
  /// "switching at every time point" — even when the configuration happens
  /// to repeat; DNOR actuates only when its prediction rule says to.
  bool actuate = false;
  double compute_time_s = 0.0; ///< wall-clock cost of this invocation
};

class Reconfigurer {
 public:
  virtual ~Reconfigurer() = default;

  virtual std::string name() const = 0;

  /// `delta_t_k[i]` is module i's sensed face temperature difference at
  /// `time_s`; `ambient_c` the heatsink temperature.
  virtual UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                              double ambient_c) = 0;

  /// Resets internal state (history, held configuration) for a fresh run.
  virtual void reset() = 0;

  /// The deterministic compute budget one invocation of this controller
  /// charges the simulation (see core/algorithm_cost.hpp).  A declared
  /// weight, not a measurement: the stepper charges
  /// algorithm_cost().budget_s(overhead) whenever update() reports
  /// invoked, keeping simulated physics independent of implementation
  /// speed.  Defaults to the historical flat unit budget.
  virtual AlgorithmCost algorithm_cost() const { return {}; }

  // ------------------------------------------------ streaming checkpoints
  //
  // A checkpointable controller can externalise its entire mutable state as
  // a versioned text blob and reinstate it later, such that the restored
  // controller's future update() stream is bit-identical to the original's.
  // The blob is opaque to callers (sim::SimStepper embeds it verbatim in
  // its checkpoint file); each implementation guards its own format line.
  // The default says no — a controller that cannot honour the bit-identity
  // contract (e.g. DNOR over a BPNN predictor, whose refit RNG advances
  // across fits) must not pretend otherwise.

  /// True when checkpoint_state()/restore_checkpoint_state() round-trip.
  virtual bool supports_checkpoint() const { return false; }

  /// Serialises the mutable state.  Throws std::logic_error when
  /// supports_checkpoint() is false.
  virtual std::string checkpoint_state() const {
    throw std::logic_error(name() + ": checkpointing not supported");
  }

  /// Reinstates a checkpoint_state() blob.  Throws std::logic_error when
  /// unsupported and std::runtime_error on a malformed blob.
  virtual void restore_checkpoint_state(const std::string& state) {
    (void)state;
    throw std::logic_error(name() + ": checkpointing not supported");
  }
};

}  // namespace tegrec::core
