// Declarative experiment specification — the unit of work of the
// experiment service.
//
// Every study the library knows how to run (the paper's Table I scheme
// comparison, the Monte-Carlo seed study behind its headline numbers, and
// scalar parameter sweeps) is described by one ExperimentSpec value: a
// trace source, a kind, and the existing option structs.  A spec has a
// stable canonical serialisation (`canonical_text`, a key = value dialect
// that `from_text` parses back, so spec files on disk and fingerprints in
// the cache share one format) and a `fingerprint()` — a content hash over
// the canonical text plus the library schema version, which the
// ExperimentService uses as the cache key and for coalescing duplicate
// in-flight submissions.
//
// Fingerprint contract:
//  - equal specs produce equal fingerprints;
//  - changing any field that can affect the result changes the
//    fingerprint (fields of an inactive trace source are not serialised,
//    and a Monte-Carlo spec's base seed is pinned to zero because the
//    engine overwrites it per sample);
//  - a CSV trace source is addressed by the file's *content* (its bytes
//    are hashed into the fingerprint), so editing the file invalidates
//    cached results even though the path is unchanged;
//  - bumping kSpecSchemaVersion (do this whenever the meaning of any
//    serialised field changes) invalidates every existing fingerprint.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/montecarlo.hpp"
#include "sim/sweep.hpp"
#include "thermal/trace.hpp"

namespace tegrec::sim {

/// Bump when the canonical serialisation (or the semantics of any field in
/// it) changes; stale cache artifacts then miss instead of mismatching.
/// v2: named workload scenarios (trace.scenario) and the process-load /
/// stop-start / cold-start segment fields.
/// v3: EHTR warm-start knobs (sim.ehtr_warm_start, sim.ehtr_warm_width).
inline constexpr int kSpecSchemaVersion = 3;

enum class ExperimentKind { kComparison, kMonteCarlo, kSweep };

/// Where the temperature trace comes from.
struct TraceSource {
  enum class Kind {
    kGenerated,  ///< synthesised from `generator` (drive cycle + thermal)
    kCsvFile,    ///< loaded from `csv_path` via TemperatureTrace::load_csv
    kInline,     ///< an in-memory trace (content-hashed; not file-loadable)
  };
  Kind kind = Kind::kGenerated;

  thermal::TraceGeneratorConfig generator;  ///< kGenerated only
  /// kGenerated only: name of the registered workload scenario
  /// (thermal/scenario.hpp) `generator` was resolved from; empty for
  /// hand-assembled configs.  Serialised into the canonical text alongside
  /// the full resolved generator config, so the fingerprint tracks both the
  /// name and the physics it expanded to — editing a registry entry
  /// invalidates cached results instead of serving stale ones.  Parsing
  /// applies the scenario first and any `trace.gen.*` keys as overrides on
  /// top; unknown names throw.  Use scenario_source() to build one
  /// programmatically (it keeps name and generator consistent).
  std::string scenario_name;
  std::string csv_path;                     ///< kCsvFile only
  double csv_dt_s = 0.0;  ///< optional explicit dt for load_csv (0 = derive)
  /// kInline only.  Serialises as its content hash, so specs built around
  /// an existing trace (the blocking-wrapper path) still coalesce and
  /// cache; from_text() rejects it because the samples are not in the text.
  std::shared_ptr<const thermal::TemperatureTrace> inline_trace;
};

/// The result-affecting fields of one SimulationOptions in the canonical
/// `key = value` dialect (doubles at %.17g, execution hints excluded) —
/// the same bindings the experiment-spec fingerprint uses.  Streaming
/// checkpoints (sim/checkpoint.hpp) embed this text in their
/// configuration stamp so a checkpoint written under one physics spec can
/// never silently resume under another.
std::string simulation_options_fingerprint_text(
    const SimulationOptions& options);

/// A generated trace source resolved from a named workload scenario:
/// `kind = kGenerated`, `generator = thermal::scenario(name)`, and
/// `scenario_name = name` so the canonical text records the provenance.
/// Throws std::invalid_argument for unknown names (listing the registry).
TraceSource scenario_source(const std::string& name);

struct ExperimentSpec {
  ExperimentKind kind = ExperimentKind::kComparison;
  TraceSource trace;
  /// Scheme selection and per-run simulation options, for every kind.
  ComparisonOptions comparison;

  // Monte-Carlo only (kind == kMonteCarlo; requires a generated source).
  std::size_t mc_num_seeds = 10;
  std::uint64_t mc_first_seed = 1;
  std::size_t mc_num_threads = 0;  ///< worker threads inside the study

  // Sweep only (kind == kSweep; requires a generated source).
  std::string sweep_parameter_name;   ///< registry name, see sim/sweep.hpp
  std::vector<double> sweep_values;
  std::size_t sweep_num_threads = 0;

  /// Stable canonical serialisation: every result-affecting field, one
  /// `key = value` line each, doubles at full (%.17g) precision.
  std::string canonical_text() const;

  /// 32-hex-digit content hash over canonical text + schema version (+ the
  /// CSV file's bytes for kCsvFile sources).  Throws std::runtime_error if
  /// a CSV source's file cannot be read.
  std::string fingerprint() const;

  /// The exact text fingerprint() hashes (canonical text minus execution
  /// hints).  The cache compares this alongside the hash so a collision can
  /// never serve a wrong result.
  std::string fingerprint_text() const;

  /// fingerprint() for a fingerprint_text() already in hand — one emission
  /// instead of two when both are needed (the service's submit path).
  /// Equals fingerprint() for every source kind except kCsvFile, whose
  /// fingerprint() additionally hashes the file bytes (the service never
  /// sees that kind: submit materialises CSV sources into inline traces so
  /// the bytes hashed are exactly the bytes executed).
  static std::string fingerprint_of_text(const std::string& fingerprint_text);

  /// Parses the canonical dialect.  Unknown keys throw (typos must not
  /// silently run a different study); missing keys keep their defaults, so
  /// hand-written spec files only state what differs from the defaults.
  static ExperimentSpec from_text(const std::string& text);
  static ExperimentSpec from_file(const std::string& path);
};

/// A completed study: exactly one of the payloads is filled, per `kind`.
struct ExperimentResult {
  ExperimentKind kind = ExperimentKind::kComparison;
  ComparisonResult comparison;
  MonteCarloSummary monte_carlo;
  std::vector<SweepPoint> sweep;
};

/// Materialises the spec's trace: generates it, loads the CSV, or returns
/// the inline trace.  Throws std::invalid_argument on an unusable source.
std::shared_ptr<const thermal::TemperatureTrace> materialize_trace(
    const TraceSource& source);

/// Executes a spec synchronously on the calling thread — the direct,
/// uncached reference path the service's results are bit-identical to.
ExperimentResult run_experiment(const ExperimentSpec& spec);

namespace detail {

/// run_experiment with an optional override for the sweep mutator: the
/// blocking sweep_parameter wrapper carries its caller's opaque lambda
/// through the service this way (such jobs are never cached, because an
/// arbitrary std::function has no content address).  Service workers call
/// this; everyone else wants run_experiment.
ExperimentResult run_experiment_impl(const ExperimentSpec& spec,
                                     const ConfigMutator* mutator_override);

}  // namespace detail

}  // namespace tegrec::sim
