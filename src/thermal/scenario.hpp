// Named workload scenarios — the library's scenario vocabulary.
//
// A scenario is a complete, ready-to-run TraceGeneratorConfig under a
// stable name: the paper's 800 s pickup drive, signalised stop-start
// traffic, a winter cold start, and the industrial duty cycles (boiler
// economiser, batch kiln) the paper's conclusion points at.  Names are the
// unit of reuse across the whole stack: `ExperimentSpec` serialises
// `trace.scenario = <name>` (sim/spec.hpp) alongside the resolved
// generator config, `tegrec_cli simulate|trace|montecarlo --scenario`
// resolves them, and bench_scenarios runs the comparison table across the
// entire catalog.  Because a scenario spec is content-addressed like any
// other, every named workload is cacheable, sweepable and batch-runnable
// for free.
//
// Editing a scenario's definition changes the canonical text of every spec
// built from it, so stale cached results miss instead of lying.
#pragma once

#include <string>
#include <vector>

#include "thermal/trace.hpp"

namespace tegrec::thermal {

/// Catalog entry: the name `scenario()` resolves plus a one-line summary
/// for docs, CLI listings and bench output.
struct ScenarioInfo {
  std::string name;
  std::string description;
};

/// Resolves a scenario name to its full generator config.  Throws
/// std::invalid_argument for unknown names, listing what exists.
TraceGeneratorConfig scenario(const std::string& name);

/// True if `name` is a registered scenario.
bool has_scenario(const std::string& name);

/// All registered scenario names, sorted.
std::vector<std::string> scenario_names();

/// The full catalog (sorted by name) for docs/bench/CLI listings.
const std::vector<ScenarioInfo>& scenario_catalog();

}  // namespace tegrec::thermal
