#include "sim/stepper.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/objective.hpp"
#include "teg/array.hpp"
#include "teg/array_evaluator.hpp"

namespace tegrec::sim {

SimStepper::SimStepper(core::Reconfigurer& controller, double dt_s,
                       std::size_t num_modules,
                       const SimulationOptions& options)
    : controller_(&controller), dt_s_(dt_s), num_modules_(num_modules),
      options_(options), converter_(options.converter),
      battery_(options.battery) {
  if (!std::isfinite(dt_s) || dt_s <= 0.0) {
    throw std::invalid_argument("SimStepper: dt must be finite and > 0");
  }
  if (num_modules == 0) {
    throw std::invalid_argument("SimStepper: num_modules must be > 0");
  }
  controller_->reset();
  partial_.algorithm = controller_->name();
}

StepRecord SimStepper::step(const TraceSample& sample) {
  // load_csv-grade validation: shape, finiteness, and grid placement are
  // all checked before any state mutates, so a rejected sample leaves the
  // stepper exactly where it was.
  if (sample.module_temps_c.size() != num_modules_) {
    throw std::invalid_argument("SimStepper::step: sample has " +
                                std::to_string(sample.module_temps_c.size()) +
                                " modules, expected " +
                                std::to_string(num_modules_));
  }
  if (!std::isfinite(sample.ambient_c)) {
    throw std::invalid_argument("SimStepper::step: non-finite ambient");
  }
  for (double temp : sample.module_temps_c) {
    if (!std::isfinite(temp)) {
      throw std::invalid_argument(
          "SimStepper::step: non-finite module temperature");
    }
  }
  const double expected_time_s = next_time_s();
  // Nearest-grid acceptance, as in load_csv's explicit-dt rule: any stamp
  // within half a step of the expected grid point is that grid point.
  const double grid_tolerance_s = 0.5 * dt_s_;
  if (!std::isfinite(sample.time_s) ||
      std::abs(sample.time_s - expected_time_s) > grid_tolerance_s) {
    throw std::invalid_argument(
        "SimStepper::step: sample time " + std::to_string(sample.time_s) +
        " is not the next grid point " + std::to_string(expected_time_s) +
        " (gap/reorder handling belongs to the telemetry layer)");
  }

  // From here on this is run_simulation()'s historical loop body, verbatim
  // modulo spelling: any divergence breaks the batch/stream bit-identity
  // the tests enforce.  The record's time is the *grid* time, not the
  // sample's (which may sit anywhere inside the half-step tolerance).
  const double dt = dt_s_;
  StepRecord rec;
  rec.time_s = expected_time_s;

  // TemperatureTrace::step_delta_t's clamp, applied to the live sample.
  std::vector<double> delta_t = sample.module_temps_c;
  for (double& t : delta_t) t = std::max(0.0, t - sample.ambient_c);
  const double ambient = sample.ambient_c;
  const core::UpdateResult upd =
      controller_->update(rec.time_s, delta_t, ambient);

  rec.invoked = upd.invoked;
  rec.switched = upd.switched;
  rec.compute_time_s = upd.compute_time_s;
  total_compute_s_ += upd.compute_time_s;
  if (upd.invoked) ++partial_.num_invocations;

  // Actuate the fabric.  The very first configuration is the pre-drive
  // wiring and costs nothing.
  bool actuated = false;
  if (!fabric_) {
    fabric_ =
        std::make_unique<switchfab::SwitchNetwork>(num_modules_, upd.config);
  } else if (upd.actuate) {
    rec.switch_actuations = fabric_->apply(upd.config);
    actuated = true;
    ++partial_.num_switch_events;
    partial_.total_switch_actuations += rec.switch_actuations;
  }

  // Electrical evaluation at this period's temperatures, through the
  // cached prefix aggregates (no per-step SeriesString materialisation).
  const teg::TegArray array(options_.device, delta_t, ambient);
  const teg::ArrayEvaluator evaluator(array);
  rec.ideal_power_w = evaluator.ideal_power_w();
  rec.gross_power_w = core::config_power_w(evaluator, converter_, upd.config);

  // Overhead: an actuation blanks the output for sensing + compute +
  // switching + MPPT re-settle (Section III.C, model of [5]).  The compute
  // term is the controller's declared AlgorithmCost budget — deterministic
  // data, never measured wall-clock — so EHTR is charged more than DNOR
  // per invocation regardless of implementation speedups.
  double net_energy_j = rec.gross_power_w * dt;
  if (options_.charge_overhead && actuated) {
    const switchfab::OverheadCost cost = switchfab::reconfiguration_cost(
        options_.overhead, rec.switch_actuations, rec.gross_power_w,
        controller_->algorithm_cost().budget_s(options_.overhead));
    rec.overhead_energy_j = std::min(cost.energy_j, net_energy_j);
    net_energy_j -= rec.overhead_energy_j;
    partial_.switch_overhead_j += rec.overhead_energy_j;
  }
  rec.net_power_w = net_energy_j / dt;

  battery_.absorb(rec.net_power_w, dt);
  partial_.energy_output_j += net_energy_j;
  partial_.ideal_energy_j += rec.ideal_power_w * dt;
  partial_.steps.push_back(rec);
  return rec;
}

SimulationResult SimStepper::result() const {
  SimulationResult result = partial_;
  result.battery_energy_j = battery_.energy_absorbed_j();
  result.final_soc = battery_.soc();
  result.avg_runtime_ms =
      result.steps.empty()
          ? 0.0
          : 1000.0 * total_compute_s_ /
                static_cast<double>(result.steps.size());
  result.runtime_per_invocation_ms =
      result.num_invocations == 0
          ? 0.0
          : 1000.0 * total_compute_s_ /
                static_cast<double>(result.num_invocations);
  return result;
}

std::vector<std::size_t> SimStepper::current_group_starts() const {
  if (!fabric_) return {};
  return fabric_->current_config().group_starts();
}

StepperState SimStepper::state() const {
  StepperState state;
  state.steps_consumed = steps_consumed();
  state.total_compute_s = total_compute_s_;
  state.has_fabric = fabric_ != nullptr;
  if (fabric_) {
    state.fabric_group_starts = fabric_->current_config().group_starts();
  }
  state.battery_soc = battery_.soc();
  state.battery_energy_j = battery_.energy_absorbed_j();
  state.controller_state = controller_->checkpoint_state();  // throws if n/a
  state.partial = result();
  return state;
}

void SimStepper::restore_state(const StepperState& state) {
  // Validate + rebuild everything fallible into locals first; members are
  // only assigned once nothing can throw, so a corrupt snapshot leaves the
  // stepper (and its controller) untouched.
  if (state.steps_consumed != state.partial.steps.size()) {
    throw std::runtime_error(
        "SimStepper::restore_state: steps_consumed does not match the "
        "partial step table");
  }
  // has_fabric implies a non-empty starts list (every valid ArrayConfig
  // begins with group 0) and vice versa.
  if (state.has_fabric == state.fabric_group_starts.empty()) {
    throw std::runtime_error(
        "SimStepper::restore_state: fabric flag/config mismatch");
  }
  if (!std::isfinite(state.total_compute_s) || state.total_compute_s < 0.0) {
    throw std::runtime_error(
        "SimStepper::restore_state: non-finite compute-time accumulator");
  }
  std::unique_ptr<switchfab::SwitchNetwork> fabric;
  if (state.has_fabric) {
    teg::ArrayConfig config(state.fabric_group_starts,
                            num_modules_);  // validates the starts
    fabric = std::make_unique<switchfab::SwitchNetwork>(num_modules_, config);
  }
  power::Battery battery(options_.battery);
  try {
    battery.restore_state(state.battery_soc, state.battery_energy_j);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("SimStepper::restore_state: ") +
                             e.what());
  }
  // The controller rejects a corrupt blob before mutating itself, so doing
  // it last keeps the whole restore all-or-nothing.
  controller_->restore_checkpoint_state(state.controller_state);
  fabric_ = std::move(fabric);
  battery_ = battery;
  partial_ = state.partial;
  partial_.algorithm = controller_->name();
  total_compute_s_ = state.total_compute_s;
}

}  // namespace tegrec::sim
