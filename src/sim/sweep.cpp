#include "sim/sweep.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sim/service.hpp"
#include "sim/spec.hpp"
#include "util/parallel.hpp"

namespace tegrec::sim {

namespace {

// Registered sweep parameters: every entry is a pure scalar write into the
// trace-generator config, so a spec naming one is fully content-addressed.
const std::map<std::string, ConfigMutator>& mutator_registry() {
  static const std::map<std::string, ConfigMutator> registry = {
      {"num_modules",
       [](thermal::TraceGeneratorConfig& c, double v) {
         c.layout.num_modules = static_cast<std::size_t>(v);
       }},
      {"surface_coupling",
       [](thermal::TraceGeneratorConfig& c, double v) {
         c.layout.surface_coupling = v;
       }},
      {"exchanger_k_per_length",
       [](thermal::TraceGeneratorConfig& c, double v) {
         c.layout.exchanger.k_per_length_w_mk = v;
       }},
      {"ambient_base_c",
       [](thermal::TraceGeneratorConfig& c, double v) {
         c.ambient.base_c = v;
         c.engine.ambient_c = v;
       }},
      {"thermal_mass_j_k",
       [](thermal::TraceGeneratorConfig& c, double v) {
         c.engine.thermal_mass_j_k = v;
       }},
      {"duration_scale",
       [](thermal::TraceGeneratorConfig& c, double v) {
         for (auto& segment : c.segments) segment.duration_s *= v;
       }},
  };
  return registry;
}

}  // namespace

ConfigMutator sweep_mutator(const std::string& name) {
  const auto& registry = mutator_registry();
  const auto it = registry.find(name);
  if (it != registry.end()) return it->second;
  std::string known;
  for (const auto& [key, fn] : registry) {
    (void)fn;
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw std::invalid_argument("sweep_mutator: unknown parameter '" + name +
                              "' (registered: " + known + ")");
}

std::vector<std::string> sweep_parameter_names() {
  std::vector<std::string> names;
  for (const auto& [key, fn] : mutator_registry()) {
    (void)fn;
    names.push_back(key);
  }
  return names;  // std::map iterates sorted
}

std::vector<SweepPoint> sweep_parameter(
    const thermal::TraceGeneratorConfig& base, const std::vector<double>& values,
    const ConfigMutator& mutate, const ComparisonOptions& comparison,
    std::size_t num_threads) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::kSweep;
  spec.trace.kind = TraceSource::Kind::kGenerated;
  spec.trace.generator = base;
  spec.comparison = comparison;
  spec.sweep_parameter_name = "<custom>";  // opaque mutator: uncacheable
  spec.sweep_values = values;
  spec.sweep_num_threads = num_threads;
  return ExperimentService::shared().submit(spec, mutate).wait()->sweep;
}

util::CsvTable sweep_to_csv(const std::string& value_name,
                            const std::vector<SweepPoint>& points) {
  util::CsvTable table;
  table.header = {value_name, "dnor_j", "baseline_j", "gain_percent",
                  "dnor_ratio"};
  for (const SweepPoint& p : points) {
    table.rows.push_back({p.value, p.dnor_energy_j, p.baseline_energy_j,
                          100.0 * p.gain, p.dnor_ratio_to_ideal});
  }
  return table;
}

namespace detail {

std::vector<SweepPoint> sweep_direct(const thermal::TraceGeneratorConfig& base,
                                     const std::vector<double>& values,
                                     const ConfigMutator& mutate,
                                     const ComparisonOptions& comparison,
                                     std::size_t num_threads) {
  if (values.empty()) throw std::invalid_argument("sweep_parameter: no values");
  if (!mutate) throw std::invalid_argument("sweep_parameter: null mutator");
  if (!comparison.include_dnor || !comparison.include_baseline) {
    throw std::invalid_argument(
        "sweep_parameter: DNOR and baseline must both be enabled");
  }
  std::vector<SweepPoint> out(values.size());
  util::parallel_for(values.size(), num_threads, [&](std::size_t i) {
    thermal::TraceGeneratorConfig config = base;
    mutate(config, values[i]);
    const thermal::TemperatureTrace trace = thermal::generate_trace(config);
    const ComparisonResult res = run_comparison_direct(trace, comparison);

    SweepPoint& point = out[i];
    point.value = values[i];
    point.dnor_energy_j = res.by_name("DNOR").energy_output_j;
    point.baseline_energy_j = res.by_name("Baseline").energy_output_j;
    point.gain = res.dnor_gain_over_baseline();
    point.dnor_ratio_to_ideal = res.by_name("DNOR").ratio_to_ideal();
  });
  return out;
}

}  // namespace detail

}  // namespace tegrec::sim
