#include "core/exhaustive.hpp"

#include <stdexcept>

#include "core/objective.hpp"
#include "power/mppt.hpp"
#include "teg/string.hpp"

namespace tegrec::core {

ExhaustiveResult exhaustive_contiguous_search(const teg::TegArray& array,
                                              const power::Converter& converter) {
  const std::size_t n = array.size();
  if (n > 24) {
    throw std::invalid_argument("exhaustive_contiguous_search: N > 24");
  }
  ExhaustiveResult best;
  best.power_w = -1.0;
  const teg::ArrayEvaluator evaluator(array);
  const std::size_t masks = std::size_t{1} << (n - 1);
  for (std::size_t mask = 0; mask < masks; ++mask) {
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (mask & (std::size_t{1} << i)) starts.push_back(i + 1);
    }
    teg::ArrayConfig candidate(std::move(starts), n);
    const double p = config_power_w(evaluator, converter, candidate);
    ++best.evaluated;
    if (p > best.power_w) {
      best.power_w = p;
      best.config = std::move(candidate);
    }
  }
  return best;
}

namespace {

// Recursively assigns module `i` to an existing group or a fresh one
// (canonical set-partition enumeration), scoring complete assignments.
void enumerate_partitions(const teg::TegArray& array,
                          const power::Converter& converter, std::size_t i,
                          std::vector<std::vector<teg::Module>>& groups,
                          SetPartitionResult& best) {
  if (i == array.size()) {
    std::vector<teg::ParallelGroup> pgs;
    pgs.reserve(groups.size());
    for (const auto& members : groups) pgs.emplace_back(members);
    const teg::SeriesString string(std::move(pgs));
    const double p =
        power::optimal_operating_point(string, converter).output_power_w;
    ++best.evaluated;
    if (p > best.power_w) best.power_w = p;
    return;
  }
  const teg::Module& m = array.module(i);
  for (auto& g : groups) {
    g.push_back(m);
    enumerate_partitions(array, converter, i + 1, groups, best);
    g.pop_back();
  }
  groups.push_back({m});
  enumerate_partitions(array, converter, i + 1, groups, best);
  groups.pop_back();
}

}  // namespace

SetPartitionResult exhaustive_set_partition_search(
    const teg::TegArray& array, const power::Converter& converter) {
  if (array.size() > 12) {
    throw std::invalid_argument("exhaustive_set_partition_search: N > 12");
  }
  SetPartitionResult best;
  best.power_w = -1.0;
  std::vector<std::vector<teg::Module>> groups;
  enumerate_partitions(array, converter, 0, groups, best);
  return best;
}

}  // namespace tegrec::core
