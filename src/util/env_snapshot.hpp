// One-shot environment snapshot — the only sanctioned getenv door.
//
// std::getenv is not thread-safe against a concurrent setenv, and the
// clang-tidy concurrency-mt-unsafe check rightly flags every call.  The
// repo's policy used to be per-site NOLINT suppressions ("this read
// happens before threads start"); that argument was repeated at four
// call sites and would have to be re-proven at every new one.  Instead,
// every TEGREC_* configuration variable is read exactly once, under the
// C++ static-local initialisation guard of the first env_snapshot()
// call — which every consumer makes before spawning its threads — and
// the values are served from an immutable map thereafter.  Later setenv
// calls are invisible by design: process configuration is fixed at
// first use, the same contract the per-site statics already implied.
//
// The variable list is closed on purpose.  Asking for a name outside it
// throws std::logic_error: a new knob must be added to the table (and
// documented in docs/) rather than smuggled in through a raw getenv.
#pragma once

#include <optional>
#include <string>

namespace tegrec::util {

/// Value `name` had when the process-wide snapshot was taken (first call
/// to any env_snapshot), or nullopt when it was unset.  `name` must be
/// one of the known TEGREC_* configuration variables; anything else
/// throws std::logic_error.
std::optional<std::string> env_snapshot(const std::string& name);

}  // namespace tegrec::util
