#include "sim/service.hpp"

#include <atomic>
#include <condition_variable>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "sim/artifact_store.hpp"
#include "sim/result_io.hpp"
#include "util/bounded_queue.hpp"
#include "util/env_snapshot.hpp"
#include "util/mutex.hpp"
#include "util/parallel.hpp"
#include "util/parse.hpp"
#include "util/thread_annotations.hpp"

namespace tegrec::sim {

namespace detail {

// The identity half of a job is const: it is fully determined before the
// job is published (queued or handed out), so the constructor is the only
// writer and no lock is needed.  Everything below `mutex` is guarded.
// Lock order where both are held: service registry mutex, then job mutex.
struct Job {
  Job(std::uint64_t job_id, ExperimentSpec job_spec, ConfigMutator job_mutator,
      bool job_has_mutator, std::string job_fingerprint,
      std::string job_fingerprint_text)
      : id(job_id),
        spec(std::move(job_spec)),
        mutator(std::move(job_mutator)),
        has_mutator(job_has_mutator),
        fingerprint(std::move(job_fingerprint)),
        fingerprint_text(std::move(job_fingerprint_text)),
        cacheable(!has_mutator) {}

  const std::uint64_t id;
  const ExperimentSpec spec;
  const ConfigMutator mutator;  ///< opaque sweep mutator (uncacheable only)
  const bool has_mutator;
  const std::string fingerprint;
  const std::string fingerprint_text;
  const bool cacheable;

  mutable util::Mutex mutex;
  mutable std::condition_variable done_cv;
  JobStatus status TEGREC_GUARDED_BY(mutex) = JobStatus::kQueued;
  std::shared_ptr<const ExperimentResult> result TEGREC_GUARDED_BY(mutex);
  std::exception_ptr error TEGREC_GUARDED_BY(mutex);
  bool from_cache TEGREC_GUARDED_BY(mutex) = false;
};

namespace {

bool is_terminal(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kCancelled;
}

}  // namespace

}  // namespace detail

// ------------------------------------------------------------- JobHandle

namespace {

detail::Job& deref(const std::shared_ptr<detail::Job>& job) {
  if (!job) throw std::logic_error("JobHandle: empty handle");
  return *job;
}

}  // namespace

JobStatus JobHandle::status() const {
  detail::Job& job = deref(job_);
  util::MutexLock lock(job.mutex);
  return job.status;
}

std::shared_ptr<const ExperimentResult> JobHandle::wait() const {
  detail::Job& job = deref(job_);
  util::UniqueLock lock(job.mutex);
  while (!detail::is_terminal(job.status)) job.done_cv.wait(lock.native());
  if (job.status == JobStatus::kDone) return job.result;
  if (job.status == JobStatus::kFailed) std::rethrow_exception(job.error);
  throw std::runtime_error("ExperimentService: job " +
                           std::to_string(job.id) + " was cancelled");
}

std::shared_ptr<const ExperimentResult> JobHandle::poll() const {
  detail::Job& job = deref(job_);
  util::MutexLock lock(job.mutex);
  return job.status == JobStatus::kDone ? job.result : nullptr;
}

bool JobHandle::cancel() const {
  detail::Job& job = deref(job_);
  util::MutexLock lock(job.mutex);
  if (job.status != JobStatus::kQueued) return false;
  job.status = JobStatus::kCancelled;
  job.done_cv.notify_all();
  return true;
}

bool JobHandle::from_cache() const {
  detail::Job& job = deref(job_);
  util::MutexLock lock(job.mutex);
  return job.from_cache;
}

const std::string& JobHandle::fingerprint() const {
  return deref(job_).fingerprint;
}

std::uint64_t JobHandle::id() const { return deref(job_).id; }

// ------------------------------------------------------------------ State

struct ExperimentService::State {
  explicit State(std::size_t queue_capacity) : queue(queue_capacity) {}

  /// Internally synchronized (its own mutex + condition variables).
  // tegrec-lint: allow(guarded-member) internally synchronized
  util::BoundedQueue<std::shared_ptr<detail::Job>> queue;
  /// Created by the service constructor before any worker runs, reset
  /// only by the destructor after the queue closed.
  // tegrec-lint: allow(guarded-member) immutable between ctor and dtor
  std::unique_ptr<util::ThreadPool> pool;
  /// Crash-safe bounded disk cache (default-constructed = disabled when
  /// cache_dir is empty; behind a pointer because the store owns a mutex).
  /// The store is internally synchronized; the pointer itself is set in
  /// the service constructor and never reseated while workers exist.
  // tegrec-lint: allow(guarded-member) immutable between ctor and dtor
  std::unique_ptr<ArtifactStore> store = std::make_unique<ArtifactStore>();

  util::Mutex registry_mutex;
  /// Queued/running cacheable jobs by fingerprint — the coalescing table.
  std::unordered_map<std::string, std::shared_ptr<detail::Job>> inflight
      TEGREC_GUARDED_BY(registry_mutex);

  struct CacheEntry {
    std::list<std::string>::iterator lru_it;
    std::string fingerprint_text;  ///< collision guard
    std::shared_ptr<const ExperimentResult> result;
  };
  /// Fingerprints, most recently used first.
  std::list<std::string> lru TEGREC_GUARDED_BY(registry_mutex);
  std::unordered_map<std::string, CacheEntry> cache
      TEGREC_GUARDED_BY(registry_mutex);

  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::size_t> executions{0};
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> disk_hits{0};
  std::atomic<std::size_t> coalesced{0};
};

namespace {

// The annotation is the old "registry lock must be held" comment made
// machine-checked: callers must hold state.registry_mutex.
void insert_cache_locked(ExperimentService::State& state, std::size_t capacity,
                         const detail::Job& job,
                         const std::shared_ptr<const ExperimentResult>& result)
    TEGREC_REQUIRES(state.registry_mutex);

void erase_inflight(ExperimentService::State& state,
                    const std::shared_ptr<detail::Job>& job) {
  util::MutexLock lock(state.registry_mutex);
  const auto it = state.inflight.find(job->fingerprint);
  if (it != state.inflight.end() && it->second == job) state.inflight.erase(it);
}

void fail_job(ExperimentService::State& state,
              const std::shared_ptr<detail::Job>& job, std::exception_ptr error) {
  if (job->cacheable) erase_inflight(state, job);
  util::MutexLock lock(job->mutex);
  if (job->status == JobStatus::kCancelled) return;  // cancel won the race
  job->error = std::move(error);
  job->status = JobStatus::kFailed;
  job->done_cv.notify_all();
}

std::shared_ptr<const ExperimentResult> load_disk(ArtifactStore& store,
                                                  const detail::Job& job) {
  const std::optional<std::string> text = store.get(job.fingerprint);
  if (!text.has_value()) return nullptr;
  auto decoded = decode_result(*text, job.fingerprint_text);
  if (!decoded) {
    // Collision is a plain miss, but a torn/corrupt artifact is removed so
    // the next run republishes clean bytes instead of re-parsing garbage.
    store.remove(job.fingerprint);
    return nullptr;
  }
  return std::make_shared<const ExperimentResult>(std::move(*decoded));
}

void store_disk(ArtifactStore& store, const detail::Job& job,
                const ExperimentResult& result) {
  // Publication goes through the atomic temp+fsync+rename door and LRU
  // eviction inside the store; failures warn once and degrade (the disk
  // cache is best-effort by contract).
  store.put(job.fingerprint, encode_result(result, job.fingerprint_text));
}

void insert_cache_locked(ExperimentService::State& state, std::size_t capacity,
                         const detail::Job& job,
                         const std::shared_ptr<const ExperimentResult>& result)
    TEGREC_REQUIRES(state.registry_mutex) {
  if (capacity == 0) return;
  const auto it = state.cache.find(job.fingerprint);
  if (it != state.cache.end()) {
    state.lru.splice(state.lru.begin(), state.lru, it->second.lru_it);
    it->second.fingerprint_text = job.fingerprint_text;
    it->second.result = result;
    return;
  }
  state.lru.push_front(job.fingerprint);
  state.cache.emplace(job.fingerprint,
                      ExperimentService::State::CacheEntry{
                          state.lru.begin(), job.fingerprint_text, result});
  while (state.cache.size() > capacity) {
    state.cache.erase(state.lru.back());
    state.lru.pop_back();
  }
}

}  // namespace

// ------------------------------------------------------ ExperimentService

ExperimentService::ExperimentService(ServiceOptions options)
    : options_(std::move(options)),
      state_(std::make_unique<State>(options_.queue_capacity)) {
  if (!options_.cache_dir.empty()) {
    ArtifactStoreOptions store_options;
    store_options.dir = options_.cache_dir;
    store_options.max_bytes = options_.cache_max_bytes;
    store_options.faults = options_.faults;
    store_options.warn = options_.warn;
    state_->store = std::make_unique<ArtifactStore>(std::move(store_options));
    // Crash debris from earlier runs (orphaned temps, an over-cap store
    // left by a killed eviction pass) is cleaned before first use.
    state_->store->maintenance();
  }
  const std::size_t workers = options_.num_workers == 0
                                  ? util::default_parallelism()
                                  : options_.num_workers;
  state_->pool = std::make_unique<util::ThreadPool>(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    // Each worker runs one drain loop for the service's whole lifetime;
    // pop() returns nullopt after close()+drain() in the destructor.
    state_->pool->submit([this] {
      while (auto job = state_->queue.pop()) run_job(*job);
    });
  }
}

ExperimentService::~ExperimentService() {
  state_->queue.close();
  for (const auto& job : state_->queue.drain()) {
    util::MutexLock lock(job->mutex);
    if (job->status == JobStatus::kQueued) {
      job->status = JobStatus::kCancelled;
      job->done_cv.notify_all();
    }
  }
  state_->pool.reset();  // joins workers; running jobs finish first
}

JobHandle ExperimentService::submit(const ExperimentSpec& spec) {
  return submit_impl(spec, nullptr);
}

JobHandle ExperimentService::submit(const ExperimentSpec& spec,
                                    ConfigMutator mutator) {
  return submit_impl(spec, &mutator);
}

JobHandle ExperimentService::submit_impl(const ExperimentSpec& spec,
                                         const ConfigMutator* mutator) {
  // The job's identity is computed up front so detail::Job can be
  // constructed with const fields — immutable by type, not by promise.
  const std::uint64_t id =
      state_->next_id.fetch_add(1, std::memory_order_relaxed);
  ExperimentSpec job_spec = spec;
  std::string fingerprint;
  std::string fingerprint_text;
  if (mutator) {
    fingerprint = "uncached-" + std::to_string(id);
  } else {
    if (job_spec.trace.kind == TraceSource::Kind::kCsvFile) {
      // Materialise CSV sources before fingerprinting (throws here, on the
      // submitter, if the file is unreadable).  Hashing the path's bytes
      // and re-reading the file at execution time would let an edit in
      // between store a result under the other content's fingerprint —
      // the one way a wrong result could enter the cache.  The in-memory
      // trace is both the content address and what executes.
      job_spec.trace.inline_trace = materialize_trace(job_spec.trace);
      job_spec.trace.kind = TraceSource::Kind::kInline;
      job_spec.trace.csv_path.clear();
    }
    fingerprint_text = job_spec.fingerprint_text();
    fingerprint = ExperimentSpec::fingerprint_of_text(fingerprint_text);
  }
  auto job = std::make_shared<detail::Job>(
      id, std::move(job_spec), mutator ? *mutator : ConfigMutator(),
      mutator != nullptr, std::move(fingerprint), std::move(fingerprint_text));

  if (job->cacheable) {
    {
      util::MutexLock lock(state_->registry_mutex);
      const auto hit = state_->cache.find(job->fingerprint);
      if (hit != state_->cache.end() &&
          hit->second.fingerprint_text == job->fingerprint_text) {
        state_->lru.splice(state_->lru.begin(), state_->lru,
                           hit->second.lru_it);
        state_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        util::MutexLock job_lock(job->mutex);
        job->result = hit->second.result;
        job->from_cache = true;
        job->status = JobStatus::kDone;
        return JobHandle(job);
      }
      const auto in_it = state_->inflight.find(job->fingerprint);
      if (in_it != state_->inflight.end()) {
        const std::shared_ptr<detail::Job> existing = in_it->second;
        // Same text check as the cache paths: attaching on the hash alone
        // would let a fingerprint collision hand this submitter the other
        // spec's result.  A collider (or a cancelled job still parked in
        // the queue) must not swallow new submissions; claim the slot.
        // The status read gets its own scope (no mid-scope unlock): the
        // verdict cannot change once computed, because a queued job only
        // leaves kCancelled via this registry lock, which we still hold.
        bool attach = false;
        {
          util::MutexLock existing_lock(existing->mutex);
          attach = existing->status != JobStatus::kCancelled &&
                   existing->fingerprint_text == job->fingerprint_text;
        }
        if (attach) {
          state_->coalesced.fetch_add(1, std::memory_order_relaxed);
          return JobHandle(existing);
        }
        in_it->second = job;
      } else {
        state_->inflight.emplace(job->fingerprint, job);
      }
    }
    // Disk probe outside the registry lock (file IO must not stall other
    // submitters); the fingerprint is already claimed in `inflight`, so
    // concurrent duplicates coalesce onto this job while we read.
    if (!options_.cache_dir.empty()) {
      if (auto result = load_disk(*state_->store, *job)) {
        state_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        state_->disk_hits.fetch_add(1, std::memory_order_relaxed);
        complete_job(job, std::move(result), /*from_cache=*/true);
        return JobHandle(job);
      }
    }
  }

  if (!state_->queue.push(job)) {
    fail_job(*state_, job,
             std::make_exception_ptr(std::runtime_error(
                 "ExperimentService: submit after shutdown")));
  }
  return JobHandle(job);
}

void ExperimentService::run_job(const std::shared_ptr<detail::Job>& job) {
  bool cancelled = false;
  {
    util::MutexLock lock(job->mutex);
    if (job->status != JobStatus::kQueued) {
      cancelled = true;  // cancelled while queued: it must never execute
    } else {
      job->status = JobStatus::kRunning;
    }
  }
  if (cancelled) {
    // Drop its coalescing claim so an identical future submit re-runs.
    if (job->cacheable) erase_inflight(*state_, job);
    return;
  }

  state_->executions.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const ExperimentResult> result;
  try {
    result = std::make_shared<const ExperimentResult>(
        detail::run_experiment_impl(job->spec,
                                    job->has_mutator ? &job->mutator : nullptr));
  } catch (...) {
    fail_job(*state_, job, std::current_exception());
    return;
  }
  if (job->cacheable && !options_.cache_dir.empty()) {
    store_disk(*state_->store, *job, *result);
  }
  complete_job(job, std::move(result), /*from_cache=*/false);
}

void ExperimentService::complete_job(
    const std::shared_ptr<detail::Job>& job,
    std::shared_ptr<const ExperimentResult> result, bool from_cache) {
  if (job->cacheable) {
    util::MutexLock lock(state_->registry_mutex);
    insert_cache_locked(*state_, options_.memory_cache_entries, *job, result);
    const auto it = state_->inflight.find(job->fingerprint);
    if (it != state_->inflight.end() && it->second == job) {
      state_->inflight.erase(it);
    }
  }
  util::MutexLock lock(job->mutex);
  // A coalesced holder may have cancelled the job while the disk probe ran
  // (the only completion path reachable from kQueued); its waiters were
  // already told "cancelled", so the status must not flip to done under
  // them.  The result stays cached above for future submissions.
  if (job->status == JobStatus::kCancelled) return;
  job->result = std::move(result);
  job->from_cache = from_cache;
  job->status = JobStatus::kDone;
  job->done_cv.notify_all();
}

std::size_t ExperimentService::executions() const {
  return state_->executions.load(std::memory_order_relaxed);
}
std::size_t ExperimentService::cache_hits() const {
  return state_->cache_hits.load(std::memory_order_relaxed);
}
std::size_t ExperimentService::disk_hits() const {
  return state_->disk_hits.load(std::memory_order_relaxed);
}
std::size_t ExperimentService::coalesced() const {
  return state_->coalesced.load(std::memory_order_relaxed);
}

const ArtifactStore& ExperimentService::artifact_store() const {
  return *state_->store;
}

ExperimentService& ExperimentService::shared() {
  static ExperimentService service([] {
    ServiceOptions options;
    // Configuration comes from the one-shot environment snapshot
    // (util/env_snapshot.hpp): no getenv happens after threads exist.
    if (const auto dir = util::env_snapshot("TEGREC_CACHE_DIR")) {
      options.cache_dir = *dir;
    }
    // Cached comparison results keep their per-step records, so a long-
    // running process iterating distinct configs retains up to this many
    // full results; TEGREC_CACHE_ENTRIES trims (or 0 disables) the LRU
    // when that footprint matters more than hit rate.
    if (const auto entries = util::env_snapshot("TEGREC_CACHE_ENTRIES")) {
      try {
        options.memory_cache_entries =
            static_cast<std::size_t>(util::parse_u64(*entries));
      } catch (const std::exception&) {
        // an unparseable override keeps the default
      }
    }
    if (const auto max_bytes = util::env_snapshot("TEGREC_CACHE_MAX_BYTES")) {
      try {
        options.cache_max_bytes = util::parse_u64(*max_bytes);
      } catch (const std::exception&) {
        // an unparseable cap keeps the cache unbounded
      }
    }
    return options;
  }());
  return service;
}

}  // namespace tegrec::sim
