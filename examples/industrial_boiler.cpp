// Scalability scenario from the paper's conclusion: a larger-scale heat
// source ("industrial boilers and heat exchangers") instrumented with a
// 400-module TEG array.
//
// Demonstrates (a) the industrial side of the workload library — the
// `boiler_economiser` scenario's firing schedule is real process-load
// physics (kSteadyProcess/kLoadRamp segments), not a drive cycle in
// disguise — and (b) the O(N) vs O(N^3) runtime gap that motivates
// INOR/DNOR at this scale.
//
//   ./build/examples/industrial_boiler
#include <chrono>
#include <cstdio>

#include "core/dnor.hpp"
#include "core/ehtr.hpp"
#include "core/fixed_baseline.hpp"
#include "core/inor.hpp"
#include "sim/simulator.hpp"
#include "thermal/scenario.hpp"
#include "thermal/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  // The `boiler_economiser` scenario from the workload library: a 16 m
  // serpentine flue duct instrumented with 400 modules, whose load profile
  // is a real firing schedule (kSteadyProcess held levels stepped through a
  // kLoadRamp) driven by the process-load model — no drive-cycle aliasing.
  // The same name runs through `tegrec_cli simulate --scenario
  // boiler_economiser` and `trace.scenario = boiler_economiser` spec files.
  thermal::TraceGeneratorConfig config =
      thermal::scenario("boiler_economiser");
  const thermal::TemperatureTrace trace = thermal::generate_trace(config);
  std::printf("boiler trace: %zu modules over %.0f m, %.0f s\n",
              trace.num_modules(), config.layout.exchanger.tube_length_m,
              trace.duration_s());
  const auto dt0 = trace.step_delta_t(0);
  std::printf("dT profile at t=0: %.1f K (inlet) .. %.1f K (outlet)\n\n",
              dt0.front(), dt0.back());

  const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
  const power::ConverterParams charger;

  // One-shot search runtime at N=400: the scalability claim in numbers.
  {
    const teg::TegArray array(device, dt0, trace.ambient_c(0));
    const power::Converter conv(charger);
    const auto t0 = std::chrono::steady_clock::now();
    const teg::ArrayConfig c_inor = core::inor_search(array, conv);
    const auto t1 = std::chrono::steady_clock::now();
    const teg::ArrayConfig c_ehtr = core::ehtr_search(array, conv);
    const auto t2 = std::chrono::steady_clock::now();
    const double ms_inor = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_ehtr = std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("single reconfiguration at N=400:\n");
    std::printf("  INOR  %8.2f ms -> n=%zu groups\n", ms_inor, c_inor.num_groups());
    std::printf("  EHTR  %8.2f ms -> n=%zu groups   (%.0fx slower)\n\n", ms_ehtr,
                c_ehtr.num_groups(), ms_ehtr / ms_inor);
  }

  // Full 600 s harvest comparison across the firing schedule (EHTR's 0.5 s
  // period is already marginal against its own runtime at this scale —
  // exactly the paper's point).
  core::DnorReconfigurer dnor(device, charger);
  core::InorReconfigurer inor(device, charger);
  auto baseline = core::FixedBaselineReconfigurer::square_grid(trace.num_modules());

  std::vector<sim::SimulationResult> runs;
  runs.push_back(sim::run_simulation(dnor, trace));
  runs.push_back(sim::run_simulation(inor, trace));
  runs.push_back(sim::run_simulation(baseline, trace));

  util::TextTable table({"scheme", "energy (J)", "overhead (J)", "switches",
                         "avg runtime (ms)", "P/Pideal"});
  for (const auto& r : runs) {
    table.begin_row()
        .add(r.algorithm)
        .add(r.energy_output_j, 1)
        .add(r.switch_overhead_j, 2)
        .add(static_cast<long long>(r.num_switch_events))
        .add(r.avg_runtime_ms, 3)
        .add(r.ratio_to_ideal(), 3);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("DNOR vs hardwired grid at N=400: %+.1f%% energy\n",
              100.0 * (runs[0].energy_output_j / runs[2].energy_output_j - 1.0));
  return 0;
}
