// LineTelemetrySource: the incremental CSV parser must match load_csv's
// rigor line for line (malformed input throws, nothing is silently
// skipped) while surfacing the stream-order conditions a batch loader
// cannot have — gaps, out-of-order lines, stalls — as explicit events.
#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tegrec::sim {
namespace {

/// Builds a source over a StringFeed pre-loaded with `bytes`; the feed
/// pointer stays usable for incremental pushes.
std::pair<StringFeed*, std::unique_ptr<LineTelemetrySource>> make_source(
    const std::string& bytes, TelemetryOptions options = {}) {
  auto feed = std::make_unique<StringFeed>();
  feed->push(bytes);
  StringFeed* raw = feed.get();
  auto source = std::make_unique<LineTelemetrySource>(std::move(feed),
                                                      std::move(options));
  return {raw, std::move(source)};
}

const std::string kHeader = "time_s,ambient_c,t0,t1\n";

std::string row(double t, double ambient, double a, double b) {
  return std::to_string(t) + "," + std::to_string(ambient) + "," +
         std::to_string(a) + "," + std::to_string(b) + "\n";
}

TEST(Telemetry, ParsesGridAndSamplesFromScratch) {
  auto [feed, source] = make_source(kHeader + row(0.0, 25, 30, 31) +
                                    row(0.5, 25, 32, 33) +
                                    row(1.0, 25, 34, 35));
  feed->close();
  EXPECT_FALSE(source->grid_resolved());

  std::vector<TraceSample> samples;
  while (true) {
    const TelemetryEvent event = source->poll();
    if (event.kind == TelemetryEvent::Kind::kEnd) break;
    ASSERT_EQ(event.kind, TelemetryEvent::Kind::kSample);
    EXPECT_TRUE(event.issues.empty());
    samples.push_back(event.sample);
  }
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_TRUE(source->grid_resolved());
  EXPECT_EQ(source->dt_s(), 0.5);        // derived from the first two lines
  EXPECT_EQ(source->num_modules(), 2u);  // derived from the header
  EXPECT_EQ(samples[0].time_s, 0.0);
  EXPECT_EQ(samples[2].time_s, 1.0);
  EXPECT_EQ(samples[1].module_temps_c, (std::vector<double>{32.0, 33.0}));
  EXPECT_EQ(source->samples_emitted(), 3u);
}

TEST(Telemetry, SamplesArriveIncrementallyAcrossPartialLines) {
  auto [feed, source] = make_source(kHeader);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kIdle);
  feed->push("0,25,30,");       // half a line
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kIdle);
  feed->push("31\n0.5,25,32,33\n");
  EXPECT_EQ(source->poll().kind,
            TelemetryEvent::Kind::kSample);  // dt resolved: parked line out
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kSample);
  // A final sample whose line never got its newline still counts at EOF.
  feed->push("1,25,34,35");
  feed->close();
  const TelemetryEvent last = source->poll();
  ASSERT_EQ(last.kind, TelemetryEvent::Kind::kSample);
  EXPECT_EQ(last.sample.time_s, 1.0);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kEnd);
}

TEST(Telemetry, ExplicitGridChecksHeaderAgainstOptions) {
  TelemetryOptions options;
  options.dt_s = 0.5;
  options.num_modules = 2;
  auto [feed, source] = make_source(kHeader + row(0.0, 25, 30, 31), options);
  feed->close();
  // With dt explicit there is no parking: the first line flows through.
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kSample);

  TelemetryOptions wrong;
  wrong.num_modules = 3;  // header says 2
  auto [feed2, source2] = make_source(kHeader + row(0.0, 25, 30, 31), wrong);
  feed2->close();
  EXPECT_THROW(source2->poll(), std::runtime_error);
}

TEST(Telemetry, GapIsFilledByHoldingLastSample) {
  TelemetryOptions options;
  options.dt_s = 0.5;
  options.gap_policy = GapPolicy::kHoldLast;
  auto [feed, source] = make_source(kHeader + row(0.0, 25, 30, 31), options);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kSample);  // t=0
  feed->push(row(2.0, 26, 38, 39));  // grid indices 1..3 never arrive
  feed->close();
  const TelemetryEvent filled = source->poll();
  ASSERT_EQ(filled.kind, TelemetryEvent::Kind::kSample);  // t=0.5, held
  ASSERT_EQ(filled.issues.size(), 1u);
  EXPECT_EQ(filled.issues[0].kind, TelemetryIssue::Kind::kGap);
  EXPECT_EQ(filled.sample.module_temps_c,
            (std::vector<double>{30.0, 31.0}));  // last sample held
  EXPECT_EQ(source->poll().sample.time_s, 1.0);  // second held fill
  EXPECT_EQ(source->poll().sample.time_s, 1.5);  // third held fill
  const TelemetryEvent real = source->poll();
  EXPECT_EQ(real.sample.time_s, 2.0);            // the line that arrived
  EXPECT_EQ(real.sample.module_temps_c, (std::vector<double>{38.0, 39.0}));
  EXPECT_EQ(source->samples_emitted(), 5u);      // fills count as emitted
}

TEST(Telemetry, GapRejectPolicyThrows) {
  TelemetryOptions options;
  options.dt_s = 0.5;
  options.gap_policy = GapPolicy::kReject;
  auto [feed, source] = make_source(kHeader + row(0.0, 25, 30, 31), options);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kSample);
  feed->push(row(1.5, 25, 32, 33));  // skips indices 1 and 2
  feed->close();
  EXPECT_THROW(source->poll(), std::runtime_error);
}

TEST(Telemetry, OutOfOrderLineIsDroppedAndReported) {
  TelemetryOptions options;
  options.dt_s = 0.5;
  auto [feed, source] = make_source(
      kHeader + row(0.0, 25, 30, 31) + row(0.5, 25, 32, 33), options);
  EXPECT_EQ(source->poll().sample.time_s, 0.0);
  EXPECT_EQ(source->poll().sample.time_s, 0.5);
  feed->push(row(0.0, 25, 90, 90));  // a stale duplicate from the transport
  feed->push(row(1.0, 25, 34, 35));
  feed->close();
  const TelemetryEvent event = source->poll();  // stale line folds into this
  ASSERT_EQ(event.kind, TelemetryEvent::Kind::kSample);
  EXPECT_EQ(event.sample.time_s, 1.0);
  EXPECT_EQ(event.sample.module_temps_c, (std::vector<double>{34.0, 35.0}));
  ASSERT_EQ(event.issues.size(), 1u);
  EXPECT_EQ(event.issues[0].kind, TelemetryIssue::Kind::kOutOfOrder);
  EXPECT_EQ(source->samples_emitted(), 3u);
}

TEST(Telemetry, MalformedLinesThrowNamingTheLine) {
  const auto expect_throw_on = [](const std::string& bytes) {
    auto [feed, source] = make_source(bytes);
    feed->close();
    EXPECT_THROW(
        {
          while (source->poll().kind != TelemetryEvent::Kind::kEnd) {
          }
        },
        std::runtime_error)
        << bytes;
  };
  expect_throw_on("wrong,header,t0,t1\n");                    // bad header
  expect_throw_on(kHeader + "0,25,30\n");                     // short row
  expect_throw_on(kHeader + "0,25,30,31,7\n");                // long row
  expect_throw_on(kHeader + "0,25,nan,31\n");                 // non-finite
  expect_throw_on(kHeader + "0,25,abc,31\n");                 // non-numeric
  expect_throw_on(kHeader + row(0, 25, 30, 31) +
                  row(0, 25, 30, 31));                        // dt == 0
  // A derived grid only absorbs writer rounding: 0.76 is nowhere near a
  // multiple of the derived dt = 0.5.
  expect_throw_on(kHeader + row(0, 25, 30, 31) + row(0.5, 25, 32, 33) +
                  row(0.76, 25, 34, 35));                     // off-grid
  // An explicit dt snaps any stamp to its nearest grid point, but a stamp
  // before the pinned epoch has no grid point to snap to.
  TelemetryOptions pinned;
  pinned.dt_s = 0.5;
  pinned.num_modules = 2;
  pinned.epoch_s = 0.0;
  auto [feed, source] =
      make_source(kHeader + row(-0.5, 25, 30, 31), pinned);  // pre-epoch
  feed->close();
  EXPECT_THROW(source->poll(), std::runtime_error);
}

// The resume contract: with an epoch pinned and a start index, replayed
// history is silently dropped (counted, not an incident) and the stream
// rejoins exactly where the restored stepper needs it.
TEST(Telemetry, ResumeSkipsReplayedHistorySilently) {
  TelemetryOptions options;
  options.dt_s = 0.5;
  options.num_modules = 2;
  options.epoch_s = 0.0;
  options.start_index = 2;
  auto [feed, source] = make_source(kHeader + row(0.0, 25, 30, 31) +
                                        row(0.5, 25, 32, 33) +
                                        row(1.0, 25, 34, 35) +
                                        row(1.5, 25, 36, 37),
                                    options);
  feed->close();
  const TelemetryEvent first = source->poll();
  ASSERT_EQ(first.kind, TelemetryEvent::Kind::kSample);
  EXPECT_TRUE(first.issues.empty());  // replay is not an incident
  EXPECT_EQ(first.sample.time_s, 1.0);
  EXPECT_EQ(source->poll().sample.time_s, 1.5);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kEnd);
  EXPECT_EQ(source->replayed(), 2u);
  EXPECT_EQ(source->samples_emitted(), 2u);
}

// A stream that rejoins *after* the resume point has a leading gap with
// nothing to hold — that must be loud under either policy.
TEST(Telemetry, ResumeRejoiningPastStartIndexIsLoud) {
  TelemetryOptions options;
  options.dt_s = 0.5;
  options.num_modules = 2;
  options.epoch_s = 0.0;
  options.start_index = 2;
  auto [feed, source] =
      make_source(kHeader + row(2.0, 25, 34, 35), options);  // index 4 > 2
  feed->close();
  EXPECT_THROW(source->poll(), std::runtime_error);
}

TEST(Telemetry, BlankLinesAreTolerated) {
  auto [feed, source] = make_source(kHeader + "\n" + row(0.0, 25, 30, 31) +
                                    "\n" + row(0.5, 25, 32, 33));
  feed->close();
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kSample);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kSample);
  EXPECT_EQ(source->poll().kind, TelemetryEvent::Kind::kEnd);
}

TEST(Telemetry, StringFeedReportsLifecycle) {
  StringFeed feed;
  std::string chunk;
  EXPECT_EQ(feed.poll(chunk), ByteFeed::Status::kIdle);
  feed.push("abc");
  EXPECT_EQ(feed.poll(chunk), ByteFeed::Status::kData);
  EXPECT_EQ(chunk, "abc");
  feed.close();
  EXPECT_EQ(feed.poll(chunk), ByteFeed::Status::kEnd);
}

}  // namespace
}  // namespace tegrec::sim
