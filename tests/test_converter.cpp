#include "power/converter.hpp"

#include <gtest/gtest.h>

namespace tegrec::power {
namespace {

TEST(Converter, PeakEfficiencyAtOutputVoltage) {
  const Converter conv;
  const double vout = conv.params().output_voltage_v;
  const double at_peak = conv.efficiency(vout, 100.0);
  for (double vin : {5.0, 8.0, 20.0, 30.0}) {
    EXPECT_LT(conv.efficiency(vin, 100.0), at_peak) << "vin=" << vin;
  }
}

TEST(Converter, EfficiencyFallsMonotonicallyAwayFromPeak) {
  const Converter conv;
  const double vout = conv.params().output_voltage_v;
  double prev = conv.efficiency(vout, 100.0);
  for (double vin = vout + 2.0; vin <= 34.0; vin += 2.0) {
    const double e = conv.efficiency(vin, 100.0);
    EXPECT_LT(e, prev);
    prev = e;
  }
  prev = conv.efficiency(vout, 100.0);
  for (double vin = vout - 2.0; vin >= 5.0; vin -= 2.0) {
    const double e = conv.efficiency(vin, 100.0);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Converter, OutsideWindowIsZero) {
  const Converter conv;
  EXPECT_DOUBLE_EQ(conv.efficiency(4.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(conv.efficiency(40.0, 100.0), 0.0);
  EXPECT_FALSE(conv.input_in_range(4.0));
  EXPECT_TRUE(conv.input_in_range(13.8));
}

TEST(Converter, NonPositivePowerIsZeroEfficiency) {
  const Converter conv;
  EXPECT_DOUBLE_EQ(conv.efficiency(13.8, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(conv.efficiency(13.8, -5.0), 0.0);
}

TEST(Converter, LightLoadDerating) {
  const Converter conv;
  EXPECT_LT(conv.efficiency(13.8, 0.5), conv.efficiency(13.8, 50.0));
}

TEST(Converter, EfficiencyBounded) {
  const Converter conv;
  for (double vin = 5.0; vin <= 36.0; vin += 1.0) {
    for (double pin : {0.1, 1.0, 10.0, 100.0}) {
      const double e = conv.efficiency(vin, pin);
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, conv.params().eta_peak);
    }
  }
}

TEST(Converter, OutputPowerNeverExceedsInput) {
  const Converter conv;
  for (double pin : {0.5, 5.0, 50.0, 500.0}) {
    EXPECT_LE(conv.output_power_w(13.8, pin), pin);
  }
}

TEST(Converter, InputPowerClampedAtThermalLimit) {
  const Converter conv;
  const double at_limit =
      conv.output_power_w(13.8, conv.params().max_input_power_w);
  const double beyond =
      conv.output_power_w(13.8, 2.0 * conv.params().max_input_power_w);
  EXPECT_NEAR(beyond, at_limit, 1e-9);
}

TEST(Converter, InvalidParamsThrow) {
  ConverterParams p;
  p.output_voltage_v = 0.0;
  EXPECT_THROW(Converter{p}, std::invalid_argument);
  p = ConverterParams{};
  p.eta_peak = 1.2;
  EXPECT_THROW(Converter{p}, std::invalid_argument);
  p = ConverterParams{};
  p.min_input_v = 10.0;
  p.max_input_v = 5.0;
  EXPECT_THROW(Converter{p}, std::invalid_argument);
}

TEST(Converter, GroupRangeBracketsOutputVoltage) {
  const Converter conv;
  const double group_vmpp = 1.5;
  const auto range = conv.efficient_group_range(group_vmpp, 100);
  // The window [nmin, nmax] must bracket vout/group_vmpp = 9.2.
  EXPECT_LE(range.nmin, 10u);
  EXPECT_GE(range.nmax, 9u);
  EXPECT_LE(range.nmin, range.nmax);
  // String voltages at the edges stay within the efficient band.
  EXPECT_GE(static_cast<double>(range.nmax) * group_vmpp,
            conv.params().output_voltage_v / 2.0 - group_vmpp);
  EXPECT_LE(static_cast<double>(range.nmin) * group_vmpp,
            conv.params().output_voltage_v * 2.0);
}

TEST(Converter, GroupRangeClampedToArraySize) {
  const Converter conv;
  const auto range = conv.efficient_group_range(0.2, 12);
  EXPECT_LE(range.nmax, 12u);
  EXPECT_GE(range.nmin, 1u);
}

TEST(Converter, GroupRangeDegenerateInputs) {
  const Converter conv;
  const auto r1 = conv.efficient_group_range(0.0, 100);
  EXPECT_EQ(r1.nmin, 1u);
  EXPECT_EQ(r1.nmax, 1u);
  const auto r2 = conv.efficient_group_range(1.0, 0);
  EXPECT_EQ(r2.nmin, 1u);
  EXPECT_EQ(r2.nmax, 1u);
}

// The converter-aware group window shrinks as modules get hotter (higher
// per-group voltage needs fewer series groups).
TEST(Converter, WindowMovesWithGroupVoltage) {
  const Converter conv;
  const auto cold = conv.efficient_group_range(0.5, 100);
  const auto hot = conv.efficient_group_range(2.5, 100);
  EXPECT_GT(cold.nmin, hot.nmin);
  EXPECT_GT(cold.nmax, hot.nmax);
}

}  // namespace
}  // namespace tegrec::power
