// Electrical model of a single TEG module at an operating point.
//
// A Module is a value type binding DeviceParams to one (dT, mean
// temperature) operating point.  It exposes the Thevenin quantities and
// the maximum power point:
//
//   Voc = alpha_total * dT           V(I) = Voc - I * R
//   IMPP = Voc / (2R)   VMPP = Voc/2   PMPP = Voc^2 / (4R)
//
// plus I-V / P-V sweeps used to regenerate the paper's Fig. 1.
#pragma once

#include <vector>

#include "teg/device.hpp"

namespace tegrec::teg {

/// One (V, I, P) sample of a module sweep.
struct IvPoint {
  double voltage_v = 0.0;
  double current_a = 0.0;
  double power_w = 0.0;
};

class Module {
 public:
  /// Builds a module at hot/cold face temperatures (cold face == heatsink ==
  /// ambient per Section II of the paper).
  Module(const DeviceParams& params, double hot_side_c, double cold_side_c);

  /// Convenience: operating point given dT directly, mean temperature
  /// defaulting to cold + dT/2.
  static Module from_delta_t(const DeviceParams& params, double delta_t_k,
                             double cold_side_c = 25.0);

  double delta_t_k() const { return delta_t_k_; }
  double open_circuit_voltage_v() const { return voc_v_; }
  double internal_resistance_ohm() const { return r_ohm_; }

  /// Terminal voltage at a drawn current (linear source; negative values
  /// indicate operation past short circuit).
  double voltage_at_current(double current_a) const;
  /// Current delivered into a terminal voltage.
  double current_at_voltage(double voltage_v) const;
  /// Output power P = V * I at a terminal voltage.
  double power_at_voltage(double voltage_v) const;
  /// Output power at a drawn current.
  double power_at_current(double current_a) const;
  /// Output power into a load resistance (Eq. 2 of the paper).
  double power_into_load(double r_load_ohm) const;

  double mpp_current_a() const { return voc_v_ / (2.0 * r_ohm_); }
  double mpp_voltage_v() const { return voc_v_ / 2.0; }
  double mpp_power_w() const { return voc_v_ * voc_v_ / (4.0 * r_ohm_); }

  /// Uniform I-V/P-V sweep from V=0 to V=Voc with `points` samples.
  std::vector<IvPoint> iv_sweep(std::size_t points) const;

 private:
  double delta_t_k_ = 0.0;
  double voc_v_ = 0.0;
  double r_ohm_ = 0.0;
};

/// Vectorised helpers used by the reconfiguration algorithms: per-module
/// MPP current / power for a temperature-difference distribution.
std::vector<double> mpp_currents(const DeviceParams& params,
                                 const std::vector<double>& delta_t_k,
                                 double cold_side_c = 25.0);
std::vector<double> mpp_powers(const DeviceParams& params,
                               const std::vector<double>& delta_t_k,
                               double cold_side_c = 25.0);
/// Sum of module MPP powers == P_ideal of the paper's Fig. 7.
double ideal_power_w(const DeviceParams& params,
                     const std::vector<double>& delta_t_k,
                     double cold_side_c = 25.0);

}  // namespace tegrec::teg
