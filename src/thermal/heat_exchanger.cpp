#include "thermal/heat_exchanger.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/float_cmp.hpp"

namespace tegrec::thermal {

double crossflow_effectiveness(double ntu, double cr) {
  if (ntu < 0.0) throw std::invalid_argument("effectiveness: NTU < 0");
  if (cr < 0.0 || cr > 1.0) throw std::invalid_argument("effectiveness: Cr out of [0,1]");
  if (util::is_exactly_zero(ntu)) return 0.0;  // exact degenerate case
  if (cr < 1e-12) return 1.0 - std::exp(-ntu);
  const double n022 = std::pow(ntu, 0.22);
  const double inner = std::exp(-cr * std::pow(ntu, 0.78)) - 1.0;
  const double eps = 1.0 - std::exp(n022 / cr * inner);
  return std::clamp(eps, 0.0, 1.0);
}

HeatExchangerSolution solve(const HeatExchangerParams& params,
                            const StreamConditions& cond) {
  if (cond.hot_capacity_w_k <= 0.0 || cond.cold_capacity_w_k <= 0.0) {
    throw std::invalid_argument("heat_exchanger::solve: non-positive capacity rate");
  }
  if (cond.hot_inlet_c < cond.cold_inlet_c) {
    throw std::invalid_argument("heat_exchanger::solve: hot inlet below cold inlet");
  }
  const double cmin = std::min(cond.hot_capacity_w_k, cond.cold_capacity_w_k);
  const double cmax = std::max(cond.hot_capacity_w_k, cond.cold_capacity_w_k);
  const double cr = cmin / cmax;

  HeatExchangerSolution sol;
  sol.ntu = params.ua_w_k() / cmin;
  sol.effectiveness = crossflow_effectiveness(sol.ntu, cr);
  const double qmax = cmin * (cond.hot_inlet_c - cond.cold_inlet_c);
  sol.heat_rate_w = sol.effectiveness * qmax;
  sol.hot_outlet_c = cond.hot_inlet_c - sol.heat_rate_w / cond.hot_capacity_w_k;
  sol.cold_outlet_c = cond.cold_inlet_c + sol.heat_rate_w / cond.cold_capacity_w_k;
  sol.cold_mean_c = 0.5 * (cond.cold_inlet_c + sol.cold_outlet_c);
  return sol;
}

double temperature_at(const HeatExchangerParams& params,
                      const StreamConditions& cond,
                      const HeatExchangerSolution& sol, double d_m) {
  if (d_m < 0.0 || d_m > params.tube_length_m) {
    throw std::invalid_argument("temperature_at: d outside tube");
  }
  // Eq. (1): decay referenced to the cold-stream capacity rate, as in the
  // paper's derivation.
  const double decay = std::exp(-params.k_per_length_w_mk / cond.cold_capacity_w_k * d_m);
  return (cond.hot_inlet_c - sol.cold_mean_c) * decay + sol.cold_mean_c;
}

std::vector<double> temperature_profile(const HeatExchangerParams& params,
                                        const StreamConditions& cond,
                                        std::size_t n) {
  if (n == 0) throw std::invalid_argument("temperature_profile: n == 0");
  const HeatExchangerSolution sol = solve(params, cond);
  std::vector<double> out(n);
  const double pitch = params.tube_length_m / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = temperature_at(params, cond, sol, (static_cast<double>(i) + 0.5) * pitch);
  }
  return out;
}

}  // namespace tegrec::thermal
