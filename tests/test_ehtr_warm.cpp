// Differential harness for the warm-started actuation path (ISSUE 10).
//
// The warm-start machinery in ehtr_search is an equivalence theorem, not a
// behaviour: for every input and every warm setting the chosen config and
// its charger-aware score must be *bit-identical* to the cold full sweep.
// Likewise the SIMD scoring kernel in ArrayEvaluator must return port
// models bit-identical to the scalar oracle.  Every comparison here is
// EXPECT_EQ on exact doubles — no tolerances, by design: the moment either
// path diverges in the last ulp the caching/fingerprint story breaks.
#include "core/ehtr.hpp"

#include <cmath>
#include <cstddef>
#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/objective.hpp"
#include "teg/array_evaluator.hpp"
#include "util/rng.hpp"

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

/// Exhaust-like profile that drifts slowly between control periods: decaying
/// base shape, a slow travelling wave, small per-module noise, and a per-step
/// warm-up ramp.  Consecutive steps move the optimum a little — exactly the
/// regime the warm start exploits.
std::vector<double> drifting_field(util::Rng& rng, std::size_t n, int step) {
  std::vector<double> dts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    dts[i] = 4.0 + 38.0 * std::exp(-1.9 * x) +
             3.0 * std::sin(9.0 * x + 0.35 * step) + rng.uniform(0.0, 1.5) +
             0.4 * step;
  }
  return dts;
}

TEST(EhtrWarm, BitIdenticalToColdAcrossSeedsAndDriftingFields) {
  const std::size_t n = 64;
  const power::Converter conv(kConv);
  for (unsigned seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    std::size_t incumbent = 0;  // first step: no held config, window seed
    for (int step = 0; step < 5; ++step) {
      const teg::TegArray array(kDev, drifting_field(rng, n, step));
      const teg::ArrayConfig cold = ehtr_search(array, conv);

      EhtrWarmStart warm;
      warm.enabled = true;
      warm.incumbent_groups = incumbent;
      warm.width = 8;
      EhtrSearchStats stats;
      const teg::ArrayConfig hot =
          ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 0, warm,
                      &stats);

      ASSERT_EQ(hot, cold) << "seed " << seed << " step " << step;
      EXPECT_EQ(config_power_w(array, conv, hot),
                config_power_w(array, conv, cold));
      EXPECT_TRUE(stats.warm_used);
      EXPECT_EQ(stats.max_groups, n);
      EXPECT_LE(stats.groups_certified, stats.max_groups);
      incumbent = hot.num_groups();  // carry like the controller does
    }
  }
}

TEST(EhtrWarm, BitIdenticalAcrossThreadsDpKindsAndCaps) {
  const std::size_t n = 48;
  const power::Converter conv(kConv);
  const PartitionDp kinds[] = {PartitionDp::kDivideAndConquer,
                               PartitionDp::kLegacyCubic};
  const std::size_t caps[] = {0, 7, 24};       // 0 = full sweep
  const std::size_t threads[] = {1, 4, 0};     // 0 = hardware concurrency
  util::Rng rng(1234);
  for (unsigned trial = 0; trial < 5; ++trial) {
    const teg::TegArray array(kDev, drifting_field(rng, n, int(trial)));
    for (const PartitionDp dp : kinds) {
      for (const std::size_t cap : caps) {
        // Cold reference: single-threaded full solve of this (dp, cap).
        const teg::ArrayConfig cold = ehtr_search(array, conv, 1, dp, cap);
        const double cold_power = config_power_w(array, conv, cold);
        for (const std::size_t nt : threads) {
          EhtrWarmStart warm;
          warm.enabled = true;
          warm.incumbent_groups = (trial % 2) ? cold.num_groups() : 0;
          warm.width = 4;  // small: forces the certified extension loop
          const teg::ArrayConfig hot = ehtr_search(array, conv, nt, dp, cap, warm);
          ASSERT_EQ(hot, cold)
              << "dp=" << int(dp) << " cap=" << cap << " threads=" << nt;
          EXPECT_EQ(config_power_w(array, conv, hot), cold_power);
        }
      }
    }
  }
}

TEST(EhtrWarm, ExtremeWarmSettingsStillMatchCold) {
  // width = 1 maximises reliance on the certified extension loop; an absurd
  // incumbent (beyond max_groups) must fall back to the window seed; and a
  // huge width degenerates to the cold sweep outright.
  const std::size_t n = 56;
  const power::Converter conv(kConv);
  util::Rng rng(77);
  const teg::TegArray array(kDev, drifting_field(rng, n, 0));
  const teg::ArrayConfig cold = ehtr_search(array, conv);
  const double cold_power = config_power_w(array, conv, cold);

  struct Case {
    std::size_t incumbent;
    std::size_t width;
  };
  const Case cases[] = {{0, 1}, {cold.num_groups(), 1}, {1, 1},
                        {n, 1},  {n + 1000, 3},          {0, 100000}};
  for (const Case& c : cases) {
    EhtrWarmStart warm;
    warm.enabled = true;
    warm.incumbent_groups = c.incumbent;
    warm.width = c.width;
    EhtrSearchStats stats;
    const teg::ArrayConfig hot =
        ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 0, warm,
                    &stats);
    ASSERT_EQ(hot, cold) << "incumbent=" << c.incumbent << " width=" << c.width;
    EXPECT_EQ(config_power_w(array, conv, hot), cold_power);
    EXPECT_TRUE(stats.warm_used);
  }
}

TEST(EhtrWarm, PruningActuallyEngagesOnLargeArrays) {
  // On a big array with the default 400 W converter cap the score bound
  // falls like 1/n and must certify a tail away — otherwise the warm path
  // is a no-op and the bench's speedup claim is vacuous.
  const std::size_t n = 2000;
  std::vector<double> dts(n);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    dts[i] = 4.0 + 38.0 * std::exp(-1.9 * x) + rng.uniform(0.0, 1.0);
  }
  const teg::TegArray array(kDev, dts);
  const power::Converter conv(kConv);

  EhtrWarmStart warm;
  warm.enabled = true;
  warm.incumbent_groups = 0;  // seed from the converter window
  warm.width = 64;
  EhtrSearchStats stats;
  const teg::ArrayConfig hot =
      ehtr_search(array, conv, 0, PartitionDp::kDivideAndConquer, 0, warm,
                  &stats);
  EXPECT_TRUE(stats.warm_used);
  EXPECT_EQ(stats.max_groups, n);
  EXPECT_LT(stats.groups_certified, n)
      << "bound never pruned anything — warm start degenerated to cold";
  // And the certified result still matches the cold sweep exactly.
  const teg::ArrayConfig cold = ehtr_search(array, conv, 0);
  ASSERT_EQ(hot, cold);
  EXPECT_EQ(config_power_w(array, conv, hot), config_power_w(array, conv, cold));
}

TEST(EhtrWarm, DegenerateFieldsDisableWarmButStayIdentical) {
  // Non-finite module states must force the cold path (warm_used = false)
  // and still return exactly what cold search returns.
  const std::size_t n = 24;
  // (Infinity is rejected by Module's validity range at construction; NaN
  // passes the range comparisons and reaches the search as non-finite voc.)
  std::vector<double> dts(n, 20.0);
  dts[5] = std::numeric_limits<double>::quiet_NaN();
  dts[17] = std::numeric_limits<double>::quiet_NaN();
  const teg::TegArray array(kDev, dts);
  const power::Converter conv(kConv);

  const teg::ArrayConfig cold = ehtr_search(array, conv);
  EhtrWarmStart warm;
  warm.enabled = true;
  warm.incumbent_groups = 4;
  warm.width = 2;
  EhtrSearchStats stats;
  const teg::ArrayConfig hot =
      ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 0, warm,
                  &stats);
  ASSERT_EQ(hot, cold);
  EXPECT_FALSE(stats.warm_used);
  EXPECT_EQ(stats.groups_certified, stats.max_groups);
}

TEST(EhtrWarm, ControllerDecisionStreamIsBitIdentical) {
  // End-to-end: a warm EhtrReconfigurer must emit the exact decision stream
  // (configs, invocation flags, energies) of a cold one, with the incumbent
  // threading through consecutive actuations as the temperature drifts.
  const std::size_t n = 64;
  const power::Converter conv(kConv);
  EhtrReconfigurer cold(kDev, kConv, 0.5, 1, 0, /*warm_start=*/false);
  EhtrReconfigurer hot(kDev, kConv, 0.5, 1, 0, /*warm_start=*/true,
                       /*warm_width=*/8);
  EXPECT_EQ(hot.algorithm_cost().budget_multiplier,
            cold.algorithm_cost().budget_multiplier);

  util::Rng rng(11);
  for (int step = 0; step < 10; ++step) {
    const std::vector<double> dts = drifting_field(rng, n, step);
    const double t = 0.5 * step;
    const UpdateResult rc = cold.update(t, dts, 25.0);
    const UpdateResult rh = hot.update(t, dts, 25.0);
    ASSERT_EQ(rh.config, rc.config) << "step " << step;
    EXPECT_EQ(rh.invoked, rc.invoked);
    EXPECT_EQ(rh.switched, rc.switched);
    EXPECT_EQ(rh.actuate, rc.actuate);
    const teg::TegArray array(kDev, dts);
    EXPECT_EQ(config_power_w(array, conv, rh.config),
              config_power_w(array, conv, rc.config));
  }
}

// ---------------------------------------------------------- SIMD kernels

/// Random strictly increasing group starts beginning at 0.
std::vector<std::size_t> random_starts(util::Rng& rng, std::size_t n,
                                       double density) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 1; i < n; ++i) {
    if (rng.bernoulli(density)) starts.push_back(i);
  }
  return starts;
}

TEST(ArrayEvaluatorKernels, SimdMatchesScalarBitwise) {
  if (!teg::ArrayEvaluator::simd_available()) {
    GTEST_SKIP() << "host CPU lacks the SIMD ISA; scalar-only build path";
  }
  util::Rng rng(42);
  for (const std::size_t n : {std::size_t{64}, std::size_t{1024},
                              std::size_t{10000}}) {
    std::vector<double> dts(n);
    for (std::size_t i = 0; i < n; ++i) dts[i] = rng.uniform(2.0, 45.0);
    const teg::TegArray array(kDev, dts);
    teg::ArrayEvaluator ev(array);

    std::vector<std::vector<std::size_t>> cases;
    cases.push_back({0});  // one big parallel group
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    cases.push_back(all);  // all-series: n singleton groups
    for (int trial = 0; trial < 12; ++trial) {
      cases.push_back(random_starts(rng, n, rng.uniform(0.02, 0.98)));
    }

    for (const std::vector<std::size_t>& starts : cases) {
      ev.set_kernel(teg::ScoringKernel::kScalar);
      const teg::LinearSource a = ev.string_equivalent(starts);
      ev.set_kernel(teg::ScoringKernel::kSimd);
      const teg::LinearSource b = ev.string_equivalent(starts);
      ev.set_kernel(teg::ScoringKernel::kAuto);
      const teg::LinearSource c = ev.string_equivalent(starts);
      EXPECT_EQ(a.voc_v, b.voc_v) << "n=" << n << " groups=" << starts.size();
      EXPECT_EQ(a.r_ohm, b.r_ohm) << "n=" << n << " groups=" << starts.size();
      EXPECT_EQ(a.voc_v, c.voc_v);
      EXPECT_EQ(a.r_ohm, c.r_ohm);
    }
  }
}

TEST(ArrayEvaluatorKernels, KernelSelectionContract) {
  std::vector<double> dts(16, 20.0);
  const teg::TegArray array(kDev, dts);
  teg::ArrayEvaluator ev(array);
  EXPECT_EQ(ev.kernel(), teg::ScoringKernel::kAuto);
  ev.set_kernel(teg::ScoringKernel::kScalar);
  EXPECT_EQ(ev.kernel(), teg::ScoringKernel::kScalar);
  if (teg::ArrayEvaluator::simd_available()) {
    EXPECT_NO_THROW(ev.set_kernel(teg::ScoringKernel::kSimd));
    EXPECT_EQ(ev.kernel(), teg::ScoringKernel::kSimd);
  } else {
    EXPECT_THROW(ev.set_kernel(teg::ScoringKernel::kSimd),
                 std::invalid_argument);
    EXPECT_EQ(ev.kernel(), teg::ScoringKernel::kScalar);  // unchanged
  }
  EXPECT_NO_THROW(ev.set_kernel(teg::ScoringKernel::kAuto));
}

TEST(ArrayEvaluatorKernels, KernelChoiceDoesNotMoveEhtrDecisions) {
  // Belt and braces on top of bitwise port-model identity: the full search
  // built over the evaluator lands on the same config under every kernel
  // (ehtr_search constructs its own evaluator with kAuto, so this pins the
  // dispatch default against the scalar oracle via config scoring).
  const std::size_t n = 96;
  util::Rng rng(9);
  const teg::TegArray array(kDev, drifting_field(rng, n, 0));
  const power::Converter conv(kConv);
  const teg::ArrayConfig chosen = ehtr_search(array, conv);
  teg::ArrayEvaluator ev(array);
  ev.set_kernel(teg::ScoringKernel::kScalar);
  const double scalar_power = config_power_w(ev, conv, chosen);
  teg::ArrayEvaluator ev2(array);  // kAuto
  EXPECT_EQ(config_power_w(ev2, conv, chosen), scalar_power);
}

}  // namespace
}  // namespace tegrec::core
