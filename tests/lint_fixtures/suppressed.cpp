// Fixture: inline suppressions.  Scanned as if under src/core/, where
// every rule applies.  Exactly ONE finding is expected (LINE 16): an
// allow() for the wrong rule must not suppress anything else.
#include <chrono>

void g(double x) {
  // Same-line form:
  auto t0 = std::chrono::steady_clock::now();  // tegrec-lint: allow(determinism)
  // Preceding comment-only line form:
  // tegrec-lint: allow(float-eq)
  const bool z = 1.0 == 2.0;
  // Multi-rule form:
  // tegrec-lint: allow(determinism, float-eq)
  const bool both = (x == 0.5) && (std::chrono::steady_clock::now() == t0);
  // Wrong rule — the float-eq finding below must survive:
  const bool leak = x == 3.5;  // tegrec-lint: allow(determinism)
  (void)t0;
  (void)z;
  (void)both;
  (void)leak;
}
