#include "sim/montecarlo.hpp"

#include <stdexcept>

namespace tegrec::sim {

MonteCarloSummary run_monte_carlo(const MonteCarloOptions& options) {
  if (options.num_seeds == 0) {
    throw std::invalid_argument("run_monte_carlo: zero seeds");
  }
  if (!options.comparison.include_dnor || !options.comparison.include_baseline) {
    throw std::invalid_argument(
        "run_monte_carlo: DNOR and baseline must both be enabled");
  }
  MonteCarloSummary summary;
  summary.samples.reserve(options.num_seeds);
  for (std::size_t k = 0; k < options.num_seeds; ++k) {
    thermal::TraceGeneratorConfig config = options.base_trace;
    config.seed = options.first_seed + k;
    const thermal::TemperatureTrace trace = thermal::generate_trace(config);
    const ComparisonResult res =
        run_standard_comparison(trace, options.comparison);

    MonteCarloSample sample;
    sample.seed = config.seed;
    sample.dnor_energy_j = res.by_name("DNOR").energy_output_j;
    sample.baseline_energy_j = res.by_name("Baseline").energy_output_j;
    sample.gain = res.dnor_gain_over_baseline();
    sample.dnor_overhead_j = res.by_name("DNOR").switch_overhead_j;
    sample.dnor_switches =
        static_cast<double>(res.by_name("DNOR").num_switch_events);

    summary.gain.add(sample.gain);
    summary.dnor_energy_j.add(sample.dnor_energy_j);
    summary.dnor_overhead_j.add(sample.dnor_overhead_j);
    summary.dnor_switches.add(sample.dnor_switches);
    summary.samples.push_back(sample);
  }
  return summary;
}

}  // namespace tegrec::sim
