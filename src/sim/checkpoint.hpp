// Versioned, fingerprint-stamped on-disk checkpoints for streaming runs.
//
// A streamed simulation (sim/stepper.hpp, sim/stream_server.hpp) is only
// as durable as its checkpoint: the codec here serialises one
// StepperState — plus the caller's carry-along lines, e.g. a server's
// decision log — into a line-structured text artifact in the result_io
// dialect (magic line, `key = value` scalars, `# table rows = N` CSV
// tables at exact precision), published exclusively through
// util::atomic_write_file so a reader can never observe a torn file.
//
// Every checkpoint embeds the *configuration stamp* of the run that wrote
// it: the StreamConfig's canonical fingerprint text, verbatim.  decode
// compares that text (not just a hash) against the resuming run's stamp
// and throws on any difference, so a checkpoint can never resume against
// a different scheme, cadence, array size, or physics spec — changing any
// result-affecting field invalidates old checkpoints loudly instead of
// splicing two incompatible histories.  Unlike the result cache (where a
// decode failure is just a miss), every decode failure here throws
// std::runtime_error: silently restarting from scratch would discard the
// operator's history, so corrupt, truncated, or mismatched checkpoints
// must be loud.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/reconfigurer.hpp"
#include "sim/stepper.hpp"

namespace tegrec::sim {

/// Bump when the checkpoint serialisation (or the semantics of any field
/// in it) changes; old checkpoints then fail the magic check loudly
/// instead of mis-restoring.
inline constexpr int kCheckpointSchemaVersion = 1;

/// Reconfiguration scheme of one streamed array.
enum class StreamScheme { kDnor, kInor, kEhtr, kBaseline };

/// Scheme name as spelled on the CLI and in the fingerprint text
/// ("dnor" / "inor" / "ehtr" / "baseline"); parse is the exact inverse
/// and throws std::invalid_argument on unknown names.
std::string stream_scheme_name(StreamScheme scheme);
StreamScheme parse_stream_scheme(const std::string& name);

/// Everything that pins down one streamed simulation: which controller,
/// on what cadence, over what array, under which physics options.  The
/// canonical fingerprint text below covers every result-affecting field
/// (sim's execution hints excluded), so two StreamConfigs with equal
/// stamps produce bit-identical decision streams from equal telemetry.
struct StreamConfig {
  StreamScheme scheme = StreamScheme::kDnor;
  double control_period_s = 0.5;  ///< controller cadence (paper: 0.5 s)
  double dt_s = 0.5;              ///< telemetry grid the stepper runs on
  std::size_t num_modules = 0;
  SimulationOptions sim;
};

/// Builds the scheme's controller exactly as the batch comparison harness
/// does (sim/experiment.cpp), so a streamed run over a trace's samples is
/// bit-identical to the batch run over the trace.
std::unique_ptr<core::Reconfigurer> make_stream_controller(
    const StreamConfig& config);

/// Canonical `key = value` stamp of every result-affecting StreamConfig
/// field (doubles at %.17g; sim.* lines via
/// simulation_options_fingerprint_text).
std::string stream_config_fingerprint_text(const StreamConfig& config);

/// 32-hex-digit content hash of the stamp (same dual-basis construction
/// as the experiment-spec fingerprint, plus the checkpoint schema
/// version).  Convenience for naming checkpoint files; the codec always
/// compares the full text, never just this hash.
std::string stream_config_fingerprint(const StreamConfig& config);

/// A decoded checkpoint: the stepper snapshot plus the caller's
/// carry-along lines, byte-preserved in order.
struct DecodedCheckpoint {
  StepperState state;
  std::vector<std::string> extra_lines;
};

/// Serialises state + extras under the given configuration stamp.
/// `extra_lines` must not contain embedded newlines (throws
/// std::invalid_argument) — each entry is one line of the artifact.
std::string encode_checkpoint(const StepperState& state,
                              const std::string& fingerprint_text,
                              const std::vector<std::string>& extra_lines = {});

/// Parses a checkpoint and verifies its embedded stamp equals
/// `expected_fingerprint_text`.  Throws std::runtime_error on bad magic,
/// truncation, malformed fields, internal inconsistency, or a stamp
/// mismatch — every failure is loud (see the header comment for why).
DecodedCheckpoint decode_checkpoint(const std::string& text,
                                    const std::string& expected_fingerprint_text);

}  // namespace tegrec::sim
