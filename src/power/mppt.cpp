#include "power/mppt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tegrec::power {

namespace {

OperatingPoint evaluate(double voc_v, double r_ohm, const Converter& converter,
                        double current_a) {
  OperatingPoint pt;
  pt.current_a = current_a;
  pt.voltage_v = voc_v - current_a * r_ohm;
  pt.array_power_w = std::max(0.0, pt.voltage_v * current_a);
  pt.output_power_w = converter.output_power_w(pt.voltage_v, pt.array_power_w);
  return pt;
}

OperatingPoint evaluate(const teg::SeriesString& string,
                        const Converter& converter, double current_a) {
  return evaluate(string.total_voc_v(), string.total_resistance_ohm(),
                  converter, current_a);
}

}  // namespace

OperatingPoint optimal_operating_point(const teg::SeriesString& string,
                                       const Converter& converter, double tol_a) {
  return optimal_operating_point(string.total_voc_v(),
                                 string.total_resistance_ohm(), converter,
                                 tol_a);
}

OperatingPoint optimal_operating_point(double voc_v, double r_ohm,
                                       const Converter& converter, double tol_a) {
  if (tol_a <= 0.0) throw std::invalid_argument("optimal_operating_point: tol <= 0");
  const double isc = voc_v / r_ohm;
  double lo = 0.0;
  double hi = isc;
  // Post-converter power is unimodal in I on [0, Isc]: P(I) is concave and
  // eta(V(I)) is smooth; golden-section is robust to the flat zero regions
  // outside the converter window.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = evaluate(voc_v, r_ohm, converter, x1).output_power_w;
  double f2 = evaluate(voc_v, r_ohm, converter, x2).output_power_w;
  while (hi - lo > tol_a) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = evaluate(voc_v, r_ohm, converter, x2).output_power_w;
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = evaluate(voc_v, r_ohm, converter, x1).output_power_w;
    }
  }
  return evaluate(voc_v, r_ohm, converter, 0.5 * (lo + hi));
}

OperatingPoint array_mpp_operating_point(const teg::SeriesString& string) {
  OperatingPoint pt;
  pt.current_a = string.mpp_current_a();
  pt.voltage_v = string.mpp_voltage_v();
  pt.array_power_w = string.mpp_power_w();
  pt.output_power_w = pt.array_power_w;  // ideal charger
  return pt;
}

PerturbObserveTracker::PerturbObserveTracker(double step_a) : step_a_(step_a) {
  if (step_a <= 0.0) throw std::invalid_argument("PerturbObserveTracker: step <= 0");
}

void PerturbObserveTracker::reset(double current_a) {
  current_a_ = std::max(0.0, current_a);
  prev_power_w_ = 0.0;
  direction_ = 1.0;
  primed_ = false;
}

OperatingPoint PerturbObserveTracker::step(const teg::SeriesString& string,
                                           const Converter& converter) {
  const OperatingPoint now = evaluate(string, converter, current_a_);
  if (now.output_power_w <= 0.0) {
    // Converter dropout: the P&O power signal is flat at zero, so steer by
    // voltage instead.  Below the window (string loaded too hard) reduce
    // the current; above it (string nearly open) increase it.
    direction_ = now.voltage_v < converter.params().output_voltage_v ? -1.0 : 1.0;
    primed_ = false;  // re-prime once power reappears
  } else if (!primed_) {
    primed_ = true;
  } else if (now.output_power_w < prev_power_w_) {
    direction_ = -direction_;  // walked past the peak: turn around
  }
  prev_power_w_ = now.output_power_w;
  const double isc = string.total_voc_v() / string.total_resistance_ohm();
  current_a_ = std::clamp(current_a_ + direction_ * step_a_, 0.0, isc);
  return now;
}

OperatingPoint PerturbObserveTracker::run(const teg::SeriesString& string,
                                          const Converter& converter,
                                          std::size_t iters) {
  OperatingPoint pt;
  for (std::size_t k = 0; k < iters; ++k) pt = step(string, converter);
  return pt;
}

}  // namespace tegrec::power
