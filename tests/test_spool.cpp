// SpoolQueue + SpoolWorker + ArtifactStore: the crash-safe multi-process
// farm protocol, driven in-process.  Staleness uses an injectable fake
// clock (no sleeps), crashes use the deterministic fault injector, and
// "processes" are SpoolQueue/worker instances with separate observation
// state — the on-disk protocol is identical.
// GCC 12's -O3 middle end raises false-positive -Wrestrict reports from
// inlined std::string concatenation in the store-cap loop (GCC PR105329
// family) — suppress for this test TU only, as tools/tegrec_cli.cpp does.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "sim/artifact_store.hpp"
#include "sim/result_io.hpp"
#include "sim/service.hpp"
#include "sim/spec.hpp"
#include "sim/spool.hpp"
#include "util/fault.hpp"

namespace tegrec::sim {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tegrec_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

ExperimentSpec comparison_spec(std::uint64_t seed = 3) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::kComparison;
  spec.trace.kind = TraceSource::Kind::kGenerated;
  spec.trace.generator.layout.num_modules = 24;
  spec.trace.generator.segments = {
      {thermal::DriveSegment::Kind::kUrban, 25.0, 30.0, 0.0}};
  spec.trace.generator.seed = seed;
  spec.comparison.include_inor = false;
  spec.comparison.include_ehtr = false;
  return spec;
}

/// Deterministic-field equality for the comparison kind (timing fields are
/// measured wall clock and legitimately differ across executions).
void expect_comparisons_equal(const ExperimentResult& a,
                              const ExperimentResult& b) {
  ASSERT_EQ(a.kind, ExperimentKind::kComparison);
  ASSERT_EQ(b.kind, ExperimentKind::kComparison);
  ASSERT_EQ(a.comparison.runs.size(), b.comparison.runs.size());
  for (std::size_t i = 0; i < a.comparison.runs.size(); ++i) {
    const SimulationResult& ra = a.comparison.runs[i];
    const SimulationResult& rb = b.comparison.runs[i];
    EXPECT_EQ(ra.algorithm, rb.algorithm);
    EXPECT_EQ(ra.energy_output_j, rb.energy_output_j);
    EXPECT_EQ(ra.switch_overhead_j, rb.switch_overhead_j);
    EXPECT_EQ(ra.ideal_energy_j, rb.ideal_energy_j);
    EXPECT_EQ(ra.num_switch_events, rb.num_switch_events);
    EXPECT_EQ(ra.final_soc, rb.final_soc);
    ASSERT_EQ(ra.steps.size(), rb.steps.size());
    for (std::size_t s = 0; s < ra.steps.size(); ++s) {
      EXPECT_EQ(ra.steps[s].net_power_w, rb.steps[s].net_power_w);
      EXPECT_EQ(ra.steps[s].overhead_energy_j, rb.steps[s].overhead_energy_j);
    }
  }
}

SpoolOptions spool_options(const TempDir& dir,
                           util::FaultInjector* faults = nullptr) {
  SpoolOptions options;
  options.root = dir.sub("spool");
  if (faults != nullptr) options.faults = faults;
  return options;
}

ArtifactStoreOptions store_options(const TempDir& dir,
                                   util::FaultInjector* faults = nullptr) {
  ArtifactStoreOptions options;
  options.dir = dir.sub("cache");
  if (faults != nullptr) options.faults = faults;
  return options;
}

// ------------------------------------------------------------ enqueue/claim

TEST(Spool, EnqueueIsIdempotentAndContentAddressed) {
  TempDir dir("spool_enqueue");
  SpoolQueue queue(spool_options(dir));
  const std::string id1 = queue.enqueue(comparison_spec(3));
  const std::string id2 = queue.enqueue(comparison_spec(3));
  const std::string id3 = queue.enqueue(comparison_spec(4));
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, id3);
  EXPECT_EQ(queue.list(SpoolJobState::kPending).size(), 2u);
  EXPECT_EQ(queue.state(id1), SpoolJobState::kPending);

  // The job file IS the canonical text.
  const ExperimentSpec round_trip = ExperimentSpec::from_text(
      *util::read_file_if_exists(queue.root() + "/pending/" + id1 + ".spec"));
  EXPECT_EQ(round_trip.fingerprint(), id1);
}

TEST(Spool, NonGeneratedSourcesAreRejectedAtEnqueue) {
  TempDir dir("spool_reject");
  SpoolQueue queue(spool_options(dir));
  ExperimentSpec csv_spec = comparison_spec();
  csv_spec.trace.kind = TraceSource::Kind::kCsvFile;
  csv_spec.trace.csv_path = "/nonexistent.csv";
  EXPECT_THROW(queue.enqueue(csv_spec), std::invalid_argument);
  ExperimentSpec inline_spec = comparison_spec();
  inline_spec.trace.kind = TraceSource::Kind::kInline;
  EXPECT_THROW(queue.enqueue(inline_spec), std::invalid_argument);
  EXPECT_TRUE(queue.list(SpoolJobState::kPending).empty());
}

TEST(Spool, ClaimIsSingleWinnerAndCarriesTheLease) {
  TempDir dir("spool_claim");
  SpoolQueue worker_a(spool_options(dir));
  SpoolQueue worker_b(spool_options(dir));
  const std::string id = worker_a.enqueue(comparison_spec());

  const auto claim = worker_a.try_claim("alice");
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->id, id);
  EXPECT_EQ(ExperimentSpec::from_text(claim->spec_text).fingerprint(), id);
  EXPECT_EQ(worker_a.state(id), SpoolJobState::kClaimed);
  EXPECT_EQ(worker_a.status(id).owner, "alice");

  // The queue is drained: a second worker finds nothing.
  EXPECT_FALSE(worker_b.try_claim("bob").has_value());

  worker_a.complete(id);
  EXPECT_EQ(worker_b.state(id), SpoolJobState::kDone);
  // complete() is idempotent and lease-free afterwards.
  worker_a.complete(id);
  EXPECT_FALSE(
      util::read_file_if_exists(worker_a.root() + "/claimed/" + id + ".lease")
          .has_value());
}

// -------------------------------------------------------- stale reclaim

TEST(Spool, StaleLeaseIsReclaimedOnlyAfterAFullQuietWindow) {
  TempDir dir("spool_stale");
  std::uint64_t fake_now = 1000;
  SpoolOptions options = spool_options(dir);
  options.stale_after_ms = 500;
  options.now_ms = [&fake_now] { return fake_now; };
  SpoolQueue observer(options);

  SpoolQueue owner(spool_options(dir));
  const std::string id = owner.enqueue(comparison_spec());
  ASSERT_TRUE(owner.try_claim("doomed").has_value());

  // First sighting only records the observation.
  EXPECT_EQ(observer.reclaim_stale(), 0u);
  // Inside the window: still not stale.
  fake_now += 499;
  EXPECT_EQ(observer.reclaim_stale(), 0u);
  // Window elapsed with an unchanged lease: reclaimed, one attempt marker.
  fake_now += 1;
  EXPECT_EQ(observer.reclaim_stale(), 1u);
  EXPECT_EQ(observer.state(id), SpoolJobState::kPending);
  EXPECT_EQ(observer.failed_attempts(id), 1u);
  EXPECT_FALSE(
      util::read_file_if_exists(observer.root() + "/claimed/" + id + ".lease")
          .has_value());
}

TEST(Spool, HeartbeatDefersReclaim) {
  TempDir dir("spool_heartbeat");
  std::uint64_t fake_now = 1000;
  SpoolOptions options = spool_options(dir);
  options.stale_after_ms = 500;
  options.now_ms = [&fake_now] { return fake_now; };
  SpoolQueue observer(options);

  SpoolQueue owner(spool_options(dir));
  const std::string id = owner.enqueue(comparison_spec());
  ASSERT_TRUE(owner.try_claim("alive").has_value());

  EXPECT_EQ(observer.reclaim_stale(), 0u);
  fake_now += 400;
  owner.heartbeat(id, "alive");  // lease content changes
  fake_now += 400;               // 800ms since first sighting, 400 since beat
  EXPECT_EQ(observer.reclaim_stale(), 0u) << "changed lease must reset window";
  fake_now += 500;  // a full quiet window after the last beat
  EXPECT_EQ(observer.reclaim_stale(), 1u);
}

TEST(Spool, DroppedHeartbeatsLookStaleDespiteALiveOwner) {
  // spool.heartbeat.drop models a frozen worker: heartbeat() is called but
  // nothing reaches disk, so observers reclaim the job from under it.
  TempDir dir("spool_hbdrop");
  util::FaultInjector faults("spool.heartbeat.drop@*");
  std::uint64_t fake_now = 1000;
  SpoolOptions options = spool_options(dir);
  options.stale_after_ms = 500;
  options.now_ms = [&fake_now] { return fake_now; };
  SpoolQueue observer(options);

  SpoolOptions owner_options = spool_options(dir, &faults);
  SpoolQueue owner(owner_options);
  const std::string id = owner.enqueue(comparison_spec());
  ASSERT_TRUE(owner.try_claim("frozen").has_value());
  const std::string lease_before =
      util::read_file_if_exists(owner.root() + "/claimed/" + id + ".lease")
          .value_or("");

  EXPECT_EQ(observer.reclaim_stale(), 0u);
  owner.heartbeat(id, "frozen");
  owner.heartbeat(id, "frozen");
  EXPECT_EQ(
      util::read_file_if_exists(owner.root() + "/claimed/" + id + ".lease")
          .value_or(""),
      lease_before)
      << "dropped heartbeats must not reach disk";
  fake_now += 500;
  EXPECT_EQ(observer.reclaim_stale(), 1u);
}

TEST(Spool, MaintenanceSweepsCrashedWritersTemps) {
  // A SIGKILLed worker can die between writing a lease temp and renaming
  // it into place; the orphan must not survive the next reclaim pass.
  TempDir dir("spool_sweep");
  SpoolOptions options = spool_options(dir);
  options.stale_after_ms = 0;  // every temp is immediately debris
  SpoolQueue queue(options);
  util::atomic_write_file(queue.root() + "/claimed/x.lease.tmp-999-0", "owner");
  util::atomic_write_file(queue.root() + "/pending/y.spec.tmp-999-1", "kind");
  EXPECT_EQ(queue.maintenance(), 2u);
  EXPECT_EQ(queue.maintenance(), 0u);

  // reclaim_stale() runs the sweep as part of its pass.
  util::atomic_write_file(queue.root() + "/claimed/z.lease.tmp-999-2", "owner");
  EXPECT_EQ(queue.reclaim_stale(), 0u);
  EXPECT_FALSE(
      util::read_file_if_exists(queue.root() + "/claimed/z.lease.tmp-999-2")
          .has_value());
}

// --------------------------------------------------------- dead-lettering

TEST(Spool, RepeatedFailuresDeadLetterWithAReasonFile) {
  TempDir dir("spool_dead");
  SpoolOptions options = spool_options(dir);
  options.max_attempts = 2;
  SpoolQueue queue(options);
  const std::string id = queue.enqueue(comparison_spec());

  ASSERT_TRUE(queue.try_claim("w").has_value());
  EXPECT_FALSE(queue.fail_attempt(id, "boom one"));
  EXPECT_EQ(queue.state(id), SpoolJobState::kPending);
  EXPECT_EQ(queue.failed_attempts(id), 1u);

  ASSERT_TRUE(queue.try_claim("w").has_value());
  EXPECT_TRUE(queue.fail_attempt(id, "boom two"));
  EXPECT_EQ(queue.state(id), SpoolJobState::kFailed);
  EXPECT_EQ(queue.failed_attempts(id), 2u);
  const std::string reason = queue.failure_reason(id).value_or("");
  EXPECT_NE(reason.find("boom two"), std::string::npos) << reason;

  // A dead job is not claimable and not re-enqueueable (idempotence).
  EXPECT_FALSE(queue.try_claim("w").has_value());
  queue.enqueue(comparison_spec());
  EXPECT_EQ(queue.state(id), SpoolJobState::kFailed);
}

TEST(Spool, ReclaimDeadLettersOnceAttemptsAreExhausted) {
  TempDir dir("spool_reclaim_dead");
  std::uint64_t fake_now = 1000;
  SpoolOptions options = spool_options(dir);
  options.stale_after_ms = 100;
  options.max_attempts = 2;
  options.now_ms = [&fake_now] { return fake_now; };
  SpoolQueue queue(options);
  const std::string id = queue.enqueue(comparison_spec());

  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(queue.try_claim("crashy").has_value()) << round;
    EXPECT_EQ(queue.reclaim_stale(), 0u);  // observation only
    fake_now += 100;
    EXPECT_EQ(queue.reclaim_stale(), 1u) << round;
  }
  EXPECT_EQ(queue.state(id), SpoolJobState::kFailed);
  EXPECT_EQ(queue.failed_attempts(id), 2u);
  EXPECT_NE(queue.failure_reason(id).value_or("").find("crashy"),
            std::string::npos);
}

// ------------------------------------------------------------- the worker

TEST(SpoolWorker, ExecutesAndPublishesBitIdenticalToInProcessService) {
  TempDir dir("spool_exec");
  const ExperimentSpec spec = comparison_spec();
  const ExperimentResult direct = run_experiment(spec);

  SpoolQueue queue(spool_options(dir));
  ArtifactStore store(store_options(dir));
  const std::string id = queue.enqueue(spec);

  SpoolWorkerOptions worker_options;
  worker_options.owner = "w1";
  SpoolWorker worker(queue, store, worker_options);
  ASSERT_TRUE(worker.run_one());
  EXPECT_EQ(worker.stats().executed, 1u);
  EXPECT_EQ(queue.state(id), SpoolJobState::kDone);

  // The published artifact decodes to the direct run's deterministic
  // fields...
  const auto artifact = store.get(id);
  ASSERT_TRUE(artifact.has_value());
  const auto decoded = decode_result(*artifact, spec.fingerprint_text());
  ASSERT_TRUE(decoded.has_value());
  expect_comparisons_equal(direct, *decoded);

  // ...and the in-process service treats it as a disk hit (the farm and
  // the service share one artifact namespace).
  ServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.cache_dir = store.dir();
  ExperimentService service(service_options);
  const auto via_service = service.submit(spec).wait();
  ASSERT_TRUE(via_service);
  EXPECT_EQ(service.disk_hits(), 1u);
  EXPECT_EQ(service.executions(), 0u);
  expect_comparisons_equal(direct, *via_service);
}

TEST(SpoolWorker, AlreadyPublishedJobsCompleteWithoutExecution) {
  TempDir dir("spool_cached");
  const ExperimentSpec spec = comparison_spec();

  // The in-process service publishes the artifact first...
  ServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.cache_dir = dir.sub("cache");
  {
    ExperimentService service(service_options);
    ASSERT_TRUE(service.submit(spec).wait());
  }

  // ...so the farm worker recognises the job as done work.
  SpoolQueue queue(spool_options(dir));
  ArtifactStore store(store_options(dir));
  const std::string id = queue.enqueue(spec);
  SpoolWorker worker(queue, store, {});
  ASSERT_TRUE(worker.run_one());
  EXPECT_EQ(worker.stats().store_hits, 1u);
  EXPECT_EQ(worker.stats().executed, 0u);
  EXPECT_EQ(queue.state(id), SpoolJobState::kDone);
}

TEST(SpoolWorker, TwoWorkersShareTheQueueWithoutDoubleExecution) {
  TempDir dir("spool_two");
  SpoolQueue producer(spool_options(dir));
  std::vector<std::string> ids;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ids.push_back(producer.enqueue(comparison_spec(seed)));
  }

  // Two workers with independent queue views (as two processes would
  // have), racing over one spool on disk.  Run under TSan in CI.
  SpoolQueue queue_a(spool_options(dir));
  SpoolQueue queue_b(spool_options(dir));
  ArtifactStore store_a(store_options(dir));
  ArtifactStore store_b(store_options(dir));
  SpoolWorkerOptions options_a;
  options_a.owner = "a";
  options_a.idle_exit_ms = 200;
  options_a.poll_ms = 10;
  SpoolWorkerOptions options_b = options_a;
  options_b.owner = "b";
  SpoolWorker worker_a(queue_a, store_a, options_a);
  SpoolWorker worker_b(queue_b, store_b, options_b);

  SpoolWorkerStats stats_a;
  SpoolWorkerStats stats_b;
  std::thread thread_a([&] { stats_a = worker_a.run(); });
  std::thread thread_b([&] { stats_b = worker_b.run(); });
  thread_a.join();
  thread_b.join();

  // Every job done exactly once across the pair; no attempt markers, no
  // failures, no dead letters.
  EXPECT_EQ(stats_a.completed + stats_b.completed, ids.size());
  EXPECT_EQ(stats_a.executed + stats_b.executed, ids.size());
  EXPECT_EQ(stats_a.failures + stats_b.failures, 0u);
  for (const std::string& id : ids) {
    EXPECT_EQ(producer.state(id), SpoolJobState::kDone) << id;
    EXPECT_EQ(producer.failed_attempts(id), 0u) << id;
    EXPECT_TRUE(store_a.get(id).has_value()) << id;
  }
  EXPECT_TRUE(producer.list(SpoolJobState::kPending).empty());
  EXPECT_TRUE(producer.list(SpoolJobState::kClaimed).empty());
}

TEST(SpoolWorker, CrashBeforePublishIsRecoveredByASecondWorker) {
  TempDir dir("spool_crash");
  const ExperimentSpec spec = comparison_spec();
  const ExperimentResult direct = run_experiment(spec);

  std::uint64_t fake_now = 1000;
  SpoolOptions reclaimer_options = spool_options(dir);
  reclaimer_options.stale_after_ms = 100;
  reclaimer_options.now_ms = [&fake_now] { return fake_now; };

  // Worker A dies (simulated) between writing the artifact temp and the
  // rename: AtomicWriteCrash propagates like the kill -9 it models.
  {
    util::FaultInjector faults("artifact.crash@1");
    SpoolQueue queue_a(spool_options(dir));
    ArtifactStore store_a(store_options(dir, &faults));
    const std::string id = queue_a.enqueue(spec);
    SpoolWorkerOptions options_a;
    options_a.owner = "a";
    SpoolWorker worker_a(queue_a, store_a, options_a);
    EXPECT_THROW(worker_a.run_one(), util::AtomicWriteCrash);
    EXPECT_EQ(queue_a.state(id), SpoolJobState::kClaimed)
        << "the dead worker's claim survives it";
  }

  // A reclaimer notices the frozen lease and requeues the job; worker B
  // completes it.  The abandoned temp never shadows the real artifact and
  // maintenance() sweeps it.
  SpoolQueue reclaimer(reclaimer_options);
  EXPECT_EQ(reclaimer.reclaim_stale(), 0u);
  fake_now += 100;
  EXPECT_EQ(reclaimer.reclaim_stale(), 1u);

  SpoolQueue queue_b(spool_options(dir));
  ArtifactStore store_b(store_options(dir));
  SpoolWorkerOptions options_b;
  options_b.owner = "b";
  SpoolWorker worker_b(queue_b, store_b, options_b);
  ASSERT_TRUE(worker_b.run_one());

  const std::string id = queue_b.list(SpoolJobState::kDone).at(0);
  EXPECT_EQ(worker_b.stats().executed, 1u);
  const auto decoded =
      decode_result(store_b.get(id).value_or(""), spec.fingerprint_text());
  ASSERT_TRUE(decoded.has_value());
  expect_comparisons_equal(direct, *decoded);

  ArtifactStoreOptions gc_options = store_options(dir);
  gc_options.temp_max_age_ms = 0;
  ArtifactStore gc(gc_options);
  EXPECT_EQ(gc.maintenance(), 1u) << "exactly the crashed writer's temp";
}

TEST(SpoolWorker, TornArtifactSelfHealsOnReclaim) {
  TempDir dir("spool_torn");
  const ExperimentSpec spec = comparison_spec();
  SpoolQueue queue(spool_options(dir));
  const std::string id = queue.enqueue(spec);

  // A torn artifact for this job is already on disk (a legacy writer or
  // damaged medium); it must be detected, removed, and re-simulated —
  // never served.
  {
    util::FaultInjector faults("artifact.torn@1");
    ArtifactStore torn_store(store_options(dir, &faults));
    const ExperimentResult direct = run_experiment(spec);
    ASSERT_TRUE(
        torn_store.put(id, encode_result(direct, spec.fingerprint_text())));
    EXPECT_FALSE(
        decode_result(torn_store.get(id).value_or(""), spec.fingerprint_text())
            .has_value())
        << "fixture: the stored artifact must actually be torn";
  }

  ArtifactStore store(store_options(dir));
  SpoolWorker worker(queue, store, {});
  ASSERT_TRUE(worker.run_one());
  EXPECT_EQ(worker.stats().executed, 1u) << "torn artifact must not store-hit";
  EXPECT_EQ(queue.state(id), SpoolJobState::kDone);
  EXPECT_TRUE(
      decode_result(store.get(id).value_or(""), spec.fingerprint_text())
          .has_value())
      << "healed artifact decodes cleanly";
}

TEST(SpoolWorker, ExecutionFailuresAreRecordedNotFatal) {
  TempDir dir("spool_badjob");
  SpoolOptions options = spool_options(dir);
  options.max_attempts = 1;  // dead-letter on the first failure
  SpoolQueue queue(options);
  // Hand-plant a pending job whose spec text does not parse: from_text
  // throws inside the worker, which must record the failure and move on.
  util::atomic_write_file(queue.root() + "/pending/deadbeef.spec",
                          "kind = nonsense\n");
  ArtifactStore store(store_options(dir));
  SpoolWorker worker(queue, store, {});
  ASSERT_TRUE(worker.run_one());
  EXPECT_EQ(worker.stats().failures, 1u);
  EXPECT_EQ(queue.state("deadbeef"), SpoolJobState::kFailed);
  EXPECT_FALSE(queue.failure_reason("deadbeef").value_or("").empty());
}

// -------------------------------------------------------- bounded store

TEST(ArtifactStore, EvictsLeastRecentlyUsedToStayUnderTheCap) {
  TempDir dir("store_evict");
  ArtifactStoreOptions options;
  options.dir = dir.sub("cache");
  const std::string payload(4096, 'x');
  options.max_bytes = 2 * payload.size() + 16;  // room for two artifacts
  ArtifactStore store(options);

  ASSERT_TRUE(store.put("aa", payload));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(store.put("bb", payload));
  EXPECT_LE(store.total_bytes(), options.max_bytes);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Touch "aa" so "bb" is the LRU victim when "cc" arrives.
  EXPECT_TRUE(store.get("aa").has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(store.put("cc", payload));

  EXPECT_LE(store.total_bytes(), options.max_bytes);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_TRUE(store.get("aa").has_value());
  EXPECT_FALSE(store.get("bb").has_value()) << "bb was least recently used";
  EXPECT_TRUE(store.get("cc").has_value());
}

TEST(ArtifactStore, NeverExceedsTheCapAcrossManyPuts) {
  TempDir dir("store_cap");
  ArtifactStoreOptions options;
  options.dir = dir.sub("cache");
  options.max_bytes = 10'000;
  ArtifactStore store(options);
  const std::string payload(3000, 'y');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.put("k" + std::to_string(i), payload));
    EXPECT_LE(store.total_bytes(), options.max_bytes) << "after put " << i;
  }
}

TEST(ArtifactStore, PutFailureWarnsOnceAndDegrades) {
  TempDir dir("store_degrade");
  util::FaultInjector faults("artifact.write_fail@*");  // ENOSPC forever
  ArtifactStoreOptions options;
  options.dir = dir.sub("cache");
  options.faults = &faults;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0;
  std::vector<std::string> warnings;
  options.warn = [&warnings](const std::string& m) { warnings.push_back(m); };
  ArtifactStore store(options);

  EXPECT_FALSE(store.put("k1", "v"));
  EXPECT_FALSE(store.put("k2", "v"));
  EXPECT_EQ(store.put_failures(), 2u);
  ASSERT_EQ(warnings.size(), 1u) << "degradation warns exactly once";
  EXPECT_NE(warnings[0].find("degraded"), std::string::npos) << warnings[0];
  EXPECT_FALSE(store.get("k1").has_value());
}

}  // namespace
}  // namespace tegrec::sim
