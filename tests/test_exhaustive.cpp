#include "core/exhaustive.hpp"

#include <gtest/gtest.h>

#include "core/objective.hpp"

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

TEST(ExhaustiveContiguous, EnumeratesAllPartitions) {
  const teg::TegArray array(kDev, {30.0, 25.0, 20.0, 15.0});
  const power::Converter conv(kConv);
  const ExhaustiveResult res = exhaustive_contiguous_search(array, conv);
  EXPECT_EQ(res.evaluated, 8u);  // 2^(4-1)
  EXPECT_GT(res.power_w, 0.0);
}

TEST(ExhaustiveContiguous, FindsTrueOptimum) {
  // Verify against a manual scan of all masks for a 5-module array.
  const teg::TegArray array(kDev, {35.0, 30.0, 18.0, 12.0, 8.0});
  const power::Converter conv(kConv);
  const ExhaustiveResult res = exhaustive_contiguous_search(array, conv);
  double best = -1.0;
  for (std::size_t mask = 0; mask < 16; ++mask) {
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < 4; ++i) {
      if (mask & (std::size_t{1} << i)) starts.push_back(i + 1);
    }
    best = std::max(best,
                    config_power_w(array, conv, teg::ArrayConfig(starts, 5)));
  }
  EXPECT_NEAR(res.power_w, best, 1e-12);
}

TEST(ExhaustiveContiguous, BoundedByIdeal) {
  const teg::TegArray array(kDev, {28.0, 22.0, 16.0, 10.0, 6.0, 4.0});
  const power::Converter conv(kConv);
  const ExhaustiveResult res = exhaustive_contiguous_search(array, conv);
  EXPECT_LE(res.power_w, array.ideal_power_w() + 1e-9);
}

TEST(ExhaustiveContiguous, TooLargeThrows) {
  const teg::TegArray array(kDev, std::vector<double>(25, 20.0));
  const power::Converter conv(kConv);
  EXPECT_THROW(exhaustive_contiguous_search(array, conv), std::invalid_argument);
}

TEST(ExhaustiveSetPartition, BeatsOrMatchesContiguous) {
  // The unconstrained grouping space contains every contiguous grouping.
  const teg::TegArray array(kDev, {34.0, 14.0, 30.0, 10.0, 26.0, 6.0});
  const power::Converter conv(kConv);
  const ExhaustiveResult contiguous = exhaustive_contiguous_search(array, conv);
  const SetPartitionResult full = exhaustive_set_partition_search(array, conv);
  EXPECT_GE(full.power_w, contiguous.power_w - 1e-9);
  EXPECT_EQ(full.evaluated, 203u);  // Bell(6)
}

TEST(ExhaustiveSetPartition, ShuffledProfileGainsFromNonContiguity) {
  // With temperatures interleaved hot/cold, non-contiguous grouping can
  // assemble matched groups that contiguity forbids — quantifying the cost
  // of the paper's fabric restriction.
  const teg::TegArray array(kDev, {36.0, 8.0, 36.0, 8.0, 36.0, 8.0});
  const power::Converter conv(kConv);
  const ExhaustiveResult contiguous = exhaustive_contiguous_search(array, conv);
  const SetPartitionResult full = exhaustive_set_partition_search(array, conv);
  EXPECT_GT(full.power_w, contiguous.power_w + 1e-6);
}

TEST(ExhaustiveSetPartition, MonotoneProfileContiguityIsFree) {
  // On a monotone profile (the physical radiator case) contiguous grouping
  // is essentially optimal — the design justification of Fig. 2/Alg. 1.
  const teg::TegArray array(kDev, {34.0, 27.0, 21.0, 16.0, 12.0, 9.0});
  const power::Converter conv(kConv);
  const ExhaustiveResult contiguous = exhaustive_contiguous_search(array, conv);
  const SetPartitionResult full = exhaustive_set_partition_search(array, conv);
  EXPECT_GE(contiguous.power_w, 0.995 * full.power_w);
}

TEST(ExhaustiveSetPartition, TooLargeThrows) {
  const teg::TegArray array(kDev, std::vector<double>(13, 20.0));
  const power::Converter conv(kConv);
  EXPECT_THROW(exhaustive_set_partition_search(array, conv),
               std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::core
