// Module fault injection (extension).
//
// Field arrays degrade: thermal cycling cracks legs (open circuit),
// moisture shorts couples, and contact pressure loss derates output.
// The fault model rewrites a temperature-difference distribution into the
// *effective electrical* distribution the controllers see:
//
//  * kHealthy   — untouched;
//  * kDegraded  — Seebeck output scaled by `derating` (poor contact);
//  * kBypassed  — dT forced to 0: the module is electrically removed by
//                 closing its parallel switches permanently (the Fig. 4
//                 fabric supports this without extra hardware).
//
// An open-circuit failure MUST be mapped to kBypassed by the supervisor —
// a truly open module in a series group would sever the string; that
// diagnosis step is modelled by `apply_faults` rejecting kOpen inputs
// unless `auto_bypass` is set.
#pragma once

#include <cstddef>
#include <vector>

namespace tegrec::teg {

enum class ModuleHealth {
  kHealthy,
  kDegraded,
  kBypassed,
  kOpen,  ///< undiagnosed open-circuit failure
};

struct FaultModel {
  std::vector<ModuleHealth> health;  ///< one entry per module
  double derating = 0.5;             ///< output scale for kDegraded
  /// Map kOpen to kBypassed automatically (diagnosis supervisor present).
  bool auto_bypass = true;
};

/// Effective dT distribution after faults: degraded modules are scaled,
/// bypassed (and auto-bypassed open) modules zeroed.  Throws
/// std::invalid_argument on size mismatch, derating outside [0, 1], or an
/// undiagnosed kOpen with auto_bypass == false (the array would be dead).
std::vector<double> apply_faults(const std::vector<double>& delta_t_k,
                                 const FaultModel& faults);

/// Number of modules still contributing output (healthy + degraded).
std::size_t active_module_count(const FaultModel& faults);

}  // namespace tegrec::teg
