// Cross-cutting robustness properties: the paper's qualitative claims must
// hold for *any* synthetic drive, not just the default seed.  Each property
// is swept over trace seeds (different drives, noise realisations).
#include <gtest/gtest.h>

#include "core/ehtr.hpp"
#include "core/inor.hpp"
#include "core/objective.hpp"
#include "power/incremental_conductance.hpp"
#include "power/mppt.hpp"
#include "sim/experiment.hpp"
#include "thermal/trace.hpp"
#include "util/rng.hpp"

namespace tegrec {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  thermal::TemperatureTrace make_trace() const {
    thermal::TraceGeneratorConfig config;
    config.layout.num_modules = 24;
    config.segments = {{thermal::DriveSegment::Kind::kUrban, 30.0, 30.0, 0.0},
                       {thermal::DriveSegment::Kind::kCruise, 30.0, 65.0, 0.0}};
    config.seed = GetParam();
    return thermal::generate_trace(config);
  }
};

TEST_P(SeedSweep, ReconfigurationAlwaysBeatsBaseline) {
  sim::ComparisonOptions options;
  options.include_ehtr = false;  // keep the sweep fast
  const sim::ComparisonResult res =
      sim::run_standard_comparison(make_trace(), options);
  EXPECT_GT(res.dnor_gain_over_baseline(), 0.02)
      << "seed " << GetParam();
  EXPECT_GT(res.by_name("INOR").energy_output_j,
            res.by_name("Baseline").energy_output_j)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, EnergyConservationEveryStep) {
  sim::ComparisonOptions options;
  options.include_inor = false;
  options.include_ehtr = false;
  options.include_baseline = false;
  const sim::ComparisonResult res =
      sim::run_standard_comparison(make_trace(), options);
  for (const auto& s : res.by_name("DNOR").steps) {
    EXPECT_GE(s.net_power_w, 0.0);
    EXPECT_LE(s.net_power_w, s.gross_power_w + 1e-9);
    EXPECT_LE(s.gross_power_w, s.ideal_power_w + 1e-9);
  }
}

TEST_P(SeedSweep, DnorSwitchesSparselyOnEveryDrive) {
  sim::ComparisonOptions options;
  options.include_inor = false;
  options.include_ehtr = false;
  options.include_baseline = false;
  const auto trace = make_trace();
  const sim::ComparisonResult res = sim::run_standard_comparison(trace, options);
  EXPECT_LT(res.by_name("DNOR").num_switch_events, trace.num_steps() / 4)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99999u));

// MPPT cross-validation: P&O and incremental conductance must agree with
// the golden-section oracle on random strings.
class TrackerAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerAgreement, BothTrackersReachOracle) {
  util::Rng rng(GetParam());
  const teg::DeviceParams dev = teg::tgm_199_1_4_0_8();
  std::vector<double> dts(30);
  for (auto& dt : dts) dt = rng.uniform(8.0, 40.0);
  const teg::TegArray array(dev, dts);
  const std::size_t n_groups = static_cast<std::size_t>(rng.uniform_int(6, 12));
  const teg::SeriesString s =
      array.build_string(teg::ArrayConfig::uniform(30, n_groups));
  const power::Converter conv{power::ConverterParams{}};
  const power::OperatingPoint oracle = power::optimal_operating_point(s, conv);
  if (oracle.output_power_w < 0.5) GTEST_SKIP() << "string outside window";

  power::PerturbObserveTracker po(0.01);
  po.reset(0.4 * oracle.current_a);
  EXPECT_GT(po.run(s, conv, 1500).output_power_w, 0.95 * oracle.output_power_w)
      << "P&O, seed " << GetParam();

  power::IncrementalConductanceTracker ic(0.01, 5e-3);
  ic.reset(0.4 * oracle.current_a);
  EXPECT_GT(ic.run(s, conv, 1500).array_power_w, 0.98 * s.mpp_power_w())
      << "IncCond, seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerAgreement,
                         ::testing::Values(3u, 11u, 29u, 71u));

// INOR near-optimality across group windows and random profiles, checked
// against the DP optimum (cheaper than the exhaustive oracle, so we can
// afford larger N here).
class InorVsDp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InorVsDp, GreedyWithinFivePercentOfDpBest) {
  util::Rng rng(GetParam());
  const teg::DeviceParams dev = teg::tgm_199_1_4_0_8();
  std::vector<double> dts(60);
  // Monotone-ish decaying profile with noise — the physical case.
  for (std::size_t i = 0; i < dts.size(); ++i) {
    dts[i] = 38.0 * std::exp(-2.0 * static_cast<double>(i) / 60.0) + 4.0 +
             rng.uniform(-1.0, 1.0);
  }
  const teg::TegArray array(dev, dts);
  const power::Converter conv{power::ConverterParams{}};

  const teg::ArrayConfig greedy = core::inor_search(array, conv);
  double dp_best = 0.0;
  for (const auto& c : core::balanced_partitions(array.module_mpp_currents(), 60)) {
    dp_best = std::max(dp_best, core::config_power_w(array, conv, c));
  }
  EXPECT_GE(core::config_power_w(array, conv, greedy), 0.95 * dp_best)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InorVsDp, ::testing::Values(5u, 17u, 23u, 61u));

}  // namespace
}  // namespace tegrec
