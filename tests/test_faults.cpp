#include "teg/faults.hpp"

#include <gtest/gtest.h>

#include "core/inor.hpp"
#include "core/objective.hpp"
#include "teg/array.hpp"

namespace tegrec::teg {
namespace {

TEST(Faults, HealthyPassThrough) {
  FaultModel faults;
  faults.health = {ModuleHealth::kHealthy, ModuleHealth::kHealthy};
  const auto out = apply_faults({30.0, 20.0}, faults);
  EXPECT_EQ(out, (std::vector<double>{30.0, 20.0}));
  EXPECT_EQ(active_module_count(faults), 2u);
}

TEST(Faults, DegradedScalesOutput) {
  FaultModel faults;
  faults.health = {ModuleHealth::kDegraded, ModuleHealth::kHealthy};
  faults.derating = 0.4;
  const auto out = apply_faults({30.0, 20.0}, faults);
  EXPECT_DOUBLE_EQ(out[0], 12.0);
  EXPECT_DOUBLE_EQ(out[1], 20.0);
}

TEST(Faults, BypassedZeroes) {
  FaultModel faults;
  faults.health = {ModuleHealth::kBypassed, ModuleHealth::kHealthy};
  const auto out = apply_faults({30.0, 20.0}, faults);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_EQ(active_module_count(faults), 1u);
}

TEST(Faults, OpenAutoBypassed) {
  FaultModel faults;
  faults.health = {ModuleHealth::kOpen, ModuleHealth::kHealthy};
  const auto out = apply_faults({30.0, 20.0}, faults);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Faults, UndiagnosedOpenRejected) {
  FaultModel faults;
  faults.health = {ModuleHealth::kOpen};
  faults.auto_bypass = false;
  EXPECT_THROW(apply_faults({30.0}, faults), std::invalid_argument);
}

TEST(Faults, Validation) {
  FaultModel faults;
  faults.health = {ModuleHealth::kHealthy};
  EXPECT_THROW(apply_faults({1.0, 2.0}, faults), std::invalid_argument);
  faults.health = {ModuleHealth::kHealthy, ModuleHealth::kHealthy};
  faults.derating = 1.5;
  EXPECT_THROW(apply_faults({1.0, 2.0}, faults), std::invalid_argument);
}

TEST(Faults, ControllerSurvivesFaultedArray) {
  // End-to-end: INOR on an array with bypassed and degraded modules keeps
  // producing a valid configuration and positive power.
  const DeviceParams dev = tgm_199_1_4_0_8();
  std::vector<double> dts(20);
  for (std::size_t i = 0; i < 20; ++i) dts[i] = 34.0 - 1.4 * i;

  FaultModel faults;
  faults.health.assign(20, ModuleHealth::kHealthy);
  faults.health[3] = ModuleHealth::kBypassed;
  faults.health[7] = ModuleHealth::kOpen;
  faults.health[12] = ModuleHealth::kDegraded;

  const TegArray array(dev, apply_faults(dts, faults));
  const power::Converter conv{power::ConverterParams{}};
  const ArrayConfig c =
      core::inor_search(array, conv, core::InorOptions{.nmin = 1, .nmax = 20});
  const double p = core::config_power_w(array, conv, c);
  EXPECT_GT(p, 0.0);

  // Losing modules costs power but must degrade gracefully, not collapse.
  const TegArray pristine(dev, dts);
  const ArrayConfig c0 = core::inor_search(
      pristine, conv, core::InorOptions{.nmin = 1, .nmax = 20});
  const double p0 = core::config_power_w(pristine, conv, c0);
  EXPECT_LT(p, p0);
  EXPECT_GT(p, 0.5 * p0);
}

TEST(Faults, AllBypassedIsDeadButDoesNotCrash) {
  const DeviceParams dev = tgm_199_1_4_0_8();
  FaultModel faults;
  faults.health.assign(5, ModuleHealth::kBypassed);
  const TegArray array(dev, apply_faults({30.0, 28.0, 26.0, 24.0, 22.0}, faults));
  const power::Converter conv{power::ConverterParams{}};
  const ArrayConfig c =
      core::inor_search(array, conv, core::InorOptions{.nmin = 1, .nmax = 5});
  EXPECT_DOUBLE_EQ(core::config_power_w(array, conv, c), 0.0);
}

}  // namespace
}  // namespace tegrec::teg
