#include "teg/string_bank.hpp"

#include <stdexcept>

namespace tegrec::teg {

StringBank::StringBank(std::vector<SeriesString> rows) : rows_(std::move(rows)) {
  if (rows_.empty()) throw std::invalid_argument("StringBank: no rows");
  double g_sum = 0.0;
  double norton = 0.0;
  for (const SeriesString& s : rows_) {
    const double r = s.total_resistance_ohm();
    g_sum += 1.0 / r;
    norton += s.total_voc_v() / r;
  }
  r_eq_ohm_ = 1.0 / g_sum;
  voc_eq_v_ = norton * r_eq_ohm_;
}

double StringBank::current_at_voltage(double voltage_v) const {
  return (voc_eq_v_ - voltage_v) / r_eq_ohm_;
}

double StringBank::power_at_voltage(double voltage_v) const {
  return current_at_voltage(voltage_v) * voltage_v;
}

double StringBank::mpp_current_a() const {
  return voc_eq_v_ / (2.0 * r_eq_ohm_);
}

double StringBank::mpp_power_w() const {
  return voc_eq_v_ * voc_eq_v_ / (4.0 * r_eq_ohm_);
}

std::vector<double> StringBank::row_currents_at_voltage(double voltage_v) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const SeriesString& s : rows_) {
    out.push_back((s.total_voc_v() - voltage_v) / s.total_resistance_ohm());
  }
  return out;
}

double StringBank::rowwise_ideal_power_w() const {
  double total = 0.0;
  for (const SeriesString& s : rows_) total += s.mpp_power_w();
  return total;
}

double StringBank::ideal_power_w() const {
  double total = 0.0;
  for (const SeriesString& s : rows_) total += s.ideal_power_w();
  return total;
}

}  // namespace tegrec::teg
