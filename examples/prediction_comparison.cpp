// Temperature-prediction playground: fit MLR / BPNN / SVR / persistence on
// a synthetic radiator trace and compare accuracy across forecast horizons.
//
// Mirrors Section IV of the paper; useful for picking the DNOR predictor
// and horizon for a new vehicle or heat source.
//
//   ./build/examples/prediction_comparison
#include <cstdio>
#include <memory>
#include <vector>

#include "predict/bpnn.hpp"
#include "predict/evaluate.hpp"
#include "predict/mlr.hpp"
#include "predict/persistence.hpp"
#include "predict/svr.hpp"
#include "thermal/trace.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  // A 400 s urban-heavy trace: the hardest regime for prediction because
  // stop-and-go driving keeps the airflow (and thus the whole temperature
  // profile) moving.
  thermal::TraceGeneratorConfig config;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 200.0, 30.0, 0.0},
                     {thermal::DriveSegment::Kind::kHill, 100.0, 45.0, 5.0},
                     {thermal::DriveSegment::Kind::kUrban, 100.0, 28.0, 0.0}};
  config.seed = 77;
  const thermal::TemperatureTrace trace = thermal::generate_trace(config);
  std::printf("trace: %zu modules, %.0f s urban/hill mix\n\n",
              trace.num_modules(), trace.duration_s());

  auto make_predictors = [] {
    std::vector<std::unique_ptr<predict::Predictor>> out;
    out.push_back(std::make_unique<predict::MlrPredictor>());
    predict::BpnnParams nn;
    nn.epochs = 8;
    nn.module_stride = 5;
    out.push_back(std::make_unique<predict::BpnnPredictor>(nn));
    predict::SvrParams svr;
    svr.iterations = 120;
    svr.module_stride = 5;
    out.push_back(std::make_unique<predict::SvrPredictor>(svr));
    out.push_back(std::make_unique<predict::PersistencePredictor>());
    return out;
  };

  for (double horizon_s : {0.5, 1.0, 2.0, 4.0}) {
    predict::EvaluationOptions options;
    options.window = 30;
    options.horizon_steps =
        static_cast<std::size_t>(horizon_s / trace.dt_s());
    options.start_time_s = 30.0;
    std::printf("-- forecast horizon %.1f s --\n", horizon_s);
    util::TextTable table({"method", "mean MAPE %", "max MAPE %", "fit ms"});
    // Each predictor's online walk is sequential (refits on its own
    // window), but the predictors are independent of each other: evaluate
    // them in parallel and render in fixed order afterwards.
    auto predictors = make_predictors();
    std::vector<predict::EvaluationResult> results(predictors.size());
    util::parallel_for(predictors.size(), 0, [&](std::size_t i) {
      results[i] = predict::evaluate_online(*predictors[i], trace, options);
    });
    for (const auto& res : results) {
      table.begin_row()
          .add(res.predictor_name)
          .add(res.mean_mape_percent, 4)
          .add(res.max_mape_percent, 4)
          .add(res.mean_fit_time_ms, 3);
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("Reading: MLR wins at every horizon while fitting in a fraction\n"
              "of a millisecond, which is why DNOR uses it (Section IV).\n");
  return 0;
}
