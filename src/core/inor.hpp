// INOR — Instantaneous Near-Optimal Reconfiguration (Algorithm 1).
//
// For each candidate group count n in the converter-friendly window
// [nmin, nmax], INOR places the n-1 interior group boundaries greedily:
// with IMPP prefix sums, boundary j is advanced until the running group's
// summed MPP current best matches Iideal = (1/n) * sum IMPP.  Each
// candidate partition is scored with the charger-aware objective and the
// best kept.  The greedy pass is O(N) per n and the window size is a
// device constant, giving the paper's O(N) overall complexity.
#pragma once

#include <cstddef>
#include <vector>

#include "core/reconfigurer.hpp"
#include "power/converter.hpp"
#include "teg/array.hpp"

namespace tegrec::core {

struct InorOptions {
  /// Group-count window; when both are 0 the window is derived from the
  /// converter via group_count_window().
  std::size_t nmin = 0;
  std::size_t nmax = 0;
};

/// One greedy partition of the modules into exactly n groups balancing the
/// summed MPP currents (the inner loop of Algorithm 1).  Exposed for tests
/// and for EHTR's comparison.  Requires 1 <= n <= mpp_currents.size() and
/// strictly positive currents.
teg::ArrayConfig inor_partition(const std::vector<double>& mpp_currents,
                                std::size_t n);

/// Full Algorithm 1: scans the n window, scores each greedy partition with
/// the charger-aware objective and returns the best configuration.
teg::ArrayConfig inor_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             const InorOptions& options = {});

/// Periodic controller wrapping inor_search: re-runs every `period_s`
/// (0.5 s in the paper's evaluation, following [5]) and always adopts the
/// new configuration.
class InorReconfigurer final : public Reconfigurer {
 public:
  InorReconfigurer(const teg::DeviceParams& device,
                   const power::ConverterParams& converter, double period_s = 0.5,
                   const InorOptions& options = {});

  std::string name() const override { return "INOR"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;
  AlgorithmCost algorithm_cost() const override {
    return AlgorithmCost::inor();
  }

  /// Stateless between invocations apart from the (next run time, held
  /// config) pair, so checkpoints round-trip trivially.
  bool supports_checkpoint() const override { return true; }
  std::string checkpoint_state() const override;
  void restore_checkpoint_state(const std::string& state) override;

 private:
  teg::DeviceParams device_;
  power::Converter converter_;
  double period_s_;
  InorOptions options_;
  double next_run_time_s_ = 0.0;
  bool has_config_ = false;
  teg::ArrayConfig current_;
};

}  // namespace tegrec::core
