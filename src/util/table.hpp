// Fixed-width console table rendering for the benchmark harnesses.
//
// All figure/table benches print their reproduction as aligned text tables
// so the output can be compared against the paper side by side.
#pragma once

#include <string>
#include <vector>

namespace tegrec::util {

/// Builder for an aligned text table.  Cells are strings; numeric helpers
/// format with a fixed precision.  Rendering pads each column to its widest
/// cell and separates the header with a dashed rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls append cells to it.
  TextTable& begin_row();
  TextTable& add(const std::string& cell);
  TextTable& add(double value, int precision = 3);
  TextTable& add(long long value);

  /// Renders the full table, including header and rule.
  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_fixed(double value, int precision);

}  // namespace tegrec::util
