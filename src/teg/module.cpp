#include "teg/module.hpp"

#include <stdexcept>

namespace tegrec::teg {

Module::Module(const DeviceParams& params, double hot_side_c, double cold_side_c) {
  validate(params);
  if (hot_side_c < cold_side_c) {
    throw std::invalid_argument("Module: hot side below cold side");
  }
  delta_t_k_ = hot_side_c - cold_side_c;
  if (delta_t_k_ > params.max_delta_t_k) {
    throw std::invalid_argument("Module: dT exceeds device validity range");
  }
  voc_v_ = params.seebeck_total_v_k() * delta_t_k_;
  r_ohm_ = params.resistance_at(0.5 * (hot_side_c + cold_side_c));
}

Module Module::from_delta_t(const DeviceParams& params, double delta_t_k,
                            double cold_side_c) {
  return Module(params, cold_side_c + delta_t_k, cold_side_c);
}

double Module::voltage_at_current(double current_a) const {
  return voc_v_ - current_a * r_ohm_;
}

double Module::current_at_voltage(double voltage_v) const {
  return (voc_v_ - voltage_v) / r_ohm_;
}

double Module::power_at_voltage(double voltage_v) const {
  return voltage_v * current_at_voltage(voltage_v);
}

double Module::power_at_current(double current_a) const {
  return voltage_at_current(current_a) * current_a;
}

double Module::power_into_load(double r_load_ohm) const {
  if (r_load_ohm < 0.0) throw std::invalid_argument("power_into_load: R < 0");
  const double i = voc_v_ / (r_ohm_ + r_load_ohm);
  return i * i * r_load_ohm;
}

std::vector<IvPoint> Module::iv_sweep(std::size_t points) const {
  if (points < 2) throw std::invalid_argument("iv_sweep: need >= 2 points");
  std::vector<IvPoint> out(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double v =
        voc_v_ * static_cast<double>(k) / static_cast<double>(points - 1);
    out[k].voltage_v = v;
    out[k].current_a = current_at_voltage(v);
    out[k].power_w = power_at_voltage(v);
  }
  return out;
}

std::vector<double> mpp_currents(const DeviceParams& params,
                                 const std::vector<double>& delta_t_k,
                                 double cold_side_c) {
  std::vector<double> out;
  out.reserve(delta_t_k.size());
  for (double dt : delta_t_k) {
    out.push_back(Module::from_delta_t(params, dt, cold_side_c).mpp_current_a());
  }
  return out;
}

std::vector<double> mpp_powers(const DeviceParams& params,
                               const std::vector<double>& delta_t_k,
                               double cold_side_c) {
  std::vector<double> out;
  out.reserve(delta_t_k.size());
  for (double dt : delta_t_k) {
    out.push_back(Module::from_delta_t(params, dt, cold_side_c).mpp_power_w());
  }
  return out;
}

double ideal_power_w(const DeviceParams& params,
                     const std::vector<double>& delta_t_k, double cold_side_c) {
  double total = 0.0;
  for (double dt : delta_t_k) {
    total += Module::from_delta_t(params, dt, cold_side_c).mpp_power_w();
  }
  return total;
}

}  // namespace tegrec::teg
