// Disk codec for cached experiment results.
//
// The ExperimentService's on-disk cache stores one artifact per spec
// fingerprint: a line-structured text file embedding (1) the spec's
// fingerprint text verbatim — decode_result() refuses to return a payload
// whose embedded text differs from the expected spec, so a fingerprint
// collision degrades to a cache miss, never a wrong result — and (2) the
// result itself as sections of util::csv tables serialised at
// kCsvExactPrecision, so every double round-trips bit-exactly and a
// disk-cache hit is bit-identical to the execution that produced it.
// Monte-Carlo summary statistics are not stored: they are refolded from
// the samples on load through the same seed-order fold the engine uses.
//
// Artifacts in this format are published exclusively through the
// ArtifactStore, whose writes go through the atomic
// temp+fsync+rename door (util/atomic_file.hpp) — a reader can never
// observe a torn artifact, and decode_result()'s nullopt on truncation is
// a defence for stores written by older builds or damaged media, with the
// store removing such artifacts on detection (self-healing).
#pragma once

#include <optional>
#include <string>

#include "sim/spec.hpp"

namespace tegrec::sim {

/// Serialises a result into the artifact text.  `fingerprint_text` is the
/// spec's ExperimentSpec::fingerprint_text() — stored for the collision
/// guard above.
std::string encode_result(const ExperimentResult& result,
                          const std::string& fingerprint_text);

/// Parses an artifact.  Returns nullopt when the payload belongs to a
/// different spec (collision / stale schema) or the text is malformed or
/// truncated — every failure mode is a cache miss, never an exception, so
/// a corrupt artifact can only cost a re-simulation.
std::optional<ExperimentResult> decode_result(
    const std::string& text, const std::string& expected_fingerprint_text);

}  // namespace tegrec::sim
