#include "predict/persistence.hpp"

#include <gtest/gtest.h>

namespace tegrec::predict {
namespace {

TEST(Persistence, PredictsLastRow) {
  PersistencePredictor p;
  TemperatureHistory h(3, 5);
  h.push({1.0, 2.0, 3.0});
  h.push({4.0, 5.0, 6.0});
  p.fit(h);
  EXPECT_EQ(p.predict_next(h), h.latest());
}

TEST(Persistence, HorizonRepeatsLastRow) {
  PersistencePredictor p;
  TemperatureHistory h(2, 5);
  h.push({7.0, 8.0});
  p.fit(h);
  const auto rows = p.predict_horizon(h, 4);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_EQ(row, h.latest());
}

TEST(Persistence, Misuse) {
  PersistencePredictor p;
  TemperatureHistory h(1, 5);
  EXPECT_THROW(p.fit(h), std::invalid_argument);  // empty
  h.push({1.0});
  EXPECT_THROW(p.predict_next(h), std::logic_error);  // unfitted
  p.fit(h);
  EXPECT_NO_THROW(p.predict_next(h));
  EXPECT_EQ(p.name(), "Persistence");
  EXPECT_EQ(p.num_lags(), 1u);
}

}  // namespace
}  // namespace tegrec::predict
