#!/usr/bin/env bash
# Check-only clang-format gate over the ratchet manifest
# (tools/format_manifest.txt).  Never rewrites anything.
#
# Usage: tools/check_format.sh
#
# Like run_tidy.sh, a missing clang-format binary is a SKIP (exit 0 with
# a notice): the reference container is gcc-only and CI is the enforcing
# environment.  Override the binary with CLANG_FORMAT=clang-format-18.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
fmt="${CLANG_FORMAT:-clang-format}"
manifest="$repo_root/tools/format_manifest.txt"

if ! command -v "$fmt" >/dev/null 2>&1; then
  echo "check_format: '$fmt' not found on PATH — skipping (CI enforces" \
       "this gate)."
  exit 0
fi

cd "$repo_root"
status=0
checked=0
while IFS= read -r line; do
  file="${line%%#*}"
  file="$(echo "$file" | xargs)"   # trim
  [ -z "$file" ] && continue
  if [ ! -f "$file" ]; then
    echo "check_format: manifest entry '$file' does not exist" >&2
    status=1
    continue
  fi
  checked=$((checked + 1))
  if ! "$fmt" --dry-run --Werror "$file" >/dev/null 2>&1; then
    echo "check_format: $file is not clang-format clean" >&2
    "$fmt" --dry-run --Werror "$file" || true
    status=1
  fi
done < "$manifest"

echo "check_format: $checked manifest file(s) checked"
exit "$status"
