// EHTR — Efficient Heuristic TEG Reconfiguration (prior work, Baek et al.,
// ISLPED 2017 [2]; re-implemented as the paper's comparison baseline).
//
// EHTR searches far harder than INOR: for every group count n in [1, N] it
// finds the *optimal* contiguous partition balancing the group MPP-current
// sums.  Minimising sum_j (S_j - Iideal)^2 for fixed n is equivalent to
// minimising sum_j S_j^2 (the cross terms are constant), which is
// n-independent and solvable for all n at once by dynamic programming:
//
//   dp[j][i] = min_k dp[j-1][k] + (prefix[i] - prefix[k])^2
//
// The naive DP is O(N^2) states with O(N) transitions — the O(N^3) runtime
// the paper attributes to EHTR.  The squared-segment-sum cost satisfies the
// quadrangle inequality for non-negative currents, so the per-layer argmin
// is monotone in i and each layer collapses to O(N log N) by
// divide-and-conquer optimisation: O(max_n * N log N) overall.  The cubic
// DP is retained behind PartitionDp::kLegacyCubic as the reference oracle
// (tests/test_ehtr_opt.cpp proves cost-identical partitions).  Each n's
// partition is then scored with the same charger-aware objective.  Like
// INOR in the paper's evaluation it re-runs every 0.5 s and always
// actuates, hence its large switching overhead in Table I.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/reconfigurer.hpp"
#include "power/converter.hpp"
#include "teg/array.hpp"

namespace tegrec::core {

/// Which partition DP to run.  For the finite, same-scale currents the
/// validation admits, both return cost-identical partitions; the cubic
/// oracle exists for equivalence tests and old-vs-new benchmarking.
enum class PartitionDp {
  kDivideAndConquer,  ///< O(max_n * N log N) monotone divide-and-conquer
  kLegacyCubic,       ///< O(max_n * N^2) full-scan reference oracle
};

/// Owns the partition DP's backtracking state: one flat uint32 parent arena
/// (max_groups - 1 layers x N + 1 columns) instead of N materialised
/// ArrayConfigs.  Candidates are reconstructed on demand into a caller
/// scratch buffer, so a full EHTR sweep keeps O(N) bytes of candidate state
/// resident where materialising all partitions costs O(N^2) (~400 MB at
/// N = 10k) on top of the arena.
class PartitionTable {
 public:
  /// Solves the balanced-partition DP for group counts 1..max_groups.
  /// Throws std::invalid_argument on empty/non-finite/negative currents or
  /// max_groups outside [1, N] — same contract as balanced_partitions.
  PartitionTable(const std::vector<double>& mpp_currents,
                 std::size_t max_groups,
                 PartitionDp dp = PartitionDp::kDivideAndConquer);

  std::size_t num_modules() const { return count_; }
  std::size_t max_groups() const { return max_groups_; }

  /// Writes the optimal n-group partition's group starts into `starts`
  /// (resized to n; capacity is reused across calls).  n in [1, max_groups].
  void reconstruct(std::size_t n, std::vector<std::size_t>& starts) const;

  /// Materialises the optimal n-group partition as an ArrayConfig.
  teg::ArrayConfig config(std::size_t n) const;

  /// Calls fn(n, starts) for every n in [1, max_groups] in order, reusing
  /// one scratch buffer — the streaming replacement for iterating a
  /// materialised candidate vector.
  template <typename Fn>
  void for_each_candidate(Fn&& fn) const {
    std::vector<std::size_t> starts;
    starts.reserve(max_groups_);
    for (std::size_t n = 1; n <= max_groups_; ++n) {
      reconstruct(n, starts);
      fn(n, static_cast<const std::vector<std::size_t>&>(starts));
    }
  }

 private:
  std::size_t count_ = 0;
  std::size_t max_groups_ = 0;
  /// Layer-major: parents_[(j - 1) * (count_ + 1) + i] is the best split
  /// point k for dp[j][i] (layer j = one more group than layer j - 1).
  std::vector<std::uint32_t> parents_;
};

/// Optimal contiguous partitions (by squared group-sum balance) of the MPP
/// currents into every group count 1..max_n.  Element n-1 of the result is
/// the best partition into n groups.  Thin materialising wrapper over
/// PartitionTable (O(N * max_n) memory) for callers that genuinely need
/// every candidate at once; the EHTR hot path streams instead.
std::vector<teg::ArrayConfig> balanced_partitions(
    const std::vector<double>& mpp_currents, std::size_t max_n,
    PartitionDp dp = PartitionDp::kDivideAndConquer);

/// Full EHTR search: group counts 1..max_groups (0 = all N, values above N
/// clamp to N), charger-aware scoring over a cached ArrayEvaluator.
/// Candidates are streamed out of a PartitionTable and scored in parallel
/// chunks with per-thread scratch (`num_threads` as in util::parallel_for:
/// 0 = hardware, 1 = inline), so only the chosen config is ever
/// materialised — O(N) candidate bytes instead of the old O(N^2) vector.
/// The argmax is a sequential lowest-index scan over the score table, so
/// the result is bit-identical to scoring the materialised candidate list
/// for every thread count; if no candidate scores above the sentinel
/// (e.g. an all-NaN temperature field) the first candidate is returned.
teg::ArrayConfig ehtr_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             std::size_t num_threads = 1,
                             PartitionDp dp = PartitionDp::kDivideAndConquer,
                             std::size_t max_groups = 0);

/// Periodic controller wrapping ehtr_search (0.5 s period per [5]).
/// `max_groups` bounds both the candidate sweep and the DP parent arena
/// (0 = no cap); operators of farm-scale arrays use it to trade optimality
/// headroom for memory.
class EhtrReconfigurer final : public Reconfigurer {
 public:
  EhtrReconfigurer(const teg::DeviceParams& device,
                   const power::ConverterParams& converter,
                   double period_s = 0.5, std::size_t num_threads = 1,
                   std::size_t max_groups = 0);

  std::string name() const override { return "EHTR"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;

  /// Stateless between invocations apart from the (next run time, held
  /// config) pair, so checkpoints round-trip trivially.  The DP runs fresh
  /// per invocation and is bit-identical for every thread count, so the
  /// restored decision stream matches regardless of num_threads.
  bool supports_checkpoint() const override { return true; }
  std::string checkpoint_state() const override;
  void restore_checkpoint_state(const std::string& state) override;

 private:
  teg::DeviceParams device_;
  power::Converter converter_;
  double period_s_;
  std::size_t num_threads_;
  std::size_t max_groups_;
  double next_run_time_s_ = 0.0;
  bool has_config_ = false;
  teg::ArrayConfig current_;
};

}  // namespace tegrec::core
