#include "util/rng.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace tegrec::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(rs.mean(), 3.0, 0.08);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.08);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, GaussianVectorShape) {
  Rng rng(17);
  const auto v = rng.gaussian_vector(64, 0.0, 1.0);
  EXPECT_EQ(v.size(), 64u);
}

TEST(OuStep, MeanReverts) {
  // With zero diffusion the OU step is a pure pull toward the mean.
  Rng rng(19);
  double x = 10.0;
  for (int i = 0; i < 100; ++i) x = rng.ou_step(x, 0.0, 0.5, 0.0, 0.1);
  // Euler decay: 10 * (1 - 0.05)^100 ~= 0.059.
  EXPECT_NEAR(x, 10.0 * std::pow(0.95, 100), 1e-9);
  for (int i = 0; i < 400; ++i) x = rng.ou_step(x, 0.0, 0.5, 0.0, 0.1);
  EXPECT_NEAR(x, 0.0, 1e-4);
}

TEST(OuStep, StationaryVarianceApproximation) {
  // Long OU run: stationary sigma^2 = sigma_diff^2 / (2 * reversion).
  Rng rng(23);
  const double reversion = 1.0, sigma = 0.5, dt = 0.01;
  double x = 0.0;
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    x = rng.ou_step(x, 0.0, reversion, sigma, dt);
    if (i > 1000) rs.add(x);
  }
  const double expected_sd = sigma / std::sqrt(2.0 * reversion);
  EXPECT_NEAR(rs.stddev(), expected_sd, 0.05);
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
}

}  // namespace
}  // namespace tegrec::util
