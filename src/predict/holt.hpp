// Holt double-exponential-smoothing predictor (extension).
//
// Not one of the paper's three methods, but the natural "cheapest model
// that tracks a trend" alternative: per-module level/trend smoothing with
// O(N) fit and O(N) prediction and no linear algebra at all.  Useful on
// controllers too small for even the MLR normal equations, and as an
// ablation point between persistence and MLR.
#pragma once

#include <vector>

#include "predict/predictor.hpp"

namespace tegrec::predict {

struct HoltParams {
  double alpha = 0.6;  ///< level smoothing in (0, 1]
  double beta = 0.2;   ///< trend smoothing in [0, 1]
};

class HoltPredictor final : public Predictor {
 public:
  explicit HoltPredictor(const HoltParams& params = {});

  std::string name() const override { return "Holt"; }
  std::size_t num_lags() const override { return 2; }
  void fit(const TemperatureHistory& history) override;
  bool is_fitted() const override { return fitted_; }
  std::vector<double> predict_next(const TemperatureHistory& history) const override;

  /// Smoothed per-module levels/trends of the last fit (for tests).
  const std::vector<double>& levels() const { return level_; }
  const std::vector<double>& trends() const { return trend_; }

 private:
  HoltParams params_;
  bool fitted_ = false;
  std::vector<double> level_;
  std::vector<double> trend_;
};

}  // namespace tegrec::predict
