#include "core/ehtr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/objective.hpp"
#include "core/state_codec.hpp"
#include "teg/array_evaluator.hpp"
#include "teg/module.hpp"
#include "util/parallel.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fills dp_cur / parent_cur for columns [lo, hi] of one DP layer, knowing
// the argmin of every column lies in [klo, khi]:
//
//   dp_cur[i] = min_{k in [klo, min(khi, i - 1)]} dp_prev[k]
//               + (prefix[i] - prefix[k])^2
//
// The squared-segment-sum cost is Monge (quadrangle inequality) for
// non-negative currents, so the lowest argmin is monotone non-decreasing in
// i and the classic divide-and-conquer optimisation applies: solve the
// middle column by scanning its window, then recurse left/right with the
// window split at the found argmin.  Each recursion level scans O(hi - lo +
// khi - klo) candidates and the depth is O(log N), giving O(N log N) per
// layer.  The initial call passes klo = j (the layer's smallest legal k)
// and recursion only ever raises it, so klo stays legal throughout.  Ties
// resolve to the lowest k — the same first-strict-improvement rule as the
// cubic oracle, which keeps the two DPs' costs bit-identical whenever the
// rounded costs stay Monge (inputs are validated finite; same-scale
// physical MPP currents keep rounding far below the Monge gap).
void solve_layer(const std::vector<double>& prefix,
                 const std::vector<double>& dp_prev, std::size_t lo,
                 std::size_t hi, std::size_t klo, std::size_t khi,
                 std::vector<double>& dp_cur, std::uint32_t* parent_cur) {
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::size_t k_end = std::min(khi, mid - 1);  // inclusive; mid >= 2
  double best = kInf;
  std::size_t best_k = klo;
  for (std::size_t k = klo; k <= k_end; ++k) {
    const double s = prefix[mid] - prefix[k];
    const double c = dp_prev[k] + s * s;
    if (c < best) {
      best = c;
      best_k = k;
    }
  }
  dp_cur[mid] = best;
  parent_cur[mid] = static_cast<std::uint32_t>(best_k);
  if (mid > lo) {
    solve_layer(prefix, dp_prev, lo, mid - 1, klo, best_k, dp_cur, parent_cur);
  }
  if (mid < hi) {
    solve_layer(prefix, dp_prev, mid + 1, hi, best_k, khi, dp_cur, parent_cur);
  }
}

}  // namespace

PartitionTable::PartitionTable(const std::vector<double>& mpp_currents,
                               std::size_t max_groups, PartitionDp dp_kind,
                               std::size_t initial_groups)
    : count_(mpp_currents.size()), max_groups_(max_groups),
      dp_kind_(dp_kind) {
  if (count_ == 0) throw std::invalid_argument("PartitionTable: empty input");
  if (max_groups_ == 0 || max_groups_ > count_) {
    throw std::invalid_argument("PartitionTable: bad max_groups");
  }
  if (count_ >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("PartitionTable: array too large");
  }
  prefix_.assign(count_ + 1, 0.0);
  for (std::size_t i = 0; i < count_; ++i) {
    // Rejecting NaN/inf here (not just negatives) is what lets the
    // divide-and-conquer path promise oracle-identical results: non-finite
    // costs would break the argmin monotonicity the recursion relies on.
    if (!std::isfinite(mpp_currents[i]) || mpp_currents[i] < 0.0) {
      throw std::invalid_argument("PartitionTable: non-finite or negative current");
    }
    prefix_[i + 1] = prefix_[i] + mpp_currents[i];
  }
  // Layer 0 (one group) is closed form; deeper layers are appended on
  // demand by extend_to, which keeps the two value rows live between
  // calls.  Layer j reads only layer j - 1, so the split into
  // construction + extensions leaves every solved layer bit-identical to
  // a one-shot full solve.
  dp_prev_.assign(count_ + 1, kInf);
  dp_cur_.assign(count_ + 1, kInf);
  for (std::size_t i = 1; i <= count_; ++i) {
    const double s = prefix_[i] - prefix_[0];
    dp_prev_[i] = s * s;
  }
  solved_groups_ = 1;
  extend_to(initial_groups == 0 ? max_groups_ : initial_groups);
}

void PartitionTable::solve_one_layer(std::size_t j) {
  const std::size_t stride = count_ + 1;
  std::uint32_t* parent_row = parents_.data() + (j - 1) * stride;
  if (dp_kind_ == PartitionDp::kLegacyCubic) {
    for (std::size_t i = j + 1; i <= count_; ++i) {
      double best = kInf;
      std::size_t best_k = j;
      for (std::size_t k = j; k < i; ++k) {
        const double s = prefix_[i] - prefix_[k];
        const double c = dp_prev_[k] + s * s;
        if (c < best) {
          best = c;
          best_k = k;
        }
      }
      dp_cur_[i] = best;
      parent_row[i] = static_cast<std::uint32_t>(best_k);
    }
  } else {
    solve_layer(prefix_, dp_prev_, j + 1, count_, j, count_ - 1, dp_cur_,
                parent_row);
  }
  dp_prev_.swap(dp_cur_);
}

void PartitionTable::extend_to(std::size_t n) {
  if (n > max_groups_) n = max_groups_;
  if (n <= solved_groups_) return;
  const std::size_t stride = count_ + 1;
  // The parent arena tracks the solved depth, so an early-stopping warm
  // pass holds solved/max of the cold footprint.
  parents_.resize((n - 1) * stride, 0);
  for (std::size_t j = solved_groups_; j < n; ++j) solve_one_layer(j);
  solved_groups_ = n;
}

void PartitionTable::reconstruct(std::size_t n,
                                 std::vector<std::size_t>& starts) const {
  if (n == 0 || n > solved_groups_) {
    throw std::out_of_range("PartitionTable::reconstruct: bad group count");
  }
  starts.resize(n);
  const std::size_t stride = count_ + 1;
  std::size_t i = count_;
  for (std::size_t j = n; j-- > 1;) {
    const std::size_t k = parents_[(j - 1) * stride + i];
    starts[j] = k;
    i = k;
  }
  starts[0] = 0;
}

teg::ArrayConfig PartitionTable::config(std::size_t n) const {
  std::vector<std::size_t> starts;
  reconstruct(n, starts);
  return teg::ArrayConfig(std::move(starts), count_);
}

std::vector<teg::ArrayConfig> balanced_partitions(
    const std::vector<double>& mpp_currents, std::size_t max_n,
    PartitionDp dp_kind) {
  const PartitionTable table(mpp_currents, max_n, dp_kind);
  std::vector<teg::ArrayConfig> out;
  out.reserve(max_n);
  table.for_each_candidate([&](std::size_t, const std::vector<std::size_t>& starts) {
    out.emplace_back(starts, table.num_modules());
  });
  return out;
}

teg::ArrayConfig ehtr_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             std::size_t num_threads, PartitionDp dp_kind,
                             std::size_t max_groups,
                             const EhtrWarmStart& warm,
                             EhtrSearchStats* stats) {
  std::vector<double> impp = array.module_mpp_currents();
  // The DP only accepts finite currents; treat non-finite modules (NaN
  // temperatures, open faults) as stone cold, the same way inor_partition
  // treats dead modules.  Scoring below still sees the true NaN powers, so
  // a fully degenerate array falls back to the first candidate.
  for (double& x : impp) {
    if (!std::isfinite(x)) x = 0.0;
  }
  const std::size_t count = array.size();
  if (max_groups == 0 || max_groups > count) max_groups = count;

  // Warm-start prerequisites.  The score bound below needs every module's
  // open-circuit voltage finite and its resistance finite and positive;
  // anything degenerate (NaN temperature spikes, open faults) turns the
  // warm pass off and the search runs the plain cold sweep.
  bool warm_ok = warm.enabled && max_groups > 1;
  std::vector<double> voc_top_prefix;  // [n] = sum of the n largest vocs
  double total_g = 0.0;
  if (warm_ok) {
    std::vector<double> vocs(count);
    for (std::size_t i = 0; i < count && warm_ok; ++i) {
      const teg::Module& m = array.module(i);
      const double voc = m.open_circuit_voltage_v();
      const double r = m.internal_resistance_ohm();
      if (!std::isfinite(voc) || !std::isfinite(r) || r <= 0.0) {
        warm_ok = false;
      } else {
        vocs[i] = voc;
        total_g += 1.0 / r;
      }
    }
    if (warm_ok && !(std::isfinite(total_g) && total_g > 0.0)) warm_ok = false;
    if (warm_ok) {
      std::sort(vocs.begin(), vocs.end(), std::greater<double>());
      voc_top_prefix.assign(count + 1, 0.0);
      for (std::size_t i = 0; i < count; ++i) {
        voc_top_prefix[i + 1] = voc_top_prefix[i] + vocs[i];
      }
    }
  }

  // Upper bound on the charger-aware score of ANY n-group partition:
  //  * string voc <= Vtop(n): each group's voc is the conductance-weighted
  //    mean of its members (<= its max member), and n disjoint groups'
  //    maxima are n distinct modules, so their sum <= the top-n voc sum;
  //  * string resistance >= n^2 / G by AM-HM over the group conductances;
  //  * the converter outputs at most eta_peak * min(P_cap, Pin), and zero
  //    outside its input-voltage window, so the best input power is
  //    max_{v in [vmin, vmax]} v * (voc - v) / r — concave in v, hence
  //    attained at V/2 clamped into the window.
  const power::ConverterParams& cpar = converter.params();
  auto score_bound = [&](std::size_t n) {
    const double v_top = voc_top_prefix[n];
    const double g_over_n2 =
        total_g / (static_cast<double>(n) * static_cast<double>(n));
    const double v =
        std::clamp(v_top * 0.5, cpar.min_input_v, cpar.max_input_v);
    const double pq = v * std::max(v_top - v, 0.0) * g_over_n2;
    // 1e-9 relative headroom absorbs prefix-sum rounding slop; true scores
    // sit below the bound by at least the fixed-loss derating, orders of
    // magnitude more.
    return cpar.eta_peak * std::min(cpar.max_input_power_w, pq) *
           (1.0 + 1e-9);
  };

  // First DP frontier: a neighbourhood of the incumbent group count (or of
  // the converter's efficient window when there is no incumbent yet).
  // Cold search solves everything up front.
  std::size_t initial = max_groups;
  if (warm_ok) {
    std::size_t base = warm.incumbent_groups;
    if (base == 0 || base > max_groups) {
      base = group_count_window(array, converter).nmax;
    }
    initial = std::min(max_groups, std::max<std::size_t>(1, base + warm.width));
  }
  PartitionTable table(impp, max_groups, dp_kind, initial);
  const teg::ArrayEvaluator evaluator(array);

  // Streamed scoring: candidates are reconstructed chunk by chunk into
  // per-chunk scratch and scored immediately — only the score table (O(N)
  // doubles) and one starts buffer per in-flight chunk stay resident,
  // never the O(N^2) materialised candidate vector.  Each n's score is
  // independent of the chunking, and the argmax below is a sequential
  // lowest-index scan, so the chosen config is bit-identical for every
  // thread count and every warm/cold schedule.
  std::vector<double> scores(max_groups, 0.0);
  const std::size_t workers =
      num_threads == 0 ? util::default_parallelism() : num_threads;
  auto score_range = [&](std::size_t lo_n, std::size_t hi_n) {
    // Scores group counts (lo_n, hi_n].  ~4 chunks per worker keeps the
    // atomic-claiming load balancer effective while amortising each
    // chunk's scratch buffer over many candidates.
    const std::size_t span = hi_n - lo_n;
    const std::size_t num_chunks =
        std::min(span, std::max<std::size_t>(1, 4 * workers));
    const std::size_t chunk_len = (span + num_chunks - 1) / num_chunks;
    util::parallel_for(num_chunks, num_threads, [&](std::size_t c) {
      const std::size_t first_n = lo_n + 1 + c * chunk_len;
      const std::size_t last_n = std::min(hi_n, first_n + chunk_len - 1);
      std::vector<std::size_t> starts;
      starts.reserve(last_n);
      for (std::size_t n = first_n; n <= last_n; ++n) {
        table.reconstruct(n, starts);
        scores[n - 1] = config_power_w(evaluator, converter, starts);
      }
    });
  };

  // Sequential lowest-index argmax over the scored prefix: deterministic
  // for every thread count.  NaN scores never beat the sentinel, so an
  // all-NaN field degrades to the first candidate instead of dereferencing
  // null.
  std::size_t best_n = 1;
  double best_power = -1.0;
  std::size_t scanned = 0;
  auto fold_argmax = [&](std::size_t upto_n) {
    for (std::size_t i = scanned; i < upto_n; ++i) {
      if (scores[i] > best_power) {
        best_power = scores[i];
        best_n = i + 1;
      }
    }
    scanned = upto_n;
  };

  std::size_t solved = table.solved_groups();
  score_range(0, solved);
  fold_argmax(solved);
  // Certified extension loop.  Any unscored n with score_bound(n) strictly
  // below the scored best can never win: the argmax only moves on a strict
  // improvement, and its score is at most the bound.  So extend the DP to
  // the largest n whose bound ties or beats the best, score the new range
  // for real, and repeat; when no bound survives, the prefix argmax IS the
  // cold argmax.  Worst case the frontier reaches max_groups and the warm
  // pass has performed exactly the cold computation.
  while (solved < max_groups) {
    std::size_t frontier = solved;
    for (std::size_t n = solved + 1; n <= max_groups; ++n) {
      if (score_bound(n) >= best_power) frontier = n;
    }
    if (frontier == solved) break;
    table.extend_to(frontier);
    solved = table.solved_groups();
    score_range(scanned, solved);
    fold_argmax(solved);
  }

  if (stats != nullptr) {
    stats->max_groups = max_groups;
    stats->groups_certified = solved;
    stats->warm_used = warm_ok;
  }
  return table.config(best_n);
}

EhtrReconfigurer::EhtrReconfigurer(const teg::DeviceParams& device,
                                   const power::ConverterParams& converter,
                                   double period_s, std::size_t num_threads,
                                   std::size_t max_groups, bool warm_start,
                                   std::size_t warm_width)
    : device_(device), converter_(converter), period_s_(period_s),
      num_threads_(num_threads), max_groups_(max_groups),
      warm_start_(warm_start), warm_width_(warm_width) {
  if (period_s <= 0.0) throw std::invalid_argument("EhtrReconfigurer: period <= 0");
}

UpdateResult EhtrReconfigurer::update(double time_s,
                                      const std::vector<double>& delta_t_k,
                                      double ambient_c) {
  UpdateResult result;
  if (has_config_ && time_s + 1e-9 < next_run_time_s_) {
    result.config = current_;
    return result;
  }
  const util::MonotonicTimer timer;
  const teg::TegArray array(device_, delta_t_k, ambient_c);
  EhtrWarmStart warm;
  warm.enabled = warm_start_;
  warm.incumbent_groups = has_config_ ? current_.num_groups() : 0;
  warm.width = warm_width_;
  teg::ArrayConfig next = ehtr_search(array, converter_, num_threads_,
                                      PartitionDp::kDivideAndConquer,
                                      max_groups_, warm);
  result.compute_time_s = timer.seconds();
  result.invoked = true;
  result.switched = !has_config_ || next != current_;
  result.actuate = true;  // periodic scheme: rebuild on every invocation
  current_ = std::move(next);
  has_config_ = true;
  next_run_time_s_ = time_s + period_s_;
  result.config = current_;
  return result;
}

void EhtrReconfigurer::reset() {
  has_config_ = false;
  next_run_time_s_ = 0.0;
  current_ = teg::ArrayConfig();
}

AlgorithmCost EhtrReconfigurer::algorithm_cost() const {
  return AlgorithmCost::ehtr();
}

std::string EhtrReconfigurer::checkpoint_state() const {
  return detail::encode_periodic_state(
      "ehtr-v1", {next_run_time_s_, has_config_, current_});
}

void EhtrReconfigurer::restore_checkpoint_state(const std::string& state) {
  detail::PeriodicState decoded = detail::decode_periodic_state("ehtr-v1", state);
  next_run_time_s_ = decoded.next_run_time_s;
  has_config_ = decoded.has_config;
  current_ = std::move(decoded.current);
}

}  // namespace tegrec::core
