// EHTR — Efficient Heuristic TEG Reconfiguration (prior work, Baek et al.,
// ISLPED 2017 [2]; re-implemented as the paper's comparison baseline).
//
// EHTR searches far harder than INOR: for every group count n in [1, N] it
// finds the *optimal* contiguous partition balancing the group MPP-current
// sums.  Minimising sum_j (S_j - Iideal)^2 for fixed n is equivalent to
// minimising sum_j S_j^2 (the cross terms are constant), which is
// n-independent and solvable for all n at once by dynamic programming:
//
//   dp[j][i] = min_k dp[j-1][k] + (prefix[i] - prefix[k])^2
//
// The naive DP is O(N^2) states with O(N) transitions — the O(N^3) runtime
// the paper attributes to EHTR.  The squared-segment-sum cost satisfies the
// quadrangle inequality for non-negative currents, so the per-layer argmin
// is monotone in i and each layer collapses to O(N log N) by
// divide-and-conquer optimisation: O(max_n * N log N) overall.  The cubic
// DP is retained behind PartitionDp::kLegacyCubic as the reference oracle
// (tests/test_ehtr_opt.cpp proves cost-identical partitions).  Each n's
// partition is then scored with the same charger-aware objective.  Like
// INOR in the paper's evaluation it re-runs every 0.5 s and always
// actuates, hence its large switching overhead in Table I.
#pragma once

#include <cstddef>
#include <vector>

#include "core/reconfigurer.hpp"
#include "power/converter.hpp"
#include "teg/array.hpp"

namespace tegrec::core {

/// Which partition DP to run.  For the finite, same-scale currents the
/// validation admits, both return cost-identical partitions; the cubic
/// oracle exists for equivalence tests and old-vs-new benchmarking.
enum class PartitionDp {
  kDivideAndConquer,  ///< O(max_n * N log N) monotone divide-and-conquer
  kLegacyCubic,       ///< O(max_n * N^2) full-scan reference oracle
};

/// Optimal contiguous partitions (by squared group-sum balance) of the MPP
/// currents into every group count 1..max_n.  Element n-1 of the result is
/// the best partition into n groups.  O(N * max_n) memory either way.
std::vector<teg::ArrayConfig> balanced_partitions(
    const std::vector<double>& mpp_currents, std::size_t max_n,
    PartitionDp dp = PartitionDp::kDivideAndConquer);

/// Full EHTR search: all group counts, charger-aware scoring over a cached
/// ArrayEvaluator, candidates scored in parallel (`num_threads` as in
/// util::parallel_for: 0 = hardware, 1 = inline).  The argmax takes the
/// lowest-index candidate on ties, so the result is identical for every
/// thread count; if no candidate scores above the sentinel (e.g. an
/// all-NaN temperature field) the first candidate is returned.
teg::ArrayConfig ehtr_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             std::size_t num_threads = 1,
                             PartitionDp dp = PartitionDp::kDivideAndConquer);

/// Periodic controller wrapping ehtr_search (0.5 s period per [5]).
class EhtrReconfigurer final : public Reconfigurer {
 public:
  EhtrReconfigurer(const teg::DeviceParams& device,
                   const power::ConverterParams& converter,
                   double period_s = 0.5, std::size_t num_threads = 1);

  std::string name() const override { return "EHTR"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;

 private:
  teg::DeviceParams device_;
  power::Converter converter_;
  double period_s_;
  std::size_t num_threads_;
  double next_run_time_s_ = 0.0;
  bool has_config_ = false;
  teg::ArrayConfig current_;
};

}  // namespace tegrec::core
