// Annotated mutex + RAII locks — the repo's one sanctioned locking door.
//
// std::mutex works, but on libstdc++ it carries none of the Clang
// thread-safety attributes, so `TEGREC_GUARDED_BY(mutex_)` on a member
// guarded by a raw std::mutex cannot be checked (the analysis rejects
// guard expressions whose type is not a capability).  These thin
// wrappers restore the capability:
//
//   util::Mutex       a std::mutex declared as a capability
//   util::MutexLock   std::lock_guard shape — lock whole scope
//   util::UniqueLock  std::unique_lock shape — for condition-variable
//                     waits; exposes native() for std::condition_variable
//
// All locking is scoped: neither RAII type exposes unlock()/relock(), so
// the mid-scope unlock dance is unrepresentable and every locked region
// is a lexical scope the analysis (and a human) can see at a glance.
// Mutex::lock()/unlock() exist only so the wrapper satisfies Lockable;
// calling them anywhere else trips tegrec_lint's lock-discipline rule.
//
// A condition-variable wait releases and reacquires the lock inside
// wait(); the analysis models the capability as held across the call,
// which matches the one guarantee user code relies on: it only ever
// *runs* with the lock held.  Write waits as explicit while-loops (not
// predicate lambdas) — a lambda is analysed as its own function with no
// capabilities held, so guarded reads inside a predicate false-positive.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace tegrec::util {

/// std::mutex annotated as a thread-safety capability.
class TEGREC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Lockable, for the RAII wrappers below.  Raw call sites are banned
  // (lock-discipline); the allows mark this file as the audited door.
  void lock() TEGREC_ACQUIRE() { impl_.lock(); }    // tegrec-lint: allow(lock-discipline)
  void unlock() TEGREC_RELEASE() { impl_.unlock(); }  // tegrec-lint: allow(lock-discipline)

  /// The wrapped mutex, for std::condition_variable interop only.
  std::mutex& native() { return impl_; }

 private:
  std::mutex impl_;
};

/// Scoped lock covering its whole lexical scope (std::lock_guard shape).
/// Acquisition/release go through the annotated Mutex members so the
/// analysis can verify this wrapper's own bodies, not just trust them.
class TEGREC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TEGREC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() TEGREC_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped lock whose native() handle feeds std::condition_variable::wait.
/// Still strictly scoped — no unlock()/relock() is exposed.
class TEGREC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) TEGREC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    // adopt: the std::unique_lock below owns the held mutex so
    // condition_variable::wait can release/reacquire it, while the
    // analysis keeps seeing the annotated lock()/unlock() pair.
    lock_ = std::unique_lock<std::mutex>(mutex_.native(), std::adopt_lock);
  }
  ~UniqueLock() TEGREC_RELEASE() {
    lock_.release();  // drop ownership without unlocking...
    mutex_.unlock();  // ...so the annotated release really unlocks
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// For std::condition_variable::wait/wait_for ONLY.  The wait reacquires
  /// before returning, so the scoped capability stays truthful.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

}  // namespace tegrec::util
