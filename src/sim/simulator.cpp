#include "sim/simulator.hpp"

#include <stdexcept>

#include "sim/stepper.hpp"

namespace tegrec::sim {

double SimulationResult::mean_power_w() const {
  if (steps.empty()) return 0.0;
  double acc = 0.0;
  for (const StepRecord& s : steps) acc += s.net_power_w;
  return acc / static_cast<double>(steps.size());
}

double SimulationResult::ratio_to_ideal() const {
  return ideal_energy_j > 0.0 ? energy_output_j / ideal_energy_j : 0.0;
}

SimulationResult run_simulation(core::Reconfigurer& controller,
                                const thermal::TemperatureTrace& trace,
                                const SimulationOptions& options) {
  if (trace.num_steps() == 0) {
    throw std::invalid_argument("run_simulation: empty trace");
  }
  // The batch run is literally the streaming run fed from a file: a
  // SimStepper consuming the trace one row at a time.  The stepper resets
  // the controller and replicates the historical loop body bit for bit
  // (tests/test_stepper.cpp holds the identity).
  SimStepper stepper(controller, trace.dt_s(), trace.num_modules(), options);
  TraceSample sample;
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    sample.time_s = static_cast<double>(t) * trace.dt_s();
    sample.module_temps_c = trace.step_temperatures(t);
    sample.ambient_c = trace.ambient_c(t);
    stepper.step(sample);
  }
  return stepper.result();
}

}  // namespace tegrec::sim
