// Micro-benchmarks of the inner kernels: greedy partition, DP partition
// table, configuration evaluation (string build + charger-aware MPP),
// switch-fabric apply, and the predictors' fit/predict at the paper's
// N = 100 scale.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/ehtr.hpp"
#include "core/inor.hpp"
#include "core/objective.hpp"
#include "predict/bpnn.hpp"
#include "predict/mlr.hpp"
#include "predict/svr.hpp"
#include "switchfab/switch_network.hpp"
#include "teg/array.hpp"

namespace {

using namespace tegrec;

constexpr std::size_t kN = 100;
const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

std::vector<double> profile() {
  std::vector<double> out(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    out[i] = 36.0 * std::exp(-2.0 * static_cast<double>(i) / kN) + 5.0;
  }
  return out;
}

void BM_GreedyPartition(benchmark::State& state) {
  const teg::TegArray array(kDev, profile());
  const auto impp = array.module_mpp_currents();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::inor_partition(impp, 12));
  }
}
BENCHMARK(BM_GreedyPartition);

void BM_DpPartitionAllN(benchmark::State& state) {
  const teg::TegArray array(kDev, profile());
  const auto impp = array.module_mpp_currents();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::balanced_partitions(impp, kN));
  }
}
BENCHMARK(BM_DpPartitionAllN);

void BM_ConfigEvaluation(benchmark::State& state) {
  const teg::TegArray array(kDev, profile());
  const power::Converter conv(kConv);
  const teg::ArrayConfig config = teg::ArrayConfig::uniform(kN, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::config_power_w(array, conv, config));
  }
}
BENCHMARK(BM_ConfigEvaluation);

void BM_SwitchFabricApply(benchmark::State& state) {
  switchfab::SwitchNetwork net(kN);
  const teg::ArrayConfig a = teg::ArrayConfig::uniform(kN, 10);
  const teg::ArrayConfig b = teg::ArrayConfig::uniform(kN, 13);
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.apply(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_SwitchFabricApply);

predict::TemperatureHistory history_100() {
  predict::TemperatureHistory h(kN, 30);
  const auto base = profile();
  for (int t = 0; t < 30; ++t) {
    std::vector<double> row = base;
    for (auto& x : row) x += 25.0 + 0.02 * t;
    h.push(row);
  }
  return h;
}

void BM_MlrFit(benchmark::State& state) {
  const auto h = history_100();
  predict::MlrPredictor mlr;
  for (auto _ : state) {
    mlr.fit(h);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MlrFit);

void BM_BpnnFit(benchmark::State& state) {
  const auto h = history_100();
  predict::BpnnParams p;
  p.epochs = 8;
  p.module_stride = 5;
  predict::BpnnPredictor nn(p);
  for (auto _ : state) {
    nn.fit(h);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_BpnnFit);

void BM_SvrFit(benchmark::State& state) {
  const auto h = history_100();
  predict::SvrParams p;
  p.iterations = 120;
  p.module_stride = 5;
  predict::SvrPredictor svr(p);
  for (auto _ : state) {
    svr.fit(h);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SvrFit);

void BM_PredictNext(benchmark::State& state) {
  const auto h = history_100();
  predict::MlrPredictor mlr;
  mlr.fit(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlr.predict_next(h));
  }
}
BENCHMARK(BM_PredictNext);

}  // namespace
