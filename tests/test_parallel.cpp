#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/montecarlo.hpp"
#include "sim/sweep.hpp"
#include "util/parallel.hpp"

namespace tegrec {
namespace {

// ------------------------------------------------------------ parallel_for

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  util::parallel_for(kN, 4, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  bool called = false;
  util::parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  util::parallel_for(8, 1, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, RethrowsBodyException) {
  EXPECT_THROW(
      util::parallel_for(64, 4,
                         [](std::size_t i) {
                           if (i == 17) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCoversAll) {
  std::vector<std::atomic<int>> visits(3);
  util::parallel_for(3, 16, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasks) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  util::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed and the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, AtLeastOneWorker) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

// ------------------------------------------------- engine determinism

sim::MonteCarloOptions tiny_mc_options() {
  sim::MonteCarloOptions options;
  // 24 modules / one short urban slice: small enough for test speed, large
  // enough that the square-grid baseline clears the converter input floor.
  options.base_trace.layout.num_modules = 24;
  options.base_trace.segments = {
      {thermal::DriveSegment::Kind::kUrban, 25.0, 30.0, 0.0}};
  options.comparison.include_inor = false;
  options.comparison.include_ehtr = false;
  options.num_seeds = 5;
  options.first_seed = 42;
  return options;
}

TEST(ParallelDeterminism, MonteCarloBitIdenticalAcrossThreadCounts) {
  // The direct engine on purpose: the public run_monte_carlo wrapper now
  // serves the second call from the ExperimentService result cache (thread
  // counts share one fingerprint), which would turn this determinism check
  // into comparing a result with itself.
  sim::MonteCarloOptions options = tiny_mc_options();
  options.num_threads = 1;
  const sim::MonteCarloSummary serial =
      sim::detail::run_monte_carlo_direct(options);
  options.num_threads = 4;
  const sim::MonteCarloSummary parallel =
      sim::detail::run_monte_carlo_direct(options);

  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t k = 0; k < serial.samples.size(); ++k) {
    const sim::MonteCarloSample& a = serial.samples[k];
    const sim::MonteCarloSample& b = parallel.samples[k];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.dnor_energy_j, b.dnor_energy_j);        // exact, not near:
    EXPECT_EQ(a.baseline_energy_j, b.baseline_energy_j);  // bit-identical
    EXPECT_EQ(a.gain, b.gain);
    EXPECT_EQ(a.dnor_overhead_j, b.dnor_overhead_j);
    EXPECT_EQ(a.dnor_switches, b.dnor_switches);
  }
  EXPECT_EQ(serial.gain.mean(), parallel.gain.mean());
  EXPECT_EQ(serial.gain.stddev(), parallel.gain.stddev());
  EXPECT_EQ(serial.dnor_energy_j.mean(), parallel.dnor_energy_j.mean());
  EXPECT_EQ(serial.dnor_overhead_j.mean(), parallel.dnor_overhead_j.mean());
  EXPECT_EQ(serial.dnor_switches.mean(), parallel.dnor_switches.mean());
}

TEST(ParallelDeterminism, SweepBitIdenticalAcrossThreadCounts) {
  const sim::MonteCarloOptions base = tiny_mc_options();
  const std::vector<double> values = {16, 20, 24, 28};
  const sim::ConfigMutator mutate = [](thermal::TraceGeneratorConfig& config,
                                       double value) {
    config.layout.num_modules = static_cast<std::size_t>(value);
  };

  const std::vector<sim::SweepPoint> serial = sim::sweep_parameter(
      base.base_trace, values, mutate, base.comparison, /*num_threads=*/1);
  const std::vector<sim::SweepPoint> parallel = sim::sweep_parameter(
      base.base_trace, values, mutate, base.comparison, /*num_threads=*/4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].value, parallel[i].value);
    EXPECT_EQ(serial[i].dnor_energy_j, parallel[i].dnor_energy_j);
    EXPECT_EQ(serial[i].baseline_energy_j, parallel[i].baseline_energy_j);
    EXPECT_EQ(serial[i].gain, parallel[i].gain);
    EXPECT_EQ(serial[i].dnor_ratio_to_ideal, parallel[i].dnor_ratio_to_ideal);
  }
}

}  // namespace
}  // namespace tegrec
