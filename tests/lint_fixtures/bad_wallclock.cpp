// Known-bad fixture for tegrec_lint's `determinism` rule.  Never compiled:
// the build only globs tests/*.cpp, so this directory is scan-only.
// Line numbers are asserted by tests/test_lint.cpp — edit with care.
#include <chrono>
#include <random>

double measure() {
  const auto t0 = std::chrono::steady_clock::now();  // LINE 8: steady_clock
  std::mt19937 gen(42);                              // LINE 9: mt19937
  (void)gen;
  return std::chrono::duration<double>(
             std::chrono::system_clock::now() - t0)  // LINE 12: system_clock
      .count();
}

int noisy() { return rand(); }  // LINE 16: rand()

double stamp() { return static_cast<double>(time(nullptr)); }  // LINE 18
