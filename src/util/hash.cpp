#include "util/hash.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tegrec::util {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a64(std::string_view text, std::uint64_t state) {
  return fnv1a64(text.data(), text.size(), state);
}

std::uint64_t fnv1a64_file(const std::string& path, std::uint64_t state) {
  std::uint64_t unused = kFnv1aAltBasis;
  fnv1a64_file(path, state, unused);
  return state;
}

void fnv1a64_file(const std::string& path, std::uint64_t& state_a,
                  std::uint64_t& state_b) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("fnv1a64_file: cannot open " + path);
  char buffer[1 << 16];
  while (f) {
    f.read(buffer, sizeof(buffer));
    const auto count = static_cast<std::size_t>(f.gcount());
    state_a = fnv1a64(buffer, count, state_a);
    state_b = fnv1a64(buffer, count, state_b);
  }
  if (f.bad()) throw std::runtime_error("fnv1a64_file: read failed for " + path);
}

std::uint64_t fnv1a64_double(double value, std::uint64_t state) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  return fnv1a64(&bits, sizeof(bits), state);
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace tegrec::util
