#include "switchfab/switch_network.hpp"

#include <stdexcept>
#include <utility>

namespace tegrec::switchfab {

SwitchNetwork::SwitchNetwork(std::size_t num_modules)
    : SwitchNetwork(num_modules, teg::ArrayConfig::all_parallel(num_modules)) {}

SwitchNetwork::SwitchNetwork(std::size_t num_modules,
                             const teg::ArrayConfig& initial)
    : num_modules_(num_modules) {
  if (num_modules_ < 2) {
    throw std::invalid_argument("SwitchNetwork: need at least 2 modules");
  }
  if (initial.num_modules() != num_modules_) {
    throw std::invalid_argument("SwitchNetwork: config size mismatch");
  }
  cells_.resize(num_modules_ - 1);
  for (std::size_t i = 0; i + 1 < num_modules_; ++i) {
    const bool series = initial.is_series_boundary(i);
    cells_[i].series_closed = series;
    cells_[i].parallel_top_closed = !series;
    cells_[i].parallel_bottom_closed = !series;
  }
  starts_ = initial.group_starts();
}

const SwitchCell& SwitchNetwork::cell(std::size_t i) const {
  if (i >= cells_.size()) throw std::out_of_range("SwitchNetwork::cell");
  return cells_[i];
}

void SwitchNetwork::set_cell(std::size_t i, bool series) {
  SwitchCell& c = cells_[i];
  if (c.series_closed == series) return;
  // Flipping the connection type actuates all three switches of the cell.
  c.series_closed = series;
  c.parallel_top_closed = !series;
  c.parallel_bottom_closed = !series;
  total_actuations_ += 3;
}

ActuationPlan SwitchNetwork::diff(const teg::ArrayConfig& target) const {
  if (target.num_modules() != num_modules_) {
    throw std::invalid_argument("SwitchNetwork::diff: config size mismatch");
  }
  // A configuration's series boundaries are exactly its non-zero group
  // starts (cell s-1 sits between modules s-1 and s).  The cells to flip
  // are the symmetric difference of the wired and target boundary lists;
  // both are strictly increasing, so one merge pass finds it in
  // O(wired groups + target groups) — independent of the module count.
  const std::vector<std::size_t>& wired = starts_;
  const std::vector<std::size_t>& next = target.group_starts();
  ActuationPlan plan;
  std::size_t a = 1;  // skip the mandatory leading 0 of both lists
  std::size_t b = 1;
  while (a < wired.size() || b < next.size()) {
    if (b == next.size() || (a < wired.size() && wired[a] < next[b])) {
      plan.flip_cells.push_back(wired[a++] - 1);  // boundary opens
    } else if (a == wired.size() || next[b] < wired[a]) {
      plan.flip_cells.push_back(next[b++] - 1);   // boundary closes
    } else {
      ++a;  // boundary present on both sides: cell untouched
      ++b;
    }
  }
  return plan;
}

std::size_t SwitchNetwork::apply(const teg::ArrayConfig& config) {
  if (config.num_modules() != num_modules_) {
    throw std::invalid_argument("SwitchNetwork::apply: config size mismatch");
  }
  const ActuationPlan plan = diff(config);
  for (const std::size_t cell : plan.flip_cells) {
    set_cell(cell, !cells_[cell].series_closed);
  }
  starts_ = config.group_starts();
  if (!plan.empty()) ++events_;
  return plan.num_switch_actuations();
}

teg::ArrayConfig SwitchNetwork::current_config() const {
  return teg::ArrayConfig(starts_, num_modules_);
}

bool SwitchNetwork::is_valid() const {
  for (const SwitchCell& c : cells_) {
    if (!c.is_valid()) return false;
  }
  return true;
}

}  // namespace tegrec::switchfab
