// Fluid property models for the radiator heat-exchanger calculation.
//
// The hot stream is a 50/50 ethylene-glycol/water mix circulating through
// the radiator tubes; the cold stream is ambient air pushed through the fin
// stack by ram pressure and the cooling fan.  Capacity rates C = m_dot * cp
// feed the effectiveness-NTU model (thermal/heat_exchanger.hpp).
#pragma once

namespace tegrec::thermal {

/// Thermophysical constants of a coolant/air stream.
struct FluidProperties {
  double density_kg_m3 = 0.0;         ///< mass density
  double specific_heat_j_kgk = 0.0;   ///< isobaric specific heat

  /// Capacity rate C = rho * V_dot * cp for a volumetric flow in m^3/s.
  double capacity_rate_w_k(double volumetric_flow_m3_s) const;
};

/// 50/50 ethylene-glycol/water at typical operating temperature (~90 C).
FluidProperties coolant_glycol50();

/// Ambient air at ~25 C, 1 atm.
FluidProperties ambient_air();

/// Converts litres-per-minute (the unit of the paper's Recordall flow
/// meter) to m^3/s.
double lpm_to_m3s(double lpm);

/// Converts m^3/s to litres-per-minute.
double m3s_to_lpm(double m3s);

}  // namespace tegrec::thermal
