// Switching-overhead model (Section III.C, estimate method borrowed
// from Kim et al. [5]).
//
// Every reconfiguration period costs time during which the array delivers
// degraded (conservatively: zero) output:
//
//   t_overhead = t_sense + t_compute + n_toggles * t_switch + t_mppt
//
// The associated energy overhead charged against the harvest is
//
//   E_overhead = P_at_switch * t_overhead
//
// where P_at_switch is the array output power around the actuation.  A
// scheme that reconfigures every 0.5 s pays this on every period (the
// ~2 kJ / 800 s of INOR/EHTR in Table I); DNOR pays it only on its rare
// actuations (~22 J).
#pragma once

#include <cstddef>

namespace tegrec::switchfab {

/// Timing constants of one reconfiguration.
struct OverheadParams {
  double sensing_delay_s = 4e-3;        ///< thermocouple scan + ADC
  double per_switch_delay_s = 50e-6;    ///< relay/FET settling per actuation
  double mppt_settle_s = 18e-3;         ///< P&O re-convergence after topology change
  /// Energy to drive one switch actuation (gate/coil charge) [J].
  double per_switch_energy_j = 2e-3;
  /// Algorithm compute time charged per reconfiguration event [s].  The
  /// energy model must be a pure function of the trace (the library
  /// guarantees bit-exact reproducibility run-to-run and across thread
  /// counts), so the simulator charges this fixed budget — an embedded-MCU
  /// envelope for one decision — rather than the measured host wall clock,
  /// which varies with machine speed and load.  Measured times still feed
  /// the runtime statistics (avg_runtime_ms and friends).
  double compute_budget_s = 1e-3;
};

/// Overhead of a single reconfiguration event.
struct OverheadCost {
  double timing_s = 0.0;   ///< total dead time
  double energy_j = 0.0;   ///< lost output + actuation energy
};

/// Computes the cost of one actuation event (the array is taken offline,
/// `num_switch_actuations` switches toggle, MPPT re-settles) while the
/// array would otherwise produce `output_power_w`, with the algorithm
/// itself having taken `compute_time_s`.  Sensing, compute and the MPPT
/// re-settle are paid on every actuation event even if the new
/// configuration happens to repeat the old one (zero toggles) — the
/// periodic schemes rebuild blindly.
OverheadCost reconfiguration_cost(const OverheadParams& params,
                                  std::size_t num_switch_actuations,
                                  double output_power_w, double compute_time_s);

}  // namespace tegrec::switchfab
