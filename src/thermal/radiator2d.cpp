#include "thermal/radiator2d.hpp"

#include <algorithm>
#include <stdexcept>

namespace tegrec::thermal {

std::vector<double> row_flow_shares(const Radiator2DLayout& layout) {
  if (layout.num_rows == 0) {
    throw std::invalid_argument("row_flow_shares: zero rows");
  }
  if (layout.flow_imbalance < 0.0 || layout.flow_imbalance >= 1.0) {
    throw std::invalid_argument("row_flow_shares: imbalance out of [0,1)");
  }
  const std::size_t r = layout.num_rows;
  std::vector<double> shares(r);
  double total = 0.0;
  for (std::size_t i = 0; i < r; ++i) {
    const double x =
        r == 1 ? 0.0
               : -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(r - 1);
    shares[i] = 1.0 + layout.flow_imbalance * x;
    total += shares[i];
  }
  for (double& s : shares) s /= total;
  return shares;
}

std::vector<std::vector<double>> row_module_temperatures(
    const Radiator2DLayout& layout, const StreamConditions& total) {
  const std::vector<double> shares = row_flow_shares(layout);
  std::vector<std::vector<double>> rows;
  rows.reserve(layout.num_rows);
  for (std::size_t r = 0; r < layout.num_rows; ++r) {
    StreamConditions cond = total;
    cond.hot_capacity_w_k = total.hot_capacity_w_k * shares[r];
    cond.cold_capacity_w_k =
        total.cold_capacity_w_k / static_cast<double>(layout.num_rows);
    rows.push_back(module_hot_side_temperatures(layout.row, cond));
  }
  return rows;
}

std::vector<std::vector<double>> row_module_delta_t(
    const Radiator2DLayout& layout, const StreamConditions& total) {
  std::vector<std::vector<double>> rows = row_module_temperatures(layout, total);
  for (auto& row : rows) {
    for (double& t : row) t = std::max(0.0, t - total.cold_inlet_c);
  }
  return rows;
}

}  // namespace tegrec::thermal
