// Parallel group of TEG modules: Thevenin equivalent and mismatch loss.
//
// Modules wired in parallel share one terminal voltage (paper Fig. 3a).
// For linear sources (Voc_i, R_i) the parallel combination is again a
// linear source:
//
//   1/R_eq  = sum 1/R_i
//   Voc_eq  = R_eq * sum (Voc_i / R_i)
//
// When hot-side temperatures differ, the cooler modules run above their
// MPP voltage (or even absorb current) and the group's aggregate maximum
// power falls below the sum of the individual MPPs — the loss the paper
// illustrates in Fig. 3 and that reconfiguration minimises.
#pragma once

#include <vector>

#include "teg/module.hpp"

namespace tegrec::teg {

class ParallelGroup {
 public:
  ParallelGroup() = default;
  explicit ParallelGroup(std::vector<Module> modules);

  std::size_t size() const { return modules_.size(); }
  bool empty() const { return modules_.empty(); }
  const std::vector<Module>& modules() const { return modules_; }

  double equivalent_voc_v() const { return voc_eq_v_; }
  double equivalent_resistance_ohm() const { return r_eq_ohm_; }

  /// Terminal voltage when the group sources `current_a` into the string.
  double voltage_at_current(double current_a) const;
  /// Total group output power at a string current.
  double power_at_current(double current_a) const;
  /// Total group output power at a terminal voltage.
  double power_at_voltage(double voltage_v) const;

  /// Current of each member module at a group terminal voltage; negative
  /// entries mean the module is being back-fed by its neighbours.
  std::vector<double> member_currents_at_voltage(double voltage_v) const;

  /// Group MPP (of the equivalent source).
  double mpp_current_a() const;
  double mpp_power_w() const;

  /// Sum of member MPP powers (upper bound, achieved only when all members
  /// share the same Voc/R ratio).
  double ideal_power_w() const;

  /// Sum of member MPP currents — the quantity INOR balances per group.
  double mpp_current_sum_a() const;

 private:
  std::vector<Module> modules_;
  double voc_eq_v_ = 0.0;
  double r_eq_ohm_ = 0.0;
};

}  // namespace tegrec::teg
