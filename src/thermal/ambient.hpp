// Ambient temperature profiles (extension).
//
// The paper assumes a constant heatsink/ambient temperature ("typical
// operating condition").  Real drives cross weather fronts, altitude and
// tunnels; because the TEG cold side tracks ambient, ambient excursions
// move every module's dT at once and shift the optimal group count.  The
// profile model combines a linear drift, a sinusoidal component and
// optional step events (tunnel entry/exit), plus OU weather noise.
#pragma once

#include <cstdint>
#include <vector>

namespace tegrec::thermal {

struct AmbientStepEvent {
  double time_s = 0.0;
  double delta_c = 0.0;   ///< applied from time_s onward
};

struct AmbientProfile {
  double base_c = 25.0;
  double drift_c_per_hour = 0.0;   ///< slow weather/altitude trend
  double sine_amplitude_c = 0.0;   ///< periodic component amplitude
  double sine_period_s = 600.0;
  std::vector<AmbientStepEvent> steps;
  double noise_sigma_c = 0.0;      ///< OU stationary 1-sigma
  double noise_reversion = 0.1;    ///< OU mean-reversion rate [1/s]
};

/// Samples the profile at `num_steps` points spaced `dt_s` apart.
/// Deterministic for a given seed.
std::vector<double> ambient_series(const AmbientProfile& profile,
                                   std::size_t num_steps, double dt_s,
                                   std::uint64_t seed);

}  // namespace tegrec::thermal
