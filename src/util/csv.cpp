#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tegrec::util {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (idx >= row.size()) throw std::runtime_error("CsvTable: short row");
    out.push_back(row[idx]);
  }
  return out;
}

std::string csv_to_string(const CsvTable& table) {
  std::ostringstream os;
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    os << table.header[i] << (i + 1 < table.header.size() ? "," : "");
  }
  os << '\n';
  os.precision(12);
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "");
    }
    os << '\n';
  }
  return os.str();
}

CsvTable csv_from_string(const std::string& text) {
  CsvTable table;
  std::istringstream is(text);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    if (first) {
      while (std::getline(ls, cell, ',')) table.header.push_back(cell);
      first = false;
      continue;
    }
    std::vector<double> row;
    while (std::getline(ls, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw std::runtime_error("CSV: non-numeric cell '" + cell + "'");
      }
    }
    if (row.size() != table.header.size()) {
      throw std::runtime_error("CSV: row width differs from header");
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  f << csv_to_string(table);
  if (!f) throw std::runtime_error("write_csv: write failed for " + path);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_csv: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return csv_from_string(buf.str());
}

}  // namespace tegrec::util
