// Online prediction-accuracy evaluation (regenerates the paper's Fig. 5).
//
// Walks a TemperatureTrace with a sliding history window; at every step the
// predictor is refit on the window and asked for an h-step forecast, which
// is scored against the actual future distribution with MAPE (Eq. 3).
// Produces both the per-step MAPE time series (Fig. 5's curves) and
// aggregate statistics (mean/max MAPE, fit and predict wall time).
#pragma once

#include <string>
#include <vector>

#include "predict/predictor.hpp"
#include "thermal/trace.hpp"

namespace tegrec::predict {

struct EvaluationOptions {
  std::size_t window = 30;        ///< sliding history length (steps)
  std::size_t horizon_steps = 1;  ///< forecast lead (1 step = 1 s at 1 Hz)
  std::size_t refit_every = 1;    ///< refit cadence (steps)
  double start_time_s = 0.0;      ///< skip the initial transient
};

struct EvaluationResult {
  std::string predictor_name;
  std::vector<double> time_s;        ///< evaluation timestamps
  std::vector<double> mape_percent;  ///< per-step MAPE across modules
  double mean_mape_percent = 0.0;
  double max_mape_percent = 0.0;
  double mean_fit_time_ms = 0.0;
  double mean_predict_time_ms = 0.0;
};

/// Runs the online evaluation of one predictor over the trace.
EvaluationResult evaluate_online(Predictor& predictor,
                                 const thermal::TemperatureTrace& trace,
                                 const EvaluationOptions& options);

}  // namespace tegrec::predict
