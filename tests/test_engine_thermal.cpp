#include "thermal/engine_thermal.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace tegrec::thermal {
namespace {

TEST(Thermostat, ClosedBelowOpening) {
  const EngineThermalParams p;
  EXPECT_DOUBLE_EQ(thermostat_fraction(p, 60.0), p.thermostat_leak);
  EXPECT_DOUBLE_EQ(thermostat_fraction(p, p.thermostat_open_c), p.thermostat_leak);
}

TEST(Thermostat, FullyOpenAboveWindow) {
  const EngineThermalParams p;
  EXPECT_DOUBLE_EQ(thermostat_fraction(p, p.thermostat_full_c), 1.0);
  EXPECT_DOUBLE_EQ(thermostat_fraction(p, 110.0), 1.0);
}

TEST(Thermostat, LinearRampInWindow) {
  const EngineThermalParams p;
  const double mid = 0.5 * (p.thermostat_open_c + p.thermostat_full_c);
  const double expected = p.thermostat_leak + (1.0 - p.thermostat_leak) * 0.5;
  EXPECT_NEAR(thermostat_fraction(p, mid), expected, 1e-12);
}

TEST(Thermostat, MonotoneInTemperature) {
  const EngineThermalParams p;
  double prev = 0.0;
  for (double t = 80.0; t <= 100.0; t += 0.5) {
    const double f = thermostat_fraction(p, t);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Thermostat, DegenerateWindowThrows) {
  EngineThermalParams p;
  p.thermostat_full_c = p.thermostat_open_c;
  EXPECT_THROW(thermostat_fraction(p, 90.0), std::invalid_argument);
}

TEST(PumpFlow, IdleAndMaxEndpoints) {
  const EngineThermalParams p;
  EXPECT_NEAR(pump_flow_lpm(p, 0.0, 96.0), p.pump_flow_idle_lpm, 1e-9);
  EXPECT_NEAR(pump_flow_lpm(p, 96.0, 96.0), p.pump_flow_max_lpm, 1e-9);
}

TEST(PumpFlow, MonotoneInLoad) {
  const EngineThermalParams p;
  double prev = 0.0;
  for (double load_kw : {0.0, 10.0, 30.0, 60.0, 96.0}) {
    const double f = pump_flow_lpm(p, load_kw, 96.0);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(PumpFlow, BadRatingThrows) {
  EXPECT_THROW(pump_flow_lpm(EngineThermalParams{}, 10.0, 0.0),
               std::invalid_argument);
}

class CoolingLoopTest : public ::testing::Test {
 protected:
  CoolantTrace run(std::uint64_t seed = 11) const {
    const DriveCycle cycle =
        generate_drive_cycle(default_porter_cycle(), vehicle_, 0.1, seed);
    return simulate_cooling_loop(params_, exchanger_, vehicle_, cycle, seed);
  }
  EngineThermalParams params_;
  HeatExchangerParams exchanger_;
  VehicleParams vehicle_;
};

TEST_F(CoolingLoopTest, TemperatureRegulatedInPlausibleBand) {
  const CoolantTrace trace = run();
  for (const CoolantSample& s : trace.samples) {
    EXPECT_GT(s.coolant_inlet_c, 70.0) << "t=" << s.time_s;
    EXPECT_LT(s.coolant_inlet_c, 112.0) << "t=" << s.time_s;
  }
}

TEST_F(CoolingLoopTest, ThermostatKeepsLongRunAverageNearWindow) {
  const CoolantTrace trace = run();
  std::vector<double> temps;
  for (const auto& s : trace.samples) temps.push_back(s.coolant_inlet_c);
  const double avg = util::mean(temps);
  EXPECT_GT(avg, params_.thermostat_open_c - 6.0);
  EXPECT_LT(avg, params_.thermostat_full_c + 6.0);
}

TEST_F(CoolingLoopTest, FlowWithinPumpEnvelope) {
  const CoolantTrace trace = run();
  for (const CoolantSample& s : trace.samples) {
    EXPECT_GE(s.coolant_flow_lpm, 0.5);
    EXPECT_LE(s.coolant_flow_lpm, params_.pump_flow_max_lpm + 3.0);
  }
}

TEST_F(CoolingLoopTest, AirSpeedRespectsShutterCap) {
  const CoolantTrace trace = run();
  for (const CoolantSample& s : trace.samples) {
    EXPECT_GE(s.air_speed_ms, 0.8);
    EXPECT_LE(s.air_speed_ms, params_.max_air_speed_ms + 1e-9);
  }
}

TEST_F(CoolingLoopTest, DeterministicForSeed) {
  const CoolantTrace a = run(3);
  const CoolantTrace b = run(3);
  ASSERT_EQ(a.num_steps(), b.num_steps());
  for (std::size_t i = 0; i < a.num_steps(); i += 97) {
    EXPECT_DOUBLE_EQ(a.samples[i].coolant_inlet_c, b.samples[i].coolant_inlet_c);
    EXPECT_DOUBLE_EQ(a.samples[i].coolant_flow_lpm, b.samples[i].coolant_flow_lpm);
  }
}

TEST_F(CoolingLoopTest, TemperatureActuallyFluctuates) {
  // The paper's trace shows "radical temperature fluctuation"; the synthetic
  // one must not be a flat line.
  const CoolantTrace trace = run();
  std::vector<double> temps;
  for (const auto& s : trace.samples) temps.push_back(s.coolant_inlet_c);
  EXPECT_GT(util::max_value(temps) - util::min_value(temps), 3.0);
}

TEST_F(CoolingLoopTest, EmptyCycleThrows) {
  EXPECT_THROW(
      simulate_cooling_loop(params_, exchanger_, vehicle_, DriveCycle{}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::thermal
