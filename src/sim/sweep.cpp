#include "sim/sweep.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace tegrec::sim {

std::vector<SweepPoint> sweep_parameter(
    const thermal::TraceGeneratorConfig& base, const std::vector<double>& values,
    const ConfigMutator& mutate, const ComparisonOptions& comparison,
    std::size_t num_threads) {
  if (values.empty()) throw std::invalid_argument("sweep_parameter: no values");
  if (!mutate) throw std::invalid_argument("sweep_parameter: null mutator");
  if (!comparison.include_dnor || !comparison.include_baseline) {
    throw std::invalid_argument(
        "sweep_parameter: DNOR and baseline must both be enabled");
  }
  std::vector<SweepPoint> out(values.size());
  util::parallel_for(values.size(), num_threads, [&](std::size_t i) {
    thermal::TraceGeneratorConfig config = base;
    mutate(config, values[i]);
    const thermal::TemperatureTrace trace = thermal::generate_trace(config);
    const ComparisonResult res = run_standard_comparison(trace, comparison);

    SweepPoint& point = out[i];
    point.value = values[i];
    point.dnor_energy_j = res.by_name("DNOR").energy_output_j;
    point.baseline_energy_j = res.by_name("Baseline").energy_output_j;
    point.gain = res.dnor_gain_over_baseline();
    point.dnor_ratio_to_ideal = res.by_name("DNOR").ratio_to_ideal();
  });
  return out;
}

util::CsvTable sweep_to_csv(const std::string& value_name,
                            const std::vector<SweepPoint>& points) {
  util::CsvTable table;
  table.header = {value_name, "dnor_j", "baseline_j", "gain_percent",
                  "dnor_ratio"};
  for (const SweepPoint& p : points) {
    table.rows.push_back({p.value, p.dnor_energy_j, p.baseline_energy_j,
                          100.0 * p.gain, p.dnor_ratio_to_ideal});
  }
  return table;
}

}  // namespace tegrec::sim
