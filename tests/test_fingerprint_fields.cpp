// Runtime twin of tegrec_lint's cache-key rule: the lint proves every
// config field is *mentioned* in src/sim/spec.cpp; this suite proves each
// one actually *moves the fingerprint*.  A field could pass the textual
// check while being bound under a condition that never emits it — this is
// the check the linter cannot do statically.
//
// Structure: per base spec (comparison / csv / monte-carlo / sweep), a
// table of named single-field perturbations.  Every perturbation must
// change the fingerprint, and all perturbed fingerprints within a group
// must be pairwise distinct (two fields aliasing onto one key would
// collide here).  Execution hints (thread counts) must change the
// canonical text but NOT the fingerprint — that is the contract that lets
// a farm reuse cached results across machine shapes.
#include <functional>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/spec.hpp"
#include "thermal/scenario.hpp"

namespace tegrec::sim {
namespace {

struct Perturbation {
  std::string field;
  std::function<void(ExperimentSpec&)> apply;
};

/// fingerprint() for generated/inline sources; for kCsvFile fingerprint()
/// additionally hashes the referenced file's bytes, so tests hash the
/// fingerprint text directly (same function, no filesystem dependency).
std::string fp(const ExperimentSpec& spec) {
  return ExperimentSpec::fingerprint_of_text(spec.fingerprint_text());
}

void expect_each_field_moves_fingerprint(
    const ExperimentSpec& base, const std::vector<Perturbation>& table) {
  const std::string base_fp = fp(base);
  std::map<std::string, std::string> fps;
  for (const Perturbation& p : table) {
    ExperimentSpec spec = base;
    p.apply(spec);
    const std::string perturbed = fp(spec);
    EXPECT_NE(perturbed, base_fp)
        << "perturbing '" << p.field
        << "' did not change the fingerprint — the field is not "
           "content-addressed and stale cached results would be served";
    fps[p.field] = perturbed;
  }
  // Pairwise distinct: two fields serialising onto the same key would make
  // their perturbations collide.
  std::set<std::string> unique;
  for (const auto& [field, hash] : fps) unique.insert(hash);
  EXPECT_EQ(unique.size(), fps.size())
      << "two perturbations produced the same fingerprint";
}

TEST(FingerprintFields, ComparisonSpecFields) {
  const ExperimentSpec base;  // kComparison + generated default trace
  auto seg = [](ExperimentSpec& s) -> thermal::DriveSegment& {
    return s.trace.generator.segments.at(0);
  };
  const std::vector<Perturbation> table = {
      {"kind", [](ExperimentSpec& s) { s.kind = ExperimentKind::kMonteCarlo; }},
      // TraceGeneratorConfig, directly owned fields:
      {"gen.sample_dt_s",
       [](ExperimentSpec& s) { s.trace.generator.sample_dt_s += 0.5; }},
      {"gen.sim_dt_s",
       [](ExperimentSpec& s) { s.trace.generator.sim_dt_s *= 0.5; }},
      {"gen.surface_time_constant_s",
       [](ExperimentSpec& s) { s.trace.generator.surface_time_constant_s += 1; }},
      {"gen.seed", [](ExperimentSpec& s) { s.trace.generator.seed += 1; }},
      {"gen.segments(count)",
       [](ExperimentSpec& s) {
         s.trace.generator.segments.push_back(
             s.trace.generator.segments.front());
       }},
      // DriveSegment, every field:
      {"segment.kind",
       [&](ExperimentSpec& s) {
         seg(s).kind = seg(s).kind == thermal::DriveSegment::Kind::kCruise
                           ? thermal::DriveSegment::Kind::kIdle
                           : thermal::DriveSegment::Kind::kCruise;
       }},
      {"segment.duration_s", [&](ExperimentSpec& s) { seg(s).duration_s += 7; }},
      {"segment.target_speed_kmh",
       [&](ExperimentSpec& s) { seg(s).target_speed_kmh += 3; }},
      {"segment.grade_percent",
       [&](ExperimentSpec& s) { seg(s).grade_percent += 1.5; }},
      {"segment.process_power_kw",
       [&](ExperimentSpec& s) { seg(s).process_power_kw += 0.25; }},
      {"segment.process_power_end_kw",
       [&](ExperimentSpec& s) { seg(s).process_power_end_kw += 0.75; }},
      {"segment.period_s", [&](ExperimentSpec& s) { seg(s).period_s += 11; }},
      // Nested generator structs (full field rosters are covered by the
      // cache-key lint; one probe per struct proves the block is emitted):
      {"gen.layout.num_modules",
       [](ExperimentSpec& s) { s.trace.generator.layout.num_modules += 1; }},
      {"gen.layout.exchanger.tube_length_m",
       [](ExperimentSpec& s) {
         s.trace.generator.layout.exchanger.tube_length_m += 0.1;
       }},
      {"gen.engine.thermal_mass_j_k",
       [](ExperimentSpec& s) {
         s.trace.generator.engine.thermal_mass_j_k += 100;
       }},
      {"gen.vehicle.mass_kg",
       [](ExperimentSpec& s) { s.trace.generator.vehicle.mass_kg += 50; }},
      {"gen.ambient.base_c",
       [](ExperimentSpec& s) { s.trace.generator.ambient.base_c += 2; }},
      {"gen.ambient.steps",
       [](ExperimentSpec& s) {
         s.trace.generator.ambient.steps.push_back({120.0, -5.0});
       }},
      // ComparisonOptions:
      {"comparison.include_dnor",
       [](ExperimentSpec& s) { s.comparison.include_dnor = false; }},
      {"comparison.include_inor",
       [](ExperimentSpec& s) { s.comparison.include_inor = false; }},
      {"comparison.include_ehtr",
       [](ExperimentSpec& s) { s.comparison.include_ehtr = false; }},
      {"comparison.include_baseline",
       [](ExperimentSpec& s) { s.comparison.include_baseline = false; }},
      {"comparison.control_period_s",
       [](ExperimentSpec& s) { s.comparison.control_period_s += 0.5; }},
      // SimulationOptions and its device/power/overhead blocks:
      {"sim.charge_overhead",
       [](ExperimentSpec& s) { s.comparison.sim.charge_overhead = false; }},
      {"sim.ehtr_max_groups",
       [](ExperimentSpec& s) { s.comparison.sim.ehtr_max_groups = 12; }},
      {"sim.ehtr_warm_start",
       [](ExperimentSpec& s) { s.comparison.sim.ehtr_warm_start = true; }},
      {"sim.ehtr_warm_width",
       [](ExperimentSpec& s) { s.comparison.sim.ehtr_warm_width = 32; }},
      {"sim.device.num_couples",
       [](ExperimentSpec& s) { s.comparison.sim.device.num_couples += 1; }},
      {"sim.device.seebeck_v_k_couple",
       [](ExperimentSpec& s) {
         s.comparison.sim.device.seebeck_v_k_couple *= 1.1;
       }},
      {"sim.converter.output_voltage_v",
       [](ExperimentSpec& s) {
         s.comparison.sim.converter.output_voltage_v += 0.4;
       }},
      {"sim.battery.capacity_ah",
       [](ExperimentSpec& s) { s.comparison.sim.battery.capacity_ah += 5; }},
      {"sim.battery.initial_soc",
       [](ExperimentSpec& s) { s.comparison.sim.battery.initial_soc -= 0.1; }},
      {"sim.overhead.per_switch_energy_j",
       [](ExperimentSpec& s) {
         s.comparison.sim.overhead.per_switch_energy_j *= 2;
       }},
      {"sim.overhead.sensing_delay_s",
       [](ExperimentSpec& s) {
         s.comparison.sim.overhead.sensing_delay_s *= 2;
       }},
  };
  expect_each_field_moves_fingerprint(base, table);
}

TEST(FingerprintFields, ScenarioNameIsContentAddressed) {
  // A resolved scenario serialises both its name and the expanded config;
  // two registered scenarios must therefore never share a fingerprint.
  const std::vector<std::string> names = thermal::scenario_names();
  ASSERT_GE(names.size(), 2u);
  ExperimentSpec a;
  a.trace = scenario_source(names[0]);
  ExperimentSpec b;
  b.trace = scenario_source(names[1]);
  EXPECT_NE(fp(a), fp(b));
  EXPECT_NE(fp(a), fp(ExperimentSpec{}));
}

TEST(FingerprintFields, CsvSourceFields) {
  ExperimentSpec base;
  base.trace.kind = TraceSource::Kind::kCsvFile;
  base.trace.csv_path = "traces/a.csv";
  const std::vector<Perturbation> table = {
      {"trace.csv.path",
       [](ExperimentSpec& s) { s.trace.csv_path = "traces/b.csv"; }},
      {"trace.csv.dt_s", [](ExperimentSpec& s) { s.trace.csv_dt_s = 0.25; }},
  };
  expect_each_field_moves_fingerprint(base, table);
}

TEST(FingerprintFields, MonteCarloSpecFields) {
  ExperimentSpec base;
  base.kind = ExperimentKind::kMonteCarlo;
  const std::vector<Perturbation> table = {
      {"mc.num_seeds", [](ExperimentSpec& s) { s.mc_num_seeds += 5; }},
      {"mc.first_seed", [](ExperimentSpec& s) { s.mc_first_seed += 1; }},
  };
  expect_each_field_moves_fingerprint(base, table);
}

TEST(FingerprintFields, SweepSpecFields) {
  ExperimentSpec base;
  base.kind = ExperimentKind::kSweep;
  base.sweep_parameter_name = "control_period_s";
  base.sweep_values = {0.25, 0.5};
  const std::vector<Perturbation> table = {
      {"sweep.parameter",
       [](ExperimentSpec& s) { s.sweep_parameter_name = "sample_dt_s"; }},
      {"sweep.values", [](ExperimentSpec& s) { s.sweep_values.push_back(1.0); }},
  };
  expect_each_field_moves_fingerprint(base, table);
}

// ------------------------------------------------------- execution hints

/// Thread counts change how a study executes, never what it computes (the
/// library guarantees bit-identical results across thread counts), so
/// they serialise into the canonical text but are excluded from the
/// fingerprint — cached results stay valid across machine shapes.
TEST(FingerprintFields, ExecHintsDoNotMoveTheFingerprint) {
  struct Case {
    std::string field;
    ExperimentSpec base;
    std::function<void(ExperimentSpec&)> apply;
  };
  std::vector<Case> cases(3);
  cases[0].field = "exec.num_threads";
  cases[0].apply = [](ExperimentSpec& s) { s.comparison.sim.num_threads = 7; };
  cases[1].field = "exec.mc.num_threads";
  cases[1].base.kind = ExperimentKind::kMonteCarlo;
  cases[1].apply = [](ExperimentSpec& s) { s.mc_num_threads = 7; };
  cases[2].field = "exec.sweep.num_threads";
  cases[2].base.kind = ExperimentKind::kSweep;
  cases[2].base.sweep_parameter_name = "control_period_s";
  cases[2].base.sweep_values = {0.5};
  cases[2].apply = [](ExperimentSpec& s) { s.sweep_num_threads = 7; };

  for (Case& c : cases) {
    ExperimentSpec perturbed = c.base;
    c.apply(perturbed);
    EXPECT_EQ(fp(perturbed), fp(c.base))
        << c.field << " must not move the fingerprint (execution hint)";
    EXPECT_NE(perturbed.canonical_text(), c.base.canonical_text())
        << c.field << " must still appear in the canonical text";
  }
}

}  // namespace
}  // namespace tegrec::sim
