#include "sim/stream_server.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::sim {

namespace {

util::json::Value issue_line(const std::string& array,
                             const TelemetryIssue& issue) {
  util::json::Object obj;
  obj.emplace_back("array", array);
  obj.emplace_back("event", issue.kind == TelemetryIssue::Kind::kGap
                                ? "gap"
                                : "out_of_order");
  obj.emplace_back("detail", issue.detail);
  return util::json::Value(std::move(obj));
}

util::json::Value decision_line(const std::string& array,
                                const StepRecord& rec,
                                const std::vector<std::size_t>& group_starts) {
  util::json::Object obj;
  obj.emplace_back("array", array);
  obj.emplace_back("event", "decision");
  obj.emplace_back("time_s", rec.time_s);
  util::json::Array groups;
  groups.reserve(group_starts.size());
  for (std::size_t s : group_starts) groups.emplace_back(s);
  obj.emplace_back("group_starts", std::move(groups));
  obj.emplace_back("switch_actuations", rec.switch_actuations);
  obj.emplace_back("gross_power_w", rec.gross_power_w);
  obj.emplace_back("net_power_w", rec.net_power_w);
  return util::json::Value(std::move(obj));
}

}  // namespace

// ------------------------------------------------------------ StreamEmitter

StreamEmitter::StreamEmitter(LineSink sink, util::WarnFn warn)
    : sink_(std::move(sink)), warn_(std::move(warn)) {}

void StreamEmitter::emit(const std::string& line) {
  util::MutexLock lock(mutex_);
  if (sink_) sink_(line);
}

void StreamEmitter::warn(const std::string& message) {
  util::MutexLock lock(mutex_);
  if (warn_) warn_(message);
}

// ------------------------------------------------------------- StreamServer

StreamServer::StreamServer(LineSink sink, StreamServerOptions options)
    : emitter_(std::make_shared<StreamEmitter>(
          std::move(sink),
          options.warn ? options.warn : util::WarnFn(util::warn_to_stderr))),
      options_(std::move(options)) {}

void StreamServer::add_array(StreamArrayOptions array) {
  if (ran_) {
    throw std::logic_error("StreamServer: add_array after run()");
  }
  if (array.name.empty()) {
    throw std::invalid_argument("StreamServer: array needs a name");
  }
  if (!array.feed) {
    throw std::invalid_argument("StreamServer: array '" + array.name +
                                "' has no telemetry feed");
  }
  for (const StreamArrayOptions& existing : arrays_) {
    if (existing.name == array.name) {
      throw std::invalid_argument("StreamServer: duplicate array name '" +
                                  array.name + "'");
    }
  }
  arrays_.push_back(std::move(array));
}

std::vector<StreamArrayReport> StreamServer::run(
    const std::atomic<bool>* stop_flag) {
  if (ran_) throw std::logic_error("StreamServer: run() called twice");
  ran_ = true;
  if (arrays_.empty()) {
    throw std::logic_error("StreamServer: no arrays added");
  }

  std::vector<StreamArrayReport> reports(arrays_.size());
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    reports[i].name = arrays_[i].name;
  }

  // One thread per array; each thread touches only its own array slot and
  // report slot, so the joins below are the only synchronisation needed
  // (shared output goes through the mutex-guarded emitter).
  std::vector<std::thread> threads;
  threads.reserve(arrays_.size());
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    threads.emplace_back([this, i, stop_flag, &reports] {
      StreamArrayOptions& array = arrays_[i];
      StreamArrayReport& report = reports[i];
      try {
        run_array(array, report, stop_flag);
      } catch (const std::exception& e) {
        report.error = e.what();
        emitter_->warn("array '" + array.name + "' failed: " + e.what());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return reports;
}

void StreamServer::run_array(StreamArrayOptions& array,
                             StreamArrayReport& report,
                             const std::atomic<bool>* stop_flag) {
  StreamConfig config = array.config;  // grid fields filled on resolution
  std::unique_ptr<core::Reconfigurer> controller;
  std::unique_ptr<SimStepper> stepper;
  std::string fingerprint_text;
  std::vector<std::string> log_lines;  // full decision log incl. restored
  bool checkpointing = !array.checkpoint_path.empty();
  std::size_t steps_at_checkpoint = 0;

  // Builds controller + stepper once dt and module count are known.
  const auto build = [&] {
    fingerprint_text = stream_config_fingerprint_text(config);
    controller = make_stream_controller(config);
    stepper = std::make_unique<SimStepper>(*controller, config.dt_s,
                                           config.num_modules, config.sim);
    if (checkpointing && !stepper->checkpointable()) {
      emitter_->warn("array '" + array.name + "': controller '" +
                     controller->name() +
                     "' cannot checkpoint (stateful predictor); running "
                     "uncheckpointed");
      checkpointing = false;
      report.checkpointing_disabled = true;
    }
  };

  // Publishes the current state + log.  A write failure warns once and
  // disables checkpointing — the stream itself must keep flowing.  The
  // injected crash fault models the process dying and is not caught.
  const auto save_checkpoint = [&] {
    if (!checkpointing || !stepper) return;
    try {
      const std::string content =
          encode_checkpoint(stepper->state(), fingerprint_text, log_lines);
      util::AtomicWriteOptions write_options;
      write_options.fault_site = "stream.checkpoint";
      write_options.faults = array.faults;
      util::atomic_write_file(array.checkpoint_path, content, write_options);
      steps_at_checkpoint = stepper->steps_consumed();
    } catch (const util::AtomicWriteCrash&) {
      throw;
    } catch (const std::exception& e) {
      emitter_->warn("array '" + array.name +
                     "': checkpoint write failed, continuing "
                     "uncheckpointed: " +
                     e.what());
      checkpointing = false;
      report.checkpointing_disabled = true;
    }
  };

  TelemetryOptions telemetry_options;
  telemetry_options.dt_s = config.dt_s;
  telemetry_options.num_modules = config.num_modules;
  telemetry_options.gap_policy = array.gap_policy;

  if (array.resume) {
    if (config.dt_s <= 0.0 || config.num_modules == 0) {
      throw std::invalid_argument(
          "resume requires an explicit grid (dt and module count): the "
          "checkpoint stamp must be validated before any data flows");
    }
    const std::optional<std::string> text =
        util::read_file_if_exists(array.checkpoint_path);
    if (text) {
      // decode_checkpoint throws loudly on corruption or a stamp
      // mismatch; that failure fails the whole array on purpose.
      build();
      const DecodedCheckpoint decoded =
          decode_checkpoint(*text, fingerprint_text);
      stepper->restore_state(decoded.state);
      log_lines = decoded.extra_lines;
      report.resumed = true;
      // Replayed telemetry below the restored position is expected, not
      // an ordering incident; grid index 0 is t = 0 by the trace time
      // base.
      telemetry_options.epoch_s = 0.0;
      telemetry_options.start_index = stepper->steps_consumed();
      if (array.on_resume) array.on_resume(log_lines);
    }
    // Missing checkpoint: a fresh start (first boot of a new deployment).
  }

  LineTelemetrySource source(std::move(array.feed), telemetry_options);

  util::Deadline stall(options_.stall_timeout_ms);
  util::Deadline idle_exit(options_.idle_exit_ms);
  bool stall_warned = false;

  const auto emit_line = [&](const util::json::Value& value) {
    std::string line = util::json::dump(value);
    emitter_->emit(line);
    log_lines.push_back(std::move(line));
  };

  while (true) {
    if (stop_flag != nullptr && stop_flag->load()) break;
    TelemetryEvent event = source.poll();
    for (const TelemetryIssue& issue : event.issues) {
      if (issue.kind == TelemetryIssue::Kind::kGap) {
        ++report.gaps;
      } else {
        ++report.out_of_order;
      }
      emit_line(issue_line(array.name, issue));
    }
    if (event.kind == TelemetryEvent::Kind::kEnd) break;
    if (event.kind == TelemetryEvent::Kind::kIdle) {
      if (options_.idle_exit_ms != 0 && idle_exit.expired()) break;
      if (options_.stall_timeout_ms != 0 && stall.expired() &&
          !stall_warned) {
        ++report.stalls;
        stall_warned = true;
        emitter_->warn("array '" + array.name + "': no telemetry from " +
                       source.describe() + " for " +
                       std::to_string(stall.elapsed_ms()) + " ms");
      }
      util::sleep_for_ms(options_.poll_ms);
      continue;
    }

    // kSample.
    stall.reset();
    idle_exit.reset();
    stall_warned = false;
    if (!stepper) {
      config.dt_s = source.dt_s();
      config.num_modules = source.num_modules();
      build();
    }
    const util::MonotonicTimer timer;
    const StepRecord rec = stepper->step(event.sample);
    report.step_latency_ms.add(timer.seconds() * 1000.0);
    if (rec.switched) {
      ++report.decisions;
      emit_line(
          decision_line(array.name, rec, stepper->current_group_starts()));
    }
    if (array.checkpoint_every_steps != 0 &&
        stepper->steps_consumed() - steps_at_checkpoint >=
            array.checkpoint_every_steps) {
      save_checkpoint();
    }
  }

  save_checkpoint();
  report.replayed = source.replayed();
  if (stepper) report.result = stepper->result();
}

}  // namespace tegrec::sim
