// Finned-tube cross-flow heat exchanger, effectiveness-NTU method.
//
// Implements Section II of the paper: the radiator is modelled as a
// cross-flow heat exchanger (coolant in tubes, both fluids unmixed) per
// Bergman, "Introduction to Heat Transfer" [8].  The effectiveness-NTU
// method yields the outlet temperatures, and the longitudinal coolant
// temperature distribution follows Eq. (1):
//
//   T(d) = (Th_in - Tc_mean) * exp(-(K / Cc) * d) + Tc_mean
//
// where K is the overall heat-transfer coefficient per unit tube length
// (W/(m*K)), Cc the cold-stream capacity rate (W/K) and Tc_mean the
// arithmetic mean of the air inlet and outlet temperatures.
#pragma once

#include <cstddef>
#include <vector>

namespace tegrec::thermal {

/// Geometry/thermal constants of the radiator core.
struct HeatExchangerParams {
  /// Overall heat-transfer coefficient referenced to the coolant tube
  /// length, K in Eq. (1) [W/(m*K)].  Captures tube wall, fin efficiency
  /// and both convective films.  The default gives the steep entrance-to-
  /// exit decay of the paper's Fig. 2 at city airflow (exponent K*L/Cc of
  /// roughly 2-2.5) while flattening out at highway airflow.
  double k_per_length_w_mk = 1400.0;
  /// Total coolant tube path length through the S-shaped core [m].
  double tube_length_m = 4.0;
  /// UA product for the effectiveness-NTU outlet computation [W/K];
  /// consistent with k_per_length * tube_length by construction.
  double ua_w_k() const { return k_per_length_w_mk * tube_length_m; }
};

/// Operating point of both streams.
struct StreamConditions {
  double hot_inlet_c = 95.0;    ///< coolant inlet temperature [deg C]
  double cold_inlet_c = 25.0;   ///< ambient air inlet temperature [deg C]
  double hot_capacity_w_k = 1200.0;   ///< C_h = m_dot*cp of coolant [W/K]
  double cold_capacity_w_k = 900.0;   ///< C_c = m_dot*cp of air [W/K]
};

/// Solution of the epsilon-NTU cross-flow model.
struct HeatExchangerSolution {
  double effectiveness = 0.0;   ///< epsilon in [0,1]
  double ntu = 0.0;             ///< number of transfer units
  double heat_rate_w = 0.0;     ///< q transferred hot -> cold [W]
  double hot_outlet_c = 0.0;    ///< coolant outlet temperature [deg C]
  double cold_outlet_c = 0.0;   ///< air outlet temperature [deg C]
  double cold_mean_c = 0.0;     ///< Tc_a = (Tc_in + Tc_out)/2, Eq. (1)
};

/// Cross-flow (both fluids unmixed) effectiveness as a function of NTU and
/// the capacity ratio Cr = Cmin/Cmax.  Uses the standard correlation
///   eps = 1 - exp( NTU^0.22 / Cr * ( exp(-Cr * NTU^0.78) - 1 ) )
/// with the Cr -> 0 limit eps = 1 - exp(-NTU).
double crossflow_effectiveness(double ntu, double cr);

/// Solves outlet temperatures for the given geometry and conditions.
/// Throws std::invalid_argument for non-positive capacities or an inverted
/// temperature pair (hot inlet below cold inlet).
HeatExchangerSolution solve(const HeatExchangerParams& params,
                            const StreamConditions& cond);

/// Coolant temperature at distance d from the radiator entrance, Eq. (1).
/// `sol` must come from solve() on the same params/conditions.
double temperature_at(const HeatExchangerParams& params,
                      const StreamConditions& cond,
                      const HeatExchangerSolution& sol, double d_m);

/// Samples Eq. (1) at `n` equally spaced module centres along the tube:
/// d_i = (i + 0.5) * L / n for i in [0, n).
std::vector<double> temperature_profile(const HeatExchangerParams& params,
                                        const StreamConditions& cond, std::size_t n);

}  // namespace tegrec::thermal
