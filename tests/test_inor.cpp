#include "core/inor.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/objective.hpp"
#include "util/rng.hpp"

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

std::vector<double> decaying_delta_t(std::size_t n, double hi, double lo) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = hi * std::exp(std::log(lo / hi) * x);
  }
  return out;
}

TEST(InorPartition, ExactGroupCount) {
  const std::vector<double> impp{1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  for (std::size_t n = 1; n <= 6; ++n) {
    const teg::ArrayConfig c = inor_partition(impp, n);
    EXPECT_EQ(c.num_groups(), n);
    EXPECT_EQ(c.num_modules(), 6u);
  }
}

TEST(InorPartition, UniformCurrentsGiveUniformGroups) {
  const std::vector<double> impp(12, 0.7);
  const teg::ArrayConfig c = inor_partition(impp, 4);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(c.group_size(j), 3u);
}

TEST(InorPartition, BalancesGroupSums) {
  // Decaying currents: the greedy boundaries must make entrance groups
  // smaller (fewer hot modules reach Iideal) and exit groups larger.
  const std::vector<double> impp{2.0, 1.8, 1.5, 1.2, 1.0, 0.8, 0.6, 0.5, 0.4, 0.3};
  const teg::ArrayConfig c = inor_partition(impp, 3);
  ASSERT_EQ(c.num_groups(), 3u);
  EXPECT_LE(c.group_size(0), c.group_size(2));
  // Every group sum within 1 module-current of Iideal.
  double total = 0.0;
  for (double x : impp) total += x;
  const double ideal = total / 3.0;
  for (std::size_t j = 0; j < 3; ++j) {
    double sum = 0.0;
    for (std::size_t i = c.group_begin(j); i < c.group_end(j); ++i) sum += impp[i];
    EXPECT_NEAR(sum, ideal, 2.0) << "group " << j;
  }
}

TEST(InorPartition, InvalidArgsThrow) {
  EXPECT_THROW(inor_partition({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(inor_partition({1.0, 2.0}, 3), std::invalid_argument);
  EXPECT_THROW(inor_partition({1.0, -1.0}, 1), std::invalid_argument);
}

TEST(InorPartition, ToleratesColdModules) {
  // Modules at dT = 0 contribute zero MPP current but must not crash the
  // controller (the radiator can cool to ambient at a long stop).
  const teg::ArrayConfig c = inor_partition({1.0, 0.0, 0.8, 0.0, 0.6}, 2);
  EXPECT_EQ(c.num_groups(), 2u);
  EXPECT_EQ(c.num_modules(), 5u);
}

TEST(InorPartition, DeadArrayFallsBackToUniform) {
  const teg::ArrayConfig c = inor_partition(std::vector<double>(8, 0.0), 4);
  EXPECT_EQ(c, teg::ArrayConfig::uniform(8, 4));
}

TEST(InorSearch, SurvivesStoneColdArray) {
  const teg::TegArray array(kDev, std::vector<double>(20, 0.0));
  const power::Converter conv(kConv);
  const teg::ArrayConfig c =
      inor_search(array, conv, InorOptions{.nmin = 1, .nmax = 20});
  EXPECT_GE(c.num_groups(), 1u);
  EXPECT_DOUBLE_EQ(config_power_w(array, conv, c), 0.0);
}

TEST(InorSearch, BeatsOrMatchesFixedBaseline) {
  const teg::TegArray array(kDev, decaying_delta_t(40, 38.0, 6.0));
  const power::Converter conv(kConv);
  const teg::ArrayConfig best = inor_search(array, conv);
  const double p_inor = config_power_w(array, conv, best);
  // sqrt(N) x sqrt(N) fixed grid (well inside the converter window).
  const double p_grid =
      config_power_w(array, conv, teg::ArrayConfig::uniform(40, 6));
  EXPECT_GE(p_inor, p_grid - 1e-9);
}

TEST(InorSearch, NearOptimalVsExhaustiveContiguous) {
  // The key claim of Algorithm 1: greedy balancing lands within a few
  // percent of the exhaustive contiguous optimum even on adversarially
  // shuffled (non-monotone) temperature profiles.
  util::Rng rng(11);
  const power::Converter conv(kConv);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> dts(12);
    for (auto& dt : dts) dt = rng.uniform(5.0, 40.0);
    const teg::TegArray array(kDev, dts);
    const ExhaustiveResult opt = exhaustive_contiguous_search(array, conv);
    const teg::ArrayConfig c =
        inor_search(array, conv, InorOptions{.nmin = 1, .nmax = 12});
    const double p = config_power_w(array, conv, c);
    EXPECT_GE(p, 0.93 * opt.power_w) << "trial " << trial;
  }
}

TEST(InorSearch, NearOptimalOnMonotoneProfile) {
  // On the physical (monotone decaying) radiator profile the greedy
  // boundaries are essentially optimal.
  const power::Converter conv(kConv);
  const teg::TegArray array(kDev, decaying_delta_t(12, 38.0, 6.0));
  const ExhaustiveResult opt = exhaustive_contiguous_search(array, conv);
  const teg::ArrayConfig c =
      inor_search(array, conv, InorOptions{.nmin = 1, .nmax = 12});
  EXPECT_GE(config_power_w(array, conv, c), 0.985 * opt.power_w);
}

TEST(InorSearch, RespectsExplicitWindow) {
  const teg::TegArray array(kDev, decaying_delta_t(20, 35.0, 8.0));
  const power::Converter conv(kConv);
  const teg::ArrayConfig c =
      inor_search(array, conv, InorOptions{.nmin = 4, .nmax = 6});
  EXPECT_GE(c.num_groups(), 4u);
  EXPECT_LE(c.num_groups(), 6u);
}

TEST(InorSearch, DerivedWindowKeepsVoltageNearConverterBand) {
  const teg::TegArray array(kDev, decaying_delta_t(100, 36.0, 7.0));
  const power::Converter conv(kConv);
  const teg::ArrayConfig c = inor_search(array, conv);
  const double vmpp = array.mpp_voltage_v(c);
  EXPECT_GT(vmpp, conv.params().min_input_v);
  EXPECT_LT(vmpp, conv.params().max_input_v);
}

TEST(InorSearch, BadWindowThrows) {
  const teg::TegArray array(kDev, decaying_delta_t(10, 30.0, 10.0));
  const power::Converter conv(kConv);
  EXPECT_THROW(inor_search(array, conv, InorOptions{.nmin = 5, .nmax = 4}),
               std::invalid_argument);
  EXPECT_THROW(inor_search(array, conv, InorOptions{.nmin = 1, .nmax = 11}),
               std::invalid_argument);
}

TEST(InorReconfigurer, HonoursPeriod) {
  InorReconfigurer rec(kDev, kConv, 0.5);
  const std::vector<double> dts = decaying_delta_t(20, 35.0, 8.0);
  const UpdateResult r0 = rec.update(0.0, dts, 25.0);
  EXPECT_TRUE(r0.invoked);
  EXPECT_TRUE(r0.actuate);
  const UpdateResult r1 = rec.update(0.25, dts, 25.0);  // mid-period
  EXPECT_FALSE(r1.invoked);
  EXPECT_FALSE(r1.actuate);
  EXPECT_EQ(r1.config, r0.config);
  const UpdateResult r2 = rec.update(0.5, dts, 25.0);  // next period
  EXPECT_TRUE(r2.invoked);
}

TEST(InorReconfigurer, SwitchedFlagTracksConfigChange) {
  InorReconfigurer rec(kDev, kConv, 0.5);
  const std::vector<double> dts = decaying_delta_t(20, 35.0, 8.0);
  rec.update(0.0, dts, 25.0);
  // Same temperatures: config identical, actuate still true (blind rebuild)
  // but switched false.
  const UpdateResult r = rec.update(0.5, dts, 25.0);
  EXPECT_TRUE(r.invoked);
  EXPECT_TRUE(r.actuate);
  EXPECT_FALSE(r.switched);
}

TEST(InorReconfigurer, ResetForgetsState) {
  InorReconfigurer rec(kDev, kConv, 10.0);
  const std::vector<double> dts = decaying_delta_t(20, 35.0, 8.0);
  rec.update(0.0, dts, 25.0);
  rec.reset();
  const UpdateResult r = rec.update(1.0, dts, 25.0);  // would be mid-period
  EXPECT_TRUE(r.invoked);
}

TEST(InorReconfigurer, BadPeriodThrows) {
  EXPECT_THROW(InorReconfigurer(kDev, kConv, 0.0), std::invalid_argument);
}

// Property: across window widths the INOR result never exceeds ideal power
// and always produces a valid partition.
class InorWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InorWindowSweep, ValidAndBounded) {
  const std::size_t nmax = GetParam();
  const teg::TegArray array(kDev, decaying_delta_t(30, 36.0, 6.0));
  const power::Converter conv(kConv);
  const teg::ArrayConfig c =
      inor_search(array, conv, InorOptions{.nmin = 1, .nmax = nmax});
  EXPECT_LE(c.num_groups(), nmax);
  EXPECT_LE(config_power_w(array, conv, c), array.ideal_power_w() + 1e-9);
  std::size_t covered = 0;
  for (std::size_t j = 0; j < c.num_groups(); ++j) covered += c.group_size(j);
  EXPECT_EQ(covered, 30u);
}

INSTANTIATE_TEST_SUITE_P(Windows, InorWindowSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 30));

}  // namespace
}  // namespace tegrec::core
