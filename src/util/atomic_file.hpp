// The sanctioned atomic file-publication door.
//
// Every file that more than one process may observe — spool job specs,
// lease heartbeats, dead-letter reasons, cached result artifacts — is
// published through atomic_write_file(): the content is written to a
// `<path>.tmp-<pid>-<seq>` sibling, fsync'd, renamed over the final path,
// and the directory is fsync'd, so a concurrent reader sees either the
// old complete file or the new complete file, never a torn prefix, and a
// crash at any instant leaves at worst an orphaned temp file that readers
// ignore.  Transient failures are retried under a capped, deterministic
// exponential backoff (no jitter: the repo's determinism rules extend to
// failure handling).
//
// The raw-publish lint rule enforces the funnel mechanically: std::ofstream
// and rename calls are banned in src/sim, so simulation-layer code *cannot*
// publish a file except through these helpers.  Named fault-injection
// points (see util/fault.hpp) let tests drive the failure matrix:
//
//   <site>.write_fail   the attempt fails as if the disk were full
//   <site>.torn         a half-written file is published (models a legacy
//                       non-atomic writer or lost page-cache on power cut)
//   <site>.crash        the temp file is written but the process "dies"
//                       before rename: the temp is abandoned and
//                       AtomicWriteCrash is thrown (no retries — a crash
//                       is not an error return)
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "util/fault.hpp"

namespace tegrec::util {

/// Deterministic capped exponential backoff: attempt k (0-based) sleeps
/// min(initial_backoff_ms << k, max_backoff_ms) before retrying.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  std::uint64_t initial_backoff_ms = 1;
  std::uint64_t max_backoff_ms = 50;
};

/// Backoff delay before retry attempt `attempt` (0-based), in ms.
std::uint64_t backoff_delay_ms(const RetryPolicy& policy, std::size_t attempt);

struct AtomicWriteOptions {
  RetryPolicy retry;
  /// Injection-point prefix ("" disables injection for this write).
  std::string fault_site;
  /// nullptr falls back to process_faults().
  FaultInjector* faults = nullptr;
};

/// Thrown when the <site>.crash fault fires: the temp file was written but
/// the simulated process died before rename.  Deliberately NOT a retryable
/// failure — callers treat it like the crash it models.
class AtomicWriteCrash : public std::runtime_error {
 public:
  explicit AtomicWriteCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Atomically publishes `content` at `path` (write temp + fsync + rename +
/// fsync dir).  Retries transient failures per `options.retry`; throws
/// std::runtime_error once attempts are exhausted and AtomicWriteCrash when
/// the crash fault fires.
void atomic_write_file(const std::string& path, const std::string& content,
                       const AtomicWriteOptions& options = {});

/// rename(2) wrapper for single-winner claim protocols: true on success,
/// false on any failure (for a spool claim, a lost race — the source was
/// already taken).  Never throws.
bool rename_file(const std::string& from, const std::string& to) noexcept;

/// Whole-file read; nullopt when the file does not exist or cannot be
/// opened (for cache probes both are a miss).
std::optional<std::string> read_file_if_exists(const std::string& path);

/// Creates `path` with `content` only if it does not already exist
/// (O_CREAT|O_EXCL semantics — the attempt-marker primitive).  Returns
/// whether this call created it.
bool create_file_exclusive(const std::string& path,
                           const std::string& content);

/// Bumps the file's modification time to now (the artifact store's LRU
/// signal).  Best-effort: returns false when the file is gone.
bool touch_file(const std::string& path) noexcept;

/// Removes `*.tmp-*` orphans in `dir` older than `max_age_ms` (abandoned
/// by crashed writers; age from the filesystem clock).  Returns how many
/// were removed.  Never throws — garbage collection is best-effort.
std::size_t remove_stale_temp_files(const std::string& dir,
                                    std::uint64_t max_age_ms) noexcept;

}  // namespace tegrec::util
