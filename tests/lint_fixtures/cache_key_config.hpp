// Fixture for the `cache-key` completeness check: a config struct whose
// field list is cross-checked against cache_key_bindings.cpp.  Never
// compiled.  Line numbers are asserted by tests/test_lint.cpp.
#pragma once

#include <string>
#include <vector>

namespace demo {

/// Forward declaration must not satisfy the body search.
struct DemoConfig;

struct DemoConfig {
  enum class Mode { kFast, kSlow };  // nested enum: members are not fields
  Mode mode = Mode::kFast;               // LINE 16: bound
  double duration_s = 10.0;              // LINE 17: bound
  std::vector<double> gains;             // LINE 18: bound
  double not_serialised_w = 0.0;         // LINE 19: MISSING from bindings
  std::string debug_label;               // LINE 20: excluded (exec hint)
  static int counter;                    // static: not a field
  double duration_minutes() const { return duration_s / 60.0; }
  bool operator==(const DemoConfig&) const = default;
};

}  // namespace demo
