#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/dnor.hpp"
#include "core/fixed_baseline.hpp"
#include "core/inor.hpp"

namespace tegrec::sim {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

// Short steep-gradient trace for fast integration tests.
thermal::TemperatureTrace test_trace(double duration_s = 30.0,
                                     std::size_t modules = 20) {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = modules;
  config.segments = {
      {thermal::DriveSegment::Kind::kUrban, duration_s, 32.0, 0.0}};
  config.seed = 5;
  return thermal::generate_trace(config);
}

TEST(Simulator, EnergyAccountingIdentity) {
  const auto trace = test_trace();
  core::InorReconfigurer inor(kDev, kConv);
  const SimulationResult res = run_simulation(inor, trace);
  // Sum of step energies equals the reported total.
  double net = 0.0, overhead = 0.0, ideal = 0.0;
  for (const StepRecord& s : res.steps) {
    net += s.net_power_w * trace.dt_s();
    overhead += s.overhead_energy_j;
    ideal += s.ideal_power_w * trace.dt_s();
  }
  EXPECT_NEAR(net, res.energy_output_j, 1e-6);
  EXPECT_NEAR(overhead, res.switch_overhead_j, 1e-9);
  EXPECT_NEAR(ideal, res.ideal_energy_j, 1e-6);
  EXPECT_EQ(res.steps.size(), trace.num_steps());
}

TEST(Simulator, NetNeverExceedsGrossOrIdeal) {
  const auto trace = test_trace();
  core::InorReconfigurer inor(kDev, kConv);
  const SimulationResult res = run_simulation(inor, trace);
  for (const StepRecord& s : res.steps) {
    EXPECT_LE(s.net_power_w, s.gross_power_w + 1e-9);
    EXPECT_LE(s.gross_power_w, s.ideal_power_w + 1e-9);
    EXPECT_GE(s.net_power_w, 0.0);
  }
}

TEST(Simulator, OverheadDisableRaisesEnergy) {
  const auto trace = test_trace();
  core::InorReconfigurer a(kDev, kConv), b(kDev, kConv);
  SimulationOptions with;
  SimulationOptions without;
  without.charge_overhead = false;
  const SimulationResult r_with = run_simulation(a, trace, with);
  const SimulationResult r_without = run_simulation(b, trace, without);
  EXPECT_GT(r_without.energy_output_j, r_with.energy_output_j);
  EXPECT_DOUBLE_EQ(r_without.switch_overhead_j, 0.0);
}

TEST(Simulator, BaselineHasNoOverheadOrRuntime) {
  const auto trace = test_trace();
  auto baseline = core::FixedBaselineReconfigurer::square_grid(20);
  const SimulationResult res = run_simulation(baseline, trace);
  EXPECT_DOUBLE_EQ(res.switch_overhead_j, 0.0);
  EXPECT_EQ(res.num_invocations, 0u);
  EXPECT_DOUBLE_EQ(res.avg_runtime_ms, 0.0);
  EXPECT_EQ(res.num_switch_events, 0u);  // installation is free
}

TEST(Simulator, InorActuatesEveryPeriod) {
  const auto trace = test_trace();
  core::InorReconfigurer inor(kDev, kConv, 0.5);
  const SimulationResult res = run_simulation(inor, trace);
  // 0.5 s period on a 0.5 s trace: every step invokes; all but the first
  // (free installation) actuate.
  EXPECT_EQ(res.num_invocations, trace.num_steps());
  EXPECT_EQ(res.num_switch_events, trace.num_steps() - 1);
}

TEST(Simulator, DnorSwitchesFarLessThanInor) {
  const auto trace = test_trace(60.0);
  core::DnorReconfigurer dnor(kDev, kConv);
  core::InorReconfigurer inor(kDev, kConv);
  const SimulationResult r_dnor = run_simulation(dnor, trace);
  const SimulationResult r_inor = run_simulation(inor, trace);
  EXPECT_LT(r_dnor.num_switch_events, r_inor.num_switch_events / 4);
  EXPECT_LT(r_dnor.switch_overhead_j, r_inor.switch_overhead_j);
}

TEST(Simulator, BatteryReceivesEnergy) {
  const auto trace = test_trace();
  core::InorReconfigurer inor(kDev, kConv);
  const SimulationResult res = run_simulation(inor, trace);
  EXPECT_GT(res.battery_energy_j, 0.0);
  EXPECT_LE(res.battery_energy_j, res.energy_output_j + 1e-6);
  EXPECT_GT(res.final_soc, 0.7);  // charged above the initial SOC
}

TEST(Simulator, MeanPowerAndRatioHelpers) {
  const auto trace = test_trace();
  core::InorReconfigurer inor(kDev, kConv);
  const SimulationResult res = run_simulation(inor, trace);
  EXPECT_NEAR(res.mean_power_w(),
              res.energy_output_j / trace.duration_s(), 0.5);
  EXPECT_GT(res.ratio_to_ideal(), 0.5);
  EXPECT_LE(res.ratio_to_ideal(), 1.0);
}

TEST(Simulator, RuntimeAccounting) {
  const auto trace = test_trace();
  core::InorReconfigurer inor(kDev, kConv);
  const SimulationResult res = run_simulation(inor, trace);
  EXPECT_GT(res.avg_runtime_ms, 0.0);
  EXPECT_GE(res.runtime_per_invocation_ms, res.avg_runtime_ms);
}

TEST(Simulator, EmptyTraceThrows) {
  thermal::TemperatureTrace empty(0.5, 4);
  core::InorReconfigurer inor(kDev, kConv);
  EXPECT_THROW(run_simulation(inor, empty), std::invalid_argument);
}

TEST(Simulator, ControllersAreResetBetweenRuns) {
  const auto trace = test_trace();
  core::DnorReconfigurer dnor(kDev, kConv);
  const SimulationResult first = run_simulation(dnor, trace);
  const SimulationResult second = run_simulation(dnor, trace);
  // Decisions are deterministic; only the wall-clock compute time folded
  // into the overhead energy varies between runs.
  EXPECT_NEAR(first.energy_output_j, second.energy_output_j,
              1e-3 * first.energy_output_j);
  EXPECT_EQ(first.num_switch_events, second.num_switch_events);
}

}  // namespace
}  // namespace tegrec::sim
