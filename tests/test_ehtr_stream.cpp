// Streaming-candidate suite for the EHTR hot path:
//  * PartitionTable::reconstruct / config / for_each_candidate must
//    reproduce the materialising balanced_partitions wrapper exactly,
//  * the streaming ehtr_search must choose a config bit-identical to the
//    materialise-then-argmax path across seeds, thread counts, and
//    max_groups caps (and through the simulator),
//  * the candidate sweep must allocate O(N) bytes where materialising all
//    partitions allocates O(N^2) — asserted with a global operator-new
//    byte counter at N = 2048.
#include "core/ehtr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "core/objective.hpp"
#include "sim/simulator.hpp"
#include "teg/array_evaluator.hpp"
#include "thermal/trace.hpp"
#include "util/rng.hpp"

// ----------------------------------------------------------------------
// Global allocation counter.  new[] / delete[] default to forwarding into
// these replaceable forms, so three overrides cover the containers under
// test.  Counting is cumulative-allocated (frees are not subtracted):
// exactly the "bytes churned per sweep" the streaming refactor targets.
//
// GCC flags new-from-malloc / delete-into-free pairs as mismatched even
// though malloc/free-backed replacement is the textbook-conforming way to
// replace the global forms ([new.delete.single]); silence that one
// diagnostic for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_allocated_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

// The PR 2 shape the streaming path must stay bit-identical to:
// materialise every candidate, score via the cached evaluator, take the
// lowest-index argmax.
teg::ArrayConfig materialised_argmax(const teg::TegArray& array,
                                     const power::Converter& conv,
                                     std::size_t max_groups,
                                     PartitionDp dp = PartitionDp::kDivideAndConquer) {
  std::vector<double> impp = array.module_mpp_currents();
  for (double& x : impp) {
    if (!std::isfinite(x)) x = 0.0;
  }
  const std::vector<teg::ArrayConfig> candidates =
      balanced_partitions(impp, max_groups, dp);
  const teg::ArrayEvaluator evaluator(array);
  std::size_t best = 0;
  double best_power = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double p = config_power_w(evaluator, conv, candidates[i]);
    if (p > best_power) {
      best_power = p;
      best = i;
    }
  }
  return candidates[best];
}

TEST(PartitionTableSuite, MatchesBalancedPartitionsBothDps) {
  util::Rng rng(2024);
  for (const std::size_t n : {1ul, 2ul, 7ul, 33ul, 96ul}) {
    std::vector<double> impp(n);
    for (auto& x : impp) x = rng.uniform(0.05, 2.5);
    for (const PartitionDp dp :
         {PartitionDp::kDivideAndConquer, PartitionDp::kLegacyCubic}) {
      const PartitionTable table(impp, n, dp);
      EXPECT_EQ(table.num_modules(), n);
      EXPECT_EQ(table.max_groups(), n);
      const auto materialised = balanced_partitions(impp, n, dp);
      ASSERT_EQ(materialised.size(), n);
      std::vector<std::size_t> scratch;
      for (std::size_t g = 1; g <= n; ++g) {
        EXPECT_EQ(table.config(g), materialised[g - 1]) << "n " << n << " g " << g;
        table.reconstruct(g, scratch);
        ASSERT_EQ(scratch.size(), g);
        EXPECT_EQ(scratch, materialised[g - 1].group_starts());
      }
    }
  }
}

TEST(PartitionTableSuite, CappedTablePrefixesTheFullOne) {
  // A max_groups cap must not change the candidates it does keep: the DP
  // layers are independent of how many more layers follow.
  util::Rng rng(5);
  std::vector<double> impp(48);
  for (auto& x : impp) x = rng.uniform(0.1, 2.0);
  const PartitionTable full(impp, 48);
  const PartitionTable capped(impp, 9);
  for (std::size_t g = 1; g <= 9; ++g) {
    EXPECT_EQ(capped.config(g), full.config(g)) << "g " << g;
  }
}

TEST(PartitionTableSuite, ForEachCandidateStreamsInOrder) {
  std::vector<double> impp{1.0, 2.0, 0.5, 1.5, 0.75};
  const PartitionTable table(impp, 5);
  std::size_t expected_n = 1;
  table.for_each_candidate([&](std::size_t n, const std::vector<std::size_t>& starts) {
    EXPECT_EQ(n, expected_n++);
    ASSERT_EQ(starts.size(), n);
    EXPECT_EQ(starts.front(), 0u);
    EXPECT_EQ(teg::ArrayConfig(starts, 5), table.config(n));
  });
  EXPECT_EQ(expected_n, 6u);
}

TEST(PartitionTableSuite, ValidatesInputs) {
  EXPECT_THROW(PartitionTable({}, 1), std::invalid_argument);
  EXPECT_THROW(PartitionTable({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(PartitionTable({1.0, 2.0}, 3), std::invalid_argument);
  EXPECT_THROW(PartitionTable({1.0, std::nan("")}, 2), std::invalid_argument);
  const PartitionTable table({1.0, 2.0}, 2);
  std::vector<std::size_t> scratch;
  EXPECT_THROW(table.reconstruct(0, scratch), std::out_of_range);
  EXPECT_THROW(table.reconstruct(3, scratch), std::out_of_range);
}

TEST(EvaluatorSpanSuite, SpanAndConfigOverloadsBitIdentical) {
  util::Rng rng(17);
  std::vector<double> dts(30);
  for (auto& dt : dts) dt = rng.uniform(3.0, 42.0);
  const teg::TegArray array(kDev, dts);
  const teg::ArrayEvaluator evaluator(array);
  const power::Converter conv(kConv);
  const auto candidates = balanced_partitions(array.module_mpp_currents(), 30);
  for (const teg::ArrayConfig& c : candidates) {
    const teg::LinearSource via_config = evaluator.string_equivalent(c);
    const teg::LinearSource via_span =
        evaluator.string_equivalent(std::span(c.group_starts()));
    EXPECT_EQ(via_span.voc_v, via_config.voc_v);
    EXPECT_EQ(via_span.r_ohm, via_config.r_ohm);
    EXPECT_EQ(config_power_w(evaluator, conv, std::span(c.group_starts())),
              config_power_w(evaluator, conv, c));
  }
  // Malformed starts are rejected, not scored.
  EXPECT_THROW(evaluator.string_equivalent(std::span<const std::size_t>()),
               std::invalid_argument);
  const std::vector<std::size_t> bad_first{1, 4};
  EXPECT_THROW(evaluator.string_equivalent(std::span(bad_first)),
               std::invalid_argument);
  const std::vector<std::size_t> not_increasing{0, 7, 7};
  EXPECT_THROW(evaluator.string_equivalent(std::span(not_increasing)),
               std::out_of_range);
}

TEST(EhtrStreaming, MatchesMaterialisedArgmaxAcrossSeedsAndThreads) {
  const power::Converter conv(kConv);
  for (std::size_t trial = 0; trial < 6; ++trial) {
    util::Rng rng(300 + trial);
    const std::size_t n = 16 + 17 * trial;
    std::vector<double> dts(n);
    for (auto& dt : dts) dt = rng.uniform(4.0, 40.0);
    const teg::TegArray array(kDev, dts);
    const teg::ArrayConfig reference = materialised_argmax(array, conv, n);
    for (const std::size_t threads : {1ul, 4ul, 0ul}) {
      EXPECT_EQ(ehtr_search(array, conv, threads), reference)
          << "trial " << trial << " threads " << threads;
    }
  }
}

TEST(EhtrStreaming, MaxGroupsCapMatchesCappedMaterialisedArgmax) {
  const power::Converter conv(kConv);
  util::Rng rng(404);
  std::vector<double> dts(60);
  for (auto& dt : dts) dt = rng.uniform(4.0, 40.0);
  const teg::TegArray array(kDev, dts);
  for (const std::size_t cap : {1ul, 2ul, 5ul, 13ul, 37ul, 60ul}) {
    const teg::ArrayConfig reference = materialised_argmax(array, conv, cap);
    for (const std::size_t threads : {1ul, 4ul}) {
      const teg::ArrayConfig chosen =
          ehtr_search(array, conv, threads, PartitionDp::kDivideAndConquer, cap);
      EXPECT_EQ(chosen, reference) << "cap " << cap << " threads " << threads;
      EXPECT_LE(chosen.num_groups(), cap);
    }
  }
  // 0 and out-of-range caps clamp to N rather than throwing: operator
  // convenience for "no cap" configs.
  EXPECT_EQ(ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 0),
            ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 60));
  EXPECT_EQ(ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 1000),
            ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer, 60));
}

TEST(EhtrStreaming, LegacyDpStreamsIdentically) {
  const power::Converter conv(kConv);
  util::Rng rng(71);
  std::vector<double> dts(32);
  for (auto& dt : dts) dt = rng.uniform(4.0, 40.0);
  const teg::TegArray array(kDev, dts);
  EXPECT_EQ(ehtr_search(array, conv, 1, PartitionDp::kLegacyCubic),
            materialised_argmax(array, conv, 32, PartitionDp::kLegacyCubic));
}

// End-to-end: a capped, multi-threaded EHTR simulation must be
// bit-identical to the serial run, and its per-step configs respect the
// cap (checked indirectly through identical energies vs a serial capped
// run, plus the direct config check above).
TEST(EhtrStreaming, SimulationWithCapBitIdenticalAcrossThreadCounts) {
  thermal::TemperatureTrace trace(0.5, 20);
  for (std::size_t t = 0; t < 30; ++t) {
    std::vector<double> temps(20);
    for (std::size_t i = 0; i < 20; ++i) {
      temps[i] = 25.0 + 28.0 * std::exp(-static_cast<double>(i) / 9.0) +
                 2.5 * std::sin(0.4 * static_cast<double>(t) +
                                0.6 * static_cast<double>(i));
    }
    trace.append(temps, 25.0);
  }

  auto run = [&](std::size_t num_threads, std::size_t max_groups) {
    sim::SimulationOptions options;
    options.num_threads = num_threads;
    options.ehtr_max_groups = max_groups;
    core::EhtrReconfigurer ehtr(options.device, options.converter, 0.5,
                                num_threads, max_groups);
    return sim::run_simulation(ehtr, trace, options);
  };
  const sim::SimulationResult serial = run(1, 7);
  const sim::SimulationResult threaded = run(4, 7);
  EXPECT_EQ(serial.energy_output_j, threaded.energy_output_j);
  EXPECT_EQ(serial.battery_energy_j, threaded.battery_energy_j);
  EXPECT_EQ(serial.total_switch_actuations, threaded.total_switch_actuations);

  // The cap changes which configs are reachable: forcing a single parallel
  // group cannot match the uncapped search on a 13.8 V rail.
  const sim::SimulationResult all_parallel = run(1, 1);
  const sim::SimulationResult uncapped = run(1, 0);
  EXPECT_NE(all_parallel.energy_output_j, uncapped.energy_output_j);
}

// The allocation-scale acceptance criterion: at N = 2048 the streaming
// sweep (reconstruct + score every candidate out of one PartitionTable)
// must stay O(N) bytes while materialising the candidate vector costs
// O(N^2) — the ~N^2/2 group-start words the tentpole removes from
// ehtr_search.
TEST(EhtrStreaming, CandidateSweepAllocatesLinearNotQuadraticBytes) {
  constexpr std::size_t kN = 2048;
  std::vector<double> dts(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(kN);
    dts[i] = 35.0 * std::exp(-1.7 * x) + 5.0;
  }
  const teg::TegArray array(kDev, dts);
  const power::Converter conv(kConv);
  const teg::ArrayEvaluator evaluator(array);
  const PartitionTable table(array.module_mpp_currents(), kN);

  // Streaming sweep: score every candidate, keep only the best.
  const std::size_t before_stream =
      g_allocated_bytes.load(std::memory_order_relaxed);
  std::size_t best_n = 1;
  double best_power = -1.0;
  table.for_each_candidate([&](std::size_t n, const std::vector<std::size_t>& starts) {
    const double p = config_power_w(evaluator, conv, starts);
    if (p > best_power) {
      best_power = p;
      best_n = n;
    }
  });
  const teg::ArrayConfig chosen = table.config(best_n);
  const std::size_t stream_bytes =
      g_allocated_bytes.load(std::memory_order_relaxed) - before_stream;

  // Materialising sweep over the same table: the old candidate vector.
  const std::size_t before_mat =
      g_allocated_bytes.load(std::memory_order_relaxed);
  std::vector<teg::ArrayConfig> candidates;
  candidates.reserve(kN);
  for (std::size_t n = 1; n <= kN; ++n) candidates.push_back(table.config(n));
  const std::size_t mat_bytes =
      g_allocated_bytes.load(std::memory_order_relaxed) - before_mat;

  // ~N^2/2 words of group starts — clearly quadratic (3 N^2 keeps margin
  // against allocator-growth details while staying far above any O(N) sum).
  EXPECT_GT(mat_bytes, kN * kN * 3);
  // The streaming sweep churns the scratch buffer, the chosen config, and
  // per-candidate noise — comfortably under 1 MB at N = 2048 and at least
  // an order of magnitude below the materialised vector.
  EXPECT_LT(stream_bytes, std::size_t{1} << 20);
  EXPECT_LT(stream_bytes * 16, mat_bytes);
  // Sanity: the streamed winner is the same config the vector would yield.
  EXPECT_EQ(chosen, candidates[best_n - 1]);
}

}  // namespace
}  // namespace tegrec::core
