#include "util/csv.hpp"

#include <cstdio>
#include <gtest/gtest.h>

namespace tegrec::util {
namespace {

CsvTable sample_table() {
  CsvTable t;
  t.header = {"time", "value"};
  t.rows = {{0.0, 1.5}, {0.5, 2.5}, {1.0, -3.25}};
  return t;
}

TEST(Csv, StringRoundTrip) {
  const CsvTable t = sample_table();
  const CsvTable back = csv_from_string(csv_to_string(t));
  ASSERT_EQ(back.header, t.header);
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_cols(); ++c) {
      EXPECT_DOUBLE_EQ(back.rows[r][c], t.rows[r][c]);
    }
  }
}

TEST(Csv, ColumnAccess) {
  const CsvTable t = sample_table();
  EXPECT_EQ(t.column_index("value"), 1u);
  EXPECT_EQ(t.column("time"), (std::vector<double>{0.0, 0.5, 1.0}));
  EXPECT_THROW(t.column_index("missing"), std::out_of_range);
}

TEST(Csv, MalformedCellThrows) {
  EXPECT_THROW(csv_from_string("a,b\n1,xyz\n"), std::runtime_error);
}

TEST(Csv, ShortRowThrows) {
  EXPECT_THROW(csv_from_string("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, EmptyLinesSkipped) {
  const CsvTable t = csv_from_string("a\n\n1\n\n2\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tegrec_csv_test.csv";
  write_csv(path, sample_table());
  const CsvTable back = read_csv(path);
  EXPECT_EQ(back.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(back.rows[2][1], -3.25);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Csv, PrecisionPreserved) {
  CsvTable t;
  t.header = {"x"};
  t.rows = {{3.141592653589}};
  const CsvTable back = csv_from_string(csv_to_string(t));
  EXPECT_NEAR(back.rows[0][0], 3.141592653589, 1e-11);
}

}  // namespace
}  // namespace tegrec::util
