// Known-bad fixture for `api-io`.  Never compiled.
// Line numbers are asserted by tests/test_lint.cpp — edit with care.
#include <cstdio>
#include <iostream>

void report(double value) {
  std::cout << "value = " << value << "\n";  // LINE 7: api-io
  printf("value = %f\n", value);             // LINE 8: api-io
  std::cerr << "warning\n";                  // LINE 9: api-io
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%f", value);  // string formatting: clean
  (void)buffer;
}
