// Monte-Carlo confidence for the headline "+30%" claim: the DNOR-vs-
// baseline gain across independently synthesised drives (different speed
// profiles, noise realisations).  The paper reports one measured drive;
// this bench shows how the number generalises.
#include <chrono>
#include <cstdio>

#include "sim/montecarlo.hpp"
#include "sim/service.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;
  using Clock = std::chrono::steady_clock;

  std::printf("=== Monte-Carlo: DNOR gain across synthetic drives ===\n\n");

  sim::MonteCarloOptions options;
  options.base_trace.layout.num_modules = 100;
  // 200 s mixed slice per seed keeps the whole study under a minute.
  options.base_trace.segments = {
      {thermal::DriveSegment::Kind::kUrban, 100.0, 32.0, 0.0},
      {thermal::DriveSegment::Kind::kCruise, 100.0, 70.0, 0.0}};
  options.comparison.include_inor = false;
  options.comparison.include_ehtr = false;
  options.num_seeds = 10;
  options.first_seed = 100;

  // Time the serial engine against the multi-core one; the per-seed samples
  // are guaranteed bit-identical, so only wall-clock should move.  The
  // direct engine is timed on purpose: the public run_monte_carlo wrapper
  // now serves identical studies from the ExperimentService result cache
  // (thread counts share one cache entry), which is measured separately
  // below.
  options.num_threads = 1;
  const auto serial_start = Clock::now();
  const sim::MonteCarloSummary summary =
      sim::detail::run_monte_carlo_direct(options);
  const double serial_s =
      std::chrono::duration<double>(Clock::now() - serial_start).count();

  options.num_threads = 0;  // one worker per hardware thread
  const auto parallel_start = Clock::now();
  const sim::MonteCarloSummary parallel_summary =
      sim::detail::run_monte_carlo_direct(options);
  const double parallel_s =
      std::chrono::duration<double>(Clock::now() - parallel_start).count();

  // The cached path: first submission executes, the resubmission is a
  // content-addressed lookup.
  const auto miss_start = Clock::now();
  sim::run_monte_carlo(options);
  const double miss_s =
      std::chrono::duration<double>(Clock::now() - miss_start).count();
  const auto hit_start = Clock::now();
  sim::run_monte_carlo(options);
  const double hit_s =
      std::chrono::duration<double>(Clock::now() - hit_start).count();

  util::TextTable table({"seed", "DNOR (J)", "Baseline (J)", "gain %",
                         "overhead (J)", "switches"});
  for (const auto& s : summary.samples) {
    table.begin_row()
        .add(static_cast<long long>(s.seed))
        .add(s.dnor_energy_j, 1)
        .add(s.baseline_energy_j, 1)
        .add(100.0 * s.gain, 1)
        .add(s.dnor_overhead_j, 2)
        .add(static_cast<long long>(s.dnor_switches));
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("gain over %zu drives: mean %.1f %%, sd %.1f %%, "
              "range [%.1f, %.1f] %%\n",
              summary.samples.size(), 100.0 * summary.gain.mean(),
              100.0 * summary.gain.stddev(), 100.0 * summary.gain.min(),
              100.0 * summary.gain.max());
  std::printf("DNOR switches per 200 s: mean %.1f (vs 400 periods)\n",
              summary.dnor_switches.mean());
  std::printf("\nshape check: the paper's +29%% sits inside the measured range;\n"
              "the gain is positive on every drive.\n");

  bool identical = summary.samples.size() == parallel_summary.samples.size();
  for (std::size_t k = 0; identical && k < summary.samples.size(); ++k) {
    const sim::MonteCarloSample& a = summary.samples[k];
    const sim::MonteCarloSample& b = parallel_summary.samples[k];
    identical = a.seed == b.seed && a.dnor_energy_j == b.dnor_energy_j &&
                a.baseline_energy_j == b.baseline_energy_j &&
                a.gain == b.gain && a.dnor_overhead_j == b.dnor_overhead_j &&
                a.dnor_switches == b.dnor_switches;
  }
  std::printf("\nengine: serial %.2f s, %zu threads %.2f s (%.1fx); "
              "samples bit-identical: %s\n",
              serial_s, util::default_parallelism(), parallel_s,
              parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
              identical ? "yes" : "NO (BUG)");
  std::printf("service: cold submit %.3f s, cached resubmit %.6f s (%.0fx)\n",
              miss_s, hit_s, hit_s > 0.0 ? miss_s / hit_s : 0.0);
  return 0;
}
