#include "switchfab/overhead.hpp"

#include <gtest/gtest.h>

namespace tegrec::switchfab {
namespace {

TEST(Overhead, ComposesAllTerms) {
  OverheadParams p;
  p.sensing_delay_s = 0.004;
  p.per_switch_delay_s = 1e-4;
  p.mppt_settle_s = 0.020;
  p.per_switch_energy_j = 1e-3;
  const OverheadCost cost = reconfiguration_cost(p, 30, 50.0, 0.002);
  const double expected_time = 0.004 + 0.002 + 30 * 1e-4 + 0.020;
  EXPECT_NEAR(cost.timing_s, expected_time, 1e-12);
  EXPECT_NEAR(cost.energy_j, 50.0 * expected_time + 30 * 1e-3, 1e-12);
}

TEST(Overhead, ZeroToggleEventStillPaysDeadTime) {
  // A blind periodic rebuild that lands on the same configuration still
  // blanks the output for sensing + compute + MPPT re-settle.
  const OverheadParams p;
  const OverheadCost cost = reconfiguration_cost(p, 0, 40.0, 0.001);
  EXPECT_GT(cost.timing_s, 0.0);
  EXPECT_NEAR(cost.timing_s, p.sensing_delay_s + 0.001 + p.mppt_settle_s, 1e-12);
  EXPECT_NEAR(cost.energy_j, 40.0 * cost.timing_s, 1e-12);
}

TEST(Overhead, MonotoneInToggles) {
  const OverheadParams p;
  double prev_energy = -1.0;
  for (std::size_t toggles : {0u, 3u, 30u, 150u, 297u}) {
    const OverheadCost c = reconfiguration_cost(p, toggles, 50.0, 0.001);
    EXPECT_GT(c.energy_j, prev_energy);
    prev_energy = c.energy_j;
  }
}

TEST(Overhead, ScalesWithPower) {
  const OverheadParams p;
  const OverheadCost lo = reconfiguration_cost(p, 10, 10.0, 0.001);
  const OverheadCost hi = reconfiguration_cost(p, 10, 100.0, 0.001);
  EXPECT_DOUBLE_EQ(lo.timing_s, hi.timing_s);  // time independent of power
  EXPECT_GT(hi.energy_j, lo.energy_j);
}

TEST(Overhead, ZeroPowerOnlySwitchEnergy) {
  OverheadParams p;
  p.per_switch_energy_j = 2e-3;
  const OverheadCost c = reconfiguration_cost(p, 5, 0.0, 0.0);
  EXPECT_NEAR(c.energy_j, 5 * 2e-3, 1e-12);
}

TEST(Overhead, InvalidArgsThrow) {
  const OverheadParams p;
  EXPECT_THROW(reconfiguration_cost(p, 1, -1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(reconfiguration_cost(p, 1, 1.0, -1e-3), std::invalid_argument);
}

TEST(Overhead, DefaultsGivePaperScalePerEventCost) {
  // At ~50 W output a full-array rebuild (a few dozen toggles) should cost
  // on the order of 1 J — the scale behind INOR's ~2 kJ over 1600 events.
  const OverheadParams p;
  const OverheadCost c = reconfiguration_cost(p, 60, 50.0, 0.004);
  EXPECT_GT(c.energy_j, 0.3);
  EXPECT_LT(c.energy_j, 5.0);
}

}  // namespace
}  // namespace tegrec::switchfab
