// Incremental simulation stepper — the streaming decomposition of
// run_simulation().
//
// SimStepper holds the full per-run state of the harvesting simulator
// (controller, converter, battery, switch fabric, accumulators) and
// consumes one TraceSample at a time: feed it the samples of a
// TemperatureTrace in order and its result() is bit-identical to the batch
// run_simulation() — which is now literally a thin loop over a stepper
// (tests/test_stepper.cpp enforces the identity).  Each step() does a
// bounded amount of work on the sample in hand and never waits for future
// samples, so live telemetry (sim/telemetry.hpp) can drive it with bounded
// per-step latency.
//
// Checkpoint/restore: state() snapshots every mutable field into a
// StepperState (the controller contributes an opaque blob via its
// checkpoint hooks); save()/restore() move that snapshot through the
// versioned, fingerprint-stamped on-disk codec in sim/checkpoint.hpp using
// the util::atomic_write_file publication door.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/reconfigurer.hpp"
#include "power/battery.hpp"
#include "power/converter.hpp"
#include "sim/simulator.hpp"
#include "switchfab/switch_network.hpp"
#include "util/atomic_file.hpp"

namespace tegrec::sim {

/// One sensed time step of a live temperature feed: the same per-module
/// hot-side temperatures + ambient a TemperatureTrace row carries.
struct TraceSample {
  double time_s = 0.0;
  std::vector<double> module_temps_c;
  double ambient_c = 0.0;
};

/// Snapshot of a SimStepper's entire mutable state.  Serialised field by
/// field in src/sim/checkpoint.cpp — tegrec_lint's cache-key rule
/// cross-checks this struct against that file, so adding a state field
/// without serialising it fails the gate instead of silently resuming a
/// different simulation.
struct StepperState {
  std::size_t steps_consumed = 0;
  double total_compute_s = 0.0;          ///< wall-clock stats accumulator
  bool has_fabric = false;               ///< first config installed yet?
  std::vector<std::size_t> fabric_group_starts;  ///< wired config (has_fabric)
  double battery_soc = 0.0;
  double battery_energy_j = 0.0;
  std::string controller_state;          ///< opaque Reconfigurer blob
  SimulationResult partial;              ///< result() at snapshot time
};

/// Value-shaped incremental simulator over a borrowed controller.  The
/// controller must outlive the stepper; it is reset() on construction.
class SimStepper {
 public:
  /// `dt_s` is the control-period grid the samples must arrive on;
  /// `num_modules` the expected width of every sample.
  SimStepper(core::Reconfigurer& controller, double dt_s,
             std::size_t num_modules, const SimulationOptions& options = {});

  double dt_s() const { return dt_s_; }
  std::size_t num_modules() const { return num_modules_; }
  std::size_t steps_consumed() const { return partial_.steps.size(); }
  /// Grid time the next sample must carry: steps_consumed() * dt.
  double next_time_s() const {
    return static_cast<double>(steps_consumed()) * dt_s_;
  }

  /// Consumes one sample (bounded work, never blocks on future samples)
  /// and returns this period's record.  Validates with load_csv rigor:
  /// wrong width or non-finite values throw std::invalid_argument, and the
  /// timestamp must land on this stepper's next grid point (nearest-grid
  /// within half a step) or std::invalid_argument is thrown — gap and
  /// reordering policy belongs to the telemetry layer, the stepper only
  /// ever advances one period at a time.
  StepRecord step(const TraceSample& sample);

  /// The run-so-far aggregate.  Valid at any point of a streamed run,
  /// including before the first step (all totals zero, see the partial-run
  /// semantics notes on SimulationResult).
  SimulationResult result() const;

  /// Group starts of the currently wired fabric configuration; empty
  /// before the first step installs one.
  std::vector<std::size_t> current_group_starts() const;

  /// True when the underlying controller can round-trip its state.
  bool checkpointable() const { return controller_->supports_checkpoint(); }

  /// Snapshot / reinstate the full mutable state.  state() throws
  /// std::logic_error when !checkpointable(); restore_state() validates
  /// the snapshot's internal consistency and throws std::runtime_error on
  /// a corrupt one (nothing is applied on failure).
  StepperState state() const;
  void restore_state(const StepperState& state);

  /// Checkpoint to/from disk through the versioned codec
  /// (sim/checkpoint.hpp) and the atomic publication door.
  /// `fingerprint_text` is the configuration stamp (for streaming runs,
  /// stream_config_fingerprint_text()); restore() refuses a checkpoint
  /// whose stamp differs — a checkpoint can never resume against a
  /// different spec.  save() publishes under fault site
  /// "stream.checkpoint" unless `write_options` names another; corrupt or
  /// truncated files make restore() throw std::runtime_error.
  void save(const std::string& path, const std::string& fingerprint_text,
            const util::AtomicWriteOptions& write_options = {}) const;
  void restore(const std::string& path, const std::string& fingerprint_text);

 private:
  core::Reconfigurer* controller_;
  double dt_s_;
  std::size_t num_modules_;
  SimulationOptions options_;
  power::Converter converter_;
  power::Battery battery_;
  std::unique_ptr<switchfab::SwitchNetwork> fabric_;  // built on first config
  SimulationResult partial_;  ///< accumulators + steps (derived fields stale)
  double total_compute_s_ = 0.0;
};

}  // namespace tegrec::sim
