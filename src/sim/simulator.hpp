// Time-stepped harvesting simulator (Section VI's experimental system).
//
// Replays a TemperatureTrace against one reconfiguration controller wired
// to the full substrate: TEG array -> switch fabric -> MPPT/converter ->
// battery, with the switching-overhead model charged on every actuation.
// Produces the per-step power series behind Figs. 6-7 and the 800 s totals
// of Table I.
#pragma once

#include <string>
#include <vector>

#include "core/reconfigurer.hpp"
#include "power/battery.hpp"
#include "power/converter.hpp"
#include "switchfab/overhead.hpp"
#include "teg/device.hpp"
#include "thermal/trace.hpp"

namespace tegrec::sim {

struct SimulationOptions {
  teg::DeviceParams device;                   ///< TGM-199-1.4-0.8 by default
  power::ConverterParams converter;           ///< LTM4607-class charger
  power::BatteryParams battery;               ///< 13.8 V lead-acid sink
  switchfab::OverheadParams overhead;         ///< actuation cost model
  bool charge_overhead = true;                ///< subtract actuation energy
  /// Worker threads for controllers with parallel inner loops (EHTR's
  /// candidate scoring; util::parallel_for semantics: 0 = hardware,
  /// 1 = inline).  Results are bit-identical for every value.
  std::size_t num_threads = 1;
  /// Cap on EHTR's candidate group counts (0 = all N).  Bounds the DP
  /// parent arena — the dominant allocation at farm scale — at the cost of
  /// never choosing a config with more than this many series groups.
  std::size_t ehtr_max_groups = 0;
  /// Warm-start EHTR's partition DP from the held config's group count
  /// (docs/actuation.md).  Chosen configs are proven bit-identical to cold
  /// search, but the knob still participates in the spec fingerprint: it
  /// gates a certified-pruning code path whose equivalence is a theorem
  /// about this implementation, not a schema-level identity.
  bool ehtr_warm_start = false;
  /// How far past the incumbent group count the warm pass solves before
  /// consulting the score bound.  Fingerprinted for the same reason.
  std::size_t ehtr_warm_width = 64;
};

/// One control period of the run.
struct StepRecord {
  double time_s = 0.0;
  double gross_power_w = 0.0;    ///< post-converter power, before overhead
  double net_power_w = 0.0;      ///< after overhead amortised into the step
  double ideal_power_w = 0.0;    ///< sum of module MPPs (Fig. 7 normaliser)
  bool invoked = false;          ///< algorithm executed this period
  bool switched = false;         ///< fabric actuated this period
  std::size_t switch_actuations = 0;
  double overhead_energy_j = 0.0;
  double compute_time_s = 0.0;
};

/// Aggregates matching the columns of Table I plus extra diagnostics.
///
/// Partial-run semantics (streamed runs, sim/stepper.hpp): a
/// SimStepper::result() snapshot mid-stream is a valid SimulationResult
/// over the steps consumed so far.  All totals and counters cover exactly
/// `steps.size()` control periods; the derived rates are defined for every
/// prefix, including the empty one:
///   - avg_runtime_ms amortises compute time over steps consumed (0.0 when
///     no step has run yet — there is no period to amortise over);
///   - runtime_per_invocation_ms is 0.0 until the first invocation;
///   - mean_power_w() and ratio_to_ideal() return 0.0 on an empty prefix.
/// Comparing partial results across algorithms is only meaningful at equal
/// step counts (they are time-integrals, not rates).
struct SimulationResult {
  std::string algorithm;
  std::vector<StepRecord> steps;

  double energy_output_j = 0.0;      ///< Table I "Energy Output"
  double switch_overhead_j = 0.0;    ///< Table I "Switch Overhead"
  double avg_runtime_ms = 0.0;       ///< Table I "Average Runtime" (amortised
                                     ///< over control periods, see EXPERIMENTS.md)
  double runtime_per_invocation_ms = 0.0;
  double ideal_energy_j = 0.0;
  std::size_t num_invocations = 0;
  std::size_t num_switch_events = 0;
  std::size_t total_switch_actuations = 0;
  double battery_energy_j = 0.0;     ///< energy actually absorbed by the battery
  double final_soc = 0.0;

  double mean_power_w() const;
  double ratio_to_ideal() const;
};

/// Replays `trace` through `controller`.  The controller is reset() first;
/// the first configuration is installed free of charge (the array has to be
/// wired somehow before the drive starts).
SimulationResult run_simulation(core::Reconfigurer& controller,
                                const thermal::TemperatureTrace& trace,
                                const SimulationOptions& options = {});

}  // namespace tegrec::sim
