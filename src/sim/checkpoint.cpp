#include "sim/checkpoint.hpp"

#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/dnor.hpp"
#include "core/ehtr.hpp"
#include "core/fixed_baseline.hpp"
#include "core/inor.hpp"
#include "sim/spec.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/float_cmp.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"

namespace tegrec::sim {

namespace {

constexpr const char* kMagic = "# tegrec-checkpoint v1";

// ----------------------------------------------------------------- encode
//
// Same line dialect as sim/result_io.cpp: `key = value` scalars plus
// `# table rows = N` CSV tables at exact precision, so every double
// round-trips bit-exactly and a restored run continues the original
// stream bit for bit.

void emit_kv(std::ostringstream& os, const std::string& key,
             const std::string& value) {
  os << key << " = " << value << '\n';
}

void emit_double(std::ostringstream& os, const std::string& key, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  emit_kv(os, key, buffer);
}

void emit_table(std::ostringstream& os, const util::CsvTable& table) {
  os << "# table rows = " << table.rows.size() << '\n'
     << util::csv_to_string(table, util::kCsvExactPrecision);
}

// Field-complete serialisations of SimulationResult and StepRecord — the
// tegrec_lint cache-key rule cross-checks both structs (and StepperState
// and StreamConfig) against this file, so growing any of them without
// extending the codec fails the lint gate.
util::CsvTable summary_table(const SimulationResult& run) {
  util::CsvTable t;
  t.header = {"energy_output_j",   "switch_overhead_j",
              "avg_runtime_ms",    "runtime_per_invocation_ms",
              "ideal_energy_j",    "num_invocations",
              "num_switch_events", "total_switch_actuations",
              "battery_energy_j",  "final_soc"};
  t.rows.push_back({run.energy_output_j, run.switch_overhead_j,
                    run.avg_runtime_ms, run.runtime_per_invocation_ms,
                    run.ideal_energy_j, static_cast<double>(run.num_invocations),
                    static_cast<double>(run.num_switch_events),
                    static_cast<double>(run.total_switch_actuations),
                    run.battery_energy_j, run.final_soc});
  return t;
}

util::CsvTable steps_table(const SimulationResult& run) {
  util::CsvTable t;
  t.header = {"time_s",  "gross_power_w",     "net_power_w",
              "ideal_power_w", "invoked",     "switched",
              "switch_actuations", "overhead_energy_j", "compute_time_s"};
  for (const StepRecord& s : run.steps) {
    t.rows.push_back({s.time_s, s.gross_power_w, s.net_power_w, s.ideal_power_w,
                      s.invoked ? 1.0 : 0.0, s.switched ? 1.0 : 0.0,
                      static_cast<double>(s.switch_actuations),
                      s.overhead_energy_j, s.compute_time_s});
  }
  return t;
}

// ----------------------------------------------------------------- decode

class LineReader {
 public:
  explicit LineReader(const std::string& text) : is_(text) {}

  std::string next() {
    std::string line;
    if (!std::getline(is_, line)) {
      throw std::runtime_error("checkpoint truncated");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  /// True once every line has been consumed.
  bool exhausted() {
    return is_.peek() == std::istringstream::traits_type::eof();
  }

  /// Consumes a "<prefix><suffix>" line and returns the suffix.
  std::string expect_prefix(const std::string& prefix) {
    const std::string line = next();
    if (line.rfind(prefix, 0) != 0) {
      throw std::runtime_error("checkpoint: expected '" + prefix +
                               "', got '" + line + "'");
    }
    return line.substr(prefix.size());
  }

  std::string expect_kv(const std::string& key) {
    return expect_prefix(key + " = ");
  }

  util::CsvTable read_table() {
    const std::size_t rows = static_cast<std::size_t>(
        util::parse_u64(expect_prefix("# table rows = ")));
    std::string csv = next();  // header
    csv += '\n';
    for (std::size_t i = 0; i < rows; ++i) {
      csv += next();
      csv += '\n';
    }
    util::CsvTable table = util::csv_from_string(csv);
    if (table.rows.size() != rows) {
      throw std::runtime_error("checkpoint: table row count mismatch");
    }
    return table;
  }

 private:
  std::istringstream is_;
};

double cell(const util::CsvTable& table, std::size_t row,
            const std::string& name) {
  for (std::size_t c = 0; c < table.header.size(); ++c) {
    if (table.header[c] == name) return table.rows.at(row).at(c);
  }
  throw std::runtime_error("checkpoint: missing column " + name);
}

SimulationResult decode_partial(LineReader& reader) {
  SimulationResult run;
  run.algorithm = reader.expect_kv("algorithm");
  const util::CsvTable summary = reader.read_table();
  if (summary.rows.size() != 1) {
    throw std::runtime_error("checkpoint: bad summary table");
  }
  run.energy_output_j = cell(summary, 0, "energy_output_j");
  run.switch_overhead_j = cell(summary, 0, "switch_overhead_j");
  run.avg_runtime_ms = cell(summary, 0, "avg_runtime_ms");
  run.runtime_per_invocation_ms = cell(summary, 0, "runtime_per_invocation_ms");
  run.ideal_energy_j = cell(summary, 0, "ideal_energy_j");
  run.num_invocations =
      static_cast<std::size_t>(cell(summary, 0, "num_invocations"));
  run.num_switch_events =
      static_cast<std::size_t>(cell(summary, 0, "num_switch_events"));
  run.total_switch_actuations =
      static_cast<std::size_t>(cell(summary, 0, "total_switch_actuations"));
  run.battery_energy_j = cell(summary, 0, "battery_energy_j");
  run.final_soc = cell(summary, 0, "final_soc");

  const util::CsvTable steps = reader.read_table();
  run.steps.resize(steps.rows.size());
  for (std::size_t i = 0; i < steps.rows.size(); ++i) {
    StepRecord& s = run.steps[i];
    s.time_s = cell(steps, i, "time_s");
    s.gross_power_w = cell(steps, i, "gross_power_w");
    s.net_power_w = cell(steps, i, "net_power_w");
    s.ideal_power_w = cell(steps, i, "ideal_power_w");
    // 0/1 flags round-tripped at exact precision: bit-value compare.
    s.invoked = !util::is_exactly_zero(cell(steps, i, "invoked"));
    s.switched = !util::is_exactly_zero(cell(steps, i, "switched"));
    s.switch_actuations =
        static_cast<std::size_t>(cell(steps, i, "switch_actuations"));
    s.overhead_energy_j = cell(steps, i, "overhead_energy_j");
    s.compute_time_s = cell(steps, i, "compute_time_s");
  }
  return run;
}

}  // namespace

std::string stream_scheme_name(StreamScheme scheme) {
  switch (scheme) {
    case StreamScheme::kDnor:
      return "dnor";
    case StreamScheme::kInor:
      return "inor";
    case StreamScheme::kEhtr:
      return "ehtr";
    case StreamScheme::kBaseline:
      return "baseline";
  }
  throw std::logic_error("stream_scheme_name: unmapped scheme");
}

StreamScheme parse_stream_scheme(const std::string& name) {
  if (name == "dnor") return StreamScheme::kDnor;
  if (name == "inor") return StreamScheme::kInor;
  if (name == "ehtr") return StreamScheme::kEhtr;
  if (name == "baseline") return StreamScheme::kBaseline;
  throw std::invalid_argument(
      "unknown stream scheme '" + name +
      "' (expected dnor, inor, ehtr, or baseline)");
}

std::unique_ptr<core::Reconfigurer> make_stream_controller(
    const StreamConfig& config) {
  if (config.num_modules == 0) {
    throw std::invalid_argument("make_stream_controller: num_modules == 0");
  }
  // Mirrors detail::run_comparison_direct (sim/experiment.cpp) so the
  // streamed decision sequence is bit-identical to the batch harness.
  const teg::DeviceParams& device = config.sim.device;
  const power::ConverterParams& charger = config.sim.converter;
  switch (config.scheme) {
    case StreamScheme::kDnor: {
      core::DnorParams p;
      p.control_period_s = config.control_period_s;
      return std::make_unique<core::DnorReconfigurer>(device, charger, p);
    }
    case StreamScheme::kInor:
      return std::make_unique<core::InorReconfigurer>(device, charger,
                                                      config.control_period_s);
    case StreamScheme::kEhtr:
      return std::make_unique<core::EhtrReconfigurer>(
          device, charger, config.control_period_s, config.sim.num_threads,
          config.sim.ehtr_max_groups, config.sim.ehtr_warm_start,
          config.sim.ehtr_warm_width);
    case StreamScheme::kBaseline:
      return std::make_unique<core::FixedBaselineReconfigurer>(
          core::FixedBaselineReconfigurer::square_grid(config.num_modules));
  }
  throw std::logic_error("make_stream_controller: unmapped scheme");
}

std::string stream_config_fingerprint_text(const StreamConfig& config) {
  std::ostringstream os;
  emit_kv(os, "scheme", stream_scheme_name(config.scheme));
  emit_double(os, "control_period_s", config.control_period_s);
  emit_double(os, "dt_s", config.dt_s);
  emit_kv(os, "num_modules", std::to_string(config.num_modules));
  // The physics options reuse the experiment-spec bindings (execution
  // hints excluded there), one "sim." prefix per line.
  std::istringstream sim_lines(simulation_options_fingerprint_text(config.sim));
  std::string line;
  while (std::getline(sim_lines, line)) {
    os << "sim." << line << '\n';
  }
  return os.str();
}

std::string stream_config_fingerprint(const StreamConfig& config) {
  std::string text = stream_config_fingerprint_text(config);
  text += "checkpoint_schema_version = " +
          std::to_string(kCheckpointSchemaVersion) + "\n";
  const std::uint64_t a = util::fnv1a64(text, util::kFnv1aOffsetBasis);
  const std::uint64_t b = util::fnv1a64(text, util::kFnv1aAltBasis);
  return util::hex64(a) + util::hex64(b);
}

std::string encode_checkpoint(const StepperState& state,
                              const std::string& fingerprint_text,
                              const std::vector<std::string>& extra_lines) {
  for (const std::string& line : extra_lines) {
    if (line.find('\n') != std::string::npos) {
      throw std::invalid_argument(
          "encode_checkpoint: extra line contains a newline");
    }
  }
  std::ostringstream os;
  os << kMagic << '\n';
  std::size_t fp_lines = 0;
  for (const char c : fingerprint_text) fp_lines += c == '\n' ? 1 : 0;
  os << "# config lines = " << fp_lines << '\n' << fingerprint_text;

  emit_kv(os, "steps_consumed", std::to_string(state.steps_consumed));
  emit_double(os, "total_compute_s", state.total_compute_s);
  emit_kv(os, "has_fabric", state.has_fabric ? "1" : "0");
  std::string starts;
  for (std::size_t i = 0; i < state.fabric_group_starts.size(); ++i) {
    if (i > 0) starts += ',';
    starts += std::to_string(state.fabric_group_starts[i]);
  }
  emit_kv(os, "fabric_group_starts", starts);
  emit_double(os, "battery_soc", state.battery_soc);
  emit_double(os, "battery_energy_j", state.battery_energy_j);

  std::size_t blob_lines = 0;
  for (const char c : state.controller_state) blob_lines += c == '\n' ? 1 : 0;
  os << "# controller lines = " << blob_lines << '\n'
     << state.controller_state;

  emit_kv(os, "algorithm", state.partial.algorithm);
  emit_table(os, summary_table(state.partial));
  emit_table(os, steps_table(state.partial));

  os << "# extra lines = " << extra_lines.size() << '\n';
  for (const std::string& line : extra_lines) os << line << '\n';
  os << "# end\n";
  return os.str();
}

namespace {

DecodedCheckpoint decode_checkpoint_impl(
    const std::string& text, const std::string& expected_fingerprint_text) {
  if (text.empty() || text.back() != '\n') {
    throw std::runtime_error(
        "checkpoint: missing final newline (truncated?)");
  }
  LineReader reader(text);
  if (reader.next() != kMagic) {
    throw std::runtime_error(
        "checkpoint: bad magic (not a checkpoint, or written by an "
        "incompatible schema version)");
  }
  const std::size_t fp_lines = static_cast<std::size_t>(
      util::parse_u64(reader.expect_prefix("# config lines = ")));
  std::string fp_text;
  for (std::size_t i = 0; i < fp_lines; ++i) {
    fp_text += reader.next();
    fp_text += '\n';
  }
  if (fp_text != expected_fingerprint_text) {
    throw std::runtime_error(
        "checkpoint: configuration stamp mismatch — this checkpoint was "
        "written under a different stream configuration and cannot resume "
        "here");
  }

  DecodedCheckpoint out;
  out.state.steps_consumed =
      static_cast<std::size_t>(util::parse_u64(reader.expect_kv("steps_consumed")));
  out.state.total_compute_s =
      util::parse_double(reader.expect_kv("total_compute_s"));
  out.state.has_fabric = util::parse_bool(reader.expect_kv("has_fabric"));
  const std::string starts = reader.expect_kv("fabric_group_starts");
  if (!starts.empty()) {
    std::istringstream is(starts);
    std::string token;
    while (std::getline(is, token, ',')) {
      out.state.fabric_group_starts.push_back(
          static_cast<std::size_t>(util::parse_u64(token)));
    }
  }
  out.state.battery_soc = util::parse_double(reader.expect_kv("battery_soc"));
  out.state.battery_energy_j =
      util::parse_double(reader.expect_kv("battery_energy_j"));

  const std::size_t blob_lines = static_cast<std::size_t>(
      util::parse_u64(reader.expect_prefix("# controller lines = ")));
  for (std::size_t i = 0; i < blob_lines; ++i) {
    out.state.controller_state += reader.next();
    out.state.controller_state += '\n';
  }

  out.state.partial = decode_partial(reader);
  if (out.state.partial.steps.size() != out.state.steps_consumed) {
    throw std::runtime_error(
        "checkpoint: steps_consumed does not match the step table");
  }

  const std::size_t extra = static_cast<std::size_t>(
      util::parse_u64(reader.expect_prefix("# extra lines = ")));
  out.extra_lines.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    out.extra_lines.push_back(reader.next());
  }
  if (reader.next() != "# end") {
    throw std::runtime_error("checkpoint: missing terminator (truncated?)");
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("checkpoint: trailing data after terminator");
  }
  return out;
}

}  // namespace

DecodedCheckpoint decode_checkpoint(
    const std::string& text, const std::string& expected_fingerprint_text) {
  try {
    return decode_checkpoint_impl(text, expected_fingerprint_text);
  } catch (const std::invalid_argument& e) {
    // Field parsers (parse_u64 and friends) throw invalid_argument on a
    // malformed value; from the caller's view that is a corrupt artifact,
    // same as any other decode failure.
    throw std::runtime_error(std::string("checkpoint: malformed value: ") +
                             e.what());
  }
}

// SimStepper's disk door lives here with the codec (stepper.cpp stays
// pure simulation).

void SimStepper::save(const std::string& path,
                      const std::string& fingerprint_text,
                      const util::AtomicWriteOptions& write_options) const {
  const std::string content =
      encode_checkpoint(state(), fingerprint_text, /*extra_lines=*/{});
  util::AtomicWriteOptions options = write_options;
  if (options.fault_site.empty()) options.fault_site = "stream.checkpoint";
  util::atomic_write_file(path, content, options);
}

void SimStepper::restore(const std::string& path,
                         const std::string& fingerprint_text) {
  const std::optional<std::string> text = util::read_file_if_exists(path);
  if (!text) {
    throw std::runtime_error("SimStepper::restore: cannot read checkpoint '" +
                             path + "'");
  }
  const DecodedCheckpoint decoded = decode_checkpoint(*text, fingerprint_text);
  restore_state(decoded.state);
}

}  // namespace tegrec::sim
