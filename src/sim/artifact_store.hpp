// Bounded, self-healing, crash-safe on-disk artifact store.
//
// This is the shared result cache behind ExperimentService and the spool
// farm: one artifact per experiment fingerprint at `<dir>/<key>.csv` (the
// layout PR 4 introduced, so existing caches keep working).  Three
// properties distinguish it from the old ad-hoc ofstream code in
// service.cpp:
//
//  * Crash-safe publication.  Every write goes through the sanctioned
//    atomic door (util::atomic_write_file), so concurrent readers across
//    processes never observe a torn artifact and a crashed writer leaves
//    only an ignorable `.tmp-*` orphan, which maintenance() garbage
//    collects by age.
//
//  * Bounded size.  With max_bytes > 0, a stateless LRU eviction pass
//    (recency = file mtime; get() bumps it) removes oldest artifacts until
//    the store fits the cap.  The pass holds no on-disk index — it just
//    lists, sorts, and removes — so a crash mid-eviction leaves a smaller,
//    still-consistent store and the next pass finishes the job.
//
//  * Self-healing.  Readers that find a corrupt artifact (decode_result
//    returns nullopt) call remove() so the bad bytes are replaced by a
//    clean miss instead of being re-read forever.
//
// Failure policy: a store never fails its caller.  put() that cannot
// publish (unwritable directory, disk full) warns once through the
// configured WarnFn and returns false — the experiment result is simply
// not cached.  This is the graceful-degradation contract ExperimentService
// relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/atomic_file.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tegrec::sim {

struct ArtifactStoreOptions {
  /// Store directory (created on demand).  Empty disables the store: every
  /// get() misses and every put() is a no-op returning false.
  std::string dir;
  /// Byte cap over all artifacts; 0 = unbounded.
  std::uint64_t max_bytes = 0;
  /// Orphaned `.tmp-*` files older than this are garbage collected.
  std::uint64_t temp_max_age_ms = 60'000;
  /// Retry policy for artifact publication.
  util::RetryPolicy retry;
  /// Injection points "artifact.{write_fail,torn,crash}"; nullptr uses the
  /// process-wide injector.
  util::FaultInjector* faults = nullptr;
  /// Degradation warnings (warn-once).  Defaults to stderr.
  util::WarnFn warn;
};

class ArtifactStore {
 public:
  /// Disabled store.
  ArtifactStore() = default;

  explicit ArtifactStore(ArtifactStoreOptions options);

  bool enabled() const { return !options_.dir.empty(); }
  const std::string& dir() const { return options_.dir; }
  std::uint64_t max_bytes() const { return options_.max_bytes; }

  /// On-disk path for `key` (defined even when key is absent).
  std::string path_for(const std::string& key) const;

  /// Raw artifact bytes, or nullopt on miss/unreadable.  A hit bumps the
  /// artifact's mtime, making it most-recently-used for eviction.
  std::optional<std::string> get(const std::string& key);

  /// Atomically publishes `content` under `key`, then evicts to the byte
  /// cap.  Returns whether the artifact landed; failure warns once and
  /// degrades (never throws for I/O errors).  A crash fault
  /// (util::AtomicWriteCrash) does propagate — it models process death.
  bool put(const std::string& key, const std::string& content);

  /// Deletes `key`'s artifact (reader-detected corruption).  Returns
  /// whether a file was removed.
  bool remove(const std::string& key);

  /// Maintenance pass: GC aged `.tmp-*` orphans, then evict to the byte
  /// cap.  Safe to run concurrently with readers/writers in any process.
  /// Returns the number of files removed.
  std::size_t maintenance();

  /// Sum of artifact sizes currently on disk (excludes temp files).
  std::uint64_t total_bytes() const;

  /// Artifacts evicted by this store instance (for tests/stats).
  std::uint64_t evictions() const;
  /// put() calls that failed and degraded (for tests/stats).
  std::uint64_t put_failures() const;

 private:
  /// Removes oldest artifacts until the store fits max_bytes.
  std::size_t evict_to_cap();
  void warn_once(const std::string& message);

  /// Finalised by the constructor (warn/faults defaults), immutable after.
  // tegrec-lint: allow(guarded-member) immutable after construction
  ArtifactStoreOptions options_;
  mutable util::Mutex mutex_;
  std::uint64_t evictions_ TEGREC_GUARDED_BY(mutex_) = 0;
  std::uint64_t put_failures_ TEGREC_GUARDED_BY(mutex_) = 0;
  bool warned_ TEGREC_GUARDED_BY(mutex_) = false;
};

}  // namespace tegrec::sim
