#include "teg/faults.hpp"

#include <stdexcept>

namespace tegrec::teg {

std::vector<double> apply_faults(const std::vector<double>& delta_t_k,
                                 const FaultModel& faults) {
  if (faults.health.size() != delta_t_k.size()) {
    throw std::invalid_argument("apply_faults: health mask size mismatch");
  }
  if (faults.derating < 0.0 || faults.derating > 1.0) {
    throw std::invalid_argument("apply_faults: derating out of [0,1]");
  }
  std::vector<double> out = delta_t_k;
  for (std::size_t i = 0; i < out.size(); ++i) {
    switch (faults.health[i]) {
      case ModuleHealth::kHealthy:
        break;
      case ModuleHealth::kDegraded:
        out[i] *= faults.derating;
        break;
      case ModuleHealth::kBypassed:
        out[i] = 0.0;
        break;
      case ModuleHealth::kOpen:
        if (!faults.auto_bypass) {
          throw std::invalid_argument(
              "apply_faults: undiagnosed open-circuit module would sever the "
              "string; bypass it first");
        }
        out[i] = 0.0;
        break;
    }
  }
  return out;
}

std::size_t active_module_count(const FaultModel& faults) {
  std::size_t count = 0;
  for (ModuleHealth h : faults.health) {
    if (h == ModuleHealth::kHealthy || h == ModuleHealth::kDegraded) ++count;
  }
  return count;
}

}  // namespace tegrec::teg
