// Device-level explorer: prints I-V/P-V curves, MPP loci and mismatch
// behaviour for user-supplied temperature differences.
//
//   ./build/examples/curve_explorer            (default dT set)
//   ./build/examples/curve_explorer 12 27 41   (custom dT values, K)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "teg/group.hpp"
#include "teg/string.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tegrec;

  std::vector<double> dts;
  for (int i = 1; i < argc; ++i) {
    const double dt = std::atof(argv[i]);
    if (dt <= 0.0 || dt > 180.0) {
      std::fprintf(stderr, "dT '%s' out of (0, 180] K\n", argv[i]);
      return 1;
    }
    dts.push_back(dt);
  }
  if (dts.empty()) dts = {15.0, 25.0, 35.0};

  const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
  std::printf("TGM-199-1.4-0.8: %d couples, alpha=%.4f V/K, R0=%.2f ohm\n\n",
              device.num_couples, device.seebeck_total_v_k(),
              device.internal_resistance_ohm);

  // Per-device curves.
  util::TextTable mpp({"dT (K)", "Voc (V)", "R (ohm)", "VMPP (V)", "IMPP (A)",
                       "PMPP (W)"});
  std::vector<teg::Module> modules;
  for (double dt : dts) {
    const teg::Module m = teg::Module::from_delta_t(device, dt);
    modules.push_back(m);
    mpp.begin_row()
        .add(dt, 1)
        .add(m.open_circuit_voltage_v(), 3)
        .add(m.internal_resistance_ohm(), 3)
        .add(m.mpp_voltage_v(), 3)
        .add(m.mpp_current_a(), 3)
        .add(m.mpp_power_w(), 3);
  }
  std::printf("%s\n", mpp.render().c_str());

  if (modules.size() < 2) return 0;

  // What happens if these exact modules share a wire?
  double ideal = 0.0;
  for (const auto& m : modules) ideal += m.mpp_power_w();
  const teg::ParallelGroup parallel(modules);
  std::vector<teg::ParallelGroup> singles;
  for (const auto& m : modules) singles.emplace_back(std::vector<teg::Module>{m});
  const teg::SeriesString series(singles);

  util::TextTable combo({"connection", "P (W)", "vs ideal %"});
  combo.begin_row().add("each at own MPP (ideal)").add(ideal, 3).add(100.0, 1);
  combo.begin_row()
      .add("all parallel")
      .add(parallel.mpp_power_w(), 3)
      .add(100.0 * parallel.mpp_power_w() / ideal, 1);
  combo.begin_row()
      .add("all series")
      .add(series.mpp_power_w(), 3)
      .add(100.0 * series.mpp_power_w() / ideal, 1);
  std::printf("%s\n", combo.render().c_str());
  std::printf("This gap is what TEG array reconfiguration recovers.\n");
  return 0;
}
