#include "teg/group.hpp"

#include <stdexcept>

namespace tegrec::teg {

ParallelGroup::ParallelGroup(std::vector<Module> modules)
    : modules_(std::move(modules)) {
  if (modules_.empty()) {
    throw std::invalid_argument("ParallelGroup: empty module list");
  }
  double g_sum = 0.0;       // sum of conductances
  double voc_over_r = 0.0;  // Norton current sum
  for (const Module& m : modules_) {
    g_sum += 1.0 / m.internal_resistance_ohm();
    voc_over_r += m.open_circuit_voltage_v() / m.internal_resistance_ohm();
  }
  r_eq_ohm_ = 1.0 / g_sum;
  voc_eq_v_ = voc_over_r * r_eq_ohm_;
}

double ParallelGroup::voltage_at_current(double current_a) const {
  return voc_eq_v_ - current_a * r_eq_ohm_;
}

double ParallelGroup::power_at_current(double current_a) const {
  return voltage_at_current(current_a) * current_a;
}

double ParallelGroup::power_at_voltage(double voltage_v) const {
  return (voc_eq_v_ - voltage_v) / r_eq_ohm_ * voltage_v;
}

std::vector<double> ParallelGroup::member_currents_at_voltage(
    double voltage_v) const {
  std::vector<double> out;
  out.reserve(modules_.size());
  for (const Module& m : modules_) {
    out.push_back(m.current_at_voltage(voltage_v));
  }
  return out;
}

double ParallelGroup::mpp_current_a() const {
  return voc_eq_v_ / (2.0 * r_eq_ohm_);
}

double ParallelGroup::mpp_power_w() const {
  return voc_eq_v_ * voc_eq_v_ / (4.0 * r_eq_ohm_);
}

double ParallelGroup::ideal_power_w() const {
  double total = 0.0;
  for (const Module& m : modules_) total += m.mpp_power_w();
  return total;
}

double ParallelGroup::mpp_current_sum_a() const {
  double total = 0.0;
  for (const Module& m : modules_) total += m.mpp_current_a();
  return total;
}

}  // namespace tegrec::teg
