#include "teg/array_evaluator.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "teg/module.hpp"

namespace tegrec::teg {

namespace {

// Both block kernels compute, for each group k in [0, count), the port
// model of modules [starts[k], starts[k+1]):
//   r[k]   = 1 / (cp[starts[k+1]] - cp[starts[k]])
//   voc[k] = (np[starts[k+1]] - np[starts[k]]) * r[k]
// Every step is a single exactly-rounded IEEE-754 operation (subtract,
// divide, multiply — no fused ops in either kernel), so the buffers they
// fill are bit-identical; the caller owns the (sequential) accumulation.
void group_block_scalar(const double* cp, const double* np,
                        const std::size_t* starts, std::size_t count,
                        double* voc, double* r) {
  for (std::size_t k = 0; k < count; ++k) {
    const double gd = cp[starts[k + 1]] - cp[starts[k]];
    const double nd = np[starts[k + 1]] - np[starts[k]];
    r[k] = 1.0 / gd;
    voc[k] = nd * r[k];
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void group_block_avx2(
    const double* cp, const double* np, const std::size_t* starts,
    std::size_t count, double* voc, double* r) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    // Group starts are 64-bit indices into the prefix arrays; the begin
    // indices of lanes k..k+3 and the end indices (the next four starts)
    // overlap by three lanes, so two unaligned loads cover both.
    const __m256i ib =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(starts + k));
    const __m256i ie =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(starts + k + 1));
    const __m256d gd = _mm256_sub_pd(_mm256_i64gather_pd(cp, ie, 8),
                                     _mm256_i64gather_pd(cp, ib, 8));
    const __m256d nd = _mm256_sub_pd(_mm256_i64gather_pd(np, ie, 8),
                                     _mm256_i64gather_pd(np, ib, 8));
    const __m256d rv = _mm256_div_pd(one, gd);
    _mm256_storeu_pd(r + k, rv);
    _mm256_storeu_pd(voc + k, _mm256_mul_pd(nd, rv));
  }
  for (; k < count; ++k) {
    const double gd = cp[starts[k + 1]] - cp[starts[k]];
    const double nd = np[starts[k + 1]] - np[starts[k]];
    r[k] = 1.0 / gd;
    voc[k] = nd * r[k];
  }
}
#endif

}  // namespace

ArrayEvaluator::ArrayEvaluator(const TegArray& array) {
  const std::size_t n = array.size();
  conductance_prefix_.resize(n + 1, 0.0);
  norton_prefix_.resize(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Module& m = array.module(i);
    conductance_prefix_[i + 1] =
        conductance_prefix_[i] + 1.0 / m.internal_resistance_ohm();
    norton_prefix_[i + 1] =
        norton_prefix_[i] +
        m.open_circuit_voltage_v() / m.internal_resistance_ohm();
    ideal_power_w_ += m.mpp_power_w();
  }
}

bool ArrayEvaluator::simd_available() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void ArrayEvaluator::set_kernel(ScoringKernel kernel) {
  if (kernel == ScoringKernel::kSimd && !simd_available()) {
    throw std::invalid_argument(
        "ArrayEvaluator::set_kernel: SIMD kernel unavailable on this host");
  }
  kernel_ = kernel;
}

LinearSource ArrayEvaluator::group_equivalent(std::size_t begin,
                                              std::size_t end) const {
  if (begin >= end || end > size()) {
    throw std::out_of_range("ArrayEvaluator::group_equivalent: bad range");
  }
  const double g_sum = conductance_prefix_[end] - conductance_prefix_[begin];
  const double norton = norton_prefix_[end] - norton_prefix_[begin];
  LinearSource out;
  out.r_ohm = 1.0 / g_sum;
  out.voc_v = norton * out.r_ohm;
  return out;
}

LinearSource ArrayEvaluator::string_equivalent(const ArrayConfig& config) const {
  if (config.num_modules() != size()) {
    throw std::invalid_argument(
        "ArrayEvaluator::string_equivalent: config size mismatch");
  }
  return string_equivalent(std::span<const std::size_t>(config.group_starts()));
}

LinearSource ArrayEvaluator::string_equivalent(
    std::span<const std::size_t> group_starts) const {
  if (group_starts.empty() || group_starts.front() != 0) {
    throw std::invalid_argument(
        "ArrayEvaluator::string_equivalent: group starts must begin at 0");
  }
  const std::size_t m = group_starts.size();
  // Validate every range up front so the block kernels can assume clean
  // input; a non-increasing or out-of-range start raises the same
  // exception group_equivalent would have raised mid-scan.
  for (std::size_t j = 1; j < m; ++j) {
    if (group_starts[j] <= group_starts[j - 1]) {
      throw std::out_of_range("ArrayEvaluator::group_equivalent: bad range");
    }
  }
  if (group_starts.back() >= size()) {
    throw std::out_of_range("ArrayEvaluator::group_equivalent: bad range");
  }

#if defined(__x86_64__) || defined(__i386__)
  static const bool simd_ok = simd_available();
  const bool use_simd =
      kernel_ == ScoringKernel::kSimd ||
      (kernel_ == ScoringKernel::kAuto && simd_ok);
#endif
  const double* cp = conductance_prefix_.data();
  const double* np = norton_prefix_.data();

  constexpr std::size_t kBlock = 64;
  double voc_buf[kBlock];
  double r_buf[kBlock];
  LinearSource out;
  for (std::size_t j0 = 0; j0 < m; j0 += kBlock) {
    const std::size_t len = std::min(kBlock, m - j0);
    // Every group's end is the next start except the final group of the
    // configuration, whose end is the array size; the kernels handle the
    // uniform prefix, the final group is patched in below.
    const std::size_t uniform = j0 + len < m ? len : len - 1;
#if defined(__x86_64__) || defined(__i386__)
    if (use_simd) {
      group_block_avx2(cp, np, group_starts.data() + j0, uniform, voc_buf,
                       r_buf);
    } else
#endif
    {
      group_block_scalar(cp, np, group_starts.data() + j0, uniform, voc_buf,
                         r_buf);
    }
    if (uniform < len) {
      const double gd = cp[size()] - cp[group_starts[m - 1]];
      const double nd = np[size()] - np[group_starts[m - 1]];
      r_buf[uniform] = 1.0 / gd;
      voc_buf[uniform] = nd * r_buf[uniform];
    }
    // Sequential accumulation in group order — identical for both kernels
    // and to the pre-blocked implementation.
    for (std::size_t k = 0; k < len; ++k) {
      out.voc_v += voc_buf[k];
      out.r_ohm += r_buf[k];
    }
  }
  return out;
}

}  // namespace tegrec::teg
