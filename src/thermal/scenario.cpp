#include "thermal/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace tegrec::thermal {

namespace {

using K = DriveSegment::Kind;

// --------------------------------------------------------- vehicle drives

// The paper's evaluation input: the default config IS the 800 s Porter II
// mixed drive (idle -> urban -> arterial -> hill -> highway -> urban ->
// idle) with 100 modules on the radiator.
TraceGeneratorConfig porter_800s() {
  return TraceGeneratorConfig{};
}

// Dense signalised traffic with idle-stop: the engine is off at every
// light, so the coolant — and with it the whole spatial dT profile —
// sawtooths between launches.  Hard on DNOR's switching budget.
TraceGeneratorConfig urban_stop_start() {
  TraceGeneratorConfig config;
  config.segments = {
      {K::kIdle, 30.0, 0.0, 0.0},
      {K::kStopStart, 300.0, 42.0, 0.0},
      {K::kUrban, 140.0, 30.0, 0.0},
      {K::kStopStart, 270.0, 38.0, 0.0},
      {K::kIdle, 60.0, 0.0, 0.0},
  };
  config.seed = 2101;
  return config;
}

// Overnight cold soak at -5 C, then fast idle and a gentle drive-away:
// the coolant starts *at ambient* (zero harvestable dT) and the whole
// trace is one below-thermostat warm-up transient.
TraceGeneratorConfig winter_cold_start() {
  TraceGeneratorConfig config;
  config.ambient.base_c = -5.0;
  config.engine.ambient_c = -5.0;
  config.engine.initial_coolant_c = -5.0;  // soaked to ambient overnight
  config.segments = {
      {K::kColdStart, 200.0, 35.0, 0.0},
      {K::kUrban, 240.0, 32.0, 0.0},
      {K::kCruise, 160.0, 70.0, 0.0},
  };
  config.seed = 2102;
  return config;
}

// Loaded mountain ascent: sustained grades with an ambient profile that
// cools with altitude and steps through two tunnels — peak coolant
// temperatures and a moving cold side at once.
TraceGeneratorConfig alpine_climb() {
  TraceGeneratorConfig config;
  config.segments = {
      {K::kCruise, 120.0, 70.0, 0.0},
      {K::kHill, 240.0, 45.0, 6.5},
      {K::kHill, 180.0, 40.0, 8.0},
      {K::kCruise, 120.0, 60.0, 0.0},
  };
  config.ambient.base_c = 18.0;
  config.ambient.drift_c_per_hour = -25.0;  // ~1300 m of climb per hour
  config.ambient.steps = {{300.0, 6.0}, {360.0, -6.0}};  // tunnel in/out
  config.ambient.noise_sigma_c = 0.3;
  config.seed = 2103;
  return config;
}

// ------------------------------------------------------ industrial plants

// Shared plant baseline: circulation pump instead of a belt-driven one,
// forced-draught fan always on, process-control valve in place of the wax
// thermostat.  Individual scenarios retune capacity and band.
TraceGeneratorConfig industrial_base() {
  TraceGeneratorConfig config;
  config.engine.pump_flow_idle_lpm = 55.0;  // electric circulation pump
  config.engine.pump_flow_max_lpm = 85.0;
  config.engine.fan_on_c = 0.0;             // forced draught, always engaged
  config.engine.fan_air_speed_ms = 5.0;
  config.engine.max_air_speed_ms = 8.0;
  config.engine.radiator_face_area_m2 = 1.0;
  // The economiser/quench loop captures about a third of firing power.
  config.engine.heat_to_coolant_fraction = 0.35;
  config.vehicle.idle_power_kw = 15.0;      // pilot burner + auxiliaries
  return config;
}

// Boiler economiser duct: 16 m of serpentine flue path instrumented with
// 400 modules, steady firing stepped up through a load ramp — the paper
// conclusion's "industrial boilers and heat exchangers" at array scale.
TraceGeneratorConfig boiler_economiser() {
  TraceGeneratorConfig config = industrial_base();
  config.layout.num_modules = 400;
  config.layout.exchanger.tube_length_m = 16.0;
  config.layout.exchanger.k_per_length_w_mk = 700.0;
  config.engine.thermostat_open_c = 96.0;   // process-control band
  config.engine.thermostat_full_c = 104.0;
  config.engine.initial_coolant_c = 97.0;
  config.engine.thermal_mass_j_k = 500000.0;  // big steel mass
  config.vehicle.max_engine_power_kw = 400.0;  // rated firing capacity
  config.segments = {
      {K::kSteadyProcess, 240.0, 0.0, 0.0, 220.0},
      {K::kLoadRamp, 120.0, 0.0, 0.0, 220.0, 320.0},
      {K::kSteadyProcess, 240.0, 0.0, 0.0, 320.0},
  };
  config.seed = 2104;
  return config;
}

// Batch kiln: periodic high-fire/low-fire cycles after a preheat ramp.
// The firing swing drags the whole temperature profile up and down every
// few minutes — the industrial analogue of stop-and-go traffic.
TraceGeneratorConfig kiln_batch() {
  TraceGeneratorConfig config = industrial_base();
  config.layout.num_modules = 200;
  config.layout.exchanger.tube_length_m = 10.0;
  config.layout.exchanger.k_per_length_w_mk = 850.0;
  config.engine.thermostat_open_c = 90.0;   // wide control band: the batch
  config.engine.thermostat_full_c = 110.0;  // swing is the point
  config.engine.initial_coolant_c = 92.0;
  config.engine.thermal_mass_j_k = 300000.0;
  config.vehicle.max_engine_power_kw = 350.0;
  config.segments = {
      {K::kLoadRamp, 120.0, 0.0, 0.0, 80.0, 280.0},
      {K::kBatchCycle, 600.0, 0.0, 0.0, 280.0, 40.0, 180.0},
  };
  config.seed = 2105;
  return config;
}

struct ScenarioEntry {
  const char* name;
  const char* description;
  TraceGeneratorConfig (*build)();
};

// Sorted by name; scenario_catalog() asserts the order so lookups can rely
// on it.
const ScenarioEntry kScenarios[] = {
    {"alpine_climb",
     "Loaded mountain ascent: sustained 6.5-8% grades, ambient cooling with "
     "altitude plus two tunnel steps",
     &alpine_climb},
    {"boiler_economiser",
     "Boiler economiser duct: 400 modules along 16 m of flue path, steady "
     "firing stepped 220->320 kW through a load ramp",
     &boiler_economiser},
    {"kiln_batch",
     "Batch kiln: 200 modules, preheat ramp then periodic 280/40 kW "
     "high-/low-fire cycles (180 s period)",
     &kiln_batch},
    {"porter_800s",
     "The paper's 800 s Hyundai Porter II mixed drive (idle, urban, "
     "arterial, hill, highway), 100 modules",
     &porter_800s},
    {"urban_stop_start",
     "Signalised city traffic with idle-stop: engine off at every light, "
     "coolant sawtooths between launches",
     &urban_stop_start},
    {"winter_cold_start",
     "-5 C overnight soak, fast idle and gentle drive-away: a full "
     "below-thermostat warm-up transient",
     &winter_cold_start},
};

}  // namespace

TraceGeneratorConfig scenario(const std::string& name) {
  for (const ScenarioEntry& entry : kScenarios) {
    if (name == entry.name) return entry.build();
  }
  std::string known;
  for (const ScenarioEntry& entry : kScenarios) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (registered: " + known + ")");
}

bool has_scenario(const std::string& name) {
  for (const ScenarioEntry& entry : kScenarios) {
    if (name == entry.name) return true;
  }
  return false;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioEntry& entry : kScenarios) names.emplace_back(entry.name);
  return names;
}

const std::vector<ScenarioInfo>& scenario_catalog() {
  static const std::vector<ScenarioInfo> catalog = [] {
    std::vector<ScenarioInfo> out;
    for (const ScenarioEntry& entry : kScenarios) {
      out.push_back({entry.name, entry.description});
    }
    if (!std::is_sorted(out.begin(), out.end(),
                        [](const ScenarioInfo& a, const ScenarioInfo& b) {
                          return a.name < b.name;
                        })) {
      throw std::logic_error("scenario catalog must stay sorted by name");
    }
    return out;
  }();
  return catalog;
}

}  // namespace tegrec::thermal
