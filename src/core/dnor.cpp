#include "core/dnor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/objective.hpp"
#include "core/state_codec.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::core {

DnorReconfigurer::DnorReconfigurer(const teg::DeviceParams& device,
                                   const power::ConverterParams& converter,
                                   const DnorParams& params,
                                   std::unique_ptr<predict::Predictor> predictor)
    : device_(device), converter_(converter), params_(params),
      predictor_(std::move(predictor)) {
  if (params_.control_period_s <= 0.0) {
    throw std::invalid_argument("DnorReconfigurer: control period <= 0");
  }
  if (params_.tp_s <= 0.0) {
    throw std::invalid_argument("DnorReconfigurer: tp <= 0");
  }
  if (!predictor_) {
    predictor_ = std::make_unique<predict::MlrPredictor>();
  }
  if (params_.history_window <= predictor_->num_lags() + 1) {
    throw std::invalid_argument("DnorReconfigurer: window too small for predictor");
  }
}

std::pair<double, double> DnorReconfigurer::predicted_energies_j(
    const teg::ArrayConfig& c_old, const teg::ArrayConfig& c_new,
    const std::vector<double>& now_temps,
    const std::vector<std::vector<double>>& forecast, double ambient_c) const {
  const double dt = params_.control_period_s;
  double e_old = 0.0;
  double e_new = 0.0;
  auto accumulate = [&](const std::vector<double>& temps) {
    std::vector<double> delta(temps.size());
    for (std::size_t i = 0; i < temps.size(); ++i) {
      delta[i] = std::max(0.0, temps[i] - ambient_c);
    }
    const teg::TegArray array(device_, delta, ambient_c);
    const teg::ArrayEvaluator evaluator(array);
    e_old += config_power_w(evaluator, converter_, c_old) * dt;
    e_new += config_power_w(evaluator, converter_, c_new) * dt;
  };
  // The "current second" term of Algorithm 2 plus the tp predicted steps.
  accumulate(now_temps);
  for (const auto& row : forecast) accumulate(row);
  return {e_old, e_new};
}

UpdateResult DnorReconfigurer::update(double time_s,
                                      const std::vector<double>& delta_t_k,
                                      double ambient_c) {
  if (!history_) {
    history_ = std::make_unique<predict::TemperatureHistory>(
        delta_t_k.size(), params_.history_window);
  }
  // The controller senses every period and archives absolute hot-side
  // temperatures (the predictors model T, not dT).
  std::vector<double> temps(delta_t_k.size());
  for (std::size_t i = 0; i < delta_t_k.size(); ++i) {
    temps[i] = ambient_c + delta_t_k[i];
  }
  history_->push(temps);

  UpdateResult result;
  if (has_config_ && time_s + 1e-9 < next_decision_time_s_) {
    result.config = current_;
    return result;  // hold between decisions
  }

  const util::MonotonicTimer timer;
  const teg::TegArray array(device_, delta_t_k, ambient_c);
  teg::ArrayConfig c_new = inor_search(array, converter_, params_.inor);
  ++decisions_;

  bool adopt = true;
  if (has_config_ && c_new != current_) {
    const auto horizon = static_cast<std::size_t>(
        std::llround(params_.tp_s / params_.control_period_s));
    const bool can_predict =
        history_->size() >= params_.history_window && horizon > 0;
    if (can_predict) {
      predictor_->fit(*history_);
      const auto forecast = predictor_->predict_horizon(*history_, horizon);
      const auto [e_old, e_new] =
          predicted_energies_j(current_, c_new, temps, forecast, ambient_c);
      const std::size_t toggles = 3 * current_.boundary_distance(c_new);
      const double p_now = config_power_w(array, converter_, current_);
      // The estimate mirrors what the stepper would charge on actuation,
      // including this controller's own declared compute budget.
      const double e_overhead =
          switchfab::reconfiguration_cost(
              params_.overhead, toggles, p_now,
              algorithm_cost().budget_s(params_.overhead))
              .energy_j;
      // Algorithm 2's rule: switch only if E_old <= E_new - E_overhead.
      adopt = e_old <= e_new - e_overhead;
    }
    // Without enough history the controller stays instantaneous (warmup).
  } else if (has_config_) {
    adopt = false;  // identical configuration: nothing to actuate
  }

  result.compute_time_s = timer.seconds();
  result.invoked = true;
  if (adopt) {
    result.switched = !has_config_ || c_new != current_;
    result.actuate = result.switched;  // actuate only on a real change
    current_ = std::move(c_new);
    has_config_ = true;
    if (result.switched) ++switches_;
  }
  next_decision_time_s_ = time_s + params_.tp_s + 1.0;
  result.config = current_;
  return result;
}

void DnorReconfigurer::reset() {
  history_.reset();
  next_decision_time_s_ = 0.0;
  has_config_ = false;
  current_ = teg::ArrayConfig();
  decisions_ = 0;
  switches_ = 0;
}

bool DnorReconfigurer::supports_checkpoint() const {
  return predictor_->refit_is_pure();
}

std::string DnorReconfigurer::checkpoint_state() const {
  if (!supports_checkpoint()) {
    throw std::logic_error(
        "DNOR: checkpointing unsupported over an impure-refit predictor (" +
        predictor_->name() + ")");
  }
  std::string out;
  detail::emit_kv(out, "state", "dnor-v1");
  detail::emit_kv(out, "next_decision_time_s",
                  detail::format_double(next_decision_time_s_));
  detail::emit_kv(out, "has_config", has_config_ ? "1" : "0");
  detail::emit_kv(out, "config_starts",
                  detail::join_indices(current_.group_starts()));
  detail::emit_kv(out, "config_modules",
                  std::to_string(current_.num_modules()));
  detail::emit_kv(out, "decisions", std::to_string(decisions_));
  detail::emit_kv(out, "switches", std::to_string(switches_));
  detail::emit_kv(out, "has_history", history_ ? "1" : "0");
  if (history_) {
    detail::emit_kv(out, "history_modules",
                    std::to_string(history_->num_modules()));
    detail::emit_kv(out, "history_capacity",
                    std::to_string(history_->capacity()));
    detail::emit_kv(out, "history_rows", std::to_string(history_->size()));
    for (std::size_t r = 0; r < history_->size(); ++r) {
      detail::emit_kv(out, "row", detail::join_doubles(history_->row(r)));
    }
  }
  return out;
}

void DnorReconfigurer::restore_checkpoint_state(const std::string& state) {
  if (!supports_checkpoint()) {
    throw std::logic_error(
        "DNOR: checkpointing unsupported over an impure-refit predictor (" +
        predictor_->name() + ")");
  }
  detail::KvReader reader(state);
  if (reader.expect("state") != "dnor-v1") {
    throw std::runtime_error("DNOR: unknown state blob version");
  }
  const double next_decision = reader.expect_double("next_decision_time_s");
  const bool has_config = reader.expect_bool("has_config");
  std::vector<std::size_t> starts =
      detail::split_indices(reader.expect("config_starts"));
  const auto config_modules =
      static_cast<std::size_t>(reader.expect_u64("config_modules"));
  const auto decisions = static_cast<std::size_t>(reader.expect_u64("decisions"));
  const auto switches = static_cast<std::size_t>(reader.expect_u64("switches"));
  const bool has_history = reader.expect_bool("has_history");
  std::unique_ptr<predict::TemperatureHistory> history;
  if (has_history) {
    const auto modules =
        static_cast<std::size_t>(reader.expect_u64("history_modules"));
    const auto capacity =
        static_cast<std::size_t>(reader.expect_u64("history_capacity"));
    const auto rows = static_cast<std::size_t>(reader.expect_u64("history_rows"));
    history = std::make_unique<predict::TemperatureHistory>(modules, capacity);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::vector<double> row = detail::split_doubles(reader.expect("row"));
      if (row.size() != modules) {
        throw std::runtime_error("DNOR: history row width mismatch");
      }
      history->push(row);
    }
  }
  reader.finish();

  // ArrayConfig's constructor validates the starts; only assign the members
  // once everything parsed, so a bad blob never half-applies.
  teg::ArrayConfig config;
  if (has_config) {
    config = teg::ArrayConfig(std::move(starts), config_modules);
  }
  next_decision_time_s_ = next_decision;
  has_config_ = has_config;
  current_ = std::move(config);
  decisions_ = decisions;
  switches_ = switches;
  history_ = std::move(history);
}

}  // namespace tegrec::core
