// Shared configuration-quality objective.
//
// Section III.B: the charger's conversion efficiency falls off as the
// string voltage leaves the 13.8 V neighbourhood, so configurations are
// compared by the power that actually reaches the battery rail, not by the
// raw array MPP.  All algorithms (INOR's inner loop, EHTR's per-n
// selection, DNOR's switch-or-hold energy estimates) score candidates with
// this one function.
#pragma once

#include <span>

#include "power/converter.hpp"
#include "power/mppt.hpp"
#include "teg/array.hpp"
#include "teg/array_evaluator.hpp"
#include "teg/config.hpp"

namespace tegrec::core {

/// Post-converter power of a configuration at the array's current
/// temperature distribution (settled MPPT assumed).
double config_power_w(const teg::TegArray& array, const power::Converter& converter,
                      const teg::ArrayConfig& config);

/// Full operating point (current/voltage/raw/net power) of a configuration.
power::OperatingPoint config_operating_point(const teg::TegArray& array,
                                             const power::Converter& converter,
                                             const teg::ArrayConfig& config);

/// Cached variants: score against a prebuilt ArrayEvaluator in O(groups)
/// instead of materialising a SeriesString of N module copies.  These are
/// the hot-path overloads used by the candidate-scoring loops (EHTR, INOR,
/// exhaustive) and the simulator's per-step evaluation.
double config_power_w(const teg::ArrayEvaluator& evaluator,
                      const power::Converter& converter,
                      const teg::ArrayConfig& config);

power::OperatingPoint config_operating_point(const teg::ArrayEvaluator& evaluator,
                                             const power::Converter& converter,
                                             const teg::ArrayConfig& config);

/// Streaming variants: score a candidate from its raw group starts (first
/// 0, strictly increasing, last group implicit to the end) without
/// materialising an ArrayConfig.  Bit-identical to the ArrayConfig
/// overloads; used by EHTR's backtrack-and-score sweep.
double config_power_w(const teg::ArrayEvaluator& evaluator,
                      const power::Converter& converter,
                      std::span<const std::size_t> group_starts);

power::OperatingPoint config_operating_point(
    const teg::ArrayEvaluator& evaluator, const power::Converter& converter,
    std::span<const std::size_t> group_starts);

/// The [nmin, nmax] group-count window of Algorithm 1, derived from the
/// converter's efficient input range and the array's mean module MPP
/// voltage (Section III.B / V.A).
power::Converter::GroupRange group_count_window(const teg::TegArray& array,
                                                const power::Converter& converter);

}  // namespace tegrec::core
