#include "core/algorithm_cost.hpp"

namespace tegrec::core {

double AlgorithmCost::budget_s(
    const switchfab::OverheadParams& overhead) const {
  return budget_multiplier * overhead.compute_budget_s;
}

}  // namespace tegrec::core
