// The checkpoint codec: versioned, fingerprint-stamped, and loud.  A
// checkpoint must round-trip the full stepper state bit-exactly, refuse a
// stamp from any other configuration, and reject corrupt or truncated
// artifacts with an exception — never a silent fresh start.  The injected
// fault matrix (stream.checkpoint.write_fail/.torn/.crash) exercises the
// failure modes an operator will actually hit.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stepper.hpp"
#include "thermal/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/fault.hpp"

namespace tegrec::sim {
namespace {

thermal::TemperatureTrace test_trace() {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 12;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 12.0, 32.0, 0.0}};
  config.seed = 9;
  return thermal::generate_trace(config);
}

StreamConfig test_config(const thermal::TemperatureTrace& trace) {
  StreamConfig config;
  config.scheme = StreamScheme::kInor;
  config.dt_s = trace.dt_s();
  config.num_modules = trace.num_modules();
  config.sim.num_threads = 1;
  return config;
}

/// A stepper advanced `steps` samples into the test trace.
struct SteppedRun {
  std::unique_ptr<core::Reconfigurer> controller;
  std::unique_ptr<SimStepper> stepper;
};

SteppedRun make_run(const StreamConfig& config, const thermal::TemperatureTrace& trace,
             std::size_t steps) {
  SteppedRun run;
  run.controller = make_stream_controller(config);
  run.stepper = std::make_unique<SimStepper>(*run.controller, config.dt_s,
                                             config.num_modules, config.sim);
  for (std::size_t t = 0; t < steps; ++t) {
    TraceSample sample;
    sample.time_s = static_cast<double>(t) * trace.dt_s();
    sample.module_temps_c = trace.step_temperatures(t);
    sample.ambient_c = trace.ambient_c(t);
    run.stepper->step(sample);
  }
  return run;
}

void expect_states_equal(const StepperState& a, const StepperState& b) {
  EXPECT_EQ(a.steps_consumed, b.steps_consumed);
  EXPECT_EQ(a.total_compute_s, b.total_compute_s);
  EXPECT_EQ(a.has_fabric, b.has_fabric);
  EXPECT_EQ(a.fabric_group_starts, b.fabric_group_starts);
  EXPECT_EQ(a.battery_soc, b.battery_soc);
  EXPECT_EQ(a.battery_energy_j, b.battery_energy_j);
  EXPECT_EQ(a.controller_state, b.controller_state);
  EXPECT_EQ(a.partial.energy_output_j, b.partial.energy_output_j);
  EXPECT_EQ(a.partial.steps.size(), b.partial.steps.size());
}

TEST(Checkpoint, EncodeDecodeRoundTripsBitExactly) {
  const auto trace = test_trace();
  const StreamConfig config = test_config(trace);
  const std::string stamp = stream_config_fingerprint_text(config);
  SteppedRun run = make_run(config, trace, 9);
  const StepperState state = run.stepper->state();

  const std::vector<std::string> log = {R"({"event":"decision","time_s":0})",
                                        R"({"event":"gap","detail":"x"})"};
  const std::string text = encode_checkpoint(state, stamp, log);
  const DecodedCheckpoint decoded = decode_checkpoint(text, stamp);
  expect_states_equal(state, decoded.state);
  EXPECT_EQ(decoded.extra_lines, log);  // byte-preserved, order-preserved

  // The decoded state restores into a fresh run and continues identically.
  SteppedRun resumed = make_run(config, trace, 0);
  resumed.stepper->restore_state(decoded.state);
  SteppedRun reference = make_run(config, trace, 10);
  TraceSample sample;
  sample.time_s = 9 * trace.dt_s();
  sample.module_temps_c = trace.step_temperatures(9);
  sample.ambient_c = trace.ambient_c(9);
  resumed.stepper->step(sample);
  EXPECT_EQ(resumed.stepper->result().energy_output_j,
            reference.stepper->result().energy_output_j);
  EXPECT_EQ(resumed.stepper->result().steps.back().net_power_w,
            reference.stepper->result().steps.back().net_power_w);
}

TEST(Checkpoint, StampMismatchIsRejected) {
  const auto trace = test_trace();
  const StreamConfig config = test_config(trace);
  SteppedRun run = make_run(config, trace, 5);
  const std::string text = encode_checkpoint(
      run.stepper->state(), stream_config_fingerprint_text(config));

  // Any result-affecting field difference must refuse to resume.
  StreamConfig other = config;
  other.control_period_s *= 2.0;
  EXPECT_THROW(
      decode_checkpoint(text, stream_config_fingerprint_text(other)),
      std::runtime_error);
}

TEST(Checkpoint, RejectsNewlinesInExtraLines) {
  const auto trace = test_trace();
  const StreamConfig config = test_config(trace);
  SteppedRun run = make_run(config, trace, 3);
  EXPECT_THROW(encode_checkpoint(run.stepper->state(),
                                 stream_config_fingerprint_text(config),
                                 {"line one\nline two"}),
               std::invalid_argument);
}

TEST(Checkpoint, TruncatedAndCorruptArtifactsAreLoud) {
  const auto trace = test_trace();
  const StreamConfig config = test_config(trace);
  const std::string stamp = stream_config_fingerprint_text(config);
  SteppedRun run = make_run(config, trace, 7);
  const std::string text = encode_checkpoint(run.stepper->state(), stamp);

  EXPECT_THROW(decode_checkpoint("", stamp), std::runtime_error);
  EXPECT_THROW(decode_checkpoint("not a checkpoint\n", stamp),
               std::runtime_error);
  // Every truncation point must throw — the `# end` terminator guarantees
  // even a cleanly-cut tail cannot pass.
  for (std::size_t cut : {text.size() / 4, text.size() / 2,
                          text.size() - 10, text.size() - 1}) {
    EXPECT_THROW(decode_checkpoint(text.substr(0, cut), stamp),
                 std::runtime_error)
        << "cut at " << cut;
  }
  // Flipping the internal step count breaks cross-validation.
  std::string inconsistent = text;
  const std::size_t pos = inconsistent.find("steps_consumed = 7");
  ASSERT_NE(pos, std::string::npos);
  inconsistent.replace(pos, 18, "steps_consumed = 6");
  EXPECT_THROW(decode_checkpoint(inconsistent, stamp), std::runtime_error);
}

// ------------------------------------------------------------- fault matrix

class CheckpointFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = std::make_unique<thermal::TemperatureTrace>(test_trace());
    config_ = test_config(*trace_);
    stamp_ = stream_config_fingerprint_text(config_);
    path_ = testing::TempDir() + "/ckpt_fault_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
    std::remove(path_.c_str());
    run_ = make_run(config_, *trace_, 6);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  util::AtomicWriteOptions write_options(util::FaultInjector& faults) {
    util::AtomicWriteOptions options;
    options.fault_site = "stream.checkpoint";
    options.faults = &faults;
    options.retry.initial_backoff_ms = 0;
    options.retry.max_backoff_ms = 0;
    return options;
  }

  std::unique_ptr<thermal::TemperatureTrace> trace_;
  StreamConfig config_;
  std::string stamp_;
  std::string path_;
  SteppedRun run_;
};

TEST_F(CheckpointFaults, WriteFailExhaustsRetriesAndThrows) {
  util::FaultInjector faults;
  faults.arm("stream.checkpoint.write_fail", 1, 1000);  // every attempt
  EXPECT_THROW(run_.stepper->save(path_, stamp_, write_options(faults)),
               std::runtime_error);
  EXPECT_FALSE(util::read_file_if_exists(path_).has_value());  // nothing torn

  // A transient failure (first attempt only) is retried to success.
  util::FaultInjector transient;
  transient.arm("stream.checkpoint.write_fail", 1, 1);
  run_.stepper->save(path_, stamp_, write_options(transient));
  SteppedRun fresh = make_run(config_, *trace_, 0);
  fresh.stepper->restore(path_, stamp_);
  EXPECT_EQ(fresh.stepper->steps_consumed(), 6u);
}

TEST_F(CheckpointFaults, TornPublicationIsRejectedOnRestore) {
  util::FaultInjector faults;
  faults.arm("stream.checkpoint.torn", 1, 1);
  run_.stepper->save(path_, stamp_, write_options(faults));
  // The torn fault published a half-written prefix: restore must throw,
  // never restore a partial state.
  SteppedRun fresh = make_run(config_, *trace_, 0);
  EXPECT_THROW(fresh.stepper->restore(path_, stamp_), std::runtime_error);
  EXPECT_EQ(fresh.stepper->steps_consumed(), 0u);  // untouched by the failure
}

TEST_F(CheckpointFaults, CrashLeavesPreviousCheckpointIntact) {
  run_.stepper->save(path_, stamp_);  // a good generation-1 checkpoint

  // Advance, then crash mid-write of generation 2: the temp is abandoned
  // before rename, so generation 1 must still be on disk, whole.
  TraceSample sample;
  sample.time_s = 6 * trace_->dt_s();
  sample.module_temps_c = trace_->step_temperatures(6);
  sample.ambient_c = trace_->ambient_c(6);
  run_.stepper->step(sample);
  util::FaultInjector faults;
  faults.arm("stream.checkpoint.crash", 1, 1);
  EXPECT_THROW(run_.stepper->save(path_, stamp_, write_options(faults)),
               util::AtomicWriteCrash);

  SteppedRun fresh = make_run(config_, *trace_, 0);
  fresh.stepper->restore(path_, stamp_);
  EXPECT_EQ(fresh.stepper->steps_consumed(), 6u);  // generation 1, not 7
}

// ------------------------------------------- fingerprint field sensitivity

// Runtime twin of the lint cache-key cross-check: every result-affecting
// StreamConfig field must move the fingerprint, and the execution hint
// must not (two machines with different core counts share checkpoints).
TEST(Checkpoint, FingerprintMovesPerResultAffectingField) {
  const StreamConfig base = [] {
    StreamConfig c;
    c.num_modules = 8;
    return c;
  }();
  const std::string fp = stream_config_fingerprint(base);

  StreamConfig scheme = base;
  scheme.scheme = StreamScheme::kEhtr;
  EXPECT_NE(stream_config_fingerprint(scheme), fp);

  StreamConfig period = base;
  period.control_period_s = 1.0;
  EXPECT_NE(stream_config_fingerprint(period), fp);

  StreamConfig dt = base;
  dt.dt_s = 0.25;
  EXPECT_NE(stream_config_fingerprint(dt), fp);

  StreamConfig modules = base;
  modules.num_modules = 9;
  EXPECT_NE(stream_config_fingerprint(modules), fp);

  StreamConfig physics = base;
  physics.sim.charge_overhead = !physics.sim.charge_overhead;
  EXPECT_NE(stream_config_fingerprint(physics), fp);

  StreamConfig battery = base;
  battery.sim.battery.capacity_ah *= 2.0;
  EXPECT_NE(stream_config_fingerprint(battery), fp);

  StreamConfig exec_hint = base;
  exec_hint.sim.num_threads = 7;  // execution hint: excluded by design
  EXPECT_EQ(stream_config_fingerprint(exec_hint), fp);
}

TEST(Checkpoint, SchemeNamesRoundTrip) {
  for (StreamScheme scheme : {StreamScheme::kDnor, StreamScheme::kInor,
                              StreamScheme::kEhtr, StreamScheme::kBaseline}) {
    EXPECT_EQ(parse_stream_scheme(stream_scheme_name(scheme)), scheme);
  }
  EXPECT_THROW(parse_stream_scheme("mppt"), std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::sim
