// Live telemetry sources for streamed simulation.
//
// A streaming run is the batch simulator fed from the outside world
// instead of a file: some transport delivers the rows of a temperature
// CSV one at a time, and a SimStepper consumes them.  This header splits
// that into two layers:
//
//  - ByteFeed: "where do bytes come from" — a non-blocking poll over a
//    growing file (tail -f), an inherited pipe/stdin, a loopback TCP
//    listener, or an in-memory buffer for tests.  Feeds know nothing
//    about the line protocol.
//
//  - LineTelemetrySource: "what do the bytes mean" — the
//    TemperatureTrace CSV dialect, incrementally.  The first line must
//    be the save_csv header (`time_s,ambient_c,t0,...`); every
//    subsequent line is one sample, validated with the same rigor as
//    TemperatureTrace::load_csv (column count, finiteness, uniform time
//    grid) — a malformed line throws, it is never silently skipped.
//    Stream-order conditions that a batch loader cannot have are
//    surfaced explicitly instead: an out-of-order line is dropped and
//    reported, a gap (missing grid points) is either rejected or filled
//    by holding the last sample, per GapPolicy, and reported either way.
//
// Emitted samples are grid-snapped and rebased to t = 0 (the first data
// line defines the epoch), so feeding the source's output to a SimStepper
// reproduces the batch run over the same rows bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/stepper.hpp"

namespace tegrec::sim {

/// A non-blocking byte transport.  poll() never blocks: it appends
/// whatever is available now (possibly nothing) and reports the feed's
/// state.  Feeds are single-owner and not thread-safe; each streamed
/// array polls its own feed from its own thread.
class ByteFeed {
 public:
  enum class Status {
    kData,  ///< bytes were appended to the chunk
    kIdle,  ///< nothing available right now; more may come
    kEnd,   ///< the source is exhausted (EOF / peer closed); no more bytes
  };

  virtual ~ByteFeed() = default;

  /// Appends available bytes (a bounded chunk) to `chunk`.  Throws
  /// std::runtime_error on transport errors.
  virtual Status poll(std::string& chunk) = 0;

  /// Human-readable source description for logs ("tail:path", "stdin",
  /// "tcp:port").
  virtual std::string describe() const = 0;
};

/// Follows a growing file from a byte offset, tail -f style: reads
/// whatever lies beyond the last offset, reports kIdle when the file has
/// not grown (or does not exist yet).  Never reports kEnd — a tailed file
/// can always grow; end-of-stream policy (idle timeouts) belongs to the
/// caller.  Truncation (file shrinks below the offset) throws: the
/// history this source already emitted no longer exists.
class FileTailFeed final : public ByteFeed {
 public:
  explicit FileTailFeed(std::string path);
  Status poll(std::string& chunk) override;
  std::string describe() const override { return "tail:" + path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
};

/// Reads an inherited pipe file descriptor (default: stdin) without
/// blocking.  kEnd on EOF (writer closed).  POSIX-only: the constructor
/// throws std::runtime_error on platforms without non-blocking fds.
class PipeFeed final : public ByteFeed {
 public:
  explicit PipeFeed(int fd = 0);
  ~PipeFeed() override;
  Status poll(std::string& chunk) override;
  std::string describe() const override;

 private:
  int fd_ = -1;
};

/// Line-protocol TCP listener on loopback: binds 127.0.0.1:`port`
/// (port 0 picks an ephemeral port — read it back with port()), accepts
/// one client at a time, and reports kEnd when that client disconnects.
/// Designed for `netcat <host> <port> < trace.csv`-style feeding.
/// POSIX-only: the constructor throws elsewhere.
class TcpLineFeed final : public ByteFeed {
 public:
  explicit TcpLineFeed(std::uint16_t port = 0);
  ~TcpLineFeed() override;
  Status poll(std::string& chunk) override;
  std::string describe() const override;

  /// The bound port (the ephemeral one when constructed with 0).
  std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  int client_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// In-memory feed for tests and adapters: push() appends bytes, close()
/// marks the end of the stream.
class StringFeed final : public ByteFeed {
 public:
  void push(const std::string& bytes) { buffer_ += bytes; }
  void close() { closed_ = true; }
  Status poll(std::string& chunk) override;
  std::string describe() const override { return "memory"; }

 private:
  std::string buffer_;
  bool closed_ = false;
};

/// What to do when the stream skips grid points (sensor dropout, lossy
/// transport).
enum class GapPolicy {
  kReject,    ///< throw — the operator wants no fabricated physics
  kHoldLast,  ///< fill the hole by holding the last sample, and report it
};

/// A stream-order condition the source observed and handled.
struct TelemetryIssue {
  enum class Kind {
    kGap,         ///< missing grid points (filled or rejected per policy)
    kOutOfOrder,  ///< line older than the stream position; dropped
  };
  Kind kind = Kind::kGap;
  std::string detail;  ///< human-readable specifics (times, counts)
};

/// One poll() outcome.
struct TelemetryEvent {
  enum class Kind {
    kSample,  ///< `sample` holds the next grid sample
    kIdle,    ///< no complete sample available right now
    kEnd,     ///< stream exhausted; no further samples will ever come
  };
  Kind kind = Kind::kIdle;
  TraceSample sample;                   ///< kSample only
  std::vector<TelemetryIssue> issues;   ///< conditions observed this poll
};

struct TelemetryOptions {
  /// Expected sample period; 0 derives it from the first two data lines
  /// (which also means the first sample is held back until the second
  /// arrives).  An explicit dt is the caller vouching for the grid, as in
  /// load_csv: coarsely rounded timestamps are accepted as long as each
  /// stays nearest its own grid point.
  double dt_s = 0.0;
  /// Expected module count; 0 derives it from the header.  A header that
  /// contradicts an explicit value throws.
  std::size_t num_modules = 0;
  GapPolicy gap_policy = GapPolicy::kHoldLast;
  /// Raw-time origin of grid index 0.  Unset: the first data line defines
  /// the epoch (a fresh stream).  Set (typically 0.0, the time base
  /// save_csv writes): raw timestamps are mapped to absolute grid indices
  /// — required when resuming, where the stream may rejoin mid-grid.
  std::optional<double> epoch_s;
  /// Resume position: the first grid index the consumer still needs.
  /// Lines landing below it are replayed history — dropped silently and
  /// counted (replayed()), not reported as out-of-order.  Requires
  /// `epoch_s` to be meaningful (indices are absolute).
  std::size_t start_index = 0;
};

/// Incremental parser of the TemperatureTrace CSV line protocol over a
/// ByteFeed.  Single-owner, not thread-safe.  Malformed input (bad
/// header, wrong column count, non-finite cell, off-grid timestamp,
/// non-positive derived dt) throws std::runtime_error identifying the
/// offending line — corruption is loud, only *ordering* conditions are
/// events (TelemetryIssue).
class LineTelemetrySource {
 public:
  explicit LineTelemetrySource(std::unique_ptr<ByteFeed> feed,
                               TelemetryOptions options = {});

  /// Advances the stream: drains the feed, parses complete lines, and
  /// returns the next event.  At most one kSample per call; queued
  /// samples (e.g. gap fills) are delivered on subsequent calls before
  /// the feed is polled again.
  TelemetryEvent poll();

  /// Grid parameters; 0 until derived (grid_resolved() tells you when).
  double dt_s() const { return dt_s_; }
  std::size_t num_modules() const { return num_modules_; }
  bool grid_resolved() const { return dt_s_ > 0.0 && num_modules_ > 0; }

  /// Samples emitted so far (gap fills included; replay excluded).
  std::size_t samples_emitted() const { return emitted_; }
  /// Replayed lines dropped below start_index.
  std::size_t replayed() const { return replayed_; }

  std::string describe() const { return feed_->describe(); }

 private:
  void ingest(const std::string& line);
  void process_on_grid(double time, std::vector<double> temps, double ambient,
                       const std::string& where);
  void enqueue_grid_sample(std::size_t index, std::vector<double> temps,
                           double ambient);

  std::unique_ptr<ByteFeed> feed_;
  TelemetryOptions options_;
  std::string buffer_;           ///< bytes not yet forming a complete line
  bool header_seen_ = false;
  bool end_ = false;
  double dt_s_ = 0.0;
  std::size_t num_modules_ = 0;
  double epoch_s_ = 0.0;         ///< raw time of grid index 0
  bool have_epoch_ = false;
  /// First sample parked until the second line defines dt (derive mode).
  bool have_parked_ = false;
  double parked_time_ = 0.0;
  std::vector<double> parked_temps_;
  double parked_ambient_ = 0.0;
  std::size_t next_index_ = 0;   ///< grid index the next sample must land on
  bool have_last_ = false;
  std::vector<double> last_temps_;   ///< for GapPolicy::kHoldLast
  double last_ambient_ = 0.0;
  std::size_t emitted_ = 0;
  std::size_t replayed_ = 0;
  std::size_t lines_seen_ = 0;   ///< 1-based line number for error messages
  std::deque<TraceSample> ready_;
  std::vector<TelemetryIssue> issues_;
};

}  // namespace tegrec::sim
