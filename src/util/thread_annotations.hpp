// Clang thread-safety annotation macros, portable to every compiler.
//
// Under Clang with -Wthread-safety the macros expand to the attributes
// that make lock discipline a *compile-time* property: the analysis
// rejects any access to a TEGREC_GUARDED_BY member without its mutex
// held, any call to a TEGREC_REQUIRES function without the named
// capability, and any function that returns with a capability in the
// wrong state.  Everywhere else (the gcc reference toolchain included)
// they expand to nothing, so annotated code compiles identically.
//
// Policy (see docs/static_analysis.md, "Thread-safety annotations"):
//
//  * Every data member of a class that owns a std::mutex is either
//    TEGREC_GUARDED_BY(that mutex), std::atomic, const/immutable after
//    construction, or carries an inline lint allow naming why.
//  * Private helpers that assume a lock is held say so with
//    TEGREC_REQUIRES(mutex) instead of a comment.
//  * Mid-scope unlock/relock dances are restructured into scopes the
//    analysis can follow; TEGREC_NO_THREAD_SAFETY_ANALYSIS is a last
//    resort for patterns the analysis cannot express (condition-variable
//    wait loops that hand the lock to wait_for) and always carries a
//    comment.
//
// The gcc-only containers cannot run the analysis, so two gates enforce
// it anyway: the `clang-thread-safety` CI job compiles the whole tree
// with -Werror=thread-safety, and tegrec_lint's guarded-member /
// lock-discipline / annotation-drift rules (AST-free, run everywhere)
// keep new concurrency code from silently opting out.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TEGREC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TEGREC_THREAD_ANNOTATION
#define TEGREC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (std::mutex already is one via
/// Clang's own annotations; this is for wrapper types).
#define TEGREC_CAPABILITY(x) TEGREC_THREAD_ANNOTATION(capability(x))

/// Data member readable/writable only with `x` held.
#define TEGREC_GUARDED_BY(x) TEGREC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define TEGREC_PT_GUARDED_BY(x) TEGREC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the listed capabilities held.
#define TEGREC_REQUIRES(...) \
  TEGREC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and returns holding them.
#define TEGREC_ACQUIRE(...) \
  TEGREC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (held on entry).
#define TEGREC_RELEASE(...) \
  TEGREC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking public APIs).
#define TEGREC_EXCLUDES(...) TEGREC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// RAII type that acquires in its constructor and releases in its
/// destructor (std::lock_guard-shaped wrappers).
#define TEGREC_SCOPED_CAPABILITY TEGREC_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch for functions whose locking the analysis cannot follow.
/// Every use carries a comment saying exactly why.
#define TEGREC_NO_THREAD_SAFETY_ANALYSIS \
  TEGREC_THREAD_ANNOTATION(no_thread_safety_analysis)
