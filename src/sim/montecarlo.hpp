// Monte-Carlo aggregation of the scheme comparison over trace seeds.
//
// One synthetic drive is one sample; the paper's headline numbers ("+30%",
// "~100x") deserve confidence intervals over drives.  This module re-runs
// the standard comparison across seeds and aggregates the headline metrics
// with RunningStats (mean / stddev / extrema).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.hpp"
#include "thermal/trace.hpp"
#include "util/stats.hpp"

namespace tegrec::sim {

struct MonteCarloOptions {
  thermal::TraceGeneratorConfig base_trace;  ///< seed field is overwritten
  ComparisonOptions comparison;
  std::size_t num_seeds = 10;
  std::uint64_t first_seed = 1;
  /// Worker threads for the per-seed simulations: 0 = one per hardware
  /// thread, 1 = serial.  Every seed owns a deterministic RNG stream and a
  /// private output slot, and the summary statistics are folded in seed
  /// order afterwards, so the result is bit-identical for any value.
  std::size_t num_threads = 0;
};

/// Per-seed record of the headline metrics.
struct MonteCarloSample {
  std::uint64_t seed = 0;
  double dnor_energy_j = 0.0;
  double baseline_energy_j = 0.0;
  double gain = 0.0;              ///< DNOR/baseline - 1
  double dnor_overhead_j = 0.0;
  double dnor_switches = 0.0;
};

struct MonteCarloSummary {
  std::vector<MonteCarloSample> samples;
  util::RunningStats gain;        ///< distribution of the "+30%" number
  util::RunningStats dnor_energy_j;
  util::RunningStats dnor_overhead_j;
  util::RunningStats dnor_switches;
};

/// Runs the comparison for seeds first_seed .. first_seed + num_seeds - 1,
/// in parallel across `options.num_threads` workers (seeds are independent
/// drives, so this is embarrassingly parallel and exactly reproducible).
/// Requires DNOR and the baseline to be enabled in `comparison`.
///
/// Thin blocking wrapper over the shared ExperimentService: the options are
/// packed into an ExperimentSpec and submitted, so an identical study (the
/// base seed is immaterial and pinned; thread counts do not fragment the
/// cache) is a lookup instead of a re-simulation.  Results are bit-identical
/// to detail::run_monte_carlo_direct for any service worker count.
MonteCarloSummary run_monte_carlo(const MonteCarloOptions& options);

namespace detail {

/// The actual Monte-Carlo engine, uncached and synchronous (service workers
/// call this; per-seed inner comparisons use run_comparison_direct).
MonteCarloSummary run_monte_carlo_direct(const MonteCarloOptions& options);

/// Folds the summary statistics from `samples` in seed order — shared by
/// the engine and the disk-cache loader so both produce identical stats.
void fold_monte_carlo_stats(MonteCarloSummary& summary);

}  // namespace detail

}  // namespace tegrec::sim
