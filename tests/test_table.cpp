#include "util/table.hpp"

#include <gtest/gtest.h>

namespace tegrec::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.begin_row().add("alpha").add(1.5, 1);
  t.begin_row().add("beta").add(static_cast<long long>(7));
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, AddBeforeBeginRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.begin_row().add("longvalue").add("x");
  t.begin_row().add("s").add("y");
  const std::string out = t.render();
  // Find the column of 'x' and 'y': both second-column cells must start at
  // the same offset.
  std::size_t line_start = 0;
  std::vector<std::size_t> positions;
  for (char target : {'x', 'y'}) {
    const std::size_t pos = out.find(target, line_start);
    ASSERT_NE(pos, std::string::npos);
    const std::size_t bol = out.rfind('\n', pos);
    positions.push_back(pos - bol);
    line_start = pos;
  }
  EXPECT_EQ(positions[0], positions[1]);
}

TEST(TextTable, NumRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.begin_row().add("1");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_fixed(2.5, 3), "2.500");
}

}  // namespace
}  // namespace tegrec::util
