#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tegrec::lint {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_lines_keep(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

/// Whole-word occurrence of `word` in `text` (word chars on neither side).
bool contains_word(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_word_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Like contains_word but requires an open paren (after optional spaces)
/// following the word — matches call sites such as `rand(` or `time (`.
bool contains_call(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(text[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < text.size() && (text[end] == ' ' || text[end] == '\t')) ++end;
    if (left_ok && end < text.size() && text[end] == '(') return true;
    pos += 1;
  }
  return false;
}

std::string normalize_ws(const std::string& line) {
  std::string out;
  bool in_space = true;  // also trims leading whitespace
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

// ------------------------------------------------------------ suppression

/// Per-line `// tegrec-lint: allow(rule-a, rule-b)` sets, with comment-only
/// lines donating their allows to the next line that has code on it.
class AllowMap {
 public:
  AllowMap(const std::vector<std::string>& raw_lines,
           const std::vector<std::string>& stripped_lines) {
    effective_.resize(raw_lines.size());
    std::set<std::string> pending;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      std::set<std::string> own = parse_allows(raw_lines[i]);
      const bool has_code =
          normalize_ws(stripped_lines[i]).find_first_not_of(' ') !=
          std::string::npos;
      if (has_code) {
        effective_[i] = own;
        effective_[i].insert(pending.begin(), pending.end());
        pending.clear();
      } else if (!own.empty()) {
        // Comment-only line: applies to the next code line.
        pending.insert(own.begin(), own.end());
      }
    }
  }

  bool allows(std::size_t line_index, const std::string& rule) const {
    if (line_index >= effective_.size()) return false;
    return effective_[line_index].count(rule) != 0;
  }

 private:
  static std::set<std::string> parse_allows(const std::string& raw_line) {
    std::set<std::string> rules;
    const std::string marker = "tegrec-lint: allow(";
    std::size_t pos = raw_line.find(marker);
    if (pos == std::string::npos) return rules;
    pos += marker.size();
    const std::size_t close = raw_line.find(')', pos);
    if (close == std::string::npos) return rules;
    std::string token;
    for (std::size_t i = pos; i <= close; ++i) {
      const char c = raw_line[i];
      if (c == ',' || c == ')') {
        if (!token.empty()) rules.insert(token);
        token.clear();
      } else if (c != ' ' && c != '\t') {
        token += c;
      }
    }
    return rules;
  }

  std::vector<std::set<std::string>> effective_;
};

// -------------------------------------------------------------- tokenizer

/// Classifies a pp-number token as a floating-point literal.
bool is_float_literal(const std::string& token) {
  if (token.empty()) return false;
  if (!(std::isdigit(static_cast<unsigned char>(token[0])) != 0 ||
        token[0] == '.')) {
    return false;
  }
  std::string t;
  for (char c : token) {
    if (c != '\'') t += static_cast<char>(std::tolower(c));
  }
  if (starts_with(t, "0x")) return t.find('p') != std::string::npos;
  if (t.find('.') != std::string::npos) return true;
  // Decimal exponent (1e9) or float suffix (sans '.' only valid with 'e').
  return t.find('e') != std::string::npos;
}

/// Reads the primary token immediately after `pos` (skipping spaces):
/// returns a pp-number, identifier, or empty for anything else.
std::string token_after(const std::string& line, std::size_t pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size()) return "";
  std::string token;
  if (std::isdigit(static_cast<unsigned char>(line[pos])) != 0 ||
      (line[pos] == '.' && pos + 1 < line.size() &&
       std::isdigit(static_cast<unsigned char>(line[pos + 1])) != 0)) {
    // pp-number: digits, '.', word chars, exponent signs.
    while (pos < line.size()) {
      const char c = line[pos];
      if (is_word_char(c) || c == '.' || c == '\'') {
        token += c;
        ++pos;
      } else if ((c == '+' || c == '-') && !token.empty() &&
                 (token.back() == 'e' || token.back() == 'E' ||
                  token.back() == 'p' || token.back() == 'P')) {
        token += c;
        ++pos;
      } else {
        break;
      }
    }
    return token;
  }
  if (is_word_char(line[pos])) {
    while (pos < line.size() && is_word_char(line[pos])) token += line[pos++];
  }
  return token;
}

/// Reads the primary token ending immediately before `pos` (exclusive),
/// skipping spaces backwards.
std::string token_before(const std::string& line, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\t')) --end;
  if (end == 0) return "";
  std::size_t begin = end;
  while (begin > 0) {
    const char c = line[begin - 1];
    if (is_word_char(c) || c == '.' || c == '\'') {
      --begin;
    } else if ((c == '+' || c == '-') && begin >= 2 &&
               (line[begin - 2] == 'e' || line[begin - 2] == 'E')) {
      begin -= 2;  // exponent sign inside a literal like 1e-12
    } else {
      break;
    }
  }
  return line.substr(begin, end - begin);
}

// ----------------------------------------------------------- line scanners

struct TokenRule {
  const char* token;
  bool call_form;  ///< require a following '(' (bare names are too common)
  const char* hint;
};

const TokenRule kDeterminismTokens[] = {
    {"system_clock", false, "use util/runtime_clock.hpp for runtime stats"},
    {"steady_clock", false, "use util/runtime_clock.hpp for runtime stats"},
    {"high_resolution_clock", false,
     "use util/runtime_clock.hpp for runtime stats"},
    {"random_device", false, "seed util::Rng explicitly instead"},
    {"mt19937", false, "all RNG must flow through util::Rng (util/rng.hpp)"},
    {"mt19937_64", false, "all RNG must flow through util::Rng (util/rng.hpp)"},
    {"minstd_rand", false, "all RNG must flow through util::Rng"},
    {"default_random_engine", false, "all RNG must flow through util::Rng"},
    {"uniform_int_distribution", false,
     "draw through util::Rng so streams stay reproducible"},
    {"uniform_real_distribution", false,
     "draw through util::Rng so streams stay reproducible"},
    {"normal_distribution", false,
     "draw through util::Rng so streams stay reproducible"},
    {"bernoulli_distribution", false,
     "draw through util::Rng so streams stay reproducible"},
    {"rand", true, "all RNG must flow through util::Rng (util/rng.hpp)"},
    {"srand", true, "all RNG must flow through util::Rng (util/rng.hpp)"},
    {"time", true, "wall clock is banned in simulation layers (PR 1 bug)"},
    {"clock", true, "wall clock is banned in simulation layers (PR 1 bug)"},
    {"gettimeofday", true, "wall clock is banned in simulation layers"},
    {"clock_gettime", true, "wall clock is banned in simulation layers"},
    {"timespec_get", true, "wall clock is banned in simulation layers"},
    {"localtime", true, "wall clock is banned in simulation layers"},
    {"gmtime", true, "wall clock is banned in simulation layers"},
};

const TokenRule kRawPublishTokens[] = {
    {"ofstream", false,
     "files other processes observe must be published through "
     "util::atomic_write_file (temp+fsync+rename), not written in place"},
    {"rename", true,
     "claim/publish renames must go through util/atomic_file.hpp "
     "(rename_file / atomic_write_file) so the protocol stays in one "
     "audited door"},
};

const TokenRule kApiIoTokens[] = {
    {"cout", false, "library code must not write to the console"},
    {"cerr", false, "library code must not write to the console"},
    {"clog", false, "library code must not write to the console"},
    {"printf", true,
     "library code must not write to the console (snprintf is fine)"},
    {"fprintf", true, "library code must not write to the console"},
    {"puts", true, "library code must not write to the console"},
    {"fputs", true, "library code must not write to the console"},
    {"putchar", true, "library code must not write to the console"},
    {"vprintf", true, "library code must not write to the console"},
};

void scan_token_rules(const std::string& rule, const TokenRule* rules,
                      std::size_t num_rules, const std::string& relpath,
                      const std::vector<std::string>& stripped_lines,
                      const AllowMap& allows, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line.empty() || allows.allows(i, rule)) continue;
    for (std::size_t r = 0; r < num_rules; ++r) {
      const TokenRule& t = rules[r];
      const bool hit = t.call_form ? contains_call(line, t.token)
                                   : contains_word(line, t.token);
      if (hit) {
        out.push_back({relpath, i + 1, rule, normalize_ws(line),
                       std::string("'") + t.token + "': " + t.hint});
        break;  // one finding per line per rule keeps output readable
      }
    }
  }
}

void scan_float_eq(const std::string& relpath,
                   const std::vector<std::string>& stripped_lines,
                   const AllowMap& allows, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line.empty() || allows.allows(i, "float-eq")) continue;
    for (std::size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const bool is_eq = line[pos] == '=' && line[pos + 1] == '=';
      const bool is_ne = line[pos] == '!' && line[pos + 1] == '=';
      if (!is_eq && !is_ne) continue;
      // Not part of <=, >=, +=, ... (char before an `==`/`!=` operator
      // cannot itself be an operator char).
      if (is_eq && pos > 0 &&
          std::string("<>+-*/%&|^!=").find(line[pos - 1]) !=
              std::string::npos) {
        continue;
      }
      const std::string before = token_before(line, pos);
      if (before == "operator") continue;
      const std::string after = token_after(line, pos + 2);
      if (is_float_literal(before) || is_float_literal(after)) {
        out.push_back(
            {relpath, i + 1, "float-eq", normalize_ws(line),
             "floating-point ==/!= against a literal; use util/float_cmp.hpp "
             "(exactly_equal / is_exactly_zero / near) so the intent is "
             "named"});
        break;
      }
      pos += 1;  // skip the second operator char
    }
  }
}

void scan_float_tol(const std::string& relpath,
                    const std::vector<std::string>& stripped_lines,
                    const AllowMap& allows, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line.empty() || allows.allows(i, "float-tol")) continue;
    for (const char* name : {"abs", "fabs", "fabsf", "fabsl"}) {
      std::size_t pos = 0;
      bool flagged = false;
      while ((pos = line.find(name, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]) ||
                             (pos >= 2 && line[pos - 1] == ':' &&
                              line[pos - 2] == ':');
        std::size_t p = pos + std::string(name).size();
        pos = p;
        if (!left_ok) continue;
        while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
        if (p >= line.size() || line[p] != '(') continue;
        int depth = 0;
        bool has_minus = false;
        std::size_t q = p;
        for (; q < line.size(); ++q) {
          if (line[q] == '(') ++depth;
          if (line[q] == '-' && depth >= 1) has_minus = true;
          if (line[q] == ')') {
            --depth;
            if (depth == 0) break;
          }
        }
        if (q >= line.size() || !has_minus) continue;  // not a difference
        std::size_t c = q + 1;
        while (c < line.size() && (line[c] == ' ' || line[c] == '\t')) ++c;
        if (c >= line.size() ||
            (line[c] != '<' && line[c] != '>')) {
          continue;
        }
        ++c;
        if (c < line.size() && line[c] == '=') ++c;
        const std::string rhs = token_after(line, c);
        if (!rhs.empty() &&
            (std::isdigit(static_cast<unsigned char>(rhs[0])) != 0 ||
             rhs[0] == '.')) {
          out.push_back(
              {relpath, i + 1, "float-tol", normalize_ws(line),
               "tolerance in |a-b| comparison is a bare literal; name it "
               "(constexpr double kFooTolerance = ...) or use "
               "util::near(a, b, kFooTolerance)"});
          flagged = true;
          break;
        }
      }
      if (flagged) break;
    }
  }
}

// ------------------------------------------------- lock-discipline scanning

/// `name` as a member call: preceded by '.' or '->' and followed (after
/// optional spaces) by '(' — matches `m.lock()`, `t->detach ()`.
bool contains_member_call(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool dot = pos >= 1 && text[pos - 1] == '.';
    const bool arrow = pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>';
    std::size_t end = pos + name.size();
    pos += 1;
    if (!dot && !arrow) continue;
    if (end < text.size() && is_word_char(text[end])) continue;
    while (end < text.size() && (text[end] == ' ' || text[end] == '\t')) ++end;
    if (end < text.size() && text[end] == '(') return true;
  }
  return false;
}

struct MemberCallRule {
  const char* name;
  const char* hint;
};

const MemberCallRule kRawLockCalls[] = {
    {"lock",
     "raw .lock() call; hold a util::MutexLock / util::UniqueLock "
     "(util/mutex.hpp) so the critical section is a scope the clang "
     "thread-safety analysis can see"},
    {"unlock",
     "raw .unlock() call; mid-scope unlock/relock dances defeat RAII — "
     "restructure the locked region into its own scope instead"},
    {"try_lock",
     "raw .try_lock() call; route locking through util/mutex.hpp so "
     "acquire/release stay analyzable"},
};

const char* const kRawMutexTypes[] = {
    "std::mutex",           "std::recursive_mutex",
    "std::timed_mutex",     "std::recursive_timed_mutex",
    "std::shared_mutex",    "std::shared_timed_mutex",
};

void scan_lock_discipline(const std::string& relpath,
                          const std::vector<std::string>& stripped_lines,
                          const AllowMap& allows, std::vector<Finding>& out) {
  const std::string rule = "lock-discipline";
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line.empty() || allows.allows(i, rule)) continue;
    std::string message;
    if (contains_member_call(line, "detach")) {
      message =
          "'.detach()': a detached thread outlives its owner's invariants; "
          "keep the handle and join it on every exit path (the "
          "HeartbeatGuard / ThreadPool destructor pattern)";
    } else {
      for (const MemberCallRule& r : kRawLockCalls) {
        if (contains_member_call(line, r.name)) {
          message = std::string("'.") + r.name + "()': " + r.hint;
          break;
        }
      }
    }
    if (message.empty()) {
      for (const char* type : kRawMutexTypes) {
        // Qualified-type occurrence with a word boundary on the right.
        std::size_t pos = 0;
        const std::string t(type);
        while ((pos = line.find(t, pos)) != std::string::npos) {
          const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
          const std::size_t end = pos + t.size();
          const bool right_ok = end >= line.size() || !is_word_char(line[end]);
          pos += 1;
          if (left_ok && right_ok) {
            message = std::string("'") + type +
                      "': declare util::Mutex (util/mutex.hpp) instead — "
                      "the annotated capability type is what lets clang "
                      "check lock discipline at compile time";
            break;
          }
        }
        if (!message.empty()) break;
      }
    }
    if (!message.empty()) {
      out.push_back({relpath, i + 1, rule, normalize_ws(line), message});
    }
  }
}

// -------------------------------------------------- guarded-member scanning

bool mentions_mutex_type(const std::string& stmt) {
  return contains_word(stmt, "Mutex") || contains_word(stmt, "mutex") ||
         contains_word(stmt, "recursive_mutex") ||
         contains_word(stmt, "timed_mutex") ||
         contains_word(stmt, "shared_mutex") ||
         contains_word(stmt, "shared_timed_mutex");
}

/// Extracts the class name from the declaration text preceding its '{'
/// (e.g. "template <class T> class Foo final" -> "Foo").  Cosmetic only —
/// used in finding messages and baseline keys.
std::string class_name_of(const std::string& decl) {
  std::string head = decl;
  // Cut a base-clause: the first ':' that is not part of '::'.
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (head[i] != ':') continue;
    const bool double_colon = (i + 1 < head.size() && head[i + 1] == ':') ||
                              (i > 0 && head[i - 1] == ':');
    if (!double_colon) {
      head = head.substr(0, i);
      break;
    }
  }
  std::string name;
  std::string token;
  const auto flush = [&] {
    if (token.empty()) return;
    if (token != "final" && token != "alignas" &&
        !starts_with(token, "TEGREC_")) {
      name = token;  // last plausible identifier wins
    }
    token.clear();
  };
  for (char c : head) {
    if (is_word_char(c)) {
      token += c;
    } else {
      flush();
    }
  }
  flush();
  return name.empty() ? std::string("<anonymous>") : name;
}

/// One class/struct body being walked; `members` holds the direct data
/// members that still need a guard once the body closes.
struct GuardedScanLevel {
  bool is_class = false;
  std::string class_name;
  bool has_mutex = false;
  struct Candidate {
    std::string name;
    std::size_t line = 0;
  };
  std::vector<Candidate> candidates;
  std::string stmt;
  std::size_t stmt_line = 1;
  bool stmt_had_braces = false;
};

void process_member_statement(GuardedScanLevel& level) {
  std::string stmt = normalize_ws(level.stmt);
  const std::size_t line = level.stmt_line;
  const bool had_braces = level.stmt_had_braces;
  level.stmt.clear();
  level.stmt_had_braces = false;
  if (!level.is_class || stmt.empty() || had_braces) return;
  for (const char* label : {"public:", "private:", "protected:"}) {
    if (starts_with(stmt, label)) {
      stmt = stmt.substr(std::string(label).size());
      while (!stmt.empty() && stmt.front() == ' ') stmt.erase(0, 1);
    }
  }
  if (stmt.empty()) return;
  for (const char* prefix : {"static", "using", "typedef", "friend",
                             "template", "operator", "enum"}) {
    if (starts_with(stmt, prefix)) return;
  }
  if (stmt.find("operator") != std::string::npos) return;
  // Annotated (or documented-exempt) members are satisfied.
  if (stmt.find("TEGREC_GUARDED_BY") != std::string::npos ||
      stmt.find("TEGREC_PT_GUARDED_BY") != std::string::npos) {
    return;
  }
  if (mentions_mutex_type(stmt)) {
    level.has_mutex = true;  // the capability itself needs no guard
    return;
  }
  // A '(' at this point is a constructor/function declaration (annotated
  // members were dispatched above, so macro parens no longer reach here).
  const std::size_t eq = stmt.find('=');
  const std::string lhs = eq == std::string::npos ? stmt : stmt.substr(0, eq);
  if (lhs.find('(') != std::string::npos) return;
  if (contains_word(stmt, "atomic") || contains_word(stmt, "atomic_bool") ||
      contains_word(stmt, "condition_variable") ||
      contains_word(stmt, "condition_variable_any")) {
    return;
  }
  if (starts_with(stmt, "const ") || starts_with(stmt, "constexpr ") ||
      starts_with(stmt, "mutable const ")) {
    return;
  }
  if (lhs.find('&') != std::string::npos) return;  // bound at construction
  std::size_t end = lhs.size();
  while (end > 0 && !is_word_char(lhs[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_word_char(lhs[begin - 1])) --begin;
  if (end == begin) return;
  level.candidates.push_back({lhs.substr(begin, end - begin), line});
}

void scan_guarded_member(const std::string& relpath,
                         const std::string& stripped,
                         const AllowMap& allows, std::vector<Finding>& out) {
  std::vector<GuardedScanLevel> stack(1);  // sentinel: file scope
  std::size_t line = 1;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    GuardedScanLevel& top = stack.back();
    if (c == '\n') ++line;
    if (c == '{') {
      GuardedScanLevel next;
      const std::string decl = normalize_ws(top.stmt);
      if (!contains_word(decl, "enum") &&
          (contains_word(decl, "struct") || contains_word(decl, "class") ||
           contains_word(decl, "union"))) {
        next.is_class = true;
        next.class_name = class_name_of(decl);
      }
      next.stmt_line = line;
      stack.push_back(std::move(next));
      continue;
    }
    if (c == '}') {
      if (stack.size() > 1) {
        GuardedScanLevel closed = std::move(stack.back());
        stack.pop_back();
        if (closed.is_class && closed.has_mutex) {
          for (const auto& cand : closed.candidates) {
            if (cand.line >= 1 && allows.allows(cand.line - 1, "guarded-member")) {
              continue;
            }
            out.push_back(
                {relpath, cand.line, "guarded-member",
                 closed.class_name + "." + cand.name,
                 "member '" + cand.name + "' of mutex-owning class '" +
                     closed.class_name +
                     "' has no TEGREC_GUARDED_BY annotation — guard it, "
                     "make it std::atomic/const, or justify with "
                     "// tegrec-lint: allow(guarded-member)"});
          }
        }
        // Lookahead: '}' directly followed by ';' closes a type or a
        // brace-initialised member — the outer statement survives (and is
        // skipped as brace-bearing); anything else was a function body.
        std::size_t p = i + 1;
        while (p < stripped.size() &&
               (stripped[p] == ' ' || stripped[p] == '\t' ||
                stripped[p] == '\n')) {
          ++p;
        }
        GuardedScanLevel& outer = stack.back();
        if (p < stripped.size() && stripped[p] == ';') {
          outer.stmt_had_braces = true;
        } else {
          outer.stmt.clear();
          outer.stmt_had_braces = false;
        }
      }
      continue;
    }
    if (c == ';') {
      process_member_statement(top);
      top.stmt_line = line;
      continue;
    }
    if (top.stmt.empty() && (c == ' ' || c == '\t' || c == '\n')) {
      top.stmt_line = line;
      continue;
    }
    if (top.stmt.empty()) top.stmt_line = line;
    top.stmt += c == '\n' ? ' ' : c;
    if (c == ':') {
      // Access labels end a statement without ';'; keeping them glued to
      // the next member would misattribute its declaration line.
      const std::string flat = normalize_ws(top.stmt);
      if (flat == "public:" || flat == "private:" || flat == "protected:") {
        top.stmt.clear();
        top.stmt_had_braces = false;
      }
    }
  }
}

// ------------------------------------------------ annotation-drift scanning

void scan_annotation_drift(const std::string& relpath,
                           const std::string& stripped,
                           const AllowMap& allows,
                           std::vector<Finding>& out) {
  if (allows.allows(0, "annotation-drift")) return;
  if (!mentions_mutex_type(stripped)) return;
  if (stripped.find("TEGREC_") != std::string::npos) return;
  out.push_back(
      {relpath, 1, "annotation-drift", "mutex-without-annotations",
       "header names a mutex but carries no TEGREC_* thread-safety "
       "annotation — the class drifted out of the compile-time "
       "lock-discipline net (see docs/static_analysis.md); annotate its "
       "guarded members or justify with "
       "// tegrec-lint: allow(annotation-drift)"});
}

void scan_using_namespace(const std::string& relpath,
                          const std::vector<std::string>& stripped_lines,
                          const AllowMap& allows, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line.empty() || allows.allows(i, "using-namespace")) continue;
    if (contains_word(line, "using") &&
        line.find("using namespace") != std::string::npos) {
      out.push_back({relpath, i + 1, "using-namespace", normalize_ws(line),
                     "'using namespace' in a header leaks into every "
                     "includer; qualify names instead"});
    }
  }
}

void scan_include_guard(const std::string& relpath,
                        const std::string& stripped,
                        const AllowMap& allows, std::vector<Finding>& out) {
  if (allows.allows(0, "include-guard")) return;
  if (stripped.find("#pragma once") != std::string::npos) return;
  const bool has_ifndef_guard =
      stripped.find("#ifndef") != std::string::npos &&
      stripped.find("#define") != std::string::npos;
  out.push_back({relpath, 1, "include-guard", "missing-pragma-once",
                 has_ifndef_guard
                     ? "header uses an #ifndef guard; the project standard "
                       "is #pragma once"
                     : "header has no include guard; add #pragma once"});
}

}  // namespace

// ----------------------------------------------------------------- public

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + finding.file + "|" + finding.detail;
}

std::set<std::string> parse_baseline(const std::string& content) {
  std::set<std::string> keys;
  std::istringstream is(content);
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos || line[begin] == '#') continue;
    keys.insert(line.substr(begin));
  }
  return keys;
}

std::string strip_comments_and_strings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_word_char(content[i - 1]))) {
          // Raw string: find the delimiter up to '('.
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < content.size() && content[p] != '(') {
            raw_delim += content[p++];
          }
          state = State::kRawString;
          out += "R\"";
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          if (p < content.size()) out += ' ';  // the '('
          i = p;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'' &&
                   (i == 0 || !std::isdigit(static_cast<unsigned char>(
                                  content[i - 1])))) {
          // Skip digit separators (1'000'000) — those stay code.
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && content.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          for (std::size_t k = 0; k < close.size(); ++k) out += ' ';
          i += close.size() - 1;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> scan_source(const std::string& relpath,
                                 const std::string& content,
                                 const Options& options) {
  std::vector<Finding> findings;
  const std::string stripped = strip_comments_and_strings(content);
  const std::vector<std::string> raw_lines = split_lines_keep(content);
  const std::vector<std::string> stripped_lines = split_lines_keep(stripped);
  const AllowMap allows(raw_lines, stripped_lines);

  const bool is_header = ends_with(relpath, ".hpp") || ends_with(relpath, ".h");
  const bool in_determinism_scope =
      std::any_of(options.determinism_dirs.begin(),
                  options.determinism_dirs.end(),
                  [&](const std::string& d) { return starts_with(relpath, d); });

  const bool in_raw_publish_scope =
      std::any_of(options.raw_publish_dirs.begin(),
                  options.raw_publish_dirs.end(),
                  [&](const std::string& d) { return starts_with(relpath, d); });

  const bool in_concurrency_scope =
      std::any_of(options.concurrency_dirs.begin(),
                  options.concurrency_dirs.end(),
                  [&](const std::string& d) { return starts_with(relpath, d); });
  const bool lock_discipline_exempt =
      std::any_of(options.lock_discipline_exempt.begin(),
                  options.lock_discipline_exempt.end(),
                  [&](const std::string& f) { return relpath == f; });

  if (in_determinism_scope) {
    scan_token_rules("determinism", kDeterminismTokens,
                     std::size(kDeterminismTokens), relpath, stripped_lines,
                     allows, findings);
  }
  if (in_raw_publish_scope) {
    scan_token_rules("raw-publish", kRawPublishTokens,
                     std::size(kRawPublishTokens), relpath, stripped_lines,
                     allows, findings);
  }
  scan_float_eq(relpath, stripped_lines, allows, findings);
  scan_float_tol(relpath, stripped_lines, allows, findings);
  scan_token_rules("api-io", kApiIoTokens, std::size(kApiIoTokens), relpath,
                   stripped_lines, allows, findings);
  if (!lock_discipline_exempt) {
    scan_lock_discipline(relpath, stripped_lines, allows, findings);
  }
  if (in_concurrency_scope) {
    scan_guarded_member(relpath, stripped, allows, findings);
    if (is_header) {
      scan_annotation_drift(relpath, stripped, allows, findings);
    }
  }
  if (is_header) {
    scan_using_namespace(relpath, stripped_lines, allows, findings);
    scan_include_guard(relpath, stripped, allows, findings);
  }
  return findings;
}

// ------------------------------------------------------ cache-key checking

std::vector<FieldDecl> parse_struct_fields(const std::string& header_content,
                                           const std::string& struct_name) {
  const std::string stripped = strip_comments_and_strings(header_content);

  // Locate `struct <name> ... {` (skipping forward declarations).
  std::size_t body_begin = std::string::npos;
  for (const char* kw : {"struct", "class"}) {
    std::size_t pos = 0;
    while ((pos = stripped.find(kw, pos)) != std::string::npos) {
      const std::size_t name_pos = pos + std::string(kw).size();
      pos += 1;
      if (name_pos >= stripped.size() ||
          (stripped[name_pos] != ' ' && stripped[name_pos] != '\t' &&
           stripped[name_pos] != '\n')) {
        continue;
      }
      const std::string name = token_after(stripped, name_pos);
      if (name != struct_name) continue;
      // Scan forward for '{' before any ';' (else: forward declaration).
      std::size_t p = stripped.find(name, name_pos);
      p += name.size();
      while (p < stripped.size() && stripped[p] != '{' && stripped[p] != ';') {
        ++p;
      }
      if (p < stripped.size() && stripped[p] == '{') {
        body_begin = p + 1;
        break;
      }
    }
    if (body_begin != std::string::npos) break;
  }
  if (body_begin == std::string::npos) return {};

  std::size_t line = 1;
  for (std::size_t i = 0; i < body_begin; ++i) {
    if (stripped[i] == '\n') ++line;
  }

  // Walk the body at depth 1, splitting statements on ';'.
  std::vector<FieldDecl> fields;
  int depth = 1;
  std::string statement;
  std::size_t statement_line = line;
  bool statement_has_nested_braces = false;
  for (std::size_t i = body_begin; i < stripped.size() && depth > 0; ++i) {
    const char c = stripped[i];
    if (c == '\n') ++line;
    if (c == '{') {
      ++depth;
      if (depth > 1) statement_has_nested_braces = true;
      continue;
    }
    if (c == '}') {
      --depth;
      continue;
    }
    if (depth != 1) continue;
    if (c == ';') {
      std::string stmt = normalize_ws(statement);
      statement.clear();
      // Strip access labels glued to the front of the statement.
      for (const char* label : {"public:", "private:", "protected:"}) {
        if (starts_with(stmt, label)) {
          stmt = stmt.substr(std::string(label).size());
          while (!stmt.empty() && stmt.front() == ' ') stmt.erase(0, 1);
        }
      }
      const bool skip =
          stmt.empty() || statement_has_nested_braces ||
          starts_with(stmt, "enum") || starts_with(stmt, "struct") ||
          starts_with(stmt, "class") || starts_with(stmt, "union") ||
          starts_with(stmt, "template") || starts_with(stmt, "using") ||
          starts_with(stmt, "typedef") || starts_with(stmt, "friend") ||
          starts_with(stmt, "static") || starts_with(stmt, "explicit") ||
          starts_with(stmt, "virtual") || starts_with(stmt, "operator") ||
          stmt.find("operator") != std::string::npos;
      statement_has_nested_braces = false;
      if (!skip) {
        // Data member iff no '(' before the initialising '=' (functions
        // have their parameter list before any default/delete token).
        const std::size_t eq = stmt.find('=');
        const std::string lhs =
            eq == std::string::npos ? stmt : stmt.substr(0, eq);
        if (lhs.find('(') == std::string::npos &&
            lhs.find(' ') != std::string::npos) {
          std::size_t end = lhs.size();
          while (end > 0 && !is_word_char(lhs[end - 1])) --end;
          std::size_t begin = end;
          while (begin > 0 && is_word_char(lhs[begin - 1])) --begin;
          if (end > begin) {
            fields.push_back({lhs.substr(begin, end - begin), statement_line});
          }
        }
      }
      statement_line = line;
      continue;
    }
    if (statement.empty() && (c == ' ' || c == '\t' || c == '\n')) {
      statement_line = line;
      continue;
    }
    statement += c == '\n' ? ' ' : c;
  }
  return fields;
}

std::vector<Finding> check_cache_key(const StructSpec& spec,
                                     const std::string& header_content,
                                     const std::string& bindings_content,
                                     const std::string& bindings_path) {
  std::vector<Finding> findings;
  const std::vector<FieldDecl> fields =
      parse_struct_fields(header_content, spec.struct_name);
  if (fields.empty()) {
    findings.push_back(
        {spec.header_path, 0, "cache-key", "struct:" + spec.struct_name,
         "struct '" + spec.struct_name +
             "' not found (renamed? update tools/lint's struct table so the "
             "serialisation check keeps covering it)"});
    return findings;
  }
  const std::string stripped_bindings =
      strip_comments_and_strings(bindings_content);
  std::set<std::string> field_names;
  for (const FieldDecl& f : fields) {
    field_names.insert(f.name);
    std::string justification;
    bool excluded = false;
    for (const auto& [name, why] : spec.excluded_fields) {
      if (name == f.name) {
        excluded = true;
        justification = why;
        break;
      }
    }
    if (excluded) continue;
    if (!contains_word(stripped_bindings, f.name)) {
      findings.push_back(
          {spec.header_path, f.line, "cache-key",
           spec.struct_name + "." + f.name,
           "field '" + spec.struct_name + "::" + f.name +
               "' is not mentioned in " + bindings_path +
               " — an unserialised field silently poisons every cached "
               "result (add a binding, or add it to the documented "
               "exclusion list in tools/lint with a justification)"});
    }
  }
  for (const auto& [name, why] : spec.excluded_fields) {
    (void)why;
    if (field_names.count(name) == 0) {
      findings.push_back(
          {spec.header_path, 0, "cache-key",
           "stale-exclusion:" + spec.struct_name + "." + name,
           "exclusion-list entry '" + spec.struct_name + "::" + name +
               "' matches no field — remove it so it cannot mask a future "
               "field of that name"});
    }
  }
  return findings;
}

std::vector<StructSpec> default_struct_specs() {
  // Every struct whose values reach ExperimentSpec::canonical_text().  The
  // bindings file serialises each listed struct field by field; a field
  // missing from it never reaches the fingerprint, so equal cache keys
  // could describe different experiments.  tests/test_fingerprint_fields
  // is the runtime twin: it perturbs each field and asserts the
  // fingerprint moves (and that exec.* hints do not).
  return {
      {"src/sim/spec.hpp", "ExperimentSpec", {}},
      {"src/sim/spec.hpp", "TraceSource", {}},
      {"src/thermal/trace.hpp", "TraceGeneratorConfig", {}},
      {"src/thermal/drive_cycle.hpp", "DriveSegment", {}},
      {"src/thermal/drive_cycle.hpp", "VehicleParams", {}},
      {"src/thermal/ambient.hpp", "AmbientProfile", {}},
      {"src/thermal/ambient.hpp", "AmbientStepEvent", {}},
      {"src/thermal/engine_thermal.hpp", "EngineThermalParams", {}},
      {"src/thermal/radiator.hpp", "RadiatorLayout", {}},
      {"src/thermal/heat_exchanger.hpp", "HeatExchangerParams", {}},
      {"src/teg/device.hpp", "DeviceParams", {}},
      {"src/power/converter.hpp", "ConverterParams", {}},
      {"src/power/battery.hpp", "BatteryParams", {}},
      {"src/switchfab/overhead.hpp", "OverheadParams", {}},
      {"src/sim/simulator.hpp", "SimulationOptions", {}},
      {"src/sim/experiment.hpp", "ComparisonOptions", {}},
      // Streaming checkpoint state: serialised by sim/checkpoint.cpp, not
      // the spec bindings.  A StepperState/StreamConfig field missing from
      // the codec silently resumes a different simulation; a
      // SimulationResult/StepRecord field missing loses history across a
      // checkpoint/restore cycle.  tests/test_checkpoint.cpp is the
      // runtime twin (round-trip equality field by field).
      {"src/sim/stepper.hpp", "StepperState", {}, "src/sim/checkpoint.cpp"},
      {"src/sim/checkpoint.hpp", "StreamConfig", {}, "src/sim/checkpoint.cpp"},
      {"src/sim/simulator.hpp", "SimulationResult", {},
       "src/sim/checkpoint.cpp"},
      {"src/sim/simulator.hpp", "StepRecord", {}, "src/sim/checkpoint.cpp"},
  };
}

std::string default_bindings_path() { return "src/sim/spec.cpp"; }

// --------------------------------------------------------------- repo run

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("tegrec_lint: cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return buffer.str();
}

}  // namespace

RepoReport run_repo_lint(const std::string& root,
                         const std::set<std::string>& baseline,
                         const Options& options) {
  namespace fs = std::filesystem;
  RepoReport report;
  std::vector<Finding> all;

  const fs::path root_path(root);
  const fs::path src = root_path / "src";
  if (!fs::exists(src)) {
    throw std::runtime_error("tegrec_lint: no src/ under root " + root);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    const std::string relpath =
        fs::path(path).lexically_relative(root_path).generic_string();
    const std::vector<Finding> found =
        scan_source(relpath, read_file(path), options);
    all.insert(all.end(), found.begin(), found.end());
    ++report.files_scanned;
  }

  // Bindings sources are read once each, however many specs share them.
  std::map<std::string, std::string> bindings_cache;
  const auto bindings_content =
      [&](const std::string& path) -> const std::string& {
    auto it = bindings_cache.find(path);
    if (it == bindings_cache.end()) {
      it = bindings_cache.emplace(path, read_file(root_path / path)).first;
    }
    return it->second;
  };
  for (const StructSpec& spec : default_struct_specs()) {
    const std::string bindings_path =
        spec.bindings_path.empty() ? default_bindings_path()
                                   : spec.bindings_path;
    const std::vector<Finding> found = check_cache_key(
        spec, read_file(root_path / spec.header_path),
        bindings_content(bindings_path), bindings_path);
    all.insert(all.end(), found.begin(), found.end());
  }

  std::set<std::string> used_baseline;
  for (const Finding& f : all) {
    const std::string key = baseline_key(f);
    if (baseline.count(key) != 0) {
      report.baselined.push_back(f);
      used_baseline.insert(key);
    } else {
      report.findings.push_back(f);
    }
  }
  for (const std::string& key : baseline) {
    if (used_baseline.count(key) == 0) report.stale_baseline.insert(key);
  }
  return report;
}

}  // namespace tegrec::lint
