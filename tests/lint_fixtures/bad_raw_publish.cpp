// Known-bad fixture for `raw-publish`.  Never compiled.
// Line numbers are asserted by tests/test_lint.cpp — edit with care.
#include <filesystem>
#include <fstream>
#include <string>

void publish(const std::string& path, const std::string& content) {
  std::ofstream out(path);                         // LINE 8: raw-publish
  out << content;
  std::filesystem::rename(path + ".tmp", path);    // LINE 10: raw-publish
  rename("a.tmp", "a");                            // LINE 11: raw-publish
  rename_file("a.tmp", "a");            // door wrapper: clean (word boundary)
  atomic_write_file(path, content);     // door itself: clean
  // tegrec-lint: allow(raw-publish)
  std::ofstream allowed(path);  // suppressed by the allow above
}
