// Minimal thread pool and deterministic parallel-for.
//
// The Monte-Carlo and sweep engines are embarrassingly parallel: every
// seed / swept value is an independent simulation whose result lands in a
// preassigned output slot.  parallel_for() covers that shape directly —
// each index runs exactly once, on some thread, and exceptions from the
// body are rethrown on the caller.  It fans out over a ThreadPool, which
// is also usable standalone for free-form task submission.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tegrec::util {

/// Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every in-flight task finished.
  /// If any task threw since the last call, rethrows the first such
  /// exception here (later ones are dropped); the pool stays usable.
  void wait_idle();

 private:
  void worker_loop();

  /// Written by the constructor before any other thread can observe the
  /// pool, then only joined by the destructor after the workers exit.
  // tegrec-lint: allow(guarded-member) immutable after construction
  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> queue_ TEGREC_GUARDED_BY(mutex_);
  std::exception_ptr first_error_ TEGREC_GUARDED_BY(mutex_);
  std::size_t in_flight_ TEGREC_GUARDED_BY(mutex_) = 0;
  bool stopping_ TEGREC_GUARDED_BY(mutex_) = false;
};

/// std::thread::hardware_concurrency(), but never zero.
std::size_t default_parallelism();

/// Runs body(i) for every i in [0, n) across worker threads.
///
/// `num_threads` semantics: 0 = default_parallelism(), 1 = run inline on
/// the calling thread (the serial path), k > 1 = up to k workers.  Indices
/// are claimed from an atomic counter, so any partition of work gives the
/// same set of calls; callers that write results[i] from body(i) get
/// results bit-identical to the serial path for every thread count.  The
/// first exception thrown by the body is rethrown after all workers join.
void parallel_for(std::size_t n, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace tegrec::util
