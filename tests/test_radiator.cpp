#include "thermal/radiator.hpp"

#include <gtest/gtest.h>

namespace tegrec::thermal {
namespace {

StreamConditions nominal() {
  StreamConditions c;
  c.hot_inlet_c = 92.0;
  c.cold_inlet_c = 25.0;
  c.hot_capacity_w_k = 2400.0;
  c.cold_capacity_w_k = 2200.0;
  return c;
}

TEST(RadiatorLayout, ModulePositionsSpanTube) {
  RadiatorLayout layout;
  layout.num_modules = 10;
  const double pitch = layout.exchanger.tube_length_m / 10.0;
  EXPECT_DOUBLE_EQ(layout.module_position_m(0), 0.5 * pitch);
  EXPECT_DOUBLE_EQ(layout.module_position_m(9), 9.5 * pitch);
  EXPECT_THROW(layout.module_position_m(10), std::out_of_range);
}

TEST(Radiator, HotSideDecreasesAlongPath) {
  RadiatorLayout layout;
  const auto temps = module_hot_side_temperatures(layout, nominal());
  ASSERT_EQ(temps.size(), layout.num_modules);
  for (std::size_t i = 1; i < temps.size(); ++i) {
    EXPECT_LT(temps[i], temps[i - 1]);
  }
}

TEST(Radiator, HotSideBelowCoolantAboveAmbient) {
  RadiatorLayout layout;
  const StreamConditions cond = nominal();
  const auto temps = module_hot_side_temperatures(layout, cond);
  for (double t : temps) {
    EXPECT_GT(t, cond.cold_inlet_c);
    EXPECT_LT(t, cond.hot_inlet_c);
  }
}

TEST(Radiator, CouplingScalesDeltaT) {
  RadiatorLayout full;
  full.surface_coupling = 1.0;
  RadiatorLayout half;
  half.surface_coupling = 0.5;
  const StreamConditions cond = nominal();
  const auto dt_full = module_delta_t(full, cond);
  const auto dt_half = module_delta_t(half, cond);
  for (std::size_t i = 0; i < dt_full.size(); ++i) {
    EXPECT_NEAR(dt_half[i], 0.5 * dt_full[i], 1e-9);
  }
}

TEST(Radiator, FullCouplingMatchesCoolantProfile) {
  RadiatorLayout layout;
  layout.surface_coupling = 1.0;
  const StreamConditions cond = nominal();
  const auto hot = module_hot_side_temperatures(layout, cond);
  const auto coolant =
      temperature_profile(layout.exchanger, cond, layout.num_modules);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    EXPECT_NEAR(hot[i], coolant[i], 1e-9);
  }
}

TEST(Radiator, DeltaTPositive) {
  RadiatorLayout layout;
  const auto dt = module_delta_t(layout, nominal());
  for (double d : dt) EXPECT_GT(d, 0.0);
}

TEST(Radiator, InvalidParametersThrow) {
  RadiatorLayout layout;
  layout.num_modules = 0;
  EXPECT_THROW(module_hot_side_temperatures(layout, nominal()),
               std::invalid_argument);
  layout.num_modules = 10;
  layout.surface_coupling = 0.0;
  EXPECT_THROW(module_hot_side_temperatures(layout, nominal()),
               std::invalid_argument);
  layout.surface_coupling = 1.2;
  EXPECT_THROW(module_hot_side_temperatures(layout, nominal()),
               std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::thermal
