#include "predict/ensemble.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tegrec::predict {

EnsemblePredictor::EnsemblePredictor(
    std::vector<std::unique_ptr<Predictor>> members)
    : EnsemblePredictor(std::move(members), {}) {}

EnsemblePredictor::EnsemblePredictor(
    std::vector<std::unique_ptr<Predictor>> members, std::vector<double> weights)
    : members_(std::move(members)), weights_(std::move(weights)) {
  if (members_.empty()) {
    throw std::invalid_argument("EnsemblePredictor: no members");
  }
  for (const auto& m : members_) {
    if (!m) throw std::invalid_argument("EnsemblePredictor: null member");
  }
  if (weights_.empty()) {
    weights_.assign(members_.size(), 1.0 / static_cast<double>(members_.size()));
  } else {
    if (weights_.size() != members_.size()) {
      throw std::invalid_argument("EnsemblePredictor: weight count mismatch");
    }
    double total = 0.0;
    for (double w : weights_) {
      if (w < 0.0) throw std::invalid_argument("EnsemblePredictor: negative weight");
      total += w;
    }
    if (total <= 0.0) {
      throw std::invalid_argument("EnsemblePredictor: weights sum to zero");
    }
    for (double& w : weights_) w /= total;
  }
}

std::string EnsemblePredictor::name() const {
  std::ostringstream os;
  os << "Ensemble(";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    os << members_[i]->name() << (i + 1 < members_.size() ? "+" : "");
  }
  os << ")";
  return os.str();
}

std::size_t EnsemblePredictor::num_lags() const {
  std::size_t lags = 1;
  for (const auto& m : members_) lags = std::max(lags, m->num_lags());
  return lags;
}

void EnsemblePredictor::fit(const TemperatureHistory& history) {
  for (auto& m : members_) m->fit(history);
}

bool EnsemblePredictor::is_fitted() const {
  return std::all_of(members_.begin(), members_.end(),
                     [](const auto& m) { return m->is_fitted(); });
}

std::vector<double> EnsemblePredictor::predict_next(
    const TemperatureHistory& history) const {
  std::vector<double> out(history.num_modules(), 0.0);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const std::vector<double> pred = members_[i]->predict_next(history);
    for (std::size_t m = 0; m < out.size(); ++m) {
      out[m] += weights_[i] * pred[m];
    }
  }
  return out;
}

}  // namespace tegrec::predict
