#include "core/ehtr.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>

#include "core/objective.hpp"

namespace tegrec::core {

std::vector<teg::ArrayConfig> balanced_partitions(
    const std::vector<double>& mpp_currents, std::size_t max_n) {
  const std::size_t count = mpp_currents.size();
  if (count == 0) throw std::invalid_argument("balanced_partitions: empty input");
  if (max_n == 0 || max_n > count) {
    throw std::invalid_argument("balanced_partitions: bad max_n");
  }
  std::vector<double> prefix(count + 1, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    if (mpp_currents[i] < 0.0) {
      throw std::invalid_argument("balanced_partitions: negative current");
    }
    prefix[i + 1] = prefix[i] + mpp_currents[i];
  }
  auto seg_cost = [&prefix](std::size_t from, std::size_t to) {
    const double s = prefix[to] - prefix[from];
    return s * s;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[j][i]: minimal sum of squared group sums partitioning the first i
  // modules into j+1 groups; parent[j][i] the split point achieving it.
  std::vector<std::vector<double>> dp(max_n, std::vector<double>(count + 1, kInf));
  std::vector<std::vector<std::size_t>> parent(
      max_n, std::vector<std::size_t>(count + 1, 0));

  for (std::size_t i = 1; i <= count; ++i) dp[0][i] = seg_cost(0, i);
  for (std::size_t j = 1; j < max_n; ++j) {
    for (std::size_t i = j + 1; i <= count; ++i) {
      double best = kInf;
      std::size_t best_k = j;
      for (std::size_t k = j; k < i; ++k) {
        const double c = dp[j - 1][k] + seg_cost(k, i);
        if (c < best) {
          best = c;
          best_k = k;
        }
      }
      dp[j][i] = best;
      parent[j][i] = best_k;
    }
  }

  std::vector<teg::ArrayConfig> out;
  out.reserve(max_n);
  for (std::size_t n = 1; n <= max_n; ++n) {
    std::vector<std::size_t> starts(n);
    std::size_t i = count;
    for (std::size_t j = n; j-- > 1;) {
      const std::size_t k = parent[j][i];
      starts[j] = k;
      i = k;
    }
    starts[0] = 0;
    out.emplace_back(std::move(starts), count);
  }
  return out;
}

teg::ArrayConfig ehtr_search(const teg::TegArray& array,
                             const power::Converter& converter) {
  const std::vector<double> impp = array.module_mpp_currents();
  const std::vector<teg::ArrayConfig> candidates =
      balanced_partitions(impp, array.size());
  double best_power = -1.0;
  const teg::ArrayConfig* best = nullptr;
  for (const teg::ArrayConfig& c : candidates) {
    const double p = config_power_w(array, converter, c);
    if (p > best_power) {
      best_power = p;
      best = &c;
    }
  }
  return *best;
}

EhtrReconfigurer::EhtrReconfigurer(const teg::DeviceParams& device,
                                   const power::ConverterParams& converter,
                                   double period_s)
    : device_(device), converter_(converter), period_s_(period_s) {
  if (period_s <= 0.0) throw std::invalid_argument("EhtrReconfigurer: period <= 0");
}

UpdateResult EhtrReconfigurer::update(double time_s,
                                      const std::vector<double>& delta_t_k,
                                      double ambient_c) {
  UpdateResult result;
  if (has_config_ && time_s + 1e-9 < next_run_time_s_) {
    result.config = current_;
    return result;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const teg::TegArray array(device_, delta_t_k, ambient_c);
  teg::ArrayConfig next = ehtr_search(array, converter_);
  result.compute_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.invoked = true;
  result.switched = !has_config_ || next != current_;
  result.actuate = true;  // periodic scheme: rebuild on every invocation
  current_ = std::move(next);
  has_config_ = true;
  next_run_time_s_ = time_s + period_s_;
  result.config = current_;
  return result;
}

void EhtrReconfigurer::reset() {
  has_config_ = false;
  next_run_time_s_ = 0.0;
  current_ = teg::ArrayConfig();
}

}  // namespace tegrec::core
