// The 3(N-1)-switch reconfiguration fabric of the paper's Fig. 4.
//
// Between every pair of adjacent modules i and i+1 sit three switches: a
// series switch S_S,i in the middle and two parallel switches S_PT,i /
// S_PB,i on the top and bottom rails.  Exactly one connection type is
// active per adjacency: series (S_S closed, both parallel open) or parallel
// (both parallel closed, S_S open).  The network tracks the physical state,
// applies ArrayConfigs, counts actuations, and rejects invalid states.
#pragma once

#include <cstddef>
#include <vector>

#include "teg/config.hpp"

namespace tegrec::switchfab {

/// State of the three switches of one adjacency cell.
struct SwitchCell {
  bool series_closed = false;        ///< S_S,i
  bool parallel_top_closed = true;   ///< S_PT,i
  bool parallel_bottom_closed = true;///< S_PB,i

  bool is_series() const { return series_closed; }
  bool is_valid() const {
    // Exactly one connection type: series XOR (both parallel).
    const bool parallel = parallel_top_closed && parallel_bottom_closed;
    const bool none_parallel = !parallel_top_closed && !parallel_bottom_closed;
    return (series_closed && none_parallel) || (!series_closed && parallel);
  }
};

class SwitchNetwork {
 public:
  /// Initial state: the given configuration applied (default all-parallel).
  explicit SwitchNetwork(std::size_t num_modules);
  SwitchNetwork(std::size_t num_modules, const teg::ArrayConfig& initial);

  std::size_t num_modules() const { return num_modules_; }
  std::size_t num_cells() const { return cells_.size(); }
  const SwitchCell& cell(std::size_t i) const;

  /// Applies a configuration; returns the number of individual switch
  /// actuations performed (3 per adjacency whose type flips).
  std::size_t apply(const teg::ArrayConfig& config);

  /// Recovers the ArrayConfig corresponding to the current switch state.
  teg::ArrayConfig current_config() const;

  /// Lifetime actuation counter (wear tracking).
  std::size_t total_actuations() const { return total_actuations_; }
  /// Number of apply() calls that changed at least one switch.
  std::size_t reconfiguration_events() const { return events_; }

  /// All cells valid (every adjacency has exactly one connection type).
  bool is_valid() const;

 private:
  std::size_t num_modules_ = 0;
  std::vector<SwitchCell> cells_;
  std::size_t total_actuations_ = 0;
  std::size_t events_ = 0;

  void set_cell(std::size_t i, bool series);
};

}  // namespace tegrec::switchfab
