// Runtime and memory scaling of the reconfiguration searches toward
// 10k-module farms.
//
// The paper attributes O(N^3) to EHTR (Sections I/V); this harness times
// the legacy cubic path (full-scan DP + per-candidate SeriesString
// scoring), the materialising path (divide-and-conquer DP + a full
// std::vector<ArrayConfig> of candidates scored via ArrayEvaluator — the
// O(N^2)-memory shape the streaming refactor replaced), and the streaming
// path (candidates reconstructed out of a PartitionTable and scored during
// backtrack) across N in {64, 256, 1024, 4096, 10000}, with INOR's O(N)
// search for contrast.  The legacy path is skipped above N = 1024, where
// the cubic DP alone would take minutes.
//
// Each timed search also records its peak RSS (VmHWM, reset per
// measurement via /proc/self/clear_refs where the kernel allows it), so
// the memory trajectory regresses alongside runtime: at N = 10000 the
// materialised candidate vector alone is ~400 MB that the streaming path
// never allocates.
//
// Emits a human table on stdout plus machine-readable CSV and JSON
// (default runtime_scaling.csv / runtime_scaling.json; override with
// --csv PATH / --json PATH, or disable the N = 10000 row with --quick) so
// future PRs have a perf trajectory to regress against.  Unmeasured cells
// are empty in the CSV / null in the JSON; util::csv_from_string reads
// them back as NaN.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/ehtr.hpp"
#include "core/inor.hpp"
#include "core/objective.hpp"
#include "switchfab/switch_network.hpp"
#include "teg/array.hpp"
#include "teg/array_evaluator.hpp"
#include "teg/config.hpp"
#include "util/table.hpp"

namespace {

using namespace tegrec;

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

std::vector<double> profile(std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    out[i] = 38.0 * std::exp(-1.9 * x) + 4.0 + 0.7 * std::sin(17.0 * x);
  }
  return out;
}

// The same exhaust shape drifting between control periods (travelling wave
// plus warm-up ramp) — the regime the warm-started search exploits.
std::vector<double> drift_profile(std::size_t n, int step) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    out[i] = 38.0 * std::exp(-1.9 * x) + 4.0 +
             0.7 * std::sin(17.0 * x + 0.3 * step) + 0.4 * step;
  }
  return out;
}

template <typename Fn>
double time_s(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Peak RSS (VmHWM) in MB from /proc/self/status, falling back to
// getrusage's monotone high-water mark where /proc is unavailable.
double peak_rss_mb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof line, f)) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return static_cast<double>(kb) / 1024.0;
  }
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kB on Linux
  }
#endif
  return std::nan("");
}

// Resets the kernel's RSS high-water mark so per-measurement peaks are
// meaningful; best-effort (a read-only /proc leaves VmHWM monotone, which
// still bounds each measurement from above).  Freed glibc heap is trimmed
// back to the OS first so one measurement's residue does not become the
// next one's floor.
void reset_peak_rss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
#endif
}

// The pre-optimisation EHTR search: cubic DP, then every candidate scored
// by materialising a SeriesString of N module copies.
teg::ArrayConfig legacy_ehtr_search(const teg::TegArray& array,
                                    const power::Converter& converter) {
  const std::vector<teg::ArrayConfig> candidates = core::balanced_partitions(
      array.module_mpp_currents(), array.size(), core::PartitionDp::kLegacyCubic);
  double best_power = -1.0;
  const teg::ArrayConfig* best = &candidates.front();
  for (const teg::ArrayConfig& c : candidates) {
    const double p = core::config_power_w(array, converter, c);
    if (p > best_power) {
      best_power = p;
      best = &c;
    }
  }
  return *best;
}

// The intermediate (PR 2) shape: fast DP and cached scoring, but the full
// candidate vector is still materialised — O(N^2) bytes of group starts.
teg::ArrayConfig materialising_ehtr_search(const teg::TegArray& array,
                                           const power::Converter& converter) {
  const std::vector<teg::ArrayConfig> candidates = core::balanced_partitions(
      array.module_mpp_currents(), array.size(),
      core::PartitionDp::kDivideAndConquer);
  const teg::ArrayEvaluator evaluator(array);
  double best_power = -1.0;
  const teg::ArrayConfig* best = &candidates.front();
  for (const teg::ArrayConfig& c : candidates) {
    const double p = core::config_power_w(evaluator, converter, c);
    if (p > best_power) {
      best_power = p;
      best = &c;
    }
  }
  return *best;
}

struct Row {
  std::size_t n = 0;
  double inor_s = 0.0;
  double dc_dp_s = 0.0;
  double new_search_s = 0.0;
  double new_peak_rss_mb = std::nan("");
  double mat_search_s = 0.0;
  double mat_peak_rss_mb = std::nan("");
  double legacy_dp_s = std::nan("");
  double legacy_search_s = std::nan("");
  // Warm-vs-cold over consecutive actuations of a drifting field
  // (per-actuation means; warm carries the incumbent like the controller).
  double cold_step_s = 0.0;
  double warm_step_s = 0.0;
  std::size_t warm_certified = 0;  ///< group counts solved on the last step
  bool warm_identical = false;     ///< warm choices matched cold bit-for-bit
  // Fabric actuation cost: a one-boundary flip vs a full all-parallel <->
  // all-series rebuild — the O(changed) vs O(N) pair.
  double apply_flip_us = 0.0;
  double apply_rebuild_us = 0.0;
  double speedup() const { return legacy_search_s / new_search_s; }
  double warm_speedup() const { return cold_step_s / warm_step_s; }
};

std::string cell(double v, const char* format) {
  if (std::isnan(v)) return std::string();
  char buf[32];
  std::snprintf(buf, sizeof buf, format, v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path = "runtime_scaling.csv";
  std::string json_path = "runtime_scaling.json";
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    if (!std::strcmp(argv[a], "--csv") && a + 1 < argc) csv_path = argv[++a];
    else if (!std::strcmp(argv[a], "--json") && a + 1 < argc) json_path = argv[++a];
    else if (!std::strcmp(argv[a], "--quick")) quick = true;
  }

  const power::Converter conv(kConv);
  // Legacy above 1024 modules would run for minutes (cubic DP); the new
  // path alone is measured there.
  constexpr std::size_t kLegacyCap = 1024;
  std::vector<std::size_t> sizes{64, 256, 1024, 4096, 10000};
  if (quick) sizes.pop_back();

  std::printf("=== EHTR scaling: runtime and peak RSS, streaming vs "
              "materialising vs legacy ===\n\n");
  std::vector<Row> rows;
  for (const std::size_t n : sizes) {
    Row row;
    row.n = n;
    const teg::TegArray array(kDev, profile(n));
    const std::vector<double> impp = array.module_mpp_currents();

    row.inor_s = time_s([&] { core::inor_search(array, conv); });
    row.dc_dp_s = time_s([&] {
      core::PartitionTable table(impp, n, core::PartitionDp::kDivideAndConquer);
    });
    // Streaming first, materialising second: small freed allocations can
    // linger in the heap arena, so the order keeps each measurement's
    // baseline as clean as the allocator allows.
    reset_peak_rss();
    row.new_search_s = time_s([&] { core::ehtr_search(array, conv, 1); });
    row.new_peak_rss_mb = peak_rss_mb();
    reset_peak_rss();
    row.mat_search_s = time_s([&] { materialising_ehtr_search(array, conv); });
    row.mat_peak_rss_mb = peak_rss_mb();
    if (n <= kLegacyCap) {
      row.legacy_dp_s = time_s([&] {
        core::balanced_partitions(impp, n, core::PartitionDp::kLegacyCubic);
      });
      row.legacy_search_s = time_s([&] { legacy_ehtr_search(array, conv); });
    }

    // Warm vs cold across consecutive actuations of a drifting field.  Both
    // paths see the same fields; the warm one seeds each step with the
    // previous step's group count and must stay bit-identical throughout.
    constexpr int kDriftSteps = 4;
    {
      double cold_total = 0.0, warm_total = 0.0;
      std::size_t incumbent = 0;
      bool identical = true;
      core::EhtrSearchStats stats;
      for (int s = 1; s <= kDriftSteps; ++s) {
        const teg::TegArray drifted(kDev, drift_profile(n, s));
        teg::ArrayConfig cold_cfg, warm_cfg;
        cold_total +=
            time_s([&] { cold_cfg = core::ehtr_search(drifted, conv, 1); });
        core::EhtrWarmStart warm;
        warm.enabled = true;
        warm.incumbent_groups = incumbent;
        warm_total += time_s([&] {
          warm_cfg = core::ehtr_search(drifted, conv, 1,
                                       core::PartitionDp::kDivideAndConquer, 0,
                                       warm, &stats);
        });
        identical = identical && warm_cfg == cold_cfg;
        incumbent = warm_cfg.num_groups();
      }
      row.cold_step_s = cold_total / kDriftSteps;
      row.warm_step_s = warm_total / kDriftSteps;
      row.warm_certified = stats.groups_certified;
      row.warm_identical = identical;
    }

    // Fabric actuation: flipping one boundary in a held configuration vs a
    // full all-parallel <-> all-series rebuild.  The flip cost tracks the
    // changed-switch count (flat across N up to the O(groups) boundary
    // merge); the rebuild grows linearly with N.
    {
      const teg::ArrayConfig two({0, n / 2}, n);
      const teg::ArrayConfig three({0, n / 4, n / 2}, n);
      switchfab::SwitchNetwork net(n, two);
      constexpr int kFlipReps = 2000;
      row.apply_flip_us = time_s([&] {
                            for (int i = 0; i < kFlipReps / 2; ++i) {
                              net.apply(three);
                              net.apply(two);
                            }
                          }) /
                          kFlipReps * 1e6;
      const teg::ArrayConfig par = teg::ArrayConfig::all_parallel(n);
      const teg::ArrayConfig ser = teg::ArrayConfig::all_series(n);
      switchfab::SwitchNetwork net2(n, par);
      constexpr int kRebuildReps = 40;
      row.apply_rebuild_us = time_s([&] {
                               for (int i = 0; i < kRebuildReps / 2; ++i) {
                                 net2.apply(ser);
                                 net2.apply(par);
                               }
                             }) /
                             kRebuildReps * 1e6;
    }
    rows.push_back(row);
    std::printf("  N = %5zu done (streaming EHTR %.3f s, peak %.1f MB; "
                "materialising %.3f s, peak %.1f MB)\n",
                n, row.new_search_s, row.new_peak_rss_mb, row.mat_search_s,
                row.mat_peak_rss_mb);
    std::printf("            warm %.3f s/actuation vs cold %.3f (%.1fx, "
                "certified %zu/%zu, bit-identical: %s); apply flip %.2f us "
                "vs rebuild %.2f us\n",
                row.warm_step_s, row.cold_step_s, row.warm_speedup(),
                row.warm_certified, n, row.warm_identical ? "yes" : "NO",
                row.apply_flip_us, row.apply_rebuild_us);
  }

  std::printf("\n");
  util::TextTable table({"N", "INOR (s)", "DP d&c (s)", "EHTR stream (s)",
                         "stream RSS (MB)", "EHTR mat. (s)", "mat. RSS (MB)",
                         "DP legacy (s)", "EHTR legacy (s)", "speedup"});
  for (const Row& r : rows) {
    table.begin_row()
        .add(static_cast<double>(r.n), 0)
        .add(r.inor_s, 5)
        .add(r.dc_dp_s, 5)
        .add(r.new_search_s, 5)
        .add(r.new_peak_rss_mb, 1)
        .add(r.mat_search_s, 5)
        .add(r.mat_peak_rss_mb, 1)
        .add(r.legacy_dp_s, 5)
        .add(r.legacy_search_s, 5)
        .add(r.speedup(), 1);
  }
  std::printf("%s\n", table.render().c_str());

  util::TextTable warm_table({"N", "cold (s/act)", "warm (s/act)",
                              "warm speedup", "certified", "flip (us)",
                              "rebuild (us)"});
  for (const Row& r : rows) {
    warm_table.begin_row()
        .add(static_cast<double>(r.n), 0)
        .add(r.cold_step_s, 5)
        .add(r.warm_step_s, 5)
        .add(r.warm_speedup(), 1)
        .add(static_cast<double>(r.warm_certified), 0)
        .add(r.apply_flip_us, 2)
        .add(r.apply_rebuild_us, 2);
  }
  std::printf("%s\n", warm_table.render().c_str());

  // Unmeasured fields (NaN) become empty CSV cells / JSON nulls so both
  // files stay parseable by strict readers — util::csv_from_string reads
  // the empty cells (trailing ones included) back as NaN.
  if (std::FILE* csv = std::fopen(csv_path.c_str(), "w")) {
    std::fprintf(csv,
                 "n,inor_s,dc_dp_s,new_search_s,new_peak_rss_mb,mat_search_s,"
                 "mat_peak_rss_mb,legacy_dp_s,legacy_search_s,speedup,"
                 "cold_step_s,warm_step_s,warm_speedup,warm_certified,"
                 "warm_identical,apply_flip_us,apply_rebuild_us\n");
    for (const Row& r : rows) {
      std::fprintf(csv,
                   "%zu,%.9f,%.9f,%.9f,%s,%.9f,%s,%s,%s,%s,%.9f,%.9f,%.9f,"
                   "%zu,%d,%.9f,%.9f\n",
                   r.n, r.inor_s, r.dc_dp_s, r.new_search_s,
                   cell(r.new_peak_rss_mb, "%.3f").c_str(), r.mat_search_s,
                   cell(r.mat_peak_rss_mb, "%.3f").c_str(),
                   cell(r.legacy_dp_s, "%.9f").c_str(),
                   cell(r.legacy_search_s, "%.9f").c_str(),
                   cell(r.speedup(), "%.9f").c_str(), r.cold_step_s,
                   r.warm_step_s, r.warm_speedup(), r.warm_certified,
                   r.warm_identical ? 1 : 0, r.apply_flip_us,
                   r.apply_rebuild_us);
    }
    std::fclose(csv);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      // JSON has no NaN literal; unmeasured fields are null.
      auto num = [](double v) {
        return std::isnan(v) ? std::string("null") : std::to_string(v);
      };
      std::fprintf(json,
                   "  {\"n\": %zu, \"inor_s\": %.9f, \"dc_dp_s\": %.9f, "
                   "\"new_search_s\": %.9f, \"new_peak_rss_mb\": %s, "
                   "\"mat_search_s\": %.9f, \"mat_peak_rss_mb\": %s, "
                   "\"legacy_dp_s\": %s, \"legacy_search_s\": %s, "
                   "\"speedup\": %s, \"cold_step_s\": %.9f, "
                   "\"warm_step_s\": %.9f, \"warm_speedup\": %.9f, "
                   "\"warm_certified\": %zu, \"warm_identical\": %s, "
                   "\"apply_flip_us\": %.9f, \"apply_rebuild_us\": %.9f}%s\n",
                   r.n, r.inor_s, r.dc_dp_s, r.new_search_s,
                   num(r.new_peak_rss_mb).c_str(), r.mat_search_s,
                   num(r.mat_peak_rss_mb).c_str(), num(r.legacy_dp_s).c_str(),
                   num(r.legacy_search_s).c_str(), num(r.speedup()).c_str(),
                   r.cold_step_s, r.warm_step_s, r.warm_speedup(),
                   r.warm_certified, r.warm_identical ? "true" : "false",
                   r.apply_flip_us, r.apply_rebuild_us,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
