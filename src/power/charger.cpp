#include "power/charger.hpp"

namespace tegrec::power {

Charger::Charger(const ConverterParams& converter_params,
                 const BatteryParams& battery_params)
    : converter_(converter_params), battery_(battery_params) {}

OperatingPoint Charger::harvest(const teg::SeriesString& string, double dt_s) {
  const OperatingPoint pt = optimal_operating_point(string, converter_);
  battery_.absorb(pt.output_power_w, dt_s);
  return pt;
}

double Charger::extractable_power_w(const teg::SeriesString& string) const {
  return optimal_operating_point(string, converter_).output_power_w;
}

}  // namespace tegrec::power
