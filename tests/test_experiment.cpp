#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace tegrec::sim {
namespace {

thermal::TemperatureTrace short_trace() {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 16;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 40.0, 30.0, 0.0}};
  config.seed = 13;
  return thermal::generate_trace(config);
}

TEST(Experiment, RunsAllFourSchemesInOrder) {
  const ComparisonResult res = run_standard_comparison(short_trace());
  ASSERT_EQ(res.runs.size(), 4u);
  EXPECT_EQ(res.runs[0].algorithm, "DNOR");
  EXPECT_EQ(res.runs[1].algorithm, "INOR");
  EXPECT_EQ(res.runs[2].algorithm, "EHTR");
  EXPECT_EQ(res.runs[3].algorithm, "Baseline");
}

TEST(Experiment, ByNameLookup) {
  const ComparisonResult res = run_standard_comparison(short_trace());
  EXPECT_EQ(res.by_name("EHTR").algorithm, "EHTR");
  EXPECT_THROW(res.by_name("nope"), std::out_of_range);
}

TEST(Experiment, HeadlineMetricsPositive) {
  const ComparisonResult res = run_standard_comparison(short_trace());
  EXPECT_GT(res.dnor_gain_over_baseline(), 0.0);
  EXPECT_GT(res.overhead_reduction_ratio(), 1.0);
  EXPECT_GT(res.runtime_speedup_ratio(), 1.0);
}

TEST(Experiment, SubsetSelection) {
  ComparisonOptions options;
  options.include_ehtr = false;  // the expensive one
  options.include_dnor = false;
  const ComparisonResult res = run_standard_comparison(short_trace(), options);
  ASSERT_EQ(res.runs.size(), 2u);
  EXPECT_EQ(res.runs[0].algorithm, "INOR");
  EXPECT_EQ(res.runs[1].algorithm, "Baseline");
  EXPECT_THROW(res.by_name("DNOR"), std::out_of_range);
}

TEST(Experiment, NoSchemesThrows) {
  ComparisonOptions options;
  options.include_dnor = false;
  options.include_inor = false;
  options.include_ehtr = false;
  options.include_baseline = false;
  EXPECT_THROW(run_standard_comparison(short_trace(), options),
               std::invalid_argument);
}

TEST(Experiment, ControlPeriodPropagates) {
  ComparisonOptions slow;
  slow.include_dnor = false;
  slow.include_ehtr = false;
  slow.include_baseline = false;
  slow.control_period_s = 2.0;
  const auto trace = short_trace();
  const ComparisonResult res = run_standard_comparison(trace, slow);
  // 40 s at a 2 s period: ~20 invocations instead of 80.
  EXPECT_NEAR(static_cast<double>(res.runs[0].num_invocations),
              trace.duration_s() / 2.0, 2.0);
}

TEST(Experiment, SimOptionsRespected) {
  ComparisonOptions no_overhead;
  no_overhead.sim.charge_overhead = false;
  no_overhead.include_ehtr = false;
  const ComparisonResult res =
      run_standard_comparison(short_trace(), no_overhead);
  for (const auto& r : res.runs) {
    EXPECT_DOUBLE_EQ(r.switch_overhead_j, 0.0) << r.algorithm;
  }
}

}  // namespace
}  // namespace tegrec::sim
