// Ensemble predictor (extension): average the forecasts of member models.
//
// A uniform (or weighted) mean of diverse predictors reduces variance when
// the members' errors are weakly correlated — the standard cheap trick to
// harden a forecaster against regime changes.  Used by the prediction
// ablation to check whether any combination beats plain MLR on radiator
// traces (spoiler: rarely, which supports the paper's choice).
#pragma once

#include <memory>
#include <vector>

#include "predict/predictor.hpp"

namespace tegrec::predict {

class EnsemblePredictor final : public Predictor {
 public:
  /// Uniform weights.
  explicit EnsemblePredictor(std::vector<std::unique_ptr<Predictor>> members);
  /// Explicit weights (must match member count; will be normalised; all
  /// non-negative with a positive sum).
  EnsemblePredictor(std::vector<std::unique_ptr<Predictor>> members,
                    std::vector<double> weights);

  std::string name() const override;
  std::size_t num_lags() const override;  ///< max over members
  void fit(const TemperatureHistory& history) override;
  bool is_fitted() const override;
  std::vector<double> predict_next(const TemperatureHistory& history) const override;

  std::size_t size() const { return members_.size(); }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<std::unique_ptr<Predictor>> members_;
  std::vector<double> weights_;
};

}  // namespace tegrec::predict
