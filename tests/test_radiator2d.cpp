#include "thermal/radiator2d.hpp"

#include <gtest/gtest.h>

namespace tegrec::thermal {
namespace {

StreamConditions total_conditions() {
  StreamConditions c;
  c.hot_inlet_c = 92.0;
  c.cold_inlet_c = 25.0;
  c.hot_capacity_w_k = 2400.0;
  c.cold_capacity_w_k = 2200.0;
  return c;
}

TEST(Radiator2D, BalancedSharesAreEqual) {
  Radiator2DLayout layout;
  layout.num_rows = 4;
  layout.flow_imbalance = 0.0;
  const auto shares = row_flow_shares(layout);
  ASSERT_EQ(shares.size(), 4u);
  for (double s : shares) EXPECT_NEAR(s, 0.25, 1e-12);
}

TEST(Radiator2D, ImbalancedSharesSumToOneAndAscend) {
  Radiator2DLayout layout;
  layout.num_rows = 5;
  layout.flow_imbalance = 0.3;
  const auto shares = row_flow_shares(layout);
  double total = 0.0;
  for (std::size_t r = 1; r < shares.size(); ++r) {
    EXPECT_GT(shares[r], shares[r - 1]);
  }
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Radiator2D, SingleRowDegenerates) {
  Radiator2DLayout layout;
  layout.num_rows = 1;
  layout.flow_imbalance = 0.5;
  const auto shares = row_flow_shares(layout);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
}

TEST(Radiator2D, Validation) {
  Radiator2DLayout layout;
  layout.num_rows = 0;
  EXPECT_THROW(row_flow_shares(layout), std::invalid_argument);
  layout.num_rows = 2;
  layout.flow_imbalance = 1.0;
  EXPECT_THROW(row_flow_shares(layout), std::invalid_argument);
  layout.flow_imbalance = -0.1;
  EXPECT_THROW(row_flow_shares(layout), std::invalid_argument);
}

TEST(Radiator2D, RowCountAndWidth) {
  Radiator2DLayout layout;
  layout.num_rows = 3;
  layout.row.num_modules = 25;
  const auto rows = row_module_temperatures(layout, total_conditions());
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 25u);
  EXPECT_EQ(layout.total_modules(), 75u);
}

TEST(Radiator2D, EveryRowDecaysAlongTube) {
  Radiator2DLayout layout;
  layout.num_rows = 4;
  layout.flow_imbalance = 0.2;
  const auto rows = row_module_temperatures(layout, total_conditions());
  for (const auto& row : rows) {
    for (std::size_t i = 1; i < row.size(); ++i) {
      EXPECT_LT(row[i], row[i - 1]);
    }
  }
}

TEST(Radiator2D, LowFlowRowsRunCooler) {
  // Less coolant flow -> the hot capacity rate drops -> the row cools
  // faster along the tube, so the *exit* modules of starved rows sit
  // cooler than those of well-fed rows.
  Radiator2DLayout layout;
  layout.num_rows = 4;
  layout.flow_imbalance = 0.4;
  const auto rows = row_module_temperatures(layout, total_conditions());
  EXPECT_LT(rows.front().back(), rows.back().back());
}

TEST(Radiator2D, BalancedRowsIdentical) {
  Radiator2DLayout layout;
  layout.num_rows = 3;
  layout.flow_imbalance = 0.0;
  const auto rows = row_module_temperatures(layout, total_conditions());
  for (std::size_t i = 0; i < rows[0].size(); ++i) {
    EXPECT_NEAR(rows[0][i], rows[1][i], 1e-9);
    EXPECT_NEAR(rows[1][i], rows[2][i], 1e-9);
  }
}

TEST(Radiator2D, DeltaTNonNegative) {
  Radiator2DLayout layout;
  layout.num_rows = 4;
  layout.flow_imbalance = 0.3;
  const auto rows = row_module_delta_t(layout, total_conditions());
  for (const auto& row : rows) {
    for (double dt : row) EXPECT_GE(dt, 0.0);
  }
}

}  // namespace
}  // namespace tegrec::thermal
