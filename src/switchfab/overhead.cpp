#include "switchfab/overhead.hpp"

#include <stdexcept>

namespace tegrec::switchfab {

OverheadCost reconfiguration_cost(const OverheadParams& params,
                                  std::size_t num_switch_actuations,
                                  double output_power_w, double compute_time_s) {
  if (output_power_w < 0.0) {
    throw std::invalid_argument("reconfiguration_cost: negative power");
  }
  if (compute_time_s < 0.0) {
    throw std::invalid_argument("reconfiguration_cost: negative compute time");
  }
  OverheadCost cost;
  cost.timing_s = params.sensing_delay_s + compute_time_s +
                  static_cast<double>(num_switch_actuations) *
                      params.per_switch_delay_s +
                  params.mppt_settle_s;
  cost.energy_j = output_power_w * cost.timing_s +
                  static_cast<double>(num_switch_actuations) *
                      params.per_switch_energy_j;
  return cost;
}

}  // namespace tegrec::switchfab
