// Prescient (oracle) reconfiguration controller — an upper bound for DNOR.
//
// DNOR's switch-or-hold rule depends on forecast quality; this controller
// runs the identical rule but reads the *actual* future temperatures from
// the trace instead of predicting them.  The energy gap between
// PrescientReconfigurer and DNOR-with-MLR is exactly the cost of imperfect
// prediction, and the gap to INOR is the value of the switch-or-hold rule
// itself.  Simulation-only by construction (no real controller can see the
// future); lives in core so the ablation benches and tests can treat it as
// just another Reconfigurer.
#pragma once

#include <utility>

#include "core/inor.hpp"
#include "core/reconfigurer.hpp"
#include "switchfab/overhead.hpp"
#include "thermal/trace.hpp"

namespace tegrec::core {

struct PrescientParams {
  double control_period_s = 0.5;
  double tp_s = 2.0;  ///< lookahead window, matching DNOR's horizon
  InorOptions inor;
  switchfab::OverheadParams overhead;
};

class PrescientReconfigurer final : public Reconfigurer {
 public:
  /// `trace` must be the exact trace the simulator replays (the oracle
  /// looks up future steps by time).
  PrescientReconfigurer(const teg::DeviceParams& device,
                        const power::ConverterParams& converter,
                        const thermal::TemperatureTrace& trace,
                        const PrescientParams& params = {});

  std::string name() const override { return "Oracle"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;
  AlgorithmCost algorithm_cost() const override {
    return AlgorithmCost::prescient();
  }

  std::size_t switches_taken() const { return switches_; }

 private:
  teg::DeviceParams device_;
  power::Converter converter_;
  const thermal::TemperatureTrace* trace_;
  PrescientParams params_;

  double next_decision_time_s_ = 0.0;
  bool has_config_ = false;
  teg::ArrayConfig current_;
  std::size_t switches_ = 0;

  /// True output energies of the hold/switch candidates over the lookahead
  /// window, sharing one cached ArrayEvaluator per trace step.
  std::pair<double, double> future_energies_j(const teg::ArrayConfig& c_old,
                                              const teg::ArrayConfig& c_new,
                                              double from_time_s) const;
};

}  // namespace tegrec::core
