// ExperimentSpec + ExperimentService: determinism, caching, coalescing,
// cancellation, fingerprint stability.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/montecarlo.hpp"
#include "sim/result_io.hpp"
#include "sim/service.hpp"
#include "sim/spec.hpp"
#include "sim/sweep.hpp"
#include "util/atomic_file.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace tegrec::sim {
namespace {

thermal::TraceGeneratorConfig tiny_config() {
  thermal::TraceGeneratorConfig config;
  // 24 modules: small enough for speed, large enough that the square-grid
  // baseline's string voltage clears the converter's input floor.
  config.layout.num_modules = 24;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 25.0, 30.0, 0.0}};
  return config;
}

ComparisonOptions fast_comparison() {
  ComparisonOptions options;
  options.include_inor = false;
  options.include_ehtr = false;
  return options;
}

ExperimentSpec comparison_spec(std::uint64_t seed = 3) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::kComparison;
  spec.trace.kind = TraceSource::Kind::kGenerated;
  spec.trace.generator = tiny_config();
  spec.trace.generator.seed = seed;
  spec.comparison = fast_comparison();
  return spec;
}

ExperimentSpec montecarlo_spec(std::size_t num_seeds = 3) {
  ExperimentSpec spec = comparison_spec();
  spec.kind = ExperimentKind::kMonteCarlo;
  spec.mc_num_seeds = num_seeds;
  spec.mc_first_seed = 10;
  return spec;
}

ExperimentSpec sweep_spec() {
  ExperimentSpec spec = comparison_spec();
  spec.kind = ExperimentKind::kSweep;
  spec.sweep_parameter_name = "surface_coupling";
  spec.sweep_values = {0.6, 0.75, 0.9};
  return spec;
}

// Deterministic-field equality.  `include_timing` additionally compares the
// measured wall-clock fields — valid only when both sides come from the
// same execution (cache hits, disk round-trips), never across re-runs.
void expect_runs_equal(const SimulationResult& a, const SimulationResult& b,
                       bool include_timing) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.energy_output_j, b.energy_output_j);
  EXPECT_EQ(a.switch_overhead_j, b.switch_overhead_j);
  EXPECT_EQ(a.ideal_energy_j, b.ideal_energy_j);
  EXPECT_EQ(a.num_invocations, b.num_invocations);
  EXPECT_EQ(a.num_switch_events, b.num_switch_events);
  EXPECT_EQ(a.total_switch_actuations, b.total_switch_actuations);
  EXPECT_EQ(a.battery_energy_j, b.battery_energy_j);
  EXPECT_EQ(a.final_soc, b.final_soc);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].time_s, b.steps[i].time_s);
    EXPECT_EQ(a.steps[i].gross_power_w, b.steps[i].gross_power_w);
    EXPECT_EQ(a.steps[i].net_power_w, b.steps[i].net_power_w);
    EXPECT_EQ(a.steps[i].ideal_power_w, b.steps[i].ideal_power_w);
    EXPECT_EQ(a.steps[i].invoked, b.steps[i].invoked);
    EXPECT_EQ(a.steps[i].switched, b.steps[i].switched);
    EXPECT_EQ(a.steps[i].switch_actuations, b.steps[i].switch_actuations);
    EXPECT_EQ(a.steps[i].overhead_energy_j, b.steps[i].overhead_energy_j);
    if (include_timing) {
      EXPECT_EQ(a.steps[i].compute_time_s, b.steps[i].compute_time_s);
    }
  }
  if (include_timing) {
    EXPECT_EQ(a.avg_runtime_ms, b.avg_runtime_ms);
    EXPECT_EQ(a.runtime_per_invocation_ms, b.runtime_per_invocation_ms);
  }
}

void expect_results_equal(const ExperimentResult& a, const ExperimentResult& b,
                          bool include_timing) {
  ASSERT_EQ(a.kind, b.kind);
  switch (a.kind) {
    case ExperimentKind::kComparison: {
      ASSERT_EQ(a.comparison.runs.size(), b.comparison.runs.size());
      for (std::size_t i = 0; i < a.comparison.runs.size(); ++i) {
        expect_runs_equal(a.comparison.runs[i], b.comparison.runs[i],
                          include_timing);
      }
      break;
    }
    case ExperimentKind::kMonteCarlo: {
      ASSERT_EQ(a.monte_carlo.samples.size(), b.monte_carlo.samples.size());
      for (std::size_t i = 0; i < a.monte_carlo.samples.size(); ++i) {
        EXPECT_EQ(a.monte_carlo.samples[i].seed, b.monte_carlo.samples[i].seed);
        EXPECT_EQ(a.monte_carlo.samples[i].gain, b.monte_carlo.samples[i].gain);
        EXPECT_EQ(a.monte_carlo.samples[i].dnor_energy_j,
                  b.monte_carlo.samples[i].dnor_energy_j);
        EXPECT_EQ(a.monte_carlo.samples[i].baseline_energy_j,
                  b.monte_carlo.samples[i].baseline_energy_j);
        EXPECT_EQ(a.monte_carlo.samples[i].dnor_overhead_j,
                  b.monte_carlo.samples[i].dnor_overhead_j);
        EXPECT_EQ(a.monte_carlo.samples[i].dnor_switches,
                  b.monte_carlo.samples[i].dnor_switches);
      }
      EXPECT_EQ(a.monte_carlo.gain.mean(), b.monte_carlo.gain.mean());
      EXPECT_EQ(a.monte_carlo.gain.stddev(), b.monte_carlo.gain.stddev());
      EXPECT_EQ(a.monte_carlo.dnor_energy_j.max(),
                b.monte_carlo.dnor_energy_j.max());
      break;
    }
    case ExperimentKind::kSweep: {
      ASSERT_EQ(a.sweep.size(), b.sweep.size());
      for (std::size_t i = 0; i < a.sweep.size(); ++i) {
        EXPECT_EQ(a.sweep[i].value, b.sweep[i].value);
        EXPECT_EQ(a.sweep[i].dnor_energy_j, b.sweep[i].dnor_energy_j);
        EXPECT_EQ(a.sweep[i].baseline_energy_j, b.sweep[i].baseline_energy_j);
        EXPECT_EQ(a.sweep[i].gain, b.sweep[i].gain);
        EXPECT_EQ(a.sweep[i].dnor_ratio_to_ideal,
                  b.sweep[i].dnor_ratio_to_ideal);
      }
      break;
    }
  }
}

/// A self-cleaning unique temp directory for the disk-cache tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("tegrec_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------- determinism / identity

TEST(Service, ResultsMatchDirectAcrossWorkerCounts) {
  const std::vector<ExperimentSpec> specs = {comparison_spec(),
                                             montecarlo_spec(), sweep_spec()};
  for (const ExperimentSpec& spec : specs) {
    const ExperimentResult direct = run_experiment(spec);
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{4}, util::default_parallelism()}) {
      ServiceOptions options;
      options.num_workers = workers;
      ExperimentService service(options);
      const auto result = service.submit(spec).wait();
      ASSERT_TRUE(result);
      expect_results_equal(direct, *result, /*include_timing=*/false);
    }
  }
}

TEST(Service, BlockingWrappersMatchDirectEngines) {
  // The public blocking API routes through the shared service; its results
  // must be bit-identical to the direct engines it used to call.
  const thermal::TemperatureTrace trace =
      thermal::generate_trace(tiny_config());
  ComparisonResult direct = detail::run_comparison_direct(trace,
                                                          fast_comparison());
  ComparisonResult wrapped = run_standard_comparison(trace, fast_comparison());
  ASSERT_EQ(direct.runs.size(), wrapped.runs.size());
  for (std::size_t i = 0; i < direct.runs.size(); ++i) {
    expect_runs_equal(direct.runs[i], wrapped.runs[i],
                      /*include_timing=*/false);
  }

  MonteCarloOptions mc;
  mc.base_trace = tiny_config();
  mc.comparison = fast_comparison();
  mc.num_seeds = 2;
  const MonteCarloSummary direct_mc = detail::run_monte_carlo_direct(mc);
  const MonteCarloSummary wrapped_mc = run_monte_carlo(mc);
  ASSERT_EQ(direct_mc.samples.size(), wrapped_mc.samples.size());
  for (std::size_t i = 0; i < direct_mc.samples.size(); ++i) {
    EXPECT_EQ(direct_mc.samples[i].gain, wrapped_mc.samples[i].gain);
    EXPECT_EQ(direct_mc.samples[i].dnor_energy_j,
              wrapped_mc.samples[i].dnor_energy_j);
  }

  const auto mutate = [](thermal::TraceGeneratorConfig& config, double value) {
    config.layout.surface_coupling = value;
  };
  const auto direct_sweep = detail::sweep_direct(
      tiny_config(), {0.6, 0.8}, mutate, fast_comparison(), /*num_threads=*/1);
  const auto wrapped_sweep =
      sweep_parameter(tiny_config(), {0.6, 0.8}, mutate, fast_comparison());
  ASSERT_EQ(direct_sweep.size(), wrapped_sweep.size());
  for (std::size_t i = 0; i < direct_sweep.size(); ++i) {
    EXPECT_EQ(direct_sweep[i].gain, wrapped_sweep[i].gain);
    EXPECT_EQ(direct_sweep[i].dnor_energy_j, wrapped_sweep[i].dnor_energy_j);
  }
}

TEST(Service, WrapperValidationErrorsPropagate) {
  // The blocking wrappers must keep throwing the direct API's exceptions.
  MonteCarloOptions mc;
  mc.base_trace = tiny_config();
  mc.num_seeds = 0;
  EXPECT_THROW(run_monte_carlo(mc), std::invalid_argument);
  EXPECT_THROW(sweep_parameter(tiny_config(), {1.0}, nullptr),
               std::invalid_argument);
  ComparisonOptions none = fast_comparison();
  none.include_dnor = false;
  none.include_baseline = false;
  const thermal::TemperatureTrace trace =
      thermal::generate_trace(tiny_config());
  EXPECT_THROW(run_standard_comparison(trace, none), std::invalid_argument);
}

// --------------------------------------------------------------- caching

TEST(Service, CacheHitSkipsExecution) {
  ExperimentService service((ServiceOptions()));
  const ExperimentSpec spec = comparison_spec();
  const JobHandle first = service.submit(spec);
  const auto first_result = first.wait();
  EXPECT_EQ(service.executions(), 1u);
  EXPECT_FALSE(first.from_cache());

  ExperimentSpec again = spec;
  again.comparison.sim.num_threads = 4;  // execution hint: same cache entry
  const JobHandle second = service.submit(again);
  const auto second_result = second.wait();
  EXPECT_EQ(service.executions(), 1u) << "cache hit must not re-simulate";
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_TRUE(second.from_cache());
  // Same stored object, so trivially bit-identical — including timing.
  EXPECT_EQ(first_result.get(), second_result.get());
}

TEST(Service, DiskCacheRoundTripsBitIdentical) {
  TempDir dir("diskcache");
  ServiceOptions options;
  options.cache_dir = dir.path();
  const ExperimentSpec spec = montecarlo_spec();

  std::shared_ptr<const ExperimentResult> produced;
  {
    ExperimentService service(options);
    produced = service.submit(spec).wait();
    EXPECT_EQ(service.executions(), 1u);
    EXPECT_EQ(service.disk_hits(), 0u);
  }
  // A fresh service (fresh memory cache) must load the artifact instead of
  // re-simulating, and the decoded result must be bit-identical — the
  // wall-clock fields included, because doubles round-trip exactly at
  // kCsvExactPrecision.
  ExperimentService service(options);
  const JobHandle job = service.submit(spec);
  const auto loaded = job.wait();
  EXPECT_EQ(service.executions(), 0u);
  EXPECT_EQ(service.disk_hits(), 1u);
  EXPECT_TRUE(job.from_cache());
  expect_results_equal(*produced, *loaded, /*include_timing=*/true);
}

TEST(Service, DiskArtifactRoundTripsEveryKind) {
  for (const ExperimentSpec& spec :
       {comparison_spec(), montecarlo_spec(), sweep_spec()}) {
    const ExperimentResult direct = run_experiment(spec);
    const std::string text = encode_result(direct, spec.fingerprint_text());
    const auto decoded = decode_result(text, spec.fingerprint_text());
    ASSERT_TRUE(decoded.has_value());
    expect_results_equal(direct, *decoded, /*include_timing=*/true);
    // A payload for a different spec is a miss, never a wrong result.
    EXPECT_FALSE(
        decode_result(text, comparison_spec(99).fingerprint_text()).has_value());
    // Truncation is a miss, not an exception.
    EXPECT_FALSE(
        decode_result(text.substr(0, text.size() / 2), spec.fingerprint_text())
            .has_value());
  }
}

TEST(Service, CorruptDiskArtifactFallsBackToExecution) {
  TempDir dir("corrupt");
  ServiceOptions options;
  options.cache_dir = dir.path();
  const ExperimentSpec spec = comparison_spec();
  {
    ExperimentService service(options);
    service.submit(spec).wait();
  }
  // Truncate the artifact in place.
  const std::string path = dir.path() + "/" + spec.fingerprint() + ".csv";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, 64);

  ExperimentService service(options);
  const auto result = service.submit(spec).wait();
  EXPECT_EQ(service.executions(), 1u) << "corrupt artifact must re-simulate";
  EXPECT_EQ(service.disk_hits(), 0u);
  ASSERT_TRUE(result);
}

TEST(Service, SelfHealsCorruptArtifactsOffDisk) {
  TempDir dir("selfheal");
  ServiceOptions options;
  options.cache_dir = dir.path();
  const ExperimentSpec spec = comparison_spec();
  const std::string path = dir.path() + "/" + spec.fingerprint() + ".csv";
  {
    ExperimentService service(options);
    service.submit(spec).wait();
    std::filesystem::resize_file(path, 64);
    // The damaged artifact is removed the moment it fails to decode, so it
    // can never be served again — and the re-execution republishes it.
  }
  ExperimentService service(options);
  ASSERT_TRUE(service.submit(spec).wait());
  EXPECT_EQ(service.executions(), 1u);
  EXPECT_GT(std::filesystem::file_size(path), 64u)
      << "re-execution must republish a whole artifact over the corrupt one";
}

// ------------------------------------------------- graceful degradation

TEST(Service, UnwritableCacheDirDegradesToUncachedExecution) {
  // The cache path sits *under a regular file* (ENOTCACHEDIR territory that
  // even root cannot create), so every artifact publication fails.  The
  // service must warn once, keep answering, and never fail a submit.
  TempDir dir("rocache");
  std::filesystem::create_directories(dir.path());
  const std::string blocker = dir.path() + "/blocker";
  util::atomic_write_file(blocker, "a file, not a directory");

  ServiceOptions options;
  options.cache_dir = blocker + "/cache";
  std::vector<std::string> warnings;
  options.warn = [&warnings](const std::string& m) { warnings.push_back(m); };
  ExperimentService service(options);
  ASSERT_TRUE(service.submit(comparison_spec(1)).wait());
  ASSERT_TRUE(service.submit(comparison_spec(2)).wait());
  EXPECT_EQ(service.executions(), 2u);
  EXPECT_EQ(service.artifact_store().put_failures(), 2u);
  ASSERT_EQ(warnings.size(), 1u) << "degradation warns once, not per job";
  EXPECT_NE(warnings[0].find("degraded"), std::string::npos) << warnings[0];
}

TEST(Service, DiskFullDegradesToUncachedExecution) {
  // ENOSPC modelled by the injector: every artifact write attempt fails,
  // retries included.  Submissions keep succeeding from memory.
  TempDir dir("enospc");
  util::FaultInjector faults("artifact.write_fail@*");
  ServiceOptions options;
  options.cache_dir = dir.path();
  options.faults = &faults;
  std::vector<std::string> warnings;
  options.warn = [&warnings](const std::string& m) { warnings.push_back(m); };

  ExperimentService service(options);
  const ExperimentSpec spec = comparison_spec();
  ASSERT_TRUE(service.submit(spec).wait());
  EXPECT_EQ(service.executions(), 1u);
  EXPECT_EQ(warnings.size(), 1u);
  // Nothing reached disk — a fresh service re-executes — but this service
  // still serves the job from memory.
  EXPECT_TRUE(service.submit(spec).wait());
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_FALSE(
      std::filesystem::exists(dir.path() + "/" + spec.fingerprint() + ".csv"));
}

TEST(Service, CacheMaxBytesBoundsTheArtifactStore) {
  const ExperimentSpec first = comparison_spec(1);
  std::uintmax_t artifact_size = 0;
  {
    TempDir dir("capsize");
    ServiceOptions options;
    options.cache_dir = dir.path();
    ExperimentService service(options);
    service.submit(first).wait();
    artifact_size = std::filesystem::file_size(dir.path() + "/" +
                                               first.fingerprint() + ".csv");
  }

  TempDir dir("capped");
  ServiceOptions options;
  options.cache_dir = dir.path();
  // Room for roughly two artifacts; the third forces an LRU eviction.
  options.cache_max_bytes = 2 * artifact_size + 256;
  ExperimentService service(options);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(service.submit(comparison_spec(seed)).wait());
  }
  EXPECT_LE(service.artifact_store().total_bytes(), options.cache_max_bytes);
  EXPECT_GE(service.artifact_store().evictions(), 1u);
}

TEST(Service, CsvSourcesAreContentAddressedAtSubmitTime) {
  TempDir dir("csvsrc");
  std::filesystem::create_directories(dir.path());
  const std::string csv = dir.path() + "/trace.csv";
  thermal::generate_trace(tiny_config()).save_csv(csv);

  ExperimentSpec spec;
  spec.kind = ExperimentKind::kComparison;
  spec.trace.kind = TraceSource::Kind::kCsvFile;
  spec.trace.csv_path = csv;
  spec.comparison = fast_comparison();

  ExperimentService service((ServiceOptions()));
  const JobHandle first = service.submit(spec);
  const auto from_file = first.wait();
  EXPECT_EQ(service.executions(), 1u);

  // Unchanged file content: a hit.
  const JobHandle second = service.submit(spec);
  second.wait();
  EXPECT_EQ(service.executions(), 1u);
  EXPECT_TRUE(second.from_cache());

  // Rewriting the file with different data must miss — the submit-time
  // load is both the content address and what executes, so an edit can
  // never serve (or store) a result for the other content.
  thermal::TraceGeneratorConfig other = tiny_config();
  other.seed = 5;
  thermal::generate_trace(other).save_csv(csv);
  const JobHandle third = service.submit(spec);
  const auto from_edited = third.wait();
  EXPECT_EQ(service.executions(), 2u);
  EXPECT_NE(third.fingerprint(), first.fingerprint());
  EXPECT_NE(from_edited->comparison.runs[0].energy_output_j,
            from_file->comparison.runs[0].energy_output_j);

  // Unreadable file: throws on the submitter, synchronously.
  spec.trace.csv_path = dir.path() + "/missing.csv";
  EXPECT_THROW(service.submit(spec), std::runtime_error);
}

// ---------------------------------------------- coalescing / cancellation

TEST(Service, DuplicateInFlightSpecsCoalesce) {
  ServiceOptions options;
  options.num_workers = 1;
  ExperimentService service(options);
  // The single worker is busy with the blocker while the duplicates are
  // submitted, so neither can have completed (no cache entry yet): equal
  // ids prove they attached to one execution.
  const JobHandle blocker = service.submit(montecarlo_spec(6));
  const JobHandle a = service.submit(comparison_spec());
  const JobHandle b = service.submit(comparison_spec());
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(service.coalesced(), 1u);
  const auto result_a = a.wait();
  const auto result_b = b.wait();
  EXPECT_EQ(result_a.get(), result_b.get());
  blocker.wait();
  EXPECT_EQ(service.executions(), 2u) << "blocker + one coalesced execution";
  EXPECT_EQ(service.cache_hits(), 0u);
}

TEST(Service, CancelledQueuedJobNeverRuns) {
  ServiceOptions options;
  options.num_workers = 1;
  ExperimentService service(options);
  const JobHandle blocker = service.submit(montecarlo_spec(6));
  const JobHandle victim = service.submit(comparison_spec());
  EXPECT_TRUE(victim.cancel());
  EXPECT_EQ(victim.status(), JobStatus::kCancelled);
  EXPECT_FALSE(victim.cancel()) << "second cancel has nothing to do";
  EXPECT_THROW(victim.wait(), std::runtime_error);
  EXPECT_EQ(victim.poll(), nullptr);

  blocker.wait();
  EXPECT_EQ(service.executions(), 1u) << "only the blocker may have run";

  // The cancelled job must not poison its fingerprint: resubmitting the
  // same spec starts a fresh execution instead of attaching to the corpse.
  const JobHandle fresh = service.submit(comparison_spec());
  const auto result = fresh.wait();
  ASSERT_TRUE(result);
  EXPECT_NE(fresh.id(), victim.id());
  EXPECT_EQ(service.executions(), 2u);
}

TEST(Service, CompletedJobCannotBeCancelled) {
  ExperimentService service((ServiceOptions()));
  const JobHandle job = service.submit(comparison_spec());
  job.wait();
  EXPECT_FALSE(job.cancel());
  EXPECT_EQ(job.status(), JobStatus::kDone);
}

// ------------------------------------------------- fingerprint stability

TEST(Spec, EqualSpecsHashEqual) {
  EXPECT_EQ(comparison_spec().fingerprint(), comparison_spec().fingerprint());
  EXPECT_EQ(montecarlo_spec().fingerprint(), montecarlo_spec().fingerprint());
  EXPECT_EQ(sweep_spec().fingerprint(), sweep_spec().fingerprint());
}

TEST(Spec, AnyResultAffectingFieldChangesTheHash) {
  const std::string base = comparison_spec().fingerprint();
  {
    ExperimentSpec s = comparison_spec();
    s.trace.generator.seed = 4;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.trace.generator.layout.num_modules = 25;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.trace.generator.segments[0].duration_s += 0.5;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.comparison.include_ehtr = true;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.comparison.control_period_s = 1.0;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.comparison.sim.ehtr_max_groups = 8;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.comparison.sim.battery.initial_soc += 0.01;
    EXPECT_NE(s.fingerprint(), base);
  }
  {
    ExperimentSpec s = comparison_spec();
    s.kind = ExperimentKind::kMonteCarlo;
    EXPECT_NE(s.fingerprint(), base);
  }
  const std::string mc_base = montecarlo_spec().fingerprint();
  {
    ExperimentSpec s = montecarlo_spec();
    s.mc_num_seeds += 1;
    EXPECT_NE(s.fingerprint(), mc_base);
  }
  {
    ExperimentSpec s = montecarlo_spec();
    s.mc_first_seed += 1;
    EXPECT_NE(s.fingerprint(), mc_base);
  }
  const std::string sweep_base = sweep_spec().fingerprint();
  {
    ExperimentSpec s = sweep_spec();
    s.sweep_values.back() += 0.01;
    EXPECT_NE(s.fingerprint(), sweep_base);
  }
  {
    ExperimentSpec s = sweep_spec();
    s.sweep_parameter_name = "ambient_base_c";
    EXPECT_NE(s.fingerprint(), sweep_base);
  }
}

TEST(Spec, ExecutionHintsDoNotFragmentTheCache) {
  ExperimentSpec a = montecarlo_spec();
  ExperimentSpec b = montecarlo_spec();
  b.mc_num_threads = 7;
  b.comparison.sim.num_threads = 3;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // ...but the hints still round-trip through the canonical text.
  EXPECT_NE(a.canonical_text(), b.canonical_text());
  const ExperimentSpec parsed = ExperimentSpec::from_text(b.canonical_text());
  EXPECT_EQ(parsed.mc_num_threads, 7u);
  EXPECT_EQ(parsed.comparison.sim.num_threads, 3u);
}

TEST(Spec, MonteCarloBaseSeedIsPinned) {
  // The engine overwrites the generator seed per sample, so two MC specs
  // differing only there must share one cache entry.
  ExperimentSpec a = montecarlo_spec();
  ExperimentSpec b = montecarlo_spec();
  b.trace.generator.seed = 999;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // For a comparison the seed is the study.
  ExperimentSpec c = comparison_spec(1);
  ExperimentSpec d = comparison_spec(2);
  EXPECT_NE(c.fingerprint(), d.fingerprint());
}

TEST(Spec, CanonicalTextRoundTrips) {
  for (const ExperimentSpec& spec :
       {comparison_spec(), montecarlo_spec(), sweep_spec()}) {
    const std::string text = spec.canonical_text();
    const ExperimentSpec parsed = ExperimentSpec::from_text(text);
    EXPECT_EQ(parsed.canonical_text(), text);
    EXPECT_EQ(parsed.fingerprint(), spec.fingerprint());
  }
}

TEST(Spec, ParserRejectsGarbage) {
  EXPECT_THROW(ExperimentSpec::from_text("no_such_key = 1\n"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::from_text("kind = warp_drive\n"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::from_text("mc.num_seeds = 3x\nkind = montecarlo\n"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::from_text("kind\n"), std::invalid_argument);
  // Non-finite numbers are garbage too (NaN slips past range checks).
  EXPECT_THROW(ExperimentSpec::from_text("comparison.control_period_s = nan\n"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::from_text("comparison.control_period_s = inf\n"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::from_text("kind = comparison\nkind = sweep\n"),
               std::invalid_argument);
  // Sparse specs are fine: defaults fill everything unstated.
  const ExperimentSpec sparse = ExperimentSpec::from_text("kind = sweep\n");
  EXPECT_EQ(sparse.kind, ExperimentKind::kSweep);
}

TEST(Spec, InlineTraceSourcesAreContentAddressed) {
  const thermal::TemperatureTrace trace =
      thermal::generate_trace(tiny_config());
  ExperimentSpec spec;
  spec.trace.kind = TraceSource::Kind::kInline;
  spec.trace.inline_trace =
      std::make_shared<thermal::TemperatureTrace>(trace);
  ExperimentSpec same = spec;
  same.trace.inline_trace = std::make_shared<thermal::TemperatureTrace>(trace);
  EXPECT_EQ(spec.fingerprint(), same.fingerprint());

  thermal::TraceGeneratorConfig other_config = tiny_config();
  other_config.seed = 4;
  ExperimentSpec other = spec;
  other.trace.inline_trace = std::make_shared<thermal::TemperatureTrace>(
      thermal::generate_trace(other_config));
  EXPECT_NE(spec.fingerprint(), other.fingerprint());

  // Inline specs serialise (as their hash) but cannot be parsed back.
  EXPECT_THROW(ExperimentSpec::from_text(spec.canonical_text()),
               std::invalid_argument);
}

TEST(Sweep, MutatorRegistryKnowsItsVocabulary) {
  for (const std::string& name : sweep_parameter_names()) {
    EXPECT_NO_THROW(sweep_mutator(name));
  }
  EXPECT_THROW(sweep_mutator("warp_factor"), std::invalid_argument);
  // Registered mutators actually mutate.
  thermal::TraceGeneratorConfig config = tiny_config();
  sweep_mutator("num_modules")(config, 48.0);
  EXPECT_EQ(config.layout.num_modules, 48u);
}

}  // namespace
}  // namespace tegrec::sim
