#include "teg/array.hpp"

#include <stdexcept>

namespace tegrec::teg {

TegArray::TegArray(const DeviceParams& params, std::vector<double> delta_t_k,
                   double ambient_c)
    : params_(params), delta_t_k_(std::move(delta_t_k)), ambient_c_(ambient_c) {
  validate(params_);
  if (delta_t_k_.empty()) throw std::invalid_argument("TegArray: empty array");
  rebuild_modules();
}

void TegArray::set_delta_t(std::vector<double> delta_t_k, double ambient_c) {
  if (delta_t_k.size() != delta_t_k_.size()) {
    throw std::invalid_argument("TegArray::set_delta_t: size change not allowed");
  }
  delta_t_k_ = std::move(delta_t_k);
  ambient_c_ = ambient_c;
  rebuild_modules();
}

void TegArray::rebuild_modules() {
  modules_.clear();
  modules_.reserve(delta_t_k_.size());
  for (double dt : delta_t_k_) {
    if (dt < 0.0) throw std::invalid_argument("TegArray: negative dT");
    modules_.push_back(Module::from_delta_t(params_, dt, ambient_c_));
  }
}

const Module& TegArray::module(std::size_t i) const {
  if (i >= modules_.size()) throw std::out_of_range("TegArray::module");
  return modules_[i];
}

SeriesString TegArray::build_string(const ArrayConfig& config) const {
  if (config.num_modules() != modules_.size()) {
    throw std::invalid_argument("TegArray::build_string: config size mismatch");
  }
  std::vector<ParallelGroup> groups;
  groups.reserve(config.num_groups());
  for (std::size_t j = 0; j < config.num_groups(); ++j) {
    std::vector<Module> members(modules_.begin() + static_cast<std::ptrdiff_t>(config.group_begin(j)),
                                modules_.begin() + static_cast<std::ptrdiff_t>(config.group_end(j)));
    groups.emplace_back(std::move(members));
  }
  return SeriesString(std::move(groups));
}

double TegArray::mpp_power_w(const ArrayConfig& config) const {
  return build_string(config).mpp_power_w();
}

double TegArray::mpp_voltage_v(const ArrayConfig& config) const {
  return build_string(config).mpp_voltage_v();
}

double TegArray::ideal_power_w() const {
  double total = 0.0;
  for (const Module& m : modules_) total += m.mpp_power_w();
  return total;
}

std::vector<double> TegArray::module_mpp_currents() const {
  std::vector<double> out;
  out.reserve(modules_.size());
  for (const Module& m : modules_) out.push_back(m.mpp_current_a());
  return out;
}

}  // namespace tegrec::teg
