// guarded-member fixture: scanned under a synthetic src/sim/ path so the
// concurrency-layer rules apply.  Planted violations are marked; every
// other member exercises one of the rule's exemptions.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

class Planted {
 public:
  void poke();

 private:
  mutable tegrec::util::Mutex mutex_;
  int unguarded_counter_ = 0;  // fires: next to a mutex, no guard
  int guarded_counter_ TEGREC_GUARDED_BY(mutex_) = 0;
  std::atomic<int> atomic_counter_{0};
  const int const_limit_ = 4;
  // tegrec-lint: allow(guarded-member) externally synchronized
  int allowed_counter_ = 0;
  // tegrec-lint: allow(float-eq) wrong rule: must NOT suppress
  int wrong_allow_counter_ = 0;  // fires: the allow names another rule
};

class NoMutexHere {
 public:
  int bare_member = 0;  // clean: this class owns no mutex
};
