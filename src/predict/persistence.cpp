#include "predict/persistence.hpp"

#include <stdexcept>

namespace tegrec::predict {

void PersistencePredictor::fit(const TemperatureHistory& history) {
  if (history.empty()) {
    throw std::invalid_argument("PersistencePredictor::fit: empty history");
  }
  fitted_ = true;
}

std::vector<double> PersistencePredictor::predict_next(
    const TemperatureHistory& history) const {
  if (!fitted_) throw std::logic_error("PersistencePredictor: predict before fit");
  return history.latest();
}

}  // namespace tegrec::predict
