#include "thermal/coolant.hpp"

#include <gtest/gtest.h>

namespace tegrec::thermal {
namespace {

TEST(Coolant, GlycolPropertiesPlausible) {
  const FluidProperties p = coolant_glycol50();
  EXPECT_GT(p.density_kg_m3, 1000.0);   // denser than water
  EXPECT_LT(p.density_kg_m3, 1100.0);
  EXPECT_GT(p.specific_heat_j_kgk, 3000.0);
  EXPECT_LT(p.specific_heat_j_kgk, 4186.0);  // below pure water
}

TEST(Coolant, AirPropertiesPlausible) {
  const FluidProperties p = ambient_air();
  EXPECT_NEAR(p.density_kg_m3, 1.18, 0.05);
  EXPECT_NEAR(p.specific_heat_j_kgk, 1006.0, 10.0);
}

TEST(Coolant, CapacityRateLinearInFlow) {
  const FluidProperties p = coolant_glycol50();
  const double c1 = p.capacity_rate_w_k(1e-3);
  const double c2 = p.capacity_rate_w_k(2e-3);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-9);
  EXPECT_DOUBLE_EQ(p.capacity_rate_w_k(0.0), 0.0);
}

TEST(Coolant, TypicalRadiatorCapacityRate) {
  // 40 L/min of 50/50 glycol: C = rho * V * cp ~= 2.5 kW/K.
  const FluidProperties p = coolant_glycol50();
  const double c = p.capacity_rate_w_k(lpm_to_m3s(40.0));
  EXPECT_GT(c, 2000.0);
  EXPECT_LT(c, 3000.0);
}

TEST(Coolant, FlowUnitConversionsRoundTrip) {
  EXPECT_NEAR(lpm_to_m3s(60.0), 1e-3, 1e-12);
  for (double lpm : {0.0, 1.0, 37.5, 95.0}) {
    EXPECT_NEAR(m3s_to_lpm(lpm_to_m3s(lpm)), lpm, 1e-9);
  }
}

}  // namespace
}  // namespace tegrec::thermal
