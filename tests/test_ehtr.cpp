#include "core/ehtr.hpp"

#include <gtest/gtest.h>

#include "core/inor.hpp"
#include "core/objective.hpp"
#include "util/rng.hpp"

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

// Brute-force optimal contiguous partition into exactly n groups by squared
// group-sum cost (reference for the DP).
double brute_force_cost(const std::vector<double>& impp, std::size_t n) {
  const std::size_t count = impp.size();
  std::vector<double> prefix(count + 1, 0.0);
  for (std::size_t i = 0; i < count; ++i) prefix[i + 1] = prefix[i] + impp[i];
  double best = 1e300;
  // Enumerate boundary masks with exactly n-1 boundaries.
  const std::size_t masks = std::size_t{1} << (count - 1);
  for (std::size_t mask = 0; mask < masks; ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) != n - 1) continue;
    double cost = 0.0;
    std::size_t start = 0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      if (mask & (std::size_t{1} << i)) {
        const double s = prefix[i + 1] - prefix[start];
        cost += s * s;
        start = i + 1;
      }
    }
    const double s = prefix[count] - prefix[start];
    cost += s * s;
    best = std::min(best, cost);
  }
  return best;
}

double config_cost(const std::vector<double>& impp, const teg::ArrayConfig& c) {
  double cost = 0.0;
  for (std::size_t j = 0; j < c.num_groups(); ++j) {
    double s = 0.0;
    for (std::size_t i = c.group_begin(j); i < c.group_end(j); ++i) s += impp[i];
    cost += s * s;
  }
  return cost;
}

TEST(BalancedPartitions, MatchesBruteForceOnRandomInputs) {
  util::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> impp(10);
    for (auto& x : impp) x = rng.uniform(0.2, 2.0);
    const auto partitions = balanced_partitions(impp, 10);
    ASSERT_EQ(partitions.size(), 10u);
    for (std::size_t n = 1; n <= 10; ++n) {
      const teg::ArrayConfig& c = partitions[n - 1];
      EXPECT_EQ(c.num_groups(), n);
      EXPECT_NEAR(config_cost(impp, c), brute_force_cost(impp, n), 1e-9)
          << "trial " << trial << " n " << n;
    }
  }
}

TEST(BalancedPartitions, SingleGroupAndAllSingletons) {
  const std::vector<double> impp{1.0, 2.0, 3.0};
  const auto partitions = balanced_partitions(impp, 3);
  EXPECT_EQ(partitions[0], teg::ArrayConfig::all_parallel(3));
  EXPECT_EQ(partitions[2], teg::ArrayConfig::all_series(3));
}

TEST(BalancedPartitions, InvalidArgsThrow) {
  EXPECT_THROW(balanced_partitions({}, 1), std::invalid_argument);
  EXPECT_THROW(balanced_partitions({1.0}, 2), std::invalid_argument);
  EXPECT_THROW(balanced_partitions({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(balanced_partitions({1.0, -0.5}, 1), std::invalid_argument);
}

TEST(EhtrSearch, AtLeastAsGoodAsInorPerInstant) {
  // EHTR searches the superset (optimal partition, all n), so its
  // instantaneous charger-aware power must match or beat greedy INOR.
  util::Rng rng(23);
  const power::Converter conv(kConv);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<double> dts(16);
    for (auto& dt : dts) dt = rng.uniform(6.0, 38.0);
    const teg::TegArray array(kDev, dts);
    const double p_ehtr = config_power_w(array, conv, ehtr_search(array, conv));
    const double p_inor = config_power_w(
        array, conv, inor_search(array, conv, InorOptions{.nmin = 1, .nmax = 16}));
    EXPECT_GE(p_ehtr, p_inor - 1e-9) << "trial " << trial;
  }
}

TEST(EhtrSearch, NeverExceedsIdeal) {
  const power::Converter conv(kConv);
  std::vector<double> dts(20);
  for (std::size_t i = 0; i < dts.size(); ++i) dts[i] = 36.0 - 1.5 * i;
  const teg::TegArray array(kDev, dts);
  EXPECT_LE(config_power_w(array, conv, ehtr_search(array, conv)),
            array.ideal_power_w() + 1e-9);
}

TEST(EhtrReconfigurer, PeriodicBehaviour) {
  EhtrReconfigurer rec(kDev, kConv, 0.5);
  std::vector<double> dts(12);
  for (std::size_t i = 0; i < dts.size(); ++i) dts[i] = 30.0 - 2.0 * i;
  const UpdateResult r0 = rec.update(0.0, dts, 25.0);
  EXPECT_TRUE(r0.invoked);
  EXPECT_TRUE(r0.actuate);
  const UpdateResult r1 = rec.update(0.2, dts, 25.0);
  EXPECT_FALSE(r1.invoked);
  const UpdateResult r2 = rec.update(0.5, dts, 25.0);
  EXPECT_TRUE(r2.invoked);
  EXPECT_TRUE(r2.actuate);
  EXPECT_FALSE(r2.switched);  // same temps, same config
}

TEST(EhtrReconfigurer, ResetAndBadPeriod) {
  EXPECT_THROW(EhtrReconfigurer(kDev, kConv, -1.0), std::invalid_argument);
  EhtrReconfigurer rec(kDev, kConv, 100.0);
  std::vector<double> dts(8, 20.0);
  rec.update(0.0, dts, 25.0);
  rec.reset();
  EXPECT_TRUE(rec.update(1.0, dts, 25.0).invoked);
}

// DP vs greedy balance quality across group counts: the DP cost is a lower
// bound on the greedy cost.
class DpVsGreedy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DpVsGreedy, DpBalancesNoWorse) {
  const std::size_t n = GetParam();
  util::Rng rng(100 + n);
  std::vector<double> impp(14);
  for (auto& x : impp) x = rng.uniform(0.3, 1.8);
  const auto dp = balanced_partitions(impp, 14)[n - 1];
  const auto greedy = inor_partition(impp, n);
  EXPECT_LE(config_cost(impp, dp), config_cost(impp, greedy) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, DpVsGreedy,
                         ::testing::Values(1, 2, 3, 5, 7, 10, 14));

}  // namespace
}  // namespace tegrec::core
