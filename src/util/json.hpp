// Minimal JSON document model for the batch CLI's machine-readable output.
//
// Just enough of RFC 8259 for round-trippable tool output: null, bool,
// finite numbers, strings, arrays and objects (insertion-ordered, so a
// dumped document is byte-stable).  dump() and parse() are inverses for
// every value this library produces; parse() exists so tests and
// downstream tools can consume `tegrec_cli batch --json` without another
// dependency.  Not a general-purpose parser: no \uXXXX escapes beyond
// ASCII, no duplicate-key policing.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tegrec::util::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

/// Tagged union over the JSON value kinds.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                  // NOLINT
  Value(double n) : kind_(Kind::kNumber), number_(n) {}            // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}                  // NOLINT
  Value(std::size_t n) : Value(static_cast<double>(n)) {}          // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}       // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a);                                                  // NOLINT
  Value(Object o);                                                 // NOLINT

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws std::out_of_range if absent.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<const Array> array_;    // shared: Value stays copyable/cheap
  std::shared_ptr<const Object> object_;
};

/// Serialises a value; `indent` > 0 pretty-prints with that many spaces.
/// Non-finite numbers throw std::invalid_argument (JSON has no NaN/Inf).
std::string dump(const Value& value, int indent = 0);

/// Parses a JSON document; throws std::runtime_error with a byte offset on
/// malformed input or trailing junk.
Value parse(const std::string& text);

}  // namespace tegrec::util::json
