#include "power/charger.hpp"

#include <gtest/gtest.h>

#include "teg/array.hpp"

namespace tegrec::power {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();

teg::SeriesString nominal_string() {
  std::vector<double> dts(50);
  for (std::size_t i = 0; i < dts.size(); ++i) {
    dts[i] = 35.0 - 0.4 * static_cast<double>(i);
  }
  const teg::TegArray array(kDev, dts);
  return array.build_string(teg::ArrayConfig::uniform(50, 10));
}

TEST(Charger, HarvestDeliversEnergyToBattery) {
  Charger charger(ConverterParams{}, BatteryParams{});
  const teg::SeriesString s = nominal_string();
  const OperatingPoint pt = charger.harvest(s, 2.0);
  EXPECT_GT(pt.output_power_w, 0.0);
  EXPECT_NEAR(charger.battery().energy_absorbed_j(), pt.output_power_w * 2.0,
              1e-6);
}

TEST(Charger, ExtractablePowerMatchesHarvestPoint) {
  Charger charger(ConverterParams{}, BatteryParams{});
  const teg::SeriesString s = nominal_string();
  const double p = charger.extractable_power_w(s);
  const OperatingPoint pt = charger.harvest(s, 1.0);
  EXPECT_NEAR(p, pt.output_power_w, 1e-9);
}

TEST(Charger, ExtractableDoesNotAdvanceBattery) {
  Charger charger(ConverterParams{}, BatteryParams{});
  charger.extractable_power_w(nominal_string());
  EXPECT_DOUBLE_EQ(charger.battery().energy_absorbed_j(), 0.0);
}

TEST(Charger, RepeatedHarvestAccumulates) {
  Charger charger(ConverterParams{}, BatteryParams{});
  const teg::SeriesString s = nominal_string();
  for (int i = 0; i < 5; ++i) charger.harvest(s, 1.0);
  const double one = charger.extractable_power_w(s);
  EXPECT_NEAR(charger.battery().energy_absorbed_j(), 5.0 * one, 1e-6);
}

TEST(Charger, OutputBelowArrayPower) {
  Charger charger(ConverterParams{}, BatteryParams{});
  const OperatingPoint pt = charger.harvest(nominal_string(), 1.0);
  EXPECT_LT(pt.output_power_w, pt.array_power_w);  // conversion losses
}

}  // namespace
}  // namespace tegrec::power
