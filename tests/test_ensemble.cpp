#include "predict/ensemble.hpp"

#include <gtest/gtest.h>

#include "predict/holt.hpp"
#include "predict/mlr.hpp"
#include "predict/persistence.hpp"

namespace tegrec::predict {
namespace {

std::vector<std::unique_ptr<Predictor>> mlr_and_persistence() {
  std::vector<std::unique_ptr<Predictor>> members;
  members.push_back(std::make_unique<MlrPredictor>());
  members.push_back(std::make_unique<PersistencePredictor>());
  return members;
}

TemperatureHistory ramp_history(std::size_t modules, std::size_t steps) {
  TemperatureHistory h(modules, steps);
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<double> row(modules);
    for (std::size_t m = 0; m < modules; ++m) {
      row[m] = 60.0 + 0.4 * static_cast<double>(t) + 3.0 * static_cast<double>(m);
    }
    h.push(row);
  }
  return h;
}

TEST(Ensemble, UniformAverageOfMembers) {
  EnsemblePredictor ensemble(mlr_and_persistence());
  const TemperatureHistory h = ramp_history(3, 20);
  ensemble.fit(h);
  ASSERT_TRUE(ensemble.is_fitted());

  MlrPredictor mlr;
  PersistencePredictor naive;
  mlr.fit(h);
  naive.fit(h);
  const auto p_ens = ensemble.predict_next(h);
  const auto p_mlr = mlr.predict_next(h);
  const auto p_naive = naive.predict_next(h);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_NEAR(p_ens[m], 0.5 * (p_mlr[m] + p_naive[m]), 1e-9);
  }
}

TEST(Ensemble, WeightsNormalised) {
  EnsemblePredictor ensemble(mlr_and_persistence(), {3.0, 1.0});
  EXPECT_NEAR(ensemble.weights()[0], 0.75, 1e-12);
  EXPECT_NEAR(ensemble.weights()[1], 0.25, 1e-12);
}

TEST(Ensemble, DegenerateWeightFullyTrustsOneMember) {
  EnsemblePredictor ensemble(mlr_and_persistence(), {1.0, 0.0});
  const TemperatureHistory h = ramp_history(2, 20);
  ensemble.fit(h);
  MlrPredictor mlr;
  mlr.fit(h);
  const auto p_ens = ensemble.predict_next(h);
  const auto p_mlr = mlr.predict_next(h);
  for (std::size_t m = 0; m < 2; ++m) EXPECT_NEAR(p_ens[m], p_mlr[m], 1e-9);
}

TEST(Ensemble, NameAndLags) {
  std::vector<std::unique_ptr<Predictor>> members;
  members.push_back(std::make_unique<MlrPredictor>(MlrParams{.lags = 6}));
  members.push_back(std::make_unique<HoltPredictor>());
  EnsemblePredictor ensemble(std::move(members));
  EXPECT_EQ(ensemble.name(), "Ensemble(MLR+Holt)");
  EXPECT_EQ(ensemble.num_lags(), 6u);  // max over members
  EXPECT_EQ(ensemble.size(), 2u);
}

TEST(Ensemble, Validation) {
  EXPECT_THROW(EnsemblePredictor({}), std::invalid_argument);
  std::vector<std::unique_ptr<Predictor>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(EnsemblePredictor(std::move(with_null)), std::invalid_argument);
  EXPECT_THROW(EnsemblePredictor(mlr_and_persistence(), {1.0}),
               std::invalid_argument);
  EXPECT_THROW(EnsemblePredictor(mlr_and_persistence(), {-1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(EnsemblePredictor(mlr_and_persistence(), {0.0, 0.0}),
               std::invalid_argument);
}

TEST(Ensemble, UnfittedUntilAllMembersFit) {
  EnsemblePredictor ensemble(mlr_and_persistence());
  EXPECT_FALSE(ensemble.is_fitted());
}

TEST(Ensemble, HorizonWorksThroughBaseClass) {
  EnsemblePredictor ensemble(mlr_and_persistence());
  const TemperatureHistory h = ramp_history(2, 25);
  ensemble.fit(h);
  const auto rows = ensemble.predict_horizon(h, 3);
  ASSERT_EQ(rows.size(), 3u);
  // Trending signal + half persistence: forecasts keep increasing.
  EXPECT_GT(rows[2][0], rows[0][0]);
}

}  // namespace
}  // namespace tegrec::predict
