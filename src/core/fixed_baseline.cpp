#include "core/fixed_baseline.hpp"

namespace tegrec::core {

FixedBaselineReconfigurer::FixedBaselineReconfigurer(teg::ArrayConfig config)
    : config_(std::move(config)) {}

FixedBaselineReconfigurer FixedBaselineReconfigurer::square_grid(
    std::size_t num_modules) {
  const auto side = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(num_modules))));
  const std::size_t groups = side == 0 ? 1 : side;
  return FixedBaselineReconfigurer(teg::ArrayConfig::uniform(num_modules, groups));
}

UpdateResult FixedBaselineReconfigurer::update(
    double /*time_s*/, const std::vector<double>& /*delta_t_k*/,
    double /*ambient_c*/) {
  UpdateResult result;
  result.config = config_;
  // The very first call "installs" the wiring; afterwards nothing runs and
  // nothing switches, so the baseline carries no algorithm overhead.
  result.switched = first_;
  result.actuate = first_;
  first_ = false;
  return result;
}

void FixedBaselineReconfigurer::reset() { first_ = true; }

}  // namespace tegrec::core
