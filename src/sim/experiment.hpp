// Standard multi-scheme experiment harness.
//
// Wraps the recurring evaluation pattern of the paper: run DNOR, INOR,
// EHTR and the fixed baseline over one trace with shared device/charger
// parameters, and expose the comparison quantities (energy gain over
// baseline, overhead and runtime ratios) that Table I and Figs. 6-7 are
// built from.  Benches, examples and integration tests all share this.
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace tegrec::sim {

/// Which controllers to include in a comparison run.
struct ComparisonOptions {
  SimulationOptions sim;
  bool include_dnor = true;
  bool include_inor = true;
  bool include_ehtr = true;   ///< O(N^3): disable for very large N
  bool include_baseline = true;
  double control_period_s = 0.5;  ///< INOR/EHTR cadence (paper: 0.5 s per [5])
};

/// Results in a fixed order: DNOR, INOR, EHTR, Baseline (present ones only).
struct ComparisonResult {
  std::vector<SimulationResult> runs;

  /// Finds a run by algorithm name; throws std::out_of_range if absent.
  const SimulationResult& by_name(const std::string& name) const;

  /// DNOR energy gain over the fixed baseline (the paper's "+30%"), as a
  /// fraction; requires both runs to be present.
  double dnor_gain_over_baseline() const;
  /// EHTR/DNOR switch-overhead ratio (the paper's "~100x").
  double overhead_reduction_ratio() const;
  /// EHTR/DNOR amortised-runtime ratio (the paper's "~13x").
  double runtime_speedup_ratio() const;
};

/// Runs the standard four-scheme comparison on a trace.
ComparisonResult run_standard_comparison(const thermal::TemperatureTrace& trace,
                                         const ComparisonOptions& options = {});

}  // namespace tegrec::sim
