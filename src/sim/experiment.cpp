#include "sim/experiment.hpp"

#include <limits>
#include <memory>
#include <stdexcept>

#include "core/dnor.hpp"
#include "core/ehtr.hpp"
#include "core/fixed_baseline.hpp"
#include "core/inor.hpp"
#include "sim/service.hpp"
#include "sim/spec.hpp"

namespace tegrec::sim {

const SimulationResult& ComparisonResult::by_name(const std::string& name) const {
  for (const SimulationResult& r : runs) {
    if (r.algorithm == name) return r;
  }
  throw std::out_of_range("ComparisonResult: no run named '" + name + "'");
}

double ComparisonResult::dnor_gain_over_baseline() const {
  const double base = by_name("Baseline").energy_output_j;
  // A zero-harvest baseline (cold-soak traces can leave the fixed grid
  // below the converter threshold) has no defined gain; 0.0 would read as
  // "no improvement" when DNOR in fact harvested everything.  NaN follows
  // the library's unmeasured-value convention (empty CSV cells, JSON null).
  if (base <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return by_name("DNOR").energy_output_j / base - 1.0;
}

double ComparisonResult::overhead_reduction_ratio() const {
  const double dnor = by_name("DNOR").switch_overhead_j;
  if (dnor <= 0.0) return 0.0;
  return by_name("EHTR").switch_overhead_j / dnor;
}

double ComparisonResult::runtime_speedup_ratio() const {
  const double dnor = by_name("DNOR").avg_runtime_ms;
  if (dnor <= 0.0) return 0.0;
  return by_name("EHTR").avg_runtime_ms / dnor;
}

ComparisonResult run_standard_comparison(const thermal::TemperatureTrace& trace,
                                         const ComparisonOptions& options) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::kComparison;
  spec.trace.kind = TraceSource::Kind::kInline;
  // Non-owning view of the caller's trace (a farm-scale trace is ~100 MB;
  // copying it on every call would dwarf a cache hit).  Safe because this
  // wrapper blocks in wait() until the job is terminal — the only reads of
  // the spec's trace (fingerprinting here, execution on a worker) happen
  // before wait() returns, and nothing reads a terminal job's spec.
  spec.trace.inline_trace = std::shared_ptr<const thermal::TemperatureTrace>(
      std::shared_ptr<const void>(), &trace);
  spec.comparison = options;
  return ExperimentService::shared().submit(spec).wait()->comparison;
}

namespace detail {

ComparisonResult run_comparison_direct(const thermal::TemperatureTrace& trace,
                                       const ComparisonOptions& options) {
  const teg::DeviceParams device = options.sim.device;
  const power::ConverterParams charger = options.sim.converter;

  ComparisonResult out;
  if (options.include_dnor) {
    core::DnorParams p;
    p.control_period_s = options.control_period_s;
    core::DnorReconfigurer dnor(device, charger, p);
    out.runs.push_back(run_simulation(dnor, trace, options.sim));
  }
  if (options.include_inor) {
    core::InorReconfigurer inor(device, charger, options.control_period_s);
    out.runs.push_back(run_simulation(inor, trace, options.sim));
  }
  if (options.include_ehtr) {
    core::EhtrReconfigurer ehtr(device, charger, options.control_period_s,
                                options.sim.num_threads,
                                options.sim.ehtr_max_groups,
                                options.sim.ehtr_warm_start,
                                options.sim.ehtr_warm_width);
    out.runs.push_back(run_simulation(ehtr, trace, options.sim));
  }
  if (options.include_baseline) {
    auto baseline =
        core::FixedBaselineReconfigurer::square_grid(trace.num_modules());
    out.runs.push_back(run_simulation(baseline, trace, options.sim));
  }
  if (out.runs.empty()) {
    throw std::invalid_argument("run_standard_comparison: no schemes selected");
  }
  return out;
}

}  // namespace detail

}  // namespace tegrec::sim
