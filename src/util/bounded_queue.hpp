// Blocking bounded MPMC queue — the experiment service's job channel.
//
// push() applies backpressure (blocks while the queue is at capacity)
// so a flood of submissions cannot grow memory without bound; pop()
// blocks while empty.  close() stops producers, wakes every blocked
// call, and lets consumers drain what remains before pop() starts
// returning nullopt — the shutdown handshake the service destructor
// relies on.  drain() hands back whatever is still queued at close time
// so the owner can mark those jobs cancelled instead of leaving their
// waiters blocked forever.
//
// Locking shape: every locked region is one lexical scope (util::Mutex +
// scoped RAII, checked by Clang thread-safety analysis), and notify
// calls sit after the scope ends so no waiter wakes into a held lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tegrec::util {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity is clamped to at least one slot.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; returns false (dropping the item)
  /// if the queue is closed before space frees up.
  bool push(T item) {
    {
      UniqueLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) space_.wait(lock.native());
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty; returns nullopt once the queue is
  /// closed and drained.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      UniqueLock lock(mutex_);
      while (!closed_ && items_.empty()) ready_.wait(lock.native());
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    space_.notify_one();
    return item;
  }

  /// Stops producers and wakes every blocked push/pop.  Idempotent.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Removes and returns everything currently queued without blocking.
  std::vector<T> drain() {
    std::vector<T> out;
    {
      MutexLock lock(mutex_);
      out.assign(std::make_move_iterator(items_.begin()),
                 std::make_move_iterator(items_.end()));
      items_.clear();
    }
    space_.notify_all();
    return out;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<T> items_ TEGREC_GUARDED_BY(mutex_);
  bool closed_ TEGREC_GUARDED_BY(mutex_) = false;
};

}  // namespace tegrec::util
