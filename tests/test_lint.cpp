// tegrec_lint rule tests: each fixture under tests/lint_fixtures/ plants
// known violations at known lines; this suite asserts every rule fires
// exactly where expected, that suppressions and the baseline work, and
// that the real repo is lint-clean (the same invariant the lint_repo
// CTest entry gates on, but with readable per-rule failure messages).
//
// Fixtures are scanned under *synthetic* relpaths (e.g. src/core/...)
// because rule applicability is path-driven; the fixture directory itself
// is never compiled (the build only globs tests/*.cpp).
//
// TEGREC_SOURCE_DIR is injected by CMake for this test only.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

#ifndef TEGREC_SOURCE_DIR
#error "test_lint needs TEGREC_SOURCE_DIR (see CMakeLists.txt)"
#endif

namespace tegrec::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return buffer.str();
}

std::string fixture(const std::string& name) {
  return read_file(fs::path(TEGREC_SOURCE_DIR) / "tests" / "lint_fixtures" /
                   name);
}

/// Sorted (rule, line) pairs for all findings of `rule`.
std::vector<std::size_t> lines_of(const std::vector<Finding>& findings,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string dump(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << "  " << f.file << ":" << f.line << ": [" << f.rule << "] "
       << f.message << "\n";
  }
  return os.str();
}

// ------------------------------------------------------------- determinism

TEST(LintDeterminism, FiresOnEveryPlantedWallClockAndRngSite) {
  const auto findings =
      scan_source("src/core/bad_wallclock.cpp", fixture("bad_wallclock.cpp"));
  EXPECT_EQ(lines_of(findings, "determinism"),
            (std::vector<std::size_t>{8, 9, 12, 16, 18}))
      << dump(findings);
  // Nothing else in the fixture should trip other rules.
  EXPECT_EQ(findings.size(), 5u) << dump(findings);
}

TEST(LintDeterminism, DoesNotApplyOutsideSimulationLayers) {
  // Same content, but under src/util (the sanctioned-wrapper substrate)
  // and under tools/: the determinism rule must not apply.
  const auto util_findings =
      scan_source("src/util/bad_wallclock.cpp", fixture("bad_wallclock.cpp"));
  EXPECT_TRUE(lines_of(util_findings, "determinism").empty())
      << dump(util_findings);
  const auto tool_findings =
      scan_source("tools/bad_wallclock.cpp", fixture("bad_wallclock.cpp"));
  EXPECT_TRUE(lines_of(tool_findings, "determinism").empty())
      << dump(tool_findings);
}

TEST(LintDeterminism, SanctionedWrappersStayClean) {
  // The one wall-clock door (util/runtime_clock.hpp) and the RNG door
  // (util/rng.hpp) live in src/util, outside the determinism scope, and
  // must scan clean under their real paths.
  for (const char* rel : {"src/util/runtime_clock.hpp", "src/util/rng.hpp"}) {
    const auto findings =
        scan_source(rel, read_file(fs::path(TEGREC_SOURCE_DIR) / rel));
    EXPECT_TRUE(findings.empty()) << rel << ":\n" << dump(findings);
  }
}

// ------------------------------------------------------------ float hygiene

TEST(LintFloat, EqFiresOnLiteralComparisonsOnly) {
  const auto findings =
      scan_source("src/core/bad_float.cpp", fixture("bad_float.cpp"));
  EXPECT_EQ(lines_of(findings, "float-eq"), (std::vector<std::size_t>{6, 7}))
      << dump(findings);
}

TEST(LintFloat, TolFiresOnBareLiteralTolerancesOnly) {
  const auto findings =
      scan_source("src/core/bad_float.cpp", fixture("bad_float.cpp"));
  EXPECT_EQ(lines_of(findings, "float-tol"), (std::vector<std::size_t>{9, 11}))
      << dump(findings);
  // Nothing beyond the four planted float findings (comments and string
  // contents mentioning violations must be stripped before scanning).
  EXPECT_EQ(findings.size(), 4u) << dump(findings);
}

// ------------------------------------------------------------- suppression

TEST(LintSuppression, AllowCommentsSuppressOnlyTheNamedRule) {
  const auto findings =
      scan_source("src/core/suppressed.cpp", fixture("suppressed.cpp"));
  // Same-line, preceding-comment-line, and multi-rule allow() forms all
  // suppress; an allow() naming the wrong rule does not.
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "float-eq");
  EXPECT_EQ(findings[0].line, 16u);
}

// ---------------------------------------------------------------- api-io

TEST(LintApiIo, FiresOnConsoleIoButNotStringFormatting) {
  const auto findings =
      scan_source("src/sim/bad_api_io.cpp", fixture("bad_api_io.cpp"));
  EXPECT_EQ(lines_of(findings, "api-io"), (std::vector<std::size_t>{7, 8, 9}))
      << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

// ------------------------------------------------------------ raw-publish

TEST(LintRawPublish, FiresOnOfstreamAndRenameButNotTheUtilDoor) {
  const auto findings = scan_source("src/sim/bad_raw_publish.cpp",
                                    fixture("bad_raw_publish.cpp"));
  // std::ofstream (8), std::filesystem::rename (10), ::rename (11); the
  // door wrappers rename_file/atomic_write_file and the allow()-suppressed
  // ofstream must stay clean.
  EXPECT_EQ(lines_of(findings, "raw-publish"),
            (std::vector<std::size_t>{8, 10, 11}))
      << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

TEST(LintRawPublish, AppliesOnlyUnderSimLayer) {
  // The same content under src/util (home of the sanctioned door) or under
  // tools/ must not trip the rule — the funnel constrains the simulation
  // layer, not the door's own implementation.
  const auto util_findings = scan_source("src/util/bad_raw_publish.cpp",
                                         fixture("bad_raw_publish.cpp"));
  EXPECT_TRUE(lines_of(util_findings, "raw-publish").empty())
      << dump(util_findings);
  const auto tool_findings = scan_source("tools/bad_raw_publish.cpp",
                                         fixture("bad_raw_publish.cpp"));
  EXPECT_TRUE(lines_of(tool_findings, "raw-publish").empty())
      << dump(tool_findings);
}

// ----------------------------------------------------------- header rules

TEST(LintHeader, IfndefGuardAndUsingNamespaceAreFlagged) {
  const auto findings =
      scan_source("src/util/bad_header.hpp", fixture("bad_header.hpp"));
  EXPECT_EQ(lines_of(findings, "using-namespace"),
            (std::vector<std::size_t>{8}))
      << dump(findings);
  const auto guard = lines_of(findings, "include-guard");
  ASSERT_EQ(guard.size(), 1u) << dump(findings);
  // The message distinguishes ifndef guards from no guard at all.
  for (const Finding& f : findings) {
    if (f.rule == "include-guard") {
      EXPECT_NE(f.message.find("#ifndef"), std::string::npos) << f.message;
    }
  }
}

TEST(LintHeader, MissingGuardIsFlagged) {
  const auto findings = scan_source("src/util/bad_missing_guard.hpp",
                                    fixture("bad_missing_guard.hpp"));
  EXPECT_EQ(lines_of(findings, "include-guard"),
            (std::vector<std::size_t>{1}))
      << dump(findings);
}

TEST(LintHeader, RulesDoNotApplyToCppFiles) {
  const auto findings =
      scan_source("src/util/bad_header.cpp", fixture("bad_header.hpp"));
  EXPECT_TRUE(lines_of(findings, "include-guard").empty()) << dump(findings);
  EXPECT_TRUE(lines_of(findings, "using-namespace").empty()) << dump(findings);
}

// --------------------------------------------------------- guarded-member

TEST(LintGuardedMember, FiresOnUnguardedMembersOfMutexOwningClasses) {
  const auto findings = scan_source("src/sim/bad_unguarded_member.cpp",
                                    fixture("bad_unguarded_member.cpp"));
  // Line 13: plain member next to a mutex.  Line 20: its allow() names a
  // different rule and must NOT suppress.  The annotated, atomic, const
  // and correctly-allowed members — and the mutex-free class — are clean.
  EXPECT_EQ(lines_of(findings, "guarded-member"),
            (std::vector<std::size_t>{13, 20}))
      << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
  for (const Finding& f : findings) {
    if (f.line == 13) {
      EXPECT_EQ(f.detail, "Planted.unguarded_counter_");
    }
    if (f.line == 20) {
      EXPECT_EQ(f.detail, "Planted.wrong_allow_counter_");
    }
  }
}

TEST(LintGuardedMember, AppliesOnlyInConcurrencyLayer) {
  const auto findings = scan_source("src/core/bad_unguarded_member.cpp",
                                    fixture("bad_unguarded_member.cpp"));
  EXPECT_TRUE(lines_of(findings, "guarded-member").empty())
      << dump(findings);
}

// -------------------------------------------------------- lock-discipline

TEST(LintLockDiscipline, FiresOnRawPrimitivesButNotTheRaiiDoor) {
  const auto findings =
      scan_source("src/sim/bad_raw_lock.cpp", fixture("bad_raw_lock.cpp"));
  // 7: std::mutex declaration; 10/11/12: raw .lock/.unlock/.try_lock.
  // The allow()-suppressed unlock and the util::MutexLock usage are clean.
  EXPECT_EQ(lines_of(findings, "lock-discipline"),
            (std::vector<std::size_t>{7, 10, 11, 12}))
      << dump(findings);
  EXPECT_EQ(findings.size(), 4u) << dump(findings);
}

TEST(LintLockDiscipline, MutexWrapperFileIsExempt) {
  // The annotated RAII door has to touch the raw primitives; the same
  // content scanned under its real path must not trip the rule.
  const auto findings =
      scan_source("src/util/mutex.hpp", fixture("bad_raw_lock.cpp"));
  EXPECT_TRUE(lines_of(findings, "lock-discipline").empty())
      << dump(findings);
}

TEST(LintLockDiscipline, DetachIsBannedRepoWide) {
  // src/core is outside the concurrency layer; .detach() fires anyway.
  const auto findings = scan_source("src/core/bad_detached_thread.cpp",
                                    fixture("bad_detached_thread.cpp"));
  ASSERT_EQ(lines_of(findings, "lock-discipline"),
            (std::vector<std::size_t>{7}))
      << dump(findings);
  EXPECT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_NE(findings[0].message.find("detach"), std::string::npos)
      << findings[0].message;
}

// ------------------------------------------------------- annotation-drift

TEST(LintAnnotationDrift, HeaderNamingMutexWithoutAnnotationsFails) {
  const auto findings = scan_source("src/util/bad_unannotated_header.hpp",
                                    fixture("bad_unannotated_header.hpp"));
  EXPECT_EQ(lines_of(findings, "annotation-drift"),
            (std::vector<std::size_t>{1}))
      << dump(findings);
  // The unguarded member also fires on its own line — the two rules catch
  // the same drift from different angles.
  EXPECT_EQ(lines_of(findings, "guarded-member"),
            (std::vector<std::size_t>{14}))
      << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(LintAnnotationDrift, OnlyConcurrencyLayerHeadersAreChecked) {
  const auto cpp = scan_source("src/util/bad_unannotated_header.cpp",
                               fixture("bad_unannotated_header.hpp"));
  EXPECT_TRUE(lines_of(cpp, "annotation-drift").empty()) << dump(cpp);
  const auto outside = scan_source("src/core/bad_unannotated_header.hpp",
                                   fixture("bad_unannotated_header.hpp"));
  EXPECT_TRUE(lines_of(outside, "annotation-drift").empty())
      << dump(outside);
  EXPECT_TRUE(lines_of(outside, "guarded-member").empty()) << dump(outside);
}

// ------------------------------------------------------------- cache-key

TEST(LintCacheKey, ParsesDataMembersOnly) {
  const auto fields =
      parse_struct_fields(fixture("cache_key_config.hpp"), "DemoConfig");
  std::vector<std::string> names;
  names.reserve(fields.size());
  for (const FieldDecl& f : fields) names.push_back(f.name);
  // Member functions, the nested enum, the static member, and operator==
  // must all be skipped; declaration lines must be exact.
  EXPECT_EQ(names, (std::vector<std::string>{"mode", "duration_s", "gains",
                                             "not_serialised_w",
                                             "debug_label"}));
  for (const FieldDecl& f : fields) {
    if (f.name == "not_serialised_w") {
      EXPECT_EQ(f.line, 19u);
    }
    if (f.name == "mode") {
      EXPECT_EQ(f.line, 16u);
    }
  }
}

TEST(LintCacheKey, FlagsUnserialisedFieldButHonoursExclusions) {
  const StructSpec spec{"tests/lint_fixtures/cache_key_config.hpp",
                        "DemoConfig",
                        {{"debug_label", "execution hint, not physics"}}};
  const auto findings =
      check_cache_key(spec, fixture("cache_key_config.hpp"),
                      fixture("cache_key_bindings.cpp"), "bindings.cpp");
  // Exactly one violation: not_serialised_w is only mentioned in comments
  // of the bindings file, which must not count.
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "cache-key");
  EXPECT_EQ(findings[0].line, 19u);
  EXPECT_EQ(findings[0].detail, "DemoConfig.not_serialised_w");
}

TEST(LintCacheKey, FlagsStaleExclusionsAndRenamedStructs) {
  StructSpec spec{"cache_key_config.hpp",
                  "DemoConfig",
                  {{"debug_label", "exec"}, {"ghost_field", "obsolete"}}};
  auto findings =
      check_cache_key(spec, fixture("cache_key_config.hpp"),
                      fixture("cache_key_bindings.cpp"), "bindings.cpp");
  bool stale_flagged = false;
  for (const Finding& f : findings) {
    if (f.detail == "stale-exclusion:DemoConfig.ghost_field") {
      stale_flagged = true;
    }
  }
  EXPECT_TRUE(stale_flagged) << dump(findings);

  // A renamed struct must fail loudly, not silently stop being checked.
  spec.struct_name = "RenamedConfig";
  findings = check_cache_key(spec, fixture("cache_key_config.hpp"),
                             fixture("cache_key_bindings.cpp"),
                             "bindings.cpp");
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].detail, "struct:RenamedConfig");
}

TEST(LintCacheKey, RealStructTableParsesKnownFields) {
  // Contains-checks (not exact sets) so future fields do not break this
  // test; their serialisation is covered by the repo-clean test below and
  // by tests/test_fingerprint_fields.cpp at runtime.
  struct Expect {
    const char* header;
    const char* name;
    std::vector<std::string> some_fields;
  };
  const std::vector<Expect> expects = {
      {"src/sim/spec.hpp", "ExperimentSpec", {"kind", "trace", "mc_num_seeds"}},
      {"src/thermal/trace.hpp",
       "TraceGeneratorConfig",
       {"sample_dt_s", "sim_dt_s", "seed"}},
      {"src/thermal/drive_cycle.hpp", "DriveSegment", {"duration_s"}},
  };
  for (const Expect& e : expects) {
    const auto fields = parse_struct_fields(
        read_file(fs::path(TEGREC_SOURCE_DIR) / e.header), e.name);
    ASSERT_FALSE(fields.empty()) << e.name << " not found in " << e.header;
    std::set<std::string> names;
    for (const FieldDecl& f : fields) names.insert(f.name);
    for (const std::string& want : e.some_fields) {
      EXPECT_EQ(names.count(want), 1u)
          << e.name << " missing expected field " << want;
    }
  }
}

// ------------------------------------------------------ baseline mechanics

TEST(LintBaseline, ParseIgnoresCommentsAndFiltersFindings) {
  const auto keys = parse_baseline(
      "# comment\n"
      "\n"
      "float-eq|src/foo.cpp|x == 0.0\n"
      "  determinism|src/bar.cpp|rand()  \n");
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys.count("float-eq|src/foo.cpp|x == 0.0"), 1u);
  EXPECT_EQ(keys.count("determinism|src/bar.cpp|rand()"), 1u);

  const Finding f{"src/foo.cpp", 12, "float-eq", "x == 0.0", "msg"};
  EXPECT_EQ(baseline_key(f), "float-eq|src/foo.cpp|x == 0.0");
}

// ------------------------------------------------------------- repo gate

TEST(LintRepo, RealSourceTreeIsCleanWithEmptyBaseline) {
  // The shipped baseline is empty: every historical violation was fixed in
  // this PR.  This is the same gate as the lint_repo CTest entry, kept
  // here too so a violation shows up with per-finding context in GTest
  // output.
  const RepoReport report = run_repo_lint(TEGREC_SOURCE_DIR, {});
  EXPECT_TRUE(report.findings.empty()) << dump(report.findings);
  EXPECT_TRUE(report.stale_baseline.empty());
  EXPECT_GT(report.files_scanned, 50u);
}

TEST(LintRepo, BaselineSuppressesAndReportsStaleEntries) {
  // Seed the baseline with one real-shaped key and one junk key: the junk
  // key must come back as stale (the ratchet only ever tightens).
  const std::set<std::string> baseline = {
      "determinism|src/never/exists.cpp|rand()"};
  const RepoReport report = run_repo_lint(TEGREC_SOURCE_DIR, baseline);
  EXPECT_TRUE(report.findings.empty()) << dump(report.findings);
  EXPECT_EQ(report.stale_baseline.size(), 1u);
}

// -------------------------------------------------------------- stripping

TEST(LintStrip, PreservesLineStructureAndRemovesProse) {
  const std::string in =
      "int x; // steady_clock\n"
      "/* rand() spans\n"
      "   lines */ int y;\n"
      "const char* s = \"printf(\";\n"
      "auto r = R\"(cout << x)\";\n";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("steady_clock"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("printf"), std::string::npos);
  EXPECT_EQ(out.find("cout"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
  EXPECT_NE(out.find("int y;"), std::string::npos);
}

}  // namespace
}  // namespace tegrec::lint
