// SimStepper: the streaming decomposition of run_simulation() must be
// *bit-identical* to the batch path — same controllers, same traces, same
// doubles — and a checkpoint cycle through the on-disk codec mid-run must
// not perturb a single bit of the remainder.  These are the tentpole
// invariants of the streaming subsystem; everything else (telemetry
// parsing, the server) builds on them.
#include "sim/stepper.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dnor.hpp"
#include "core/ehtr.hpp"
#include "core/fixed_baseline.hpp"
#include "core/inor.hpp"
#include "predict/bpnn.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "thermal/scenario.hpp"
#include "thermal/trace.hpp"

namespace tegrec::sim {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

// Two distinct short workloads: a steep urban gradient and a scenario from
// the named registry, shrunk for test speed.
thermal::TemperatureTrace urban_trace() {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 20;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 30.0, 32.0, 0.0}};
  config.seed = 5;
  return thermal::generate_trace(config);
}

thermal::TemperatureTrace scenario_trace() {
  thermal::TraceGeneratorConfig config = thermal::scenario("winter_cold_start");
  config.layout.num_modules = 16;
  for (auto& segment : config.segments) segment.duration_s *= 0.05;
  return thermal::generate_trace(config);
}

std::vector<thermal::TemperatureTrace> test_traces() {
  std::vector<thermal::TemperatureTrace> traces;
  traces.push_back(urban_trace());
  traces.push_back(scenario_trace());
  return traces;
}

std::unique_ptr<core::Reconfigurer> make_controller(const std::string& scheme,
                                                    std::size_t num_modules) {
  StreamConfig config;
  config.scheme = parse_stream_scheme(scheme);
  config.num_modules = num_modules;
  config.sim.num_threads = 1;
  return make_stream_controller(config);
}

TraceSample sample_at(const thermal::TemperatureTrace& trace, std::size_t t) {
  TraceSample sample;
  sample.time_s = static_cast<double>(t) * trace.dt_s();
  sample.module_temps_c = trace.step_temperatures(t);
  sample.ambient_c = trace.ambient_c(t);
  return sample;
}

/// Bit-exact result comparison: every double compared with EXPECT_EQ, no
/// tolerances anywhere — "close" is not "identical".
void expect_bit_identical(const SimulationResult& a,
                          const SimulationResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.energy_output_j, b.energy_output_j);
  EXPECT_EQ(a.switch_overhead_j, b.switch_overhead_j);
  EXPECT_EQ(a.ideal_energy_j, b.ideal_energy_j);
  EXPECT_EQ(a.num_invocations, b.num_invocations);
  EXPECT_EQ(a.num_switch_events, b.num_switch_events);
  EXPECT_EQ(a.total_switch_actuations, b.total_switch_actuations);
  EXPECT_EQ(a.battery_energy_j, b.battery_energy_j);
  EXPECT_EQ(a.final_soc, b.final_soc);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    const StepRecord& x = a.steps[i];
    const StepRecord& y = b.steps[i];
    EXPECT_EQ(x.time_s, y.time_s) << "step " << i;
    EXPECT_EQ(x.gross_power_w, y.gross_power_w) << "step " << i;
    EXPECT_EQ(x.net_power_w, y.net_power_w) << "step " << i;
    EXPECT_EQ(x.ideal_power_w, y.ideal_power_w) << "step " << i;
    EXPECT_EQ(x.invoked, y.invoked) << "step " << i;
    EXPECT_EQ(x.switched, y.switched) << "step " << i;
    EXPECT_EQ(x.switch_actuations, y.switch_actuations) << "step " << i;
    EXPECT_EQ(x.overhead_energy_j, y.overhead_energy_j) << "step " << i;
  }
}

// The tentpole identity: batch == stepper, for every controller on every
// scenario.  (avg_runtime_ms and compute_time_s are wall-clock statistics
// and deliberately not part of the identity.)
TEST(Stepper, BatchEqualsStreamedForEveryScheme) {
  for (const auto& trace : test_traces()) {
    for (const std::string scheme : {"dnor", "inor", "ehtr", "baseline"}) {
      SCOPED_TRACE(scheme + " over " + std::to_string(trace.num_modules()) +
                   " modules");
      SimulationOptions options;
      options.num_threads = 1;
      const auto batch_controller =
          make_controller(scheme, trace.num_modules());
      const SimulationResult batch =
          run_simulation(*batch_controller, trace, options);

      const auto stream_controller =
          make_controller(scheme, trace.num_modules());
      SimStepper stepper(*stream_controller, trace.dt_s(),
                         trace.num_modules(), options);
      for (std::size_t t = 0; t < trace.num_steps(); ++t) {
        stepper.step(sample_at(trace, t));
      }
      expect_bit_identical(batch, stepper.result());
    }
  }
}

// Checkpoint-cycle identity: snapshot mid-run, restore into a *fresh*
// controller + stepper, finish both runs — the interrupted run's result
// must be bit-identical to the uninterrupted one.
TEST(Stepper, CheckpointCycleMidRunIsBitIdentical) {
  for (const auto& trace : test_traces()) {
    for (const std::string scheme : {"dnor", "inor", "ehtr", "baseline"}) {
      SCOPED_TRACE(scheme + " over " + std::to_string(trace.num_modules()) +
                   " modules");
      SimulationOptions options;
      options.num_threads = 1;
      const auto reference_controller =
          make_controller(scheme, trace.num_modules());
      SimStepper reference(*reference_controller, trace.dt_s(),
                           trace.num_modules(), options);
      for (std::size_t t = 0; t < trace.num_steps(); ++t) {
        reference.step(sample_at(trace, t));
      }

      const std::size_t cut = trace.num_steps() / 2;
      const auto first_controller =
          make_controller(scheme, trace.num_modules());
      SimStepper first(*first_controller, trace.dt_s(), trace.num_modules(),
                       options);
      for (std::size_t t = 0; t < cut; ++t) first.step(sample_at(trace, t));
      ASSERT_TRUE(first.checkpointable());
      const StepperState snapshot = first.state();

      const auto second_controller =
          make_controller(scheme, trace.num_modules());
      SimStepper second(*second_controller, trace.dt_s(),
                        trace.num_modules(), options);
      second.restore_state(snapshot);
      EXPECT_EQ(second.steps_consumed(), cut);
      for (std::size_t t = cut; t < trace.num_steps(); ++t) {
        second.step(sample_at(trace, t));
      }
      expect_bit_identical(reference.result(), second.result());
    }
  }
}

// run_simulation is now a thin loop over SimStepper; the empty trace still
// short-circuits to an all-zero result.
TEST(Stepper, EmptyResultHasDocumentedPartialSemantics) {
  core::InorReconfigurer inor(kDev, kConv);
  SimStepper stepper(inor, 0.5, 8);
  const SimulationResult empty = stepper.result();
  EXPECT_EQ(empty.steps.size(), 0u);
  EXPECT_EQ(empty.energy_output_j, 0.0);
  EXPECT_EQ(empty.avg_runtime_ms, 0.0);           // documented: 0.0, not NaN
  EXPECT_EQ(empty.runtime_per_invocation_ms, 0.0);
  EXPECT_EQ(empty.mean_power_w(), 0.0);
  EXPECT_EQ(empty.ratio_to_ideal(), 0.0);
  EXPECT_TRUE(stepper.current_group_starts().empty());
}

// Partial totals cover exactly the consumed prefix: feeding k of n steps
// reproduces the first k steps of the full run, and avg_runtime_ms divides
// by k, not n.
TEST(Stepper, PartialRunTotalsCoverConsumedPrefix) {
  const auto trace = urban_trace();
  SimulationOptions options;
  options.num_threads = 1;
  const auto full_controller = make_controller("inor", trace.num_modules());
  const SimulationResult full = run_simulation(*full_controller, trace, options);

  const std::size_t k = trace.num_steps() / 3;
  const auto controller = make_controller("inor", trace.num_modules());
  SimStepper stepper(*controller, trace.dt_s(), trace.num_modules(), options);
  double energy = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    energy += stepper.step(sample_at(trace, t)).net_power_w * trace.dt_s();
  }
  const SimulationResult partial = stepper.result();
  ASSERT_EQ(partial.steps.size(), k);
  EXPECT_EQ(partial.energy_output_j, energy);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(partial.steps[i].net_power_w, full.steps[i].net_power_w);
  }
}

// Validation: a bad sample throws and leaves the stepper untouched.
TEST(Stepper, RejectsMalformedSamplesWithoutAdvancing) {
  const auto trace = urban_trace();
  core::InorReconfigurer inor(kDev, kConv);
  SimStepper stepper(inor, trace.dt_s(), trace.num_modules());
  stepper.step(sample_at(trace, 0));
  const SimulationResult before = stepper.result();

  TraceSample wrong_width = sample_at(trace, 1);
  wrong_width.module_temps_c.pop_back();
  EXPECT_THROW(stepper.step(wrong_width), std::invalid_argument);

  TraceSample non_finite = sample_at(trace, 1);
  non_finite.module_temps_c[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(stepper.step(non_finite), std::invalid_argument);

  TraceSample off_grid = sample_at(trace, 1);
  off_grid.time_s += 0.6 * trace.dt_s();  // beyond the half-step tolerance
  EXPECT_THROW(stepper.step(off_grid), std::invalid_argument);

  TraceSample skipped = sample_at(trace, 3);  // a gap, not the next point
  EXPECT_THROW(stepper.step(skipped), std::invalid_argument);

  expect_bit_identical(before, stepper.result());
  stepper.step(sample_at(trace, 1));  // the stream continues cleanly
  EXPECT_EQ(stepper.steps_consumed(), 2u);
}

// DNOR over BPNN is honest about its impurity: the persistent SGD RNG
// makes a refit non-reproducible, so the stepper must refuse to snapshot
// rather than emit a checkpoint that resumes a different future.
TEST(Stepper, BpnnBackedDnorRefusesToCheckpoint) {
  predict::BpnnParams params;
  params.epochs = 2;
  auto dnor = std::make_unique<core::DnorReconfigurer>(
      kDev, kConv, core::DnorParams{},
      std::make_unique<predict::BpnnPredictor>(params));
  SimStepper stepper(*dnor, 0.5, 8);
  EXPECT_FALSE(stepper.checkpointable());
  EXPECT_THROW(stepper.state(), std::logic_error);
}

// A corrupt snapshot is rejected wholesale: nothing about the stepper may
// change when restore_state throws.
TEST(Stepper, RestoreIsAllOrNothing) {
  const auto trace = urban_trace();
  const auto controller = make_controller("inor", trace.num_modules());
  SimStepper stepper(*controller, trace.dt_s(), trace.num_modules());
  for (std::size_t t = 0; t < 6; ++t) stepper.step(sample_at(trace, t));
  const StepperState good = stepper.state();
  const SimulationResult before = stepper.result();

  StepperState bad_counts = good;
  bad_counts.steps_consumed += 1;  // disagrees with the step table
  EXPECT_THROW(stepper.restore_state(bad_counts), std::runtime_error);

  StepperState bad_fabric = good;
  bad_fabric.fabric_group_starts.clear();  // contradicts has_fabric
  EXPECT_THROW(stepper.restore_state(bad_fabric), std::runtime_error);

  StepperState bad_soc = good;
  bad_soc.battery_soc = 2.0;
  EXPECT_THROW(stepper.restore_state(bad_soc), std::runtime_error);

  StepperState bad_blob = good;
  bad_blob.controller_state = "garbage v0\n";
  EXPECT_THROW(stepper.restore_state(bad_blob), std::runtime_error);

  expect_bit_identical(before, stepper.result());
  stepper.step(sample_at(trace, 6));  // still on its original trajectory
  EXPECT_EQ(stepper.steps_consumed(), 7u);
}

// The disk round-trip door: save() then restore() into a fresh stepper
// continues bit-identically, and the stamp is enforced.
TEST(Stepper, SaveRestoreRoundTripsThroughDisk) {
  const auto trace = urban_trace();
  StreamConfig config;
  config.scheme = StreamScheme::kDnor;
  config.dt_s = trace.dt_s();
  config.num_modules = trace.num_modules();
  config.sim.num_threads = 1;
  const std::string stamp = stream_config_fingerprint_text(config);
  const std::string path =
      testing::TempDir() + "/stepper_roundtrip_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
      ".ckpt";

  const auto reference_controller = make_stream_controller(config);
  SimStepper reference(*reference_controller, config.dt_s, config.num_modules,
                       config.sim);
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    reference.step(sample_at(trace, t));
  }

  const std::size_t cut = trace.num_steps() / 2;
  const auto first_controller = make_stream_controller(config);
  SimStepper first(*first_controller, config.dt_s, config.num_modules,
                   config.sim);
  for (std::size_t t = 0; t < cut; ++t) first.step(sample_at(trace, t));
  first.save(path, stamp);

  const auto second_controller = make_stream_controller(config);
  SimStepper second(*second_controller, config.dt_s, config.num_modules,
                    config.sim);
  second.restore(path, stamp);
  for (std::size_t t = cut; t < trace.num_steps(); ++t) {
    second.step(sample_at(trace, t));
  }
  expect_bit_identical(reference.result(), second.result());

  // A different configuration must refuse the same file.
  StreamConfig other = config;
  other.control_period_s *= 2.0;
  const auto third_controller = make_stream_controller(other);
  SimStepper third(*third_controller, other.dt_s, other.num_modules,
                   other.sim);
  EXPECT_THROW(third.restore(path, stream_config_fingerprint_text(other)),
               std::runtime_error);
  EXPECT_THROW(third.restore(path + ".missing", stamp), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tegrec::sim
