#include "power/incremental_conductance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tegrec::power {

namespace {

/// Voltage increments below this are measurement-noise-level on the
/// simulated divider and cannot define a finite dI/dV slope.
constexpr double kMinVoltageStepV = 1e-12;

}  // namespace

IncrementalConductanceTracker::IncrementalConductanceTracker(double step_a,
                                                             double tolerance)
    : step_a_(step_a), tolerance_(tolerance) {
  if (step_a <= 0.0) {
    throw std::invalid_argument("IncrementalConductanceTracker: step <= 0");
  }
  if (tolerance <= 0.0) {
    throw std::invalid_argument("IncrementalConductanceTracker: tolerance <= 0");
  }
}

void IncrementalConductanceTracker::reset(double current_a) {
  current_a_ = std::max(0.0, current_a);
  primed_ = false;
  converged_ = false;
}

OperatingPoint IncrementalConductanceTracker::step(
    const teg::SeriesString& string, const Converter& converter) {
  OperatingPoint pt;
  pt.current_a = current_a_;
  pt.voltage_v = string.voltage_at_current(current_a_);
  pt.array_power_w = std::max(0.0, string.power_at_current(current_a_));
  pt.output_power_w = converter.output_power_w(pt.voltage_v, pt.array_power_w);

  double direction = 0.0;
  if (!primed_ || std::abs(pt.voltage_v - prev_voltage_v_) < kMinVoltageStepV) {
    // No voltage increment to measure yet: nudge upward to prime dV.
    direction = pt.voltage_v > 0.0 ? 1.0 : -1.0;
    primed_ = true;
  } else {
    const double di = pt.current_a - prev_current_a_;
    const double dv = pt.voltage_v - prev_voltage_v_;
    const double inc_conductance = di / dv;
    const double neg_inst = pt.voltage_v > 1e-12
                                ? -pt.current_a / pt.voltage_v
                                : -1e12;
    const double mismatch = inc_conductance - neg_inst;
    if (std::abs(mismatch) <= tolerance_) {
      converged_ = true;
      direction = 0.0;  // hold: no limit cycle, unlike P&O
    } else {
      converged_ = false;
      // For a source with dI/dV = -1/R: mismatch = I/V - 1/R.  Positive
      // mismatch means V < VMPP (overloaded: current too high) -> back the
      // current off; negative means V > VMPP -> draw more.
      direction = mismatch > 0.0 ? -1.0 : 1.0;
    }
  }
  prev_voltage_v_ = pt.voltage_v;
  prev_current_a_ = pt.current_a;
  const double isc = string.total_voc_v() / string.total_resistance_ohm();
  current_a_ = std::clamp(current_a_ + direction * step_a_, 0.0, isc);
  return pt;
}

OperatingPoint IncrementalConductanceTracker::run(const teg::SeriesString& string,
                                                  const Converter& converter,
                                                  std::size_t iters) {
  OperatingPoint pt;
  for (std::size_t k = 0; k < iters; ++k) pt = step(string, converter);
  return pt;
}

}  // namespace tegrec::power
