// Equivalence and determinism suite for the optimised EHTR hot path:
//  * the divide-and-conquer partition DP must reproduce the legacy cubic
//    oracle's partition costs bit-for-bit (same objective, same tie-break),
//  * ArrayEvaluator's cached scoring must match the SeriesString path to
//    1e-12 relative,
//  * parallel candidate scoring must be bit-identical for every thread
//    count, end to end through the simulator,
//  * an all-NaN temperature field must degrade to the first candidate
//    instead of dereferencing a null best (regression).
#include "core/ehtr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/objective.hpp"
#include "sim/simulator.hpp"
#include "teg/array_evaluator.hpp"
#include "thermal/trace.hpp"
#include "util/rng.hpp"

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

// Partition cost recomputed exactly the way the DP accumulates it: squared
// prefix-difference per group, summed in group order.  Used on both DPs'
// outputs so equal partitions (or equal-cost ties) compare bit-identically.
double partition_cost(const std::vector<double>& impp,
                      const teg::ArrayConfig& c) {
  std::vector<double> prefix(impp.size() + 1, 0.0);
  for (std::size_t i = 0; i < impp.size(); ++i) prefix[i + 1] = prefix[i] + impp[i];
  double cost = 0.0;
  for (std::size_t j = 0; j < c.num_groups(); ++j) {
    const double s = prefix[c.group_end(j)] - prefix[c.group_begin(j)];
    cost += s * s;
  }
  return cost;
}

TEST(PartitionDpEquivalence, DcMatchesLegacyOracleAcrossSeeds) {
  // >= 20 random seeds, sizes up to 512 (acceptance criterion).
  const std::size_t sizes[] = {512, 3,   5,   9,   17,  33,  48,  64,  70, 96,
                               100, 128, 150, 200, 250, 257, 300, 350, 400, 450};
  for (std::size_t trial = 0; trial < 20; ++trial) {
    util::Rng rng(1000 + trial);
    const std::size_t n = sizes[trial];
    std::vector<double> impp(n);
    for (auto& x : impp) x = rng.uniform(0.05, 2.5);
    const auto dc = balanced_partitions(impp, n, PartitionDp::kDivideAndConquer);
    const auto legacy = balanced_partitions(impp, n, PartitionDp::kLegacyCubic);
    ASSERT_EQ(dc.size(), n);
    ASSERT_EQ(legacy.size(), n);
    for (std::size_t g = 0; g < n; ++g) {
      ASSERT_EQ(dc[g].num_groups(), g + 1);
      // Bit-identical cost; with continuous random currents the argmin is
      // unique, so the partitions themselves coincide too.
      EXPECT_EQ(partition_cost(impp, dc[g]), partition_cost(impp, legacy[g]))
          << "seed " << trial << " n " << n << " groups " << g + 1;
      EXPECT_EQ(dc[g], legacy[g])
          << "seed " << trial << " n " << n << " groups " << g + 1;
    }
  }
}

TEST(PartitionDpEquivalence, DcMatchesLegacyWithTiesAndZeros) {
  // Stone-cold modules (zero current) create exact cost ties; both DPs must
  // resolve them with the same lowest-k rule.
  util::Rng rng(7);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    std::vector<double> impp(64);
    for (auto& x : impp) {
      x = rng.uniform(0.0, 1.0) < 0.35 ? 0.0 : rng.uniform(0.5, 1.5);
    }
    const auto dc = balanced_partitions(impp, 64, PartitionDp::kDivideAndConquer);
    const auto legacy = balanced_partitions(impp, 64, PartitionDp::kLegacyCubic);
    for (std::size_t g = 0; g < 64; ++g) {
      EXPECT_EQ(partition_cost(impp, dc[g]), partition_cost(impp, legacy[g]))
          << "trial " << trial << " groups " << g + 1;
      EXPECT_EQ(dc[g], legacy[g]) << "trial " << trial << " groups " << g + 1;
    }
  }
}

TEST(ArrayEvaluatorSuite, MatchesBuildStringAcrossRandomFields) {
  util::Rng rng(41);
  for (std::size_t trial = 0; trial < 10; ++trial) {
    std::vector<double> dts(40);
    for (auto& dt : dts) dt = rng.uniform(2.0, 45.0);
    const teg::TegArray array(kDev, dts);
    const teg::ArrayEvaluator evaluator(array);
    const power::Converter conv(kConv);

    // A spread of configurations: extremes, uniform grids, random partitions.
    std::vector<teg::ArrayConfig> configs{
        teg::ArrayConfig::all_parallel(40), teg::ArrayConfig::all_series(40),
        teg::ArrayConfig::uniform(40, 5), teg::ArrayConfig::uniform(40, 13)};
    for (int extra = 0; extra < 4; ++extra) {
      std::vector<std::size_t> starts{0};
      for (std::size_t i = 1; i < 40; ++i) {
        if (rng.uniform(0.0, 1.0) < 0.3) starts.push_back(i);
      }
      configs.emplace_back(std::move(starts), 40);
    }

    for (const teg::ArrayConfig& c : configs) {
      const teg::SeriesString string = array.build_string(c);
      const teg::LinearSource port = evaluator.string_equivalent(c);
      const double tol_v = 1e-12 * std::max(1.0, std::abs(string.total_voc_v()));
      const double tol_r =
          1e-12 * std::max(1.0, std::abs(string.total_resistance_ohm()));
      EXPECT_NEAR(port.voc_v, string.total_voc_v(), tol_v);
      EXPECT_NEAR(port.r_ohm, string.total_resistance_ohm(), tol_r);

      const double p_string = config_power_w(array, conv, c);
      const double p_cached = config_power_w(evaluator, conv, c);
      EXPECT_NEAR(p_cached, p_string, 1e-12 * std::max(1.0, std::abs(p_string)))
          << "trial " << trial << " config " << c.to_string();
    }
  }
}

TEST(ArrayEvaluatorSuite, GroupEquivalentMatchesParallelGroup) {
  std::vector<double> dts(12);
  for (std::size_t i = 0; i < dts.size(); ++i) dts[i] = 8.0 + 2.5 * static_cast<double>(i);
  const teg::TegArray array(kDev, dts);
  const teg::ArrayEvaluator evaluator(array);
  for (std::size_t b = 0; b < 12; ++b) {
    for (std::size_t e = b + 1; e <= 12; ++e) {
      std::vector<teg::Module> members;
      for (std::size_t i = b; i < e; ++i) members.push_back(array.module(i));
      const teg::ParallelGroup group(members);
      const teg::LinearSource src = evaluator.group_equivalent(b, e);
      EXPECT_NEAR(src.voc_v, group.equivalent_voc_v(),
                  1e-12 * std::max(1.0, group.equivalent_voc_v()));
      EXPECT_NEAR(src.r_ohm, group.equivalent_resistance_ohm(),
                  1e-12 * std::max(1.0, group.equivalent_resistance_ohm()));
    }
  }
  EXPECT_THROW(evaluator.group_equivalent(3, 3), std::out_of_range);
  EXPECT_THROW(evaluator.group_equivalent(0, 13), std::out_of_range);
}

TEST(ArrayEvaluatorSuite, IdealPowerMatchesArray) {
  std::vector<double> dts(25);
  for (std::size_t i = 0; i < dts.size(); ++i) dts[i] = 5.0 + 1.7 * static_cast<double>(i);
  const teg::TegArray array(kDev, dts);
  const teg::ArrayEvaluator evaluator(array);
  // Same accumulation order as TegArray::ideal_power_w -> bit-identical.
  EXPECT_EQ(evaluator.ideal_power_w(), array.ideal_power_w());
}

TEST(EhtrParallel, SearchIsThreadCountInvariant) {
  util::Rng rng(91);
  const power::Converter conv(kConv);
  for (std::size_t trial = 0; trial < 4; ++trial) {
    std::vector<double> dts(48);
    for (auto& dt : dts) dt = rng.uniform(4.0, 40.0);
    const teg::TegArray array(kDev, dts);
    const teg::ArrayConfig serial = ehtr_search(array, conv, 1);
    const teg::ArrayConfig four = ehtr_search(array, conv, 4);
    const teg::ArrayConfig hw = ehtr_search(array, conv, 0);
    EXPECT_EQ(serial, four) << "trial " << trial;
    EXPECT_EQ(serial, hw) << "trial " << trial;
  }
}

TEST(EhtrParallel, DcAndLegacySearchesAgree) {
  util::Rng rng(133);
  const power::Converter conv(kConv);
  for (std::size_t trial = 0; trial < 4; ++trial) {
    std::vector<double> dts(32);
    for (auto& dt : dts) dt = rng.uniform(4.0, 40.0);
    const teg::TegArray array(kDev, dts);
    EXPECT_EQ(ehtr_search(array, conv, 1, PartitionDp::kDivideAndConquer),
              ehtr_search(array, conv, 1, PartitionDp::kLegacyCubic))
        << "trial " << trial;
  }
}

TEST(PartitionDpEquivalence, RejectsNonFiniteCurrents) {
  // The bit-identical d&c/oracle contract only holds for finite inputs, so
  // the DP refuses NaN/inf outright; ehtr_search sanitises before calling.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(balanced_partitions({1.0, nan, 1.0}, 2), std::invalid_argument);
  EXPECT_THROW(
      balanced_partitions({1.0, std::numeric_limits<double>::infinity()}, 2),
      std::invalid_argument);
}

TEST(EhtrParallel, AllNanFieldReturnsFirstCandidate) {
  // Regression: every candidate scores NaN (below the -1.0 sentinel); the
  // search must return the first candidate, not dereference a null best.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> dts(10, nan);
  const teg::TegArray array(kDev, dts, 25.0);
  const power::Converter conv(kConv);
  const teg::ArrayConfig c = ehtr_search(array, conv, 1);
  EXPECT_EQ(c, teg::ArrayConfig::all_parallel(10));
  // The parallel path takes the same fallback.
  EXPECT_EQ(ehtr_search(array, conv, 4), teg::ArrayConfig::all_parallel(10));
}

// End-to-end: an EHTR-driven simulation must produce bit-identical chosen
// configs and energies for any thread count (acceptance criterion).
TEST(EhtrParallel, SimulationBitIdenticalAcrossThreadCounts) {
  thermal::TemperatureTrace trace(0.5, 16);
  for (std::size_t t = 0; t < 40; ++t) {
    std::vector<double> temps(16);
    for (std::size_t i = 0; i < 16; ++i) {
      temps[i] = 25.0 + 30.0 * std::exp(-static_cast<double>(i) / 8.0) +
                 3.0 * std::sin(0.3 * static_cast<double>(t) +
                                0.7 * static_cast<double>(i));
    }
    trace.append(temps, 25.0);
  }

  auto run = [&](std::size_t num_threads) {
    sim::SimulationOptions options;
    options.num_threads = num_threads;
    core::EhtrReconfigurer ehtr(options.device, options.converter, 0.5,
                                num_threads);
    return sim::run_simulation(ehtr, trace, options);
  };
  const sim::SimulationResult one = run(1);
  const sim::SimulationResult four = run(4);

  EXPECT_EQ(one.energy_output_j, four.energy_output_j);
  EXPECT_EQ(one.switch_overhead_j, four.switch_overhead_j);
  EXPECT_EQ(one.battery_energy_j, four.battery_energy_j);
  EXPECT_EQ(one.num_switch_events, four.num_switch_events);
  EXPECT_EQ(one.total_switch_actuations, four.total_switch_actuations);
  ASSERT_EQ(one.steps.size(), four.steps.size());
  for (std::size_t t = 0; t < one.steps.size(); ++t) {
    EXPECT_EQ(one.steps[t].gross_power_w, four.steps[t].gross_power_w) << t;
    EXPECT_EQ(one.steps[t].net_power_w, four.steps[t].net_power_w) << t;
    EXPECT_EQ(one.steps[t].switch_actuations, four.steps[t].switch_actuations) << t;
  }
}

}  // namespace
}  // namespace tegrec::core
