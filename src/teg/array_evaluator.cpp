#include "teg/array_evaluator.hpp"

#include <stdexcept>

#include "teg/module.hpp"

namespace tegrec::teg {

ArrayEvaluator::ArrayEvaluator(const TegArray& array) {
  const std::size_t n = array.size();
  conductance_prefix_.resize(n + 1, 0.0);
  norton_prefix_.resize(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Module& m = array.module(i);
    conductance_prefix_[i + 1] =
        conductance_prefix_[i] + 1.0 / m.internal_resistance_ohm();
    norton_prefix_[i + 1] =
        norton_prefix_[i] +
        m.open_circuit_voltage_v() / m.internal_resistance_ohm();
    ideal_power_w_ += m.mpp_power_w();
  }
}

LinearSource ArrayEvaluator::group_equivalent(std::size_t begin,
                                              std::size_t end) const {
  if (begin >= end || end > size()) {
    throw std::out_of_range("ArrayEvaluator::group_equivalent: bad range");
  }
  const double g_sum = conductance_prefix_[end] - conductance_prefix_[begin];
  const double norton = norton_prefix_[end] - norton_prefix_[begin];
  LinearSource out;
  out.r_ohm = 1.0 / g_sum;
  out.voc_v = norton * out.r_ohm;
  return out;
}

LinearSource ArrayEvaluator::string_equivalent(const ArrayConfig& config) const {
  if (config.num_modules() != size()) {
    throw std::invalid_argument(
        "ArrayEvaluator::string_equivalent: config size mismatch");
  }
  return string_equivalent(std::span<const std::size_t>(config.group_starts()));
}

LinearSource ArrayEvaluator::string_equivalent(
    std::span<const std::size_t> group_starts) const {
  if (group_starts.empty() || group_starts.front() != 0) {
    throw std::invalid_argument(
        "ArrayEvaluator::string_equivalent: group starts must begin at 0");
  }
  LinearSource out;
  for (std::size_t j = 0; j < group_starts.size(); ++j) {
    const std::size_t begin = group_starts[j];
    const std::size_t end =
        j + 1 < group_starts.size() ? group_starts[j + 1] : size();
    // group_equivalent rejects begin >= end, which covers non-increasing
    // or out-of-range starts.
    const LinearSource g = group_equivalent(begin, end);
    out.voc_v += g.voc_v;
    out.r_ohm += g.r_ohm;
  }
  return out;
}

}  // namespace tegrec::teg
