#include "sim/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/float_cmp.hpp"
#include "util/parse.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TEGREC_HAVE_POSIX_FEEDS 1
#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define TEGREC_HAVE_POSIX_FEEDS 0
#endif

namespace tegrec::sim {

namespace {

/// Bound on bytes appended per ByteFeed::poll — keeps one poll's work (and
/// the per-step latency of whatever consumes it) bounded no matter how far
/// behind the reader is.
constexpr std::size_t kChunkBytes = 64 * 1024;

#if TEGREC_HAVE_POSIX_FEEDS
void set_nonblocking(int fd, const char* what) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string(what) +
                             ": cannot set O_NONBLOCK: " +
                             std::strerror(errno));
  }
}
#endif

}  // namespace

// ------------------------------------------------------------ FileTailFeed

FileTailFeed::FileTailFeed(std::string path) : path_(std::move(path)) {}

ByteFeed::Status FileTailFeed::poll(std::string& chunk) {
  // Re-open per poll: portable (no inotify), tolerant of the file not
  // existing yet, and cheap at telemetry rates (one open per poll period,
  // not per byte).
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::kIdle;  // not created yet — keep waiting
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size < offset_) {
    throw std::runtime_error("FileTailFeed: '" + path_ +
                             "' shrank below the tail offset (truncated or "
                             "replaced mid-stream)");
  }
  if (size == offset_) return Status::kIdle;
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(size - offset_,
                                                       kChunkBytes));
  std::string buf(want, '\0');
  in.seekg(static_cast<std::streamoff>(offset_));
  in.read(buf.data(), static_cast<std::streamsize>(want));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == 0) return Status::kIdle;
  buf.resize(got);
  offset_ += got;
  chunk += buf;
  return Status::kData;
}

// ---------------------------------------------------------------- PipeFeed

#if TEGREC_HAVE_POSIX_FEEDS

PipeFeed::PipeFeed(int fd) : fd_(fd) {
  if (fd < 0) throw std::runtime_error("PipeFeed: bad fd");
  set_nonblocking(fd_, "PipeFeed");
}

PipeFeed::~PipeFeed() {
  // fd 0 is borrowed from the process; anything else was handed to us.
  if (fd_ > 2) ::close(fd_);
}

ByteFeed::Status PipeFeed::poll(std::string& chunk) {
  char buf[kChunkBytes];
  const ::ssize_t got = ::read(fd_, buf, sizeof(buf));
  if (got > 0) {
    chunk.append(buf, static_cast<std::size_t>(got));
    return Status::kData;
  }
  if (got == 0) return Status::kEnd;  // writer closed
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return Status::kIdle;
  }
  throw std::runtime_error(std::string("PipeFeed: read failed: ") +
                           std::strerror(errno));
}

#else  // !TEGREC_HAVE_POSIX_FEEDS

PipeFeed::PipeFeed(int) {
  throw std::runtime_error("PipeFeed: not supported on this platform");
}
PipeFeed::~PipeFeed() = default;
ByteFeed::Status PipeFeed::poll(std::string&) { return Status::kEnd; }

#endif

std::string PipeFeed::describe() const {
  return fd_ == 0 ? "stdin" : "pipe:fd" + std::to_string(fd_);
}

// ------------------------------------------------------------- TcpLineFeed

#if TEGREC_HAVE_POSIX_FEEDS

TcpLineFeed::TcpLineFeed(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("TcpLineFeed: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 1) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpLineFeed: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  set_nonblocking(listen_fd_, "TcpLineFeed");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpLineFeed: getsockname: " + why);
  }
  port_ = ntohs(bound.sin_port);
}

TcpLineFeed::~TcpLineFeed() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

ByteFeed::Status TcpLineFeed::poll(std::string& chunk) {
  if (client_fd_ < 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return Status::kIdle;  // nobody connected yet
      }
      throw std::runtime_error(std::string("TcpLineFeed: accept: ") +
                               std::strerror(errno));
    }
    set_nonblocking(fd, "TcpLineFeed");
    client_fd_ = fd;
  }
  char buf[kChunkBytes];
  const ::ssize_t got = ::recv(client_fd_, buf, sizeof(buf), 0);
  if (got > 0) {
    chunk.append(buf, static_cast<std::size_t>(got));
    return Status::kData;
  }
  if (got == 0) {
    // Peer finished its transmission: the stream is complete.
    ::close(client_fd_);
    client_fd_ = -1;
    return Status::kEnd;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return Status::kIdle;
  }
  throw std::runtime_error(std::string("TcpLineFeed: recv: ") +
                           std::strerror(errno));
}

#else  // !TEGREC_HAVE_POSIX_FEEDS

TcpLineFeed::TcpLineFeed(std::uint16_t) {
  throw std::runtime_error("TcpLineFeed: not supported on this platform");
}
TcpLineFeed::~TcpLineFeed() = default;
ByteFeed::Status TcpLineFeed::poll(std::string&) { return Status::kEnd; }

#endif

std::string TcpLineFeed::describe() const {
  return "tcp:" + std::to_string(port_);
}

// -------------------------------------------------------------- StringFeed

ByteFeed::Status StringFeed::poll(std::string& chunk) {
  if (buffer_.empty()) return closed_ ? Status::kEnd : Status::kIdle;
  const std::size_t take = std::min(buffer_.size(), kChunkBytes);
  chunk.append(buffer_, 0, take);
  buffer_.erase(0, take);
  return Status::kData;
}

// ----------------------------------------------------- LineTelemetrySource

LineTelemetrySource::LineTelemetrySource(std::unique_ptr<ByteFeed> feed,
                                         TelemetryOptions options)
    : feed_(std::move(feed)), options_(options) {
  if (!feed_) throw std::invalid_argument("LineTelemetrySource: null feed");
  if (!util::is_exactly_zero(options_.dt_s) &&
      (!std::isfinite(options_.dt_s) || options_.dt_s <= 0.0)) {
    throw std::invalid_argument("LineTelemetrySource: bad explicit dt");
  }
  if (options_.epoch_s && !std::isfinite(*options_.epoch_s)) {
    throw std::invalid_argument("LineTelemetrySource: non-finite epoch");
  }
  dt_s_ = options_.dt_s;
  num_modules_ = options_.num_modules;
  if (options_.epoch_s) {
    epoch_s_ = *options_.epoch_s;
    have_epoch_ = true;
  }
  next_index_ = options_.start_index;
}

void LineTelemetrySource::enqueue_grid_sample(std::size_t index,
                                              std::vector<double> temps,
                                              double ambient) {
  // Emitted times are grid-snapped and rebased to t = 0, so the stream is
  // byte-for-byte the time base a generated TemperatureTrace has and the
  // stepper's grid check is exact.
  TraceSample sample;
  sample.time_s = static_cast<double>(index) * dt_s_;
  sample.module_temps_c = std::move(temps);
  sample.ambient_c = ambient;
  last_temps_ = sample.module_temps_c;
  last_ambient_ = ambient;
  have_last_ = true;
  ready_.push_back(std::move(sample));
  next_index_ = index + 1;
  ++emitted_;
}

void LineTelemetrySource::ingest(const std::string& line) {
  ++lines_seen_;
  const std::string where =
      " (line " + std::to_string(lines_seen_) + " of " + feed_->describe() +
      ")";
  if (line.empty()) return;  // tolerate blank separator lines

  // Split on commas; every cell must be non-empty (an empty cell is a
  // truncated row — load_csv rejects the same way).
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");

  if (!header_seen_) {
    if (cells.size() < 3 || cells[0] != "time_s" || cells[1] != "ambient_c") {
      throw std::runtime_error(
          "telemetry: first line must be the trace CSV header "
          "'time_s,ambient_c,t0,...'" +
          where);
    }
    const std::size_t n = cells.size() - 2;
    if (num_modules_ != 0 && n != num_modules_) {
      throw std::runtime_error(
          "telemetry: header has " + std::to_string(n) +
          " module columns, expected " + std::to_string(num_modules_) + where);
    }
    num_modules_ = n;
    header_seen_ = true;
    return;
  }

  if (cells.size() != num_modules_ + 2) {
    throw std::runtime_error("telemetry: row has " +
                             std::to_string(cells.size()) + " columns, " +
                             "expected " + std::to_string(num_modules_ + 2) +
                             where);
  }
  double time = 0.0;
  double ambient = 0.0;
  std::vector<double> temps(num_modules_);
  try {
    time = util::parse_double(cells[0]);
    ambient = util::parse_double(cells[1]);
    for (std::size_t i = 0; i < num_modules_; ++i) {
      temps[i] = util::parse_double(cells[i + 2]);
    }
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("telemetry: unparseable cell: ") +
                             e.what() + where);
  }
  if (!std::isfinite(time) || !std::isfinite(ambient)) {
    throw std::runtime_error("telemetry: non-finite time or ambient" + where);
  }
  for (double t : temps) {
    if (!std::isfinite(t)) {
      throw std::runtime_error("telemetry: non-finite module temperature" +
                               where);
    }
  }

  // Resolve dt before anything can be placed on the grid.  Derive mode
  // parks the first data line until the second defines the period — both
  // are then processed in arrival order.
  if (util::is_exactly_zero(dt_s_)) {
    if (!have_parked_) {
      have_parked_ = true;
      parked_time_ = time;
      parked_temps_ = std::move(temps);
      parked_ambient_ = ambient;
      return;
    }
    const double dt = time - parked_time_;
    if (!std::isfinite(dt) || dt <= 0.0) {
      throw std::runtime_error(
          "telemetry: cannot derive dt (second timestamp does not advance)" +
          where);
    }
    dt_s_ = dt;
    have_parked_ = false;
    process_on_grid(parked_time_, std::move(parked_temps_), parked_ambient_,
                    where);
    parked_temps_.clear();
  }
  process_on_grid(time, std::move(temps), ambient, where);
}

void LineTelemetrySource::process_on_grid(double time,
                                          std::vector<double> temps,
                                          double ambient,
                                          const std::string& where) {
  if (!have_epoch_) {
    // A fresh stream: the first data line defines grid index 0.
    epoch_s_ = time;
    have_epoch_ = true;
  }
  // Nearest grid point, load_csv's tolerance rule: derived grids only
  // absorb writer rounding; an explicit dt vouches for the grid, so any
  // stamp nearest its own grid point is accepted.
  const double rel = (time - epoch_s_) / dt_s_;
  const double k_real = std::round(rel);
  const double expected = epoch_s_ + k_real * dt_s_;
  const double tol = options_.dt_s > 0.0
                         ? 0.5 * dt_s_
                         : 1e-6 * std::max({1.0, dt_s_, std::abs(expected)});
  if (k_real < 0.0 || std::abs(time - expected) > tol) {
    throw std::runtime_error(
        "telemetry: timestamp " + std::to_string(time) +
        " is not on the grid (epoch " + std::to_string(epoch_s_) + ", dt " +
        std::to_string(dt_s_) + ")" + where);
  }
  const auto k = static_cast<std::size_t>(k_real);

  if (k < options_.start_index) {
    // Expected replay of history the consumer already has (a resumed run
    // re-fed from the start of its trace): not an ordering problem.
    ++replayed_;
    return;
  }
  if (k < next_index_) {
    TelemetryIssue issue;
    issue.kind = TelemetryIssue::Kind::kOutOfOrder;
    issue.detail = "dropped out-of-order sample for t = " +
                   std::to_string(time) + ", stream is already at step " +
                   std::to_string(next_index_) + where;
    issues_.push_back(std::move(issue));
    return;
  }
  if (k > next_index_) {
    const std::size_t missing = k - next_index_;
    if (options_.gap_policy == GapPolicy::kReject) {
      throw std::runtime_error(
          "telemetry: gap of " + std::to_string(missing) +
          " grid step(s) before t = " + std::to_string(time) +
          " (GapPolicy::kReject)" + where);
    }
    if (!have_last_) {
      // A gap with nothing to hold (stream rejoins beyond the resume
      // point): fabricating temperatures from nothing is never OK.
      throw std::runtime_error(
          "telemetry: stream rejoins at step " + std::to_string(k) +
          " but the run needs step " + std::to_string(next_index_) +
          " and there is no previous sample to hold" + where);
    }
    TelemetryIssue issue;
    issue.kind = TelemetryIssue::Kind::kGap;
    issue.detail = "filled " + std::to_string(missing) +
                   " missing grid step(s) before t = " + std::to_string(time) +
                   " by holding the last sample" + where;
    issues_.push_back(std::move(issue));
    for (std::size_t i = next_index_; i < k; ++i) {
      enqueue_grid_sample(i, last_temps_, last_ambient_);
    }
  }
  enqueue_grid_sample(k, std::move(temps), ambient);
}

TelemetryEvent LineTelemetrySource::poll() {
  TelemetryEvent event;
  // Deliver queued samples (gap fills, burst arrivals) one per call before
  // touching the feed again.
  while (ready_.empty() && !end_) {
    std::string chunk;
    const ByteFeed::Status status = feed_->poll(chunk);
    buffer_ += chunk;
    // Consume every complete line in the buffer.
    std::size_t start = 0;
    for (std::size_t nl = buffer_.find('\n', start);
         nl != std::string::npos; nl = buffer_.find('\n', start)) {
      std::string line = buffer_.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      ingest(line);
    }
    buffer_.erase(0, start);
    if (status == ByteFeed::Status::kEnd) {
      // A final line without a trailing newline still counts (a file's
      // last row, a generator killed mid-flush is caught by cell checks).
      if (!buffer_.empty()) {
        std::string line = buffer_;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buffer_.clear();
        ingest(line);
      }
      end_ = true;
    } else if (status == ByteFeed::Status::kIdle && ready_.empty()) {
      event.kind = TelemetryEvent::Kind::kIdle;
      event.issues = std::move(issues_);
      issues_.clear();
      return event;
    }
  }
  if (!ready_.empty()) {
    event.kind = TelemetryEvent::Kind::kSample;
    event.sample = std::move(ready_.front());
    ready_.pop_front();
  } else {
    event.kind = TelemetryEvent::Kind::kEnd;
  }
  event.issues = std::move(issues_);
  issues_.clear();
  return event;
}

}  // namespace tegrec::sim
