#include "util/atomic_file.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define TEGREC_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tegrec::util {

namespace fs = std::filesystem;

namespace {

std::string make_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
#ifdef TEGREC_POSIX_IO
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path + ".tmp-" + std::to_string(pid) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

#ifdef TEGREC_POSIX_IO

/// Writes `content` to a fresh file at `temp_path`, fsyncs it, and closes.
/// Returns false on any failure (the temp file may be left behind; the
/// caller removes it).
bool write_and_sync(const std::string& temp_path, const std::string& content) {
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* data = content.data();
  std::size_t remaining = content.size();
  bool ok = true;
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      ok = false;
      break;
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
}

/// fsyncs the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_DIRECTORY fsync.
void sync_parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

#else

bool write_and_sync(const std::string& temp_path, const std::string& content) {
  std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  return static_cast<bool>(out);
}

void sync_parent_dir(const std::string&) {}

#endif

void remove_quietly(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

std::uint64_t backoff_delay_ms(const RetryPolicy& policy, std::size_t attempt) {
  std::uint64_t delay = policy.initial_backoff_ms;
  for (std::size_t i = 0; i < attempt; ++i) {
    if (delay >= policy.max_backoff_ms / 2) return policy.max_backoff_ms;
    delay *= 2;
  }
  return delay < policy.max_backoff_ms ? delay : policy.max_backoff_ms;
}

void atomic_write_file(const std::string& path, const std::string& content,
                       const AtomicWriteOptions& options) {
  FaultInjector* faults = options.faults;
  if (faults == nullptr) faults = &process_faults();
  const bool inject = !options.fault_site.empty();

  std::string last_error = "no attempts made";
  const std::size_t attempts =
      options.retry.max_attempts > 0 ? options.retry.max_attempts : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoff_delay_ms(options.retry, attempt - 1)));
    }

    if (inject && faults->should_fire(options.fault_site + ".write_fail")) {
      last_error = "injected write failure";
      continue;
    }

    const std::string temp_path = make_temp_path(path);
    const bool torn =
        inject && faults->should_fire(options.fault_site + ".torn");
    const std::string& payload = content;
    const std::string torn_payload =
        torn ? content.substr(0, content.size() / 2) : std::string();

    if (!write_and_sync(temp_path, torn ? torn_payload : payload)) {
      remove_quietly(temp_path);
      last_error = "failed to write temp file " + temp_path;
      continue;
    }

    if (inject && faults->should_fire(options.fault_site + ".crash")) {
      // Simulated death between write and rename: the durable temp file is
      // abandoned exactly as a real crash would leave it.
      throw AtomicWriteCrash("injected crash before rename of " + temp_path +
                             " to " + path);
    }

    std::error_code ec;
    fs::rename(temp_path, path, ec);
    if (ec) {
      remove_quietly(temp_path);
      last_error = "rename to " + path + " failed: " + ec.message();
      continue;
    }
    sync_parent_dir(path);
    return;
  }
  throw std::runtime_error("atomic_write_file(" + path + "): giving up after " +
                           std::to_string(attempts) +
                           " attempts: " + last_error);
}

bool rename_file(const std::string& from, const std::string& to) noexcept {
  std::error_code ec;
  fs::rename(from, to, ec);
  return !ec;
}

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return content;
}

bool create_file_exclusive(const std::string& path,
                           const std::string& content) {
#ifdef TEGREC_POSIX_IO
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, data, remaining);
    if (n < 0) break;
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
#else
  // Non-POSIX fallback: racy create-if-absent, adequate for single-process
  // use on platforms without O_EXCL semantics exposed.
  if (fs::exists(path)) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
#endif
}

bool touch_file(const std::string& path) noexcept {
#ifdef TEGREC_POSIX_IO
  return ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0;
#else
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return !ec;
#endif
}

std::size_t remove_stale_temp_files(const std::string& dir,
                                    std::uint64_t max_age_ms) noexcept {
  std::size_t removed = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp-") == std::string::npos) continue;
    std::error_code entry_ec;
    const auto mtime = fs::last_write_time(entry.path(), entry_ec);
    if (entry_ec) continue;
    const auto age =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - mtime);
    if (age.count() < 0 ||
        static_cast<std::uint64_t>(age.count()) < max_age_ms) {
      continue;
    }
    std::error_code remove_ec;
    if (fs::remove(entry.path(), remove_ec)) ++removed;
  }
  return removed;
}

}  // namespace tegrec::util
