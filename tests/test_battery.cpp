#include "power/battery.hpp"

#include <gtest/gtest.h>

namespace tegrec::power {
namespace {

TEST(Battery, DefaultsPlausible) {
  const Battery b;
  EXPECT_NEAR(b.charge_voltage_v(), 13.8, 1e-9);
  EXPECT_NEAR(b.soc(), 0.7, 1e-9);
  EXPECT_DOUBLE_EQ(b.energy_absorbed_j(), 0.0);
}

TEST(Battery, OpenCircuitVoltageTracksSoc) {
  BatteryParams p;
  p.initial_soc = 0.0;
  EXPECT_NEAR(Battery(p).open_circuit_voltage_v(), 12.0, 1e-9);
  p.initial_soc = 1.0;
  EXPECT_NEAR(Battery(p).open_circuit_voltage_v(), 12.9, 1e-9);
  p.initial_soc = 0.5;
  EXPECT_NEAR(Battery(p).open_circuit_voltage_v(), 12.45, 1e-9);
}

TEST(Battery, AbsorbAccountsEnergyAndSoc) {
  Battery b;
  const double before_soc = b.soc();
  const double accepted = b.absorb(100.0, 10.0);  // 1 kJ
  EXPECT_NEAR(accepted, 100.0, 1e-9);
  EXPECT_NEAR(b.energy_absorbed_j(), 1000.0, 1e-9);
  // dAh = (100/13.8) * 10 / 3600; dSOC = dAh / 60.
  const double expected_dsoc = (100.0 / 13.8) * 10.0 / 3600.0 / 60.0;
  EXPECT_NEAR(b.soc() - before_soc, expected_dsoc, 1e-12);
}

TEST(Battery, ChargeCurrentLimitClipsPower) {
  BatteryParams p;
  p.max_charge_current_a = 10.0;  // 138 W ceiling
  Battery b(p);
  const double accepted = b.absorb(500.0, 1.0);
  EXPECT_NEAR(accepted, 138.0, 1e-9);
}

TEST(Battery, FullBatteryRejectsCharge) {
  BatteryParams p;
  p.initial_soc = 1.0;
  Battery b(p);
  EXPECT_DOUBLE_EQ(b.absorb(100.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(b.energy_absorbed_j(), 0.0);
}

TEST(Battery, TopOffStopsExactlyAtFull) {
  BatteryParams p;
  p.capacity_ah = 0.001;  // tiny battery fills fast
  p.initial_soc = 0.99;
  Battery b(p);
  for (int i = 0; i < 100; ++i) b.absorb(100.0, 1.0);
  EXPECT_NEAR(b.soc(), 1.0, 1e-12);
}

TEST(Battery, SocNeverExceedsOne) {
  BatteryParams p;
  p.capacity_ah = 0.01;
  p.initial_soc = 0.5;
  Battery b(p);
  for (int i = 0; i < 10000; ++i) b.absorb(200.0, 1.0);
  EXPECT_LE(b.soc(), 1.0);
}

TEST(Battery, InvalidArgsThrow) {
  BatteryParams p;
  p.capacity_ah = 0.0;
  EXPECT_THROW(Battery{p}, std::invalid_argument);
  p = BatteryParams{};
  p.initial_soc = 1.5;
  EXPECT_THROW(Battery{p}, std::invalid_argument);
  p = BatteryParams{};
  p.max_charge_current_a = 0.0;
  EXPECT_THROW(Battery{p}, std::invalid_argument);

  Battery b;
  EXPECT_THROW(b.absorb(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(b.absorb(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::power
