#!/bin/sh
# Two-process crash-recovery smoke for the spool farm (docs/farm.md).
#
#   1. A producer enqueues one deliberately slow Monte-Carlo job.
#   2. Worker A claims it and is killed with SIGKILL mid-execution —
#      the real thing, not a simulation: no destructor, no signal
#      handler, a claimed/ entry and a live lease left behind.
#   3. Worker B (with a short staleness window) reclaims the orphaned
#      claim, re-executes, and publishes.
#   4. The producer's wait loop collects the result; the spool must end
#      consistent: done/ holds the job, pending/ and claimed/ are empty,
#      and the artifact decodes (batch exits 0 only if it does).
#
# Usage: spool_crash_smoke.sh <path-to-tegrec_cli>
set -eu

CLI=$1
WORK=$(mktemp -d "${TMPDIR:-/tmp}/tegrec_spool_smoke.XXXXXX")
cleanup() {
  for pid in "$WORKER_A_PID" "$WORKER_B_PID" "$PRODUCER_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT
WORKER_A_PID=""
WORKER_B_PID=""
PRODUCER_PID=""

SPOOL=$WORK/spool
CACHE=$WORK/cache
SPECS=$WORK/specs
mkdir -p "$SPECS"

# ~6 s of single-threaded work: long enough that the SIGKILL below lands
# mid-execution, short enough to re-run.  (96 modules x 1800 s x 6 seeds;
# scale mc.num_seeds if this smoke ever races or drags.)
cat > "$SPECS/slow.spec" <<'EOF'
kind = montecarlo
trace.source = generated
trace.gen.seed = 7
trace.gen.layout.num_modules = 96
trace.gen.num_segments = 1
trace.gen.segment.0.kind = urban
trace.gen.segment.0.duration_s = 1800
mc.num_seeds = 6
EOF

# The producer enqueues, then polls (doubling as a stale-lease reclaimer)
# until the job resolves; its exit status is the verdict.
"$CLI" batch --spool "$SPOOL" --cache "$CACHE" --stale-ms 1500 \
       --wait-ms 120000 --json --specs "$SPECS" > "$WORK/summary.json" &
PRODUCER_PID=$!

# Wait for the job to reach pending/ before starting worker A.
i=0
while [ ! -d "$SPOOL/pending" ] || [ -z "$(ls "$SPOOL/pending" 2>/dev/null)" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "FAIL: job never enqueued"; exit 1; }
  sleep 0.1
done

"$CLI" worker --spool "$SPOOL" --cache "$CACHE" --owner doomed &
WORKER_A_PID=$!

# SIGKILL worker A as soon as it holds the claim.
i=0
while [ -z "$(ls "$SPOOL/claimed" 2>/dev/null | grep '\.spec$')" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "FAIL: worker A never claimed the job"; exit 1; }
  sleep 0.1
done
kill -9 "$WORKER_A_PID"
wait "$WORKER_A_PID" 2>/dev/null || true
WORKER_A_PID=""
[ -n "$(ls "$SPOOL/claimed" | grep '\.spec$')" ] || {
  echo "FAIL: claim did not survive the crash"; exit 1;
}

# Worker B inherits the wreckage: reclaims the stale lease, re-executes,
# publishes, and exits once the spool has been idle for a while.
"$CLI" worker --spool "$SPOOL" --cache "$CACHE" --owner rescuer \
       --stale-ms 1500 --idle-exit-ms 3000 &
WORKER_B_PID=$!

wait "$PRODUCER_PID" || { echo "FAIL: batch did not collect the result"; exit 1; }
PRODUCER_PID=""
wait "$WORKER_B_PID" || { echo "FAIL: worker B exited non-zero"; exit 1; }
WORKER_B_PID=""

# The spool must be fully drained and consistent.
[ -z "$(ls "$SPOOL/pending" 2>/dev/null)" ] || { echo "FAIL: pending not empty"; exit 1; }
[ -z "$(ls "$SPOOL/claimed" 2>/dev/null)" ] || { echo "FAIL: claimed not empty"; exit 1; }
[ -z "$(ls "$SPOOL/failed" 2>/dev/null)" ] || { echo "FAIL: job dead-lettered"; exit 1; }
[ -n "$(ls "$SPOOL/done" 2>/dev/null)" ] || { echo "FAIL: done/ is empty"; exit 1; }
grep -q '"status": *"done"' "$WORK/summary.json" || {
  echo "FAIL: summary does not report the job done"; cat "$WORK/summary.json"; exit 1;
}

echo "PASS: crash mid-job, lease reclaimed, job completed exactly once more"
