// Environment ablations beyond the paper's fixed conditions:
//   1. ambient temperature level sweep (hot summer vs winter drive),
//   2. an ambient step event mid-drive (tunnel / weather front),
//   3. value-of-prediction: DNOR with MLR vs the clairvoyant oracle
//      running the identical switch-or-hold rule on true future data.
#include <cstdio>

#include "core/dnor.hpp"
#include "core/inor.hpp"
#include "core/prescient.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "thermal/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace tegrec;

thermal::TraceGeneratorConfig base_config() {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 50;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 100.0, 32.0, 0.0},
                     {thermal::DriveSegment::Kind::kCruise, 100.0, 70.0, 0.0}};
  config.seed = 99;
  return config;
}

}  // namespace

int main() {
  std::printf("=== Environment ablations (200 s, N=50) ===\n\n");

  // 1. Ambient level sweep.
  {
    std::printf("-- ablation 1: ambient temperature level --\n");
    util::TextTable table({"ambient (C)", "DNOR (J)", "Baseline (J)", "gain %"});
    for (double ambient : {5.0, 15.0, 25.0, 35.0}) {
      thermal::TraceGeneratorConfig config = base_config();
      config.ambient.base_c = ambient;
      config.engine.ambient_c = ambient;
      const auto trace = thermal::generate_trace(config);
      sim::ComparisonOptions options;
      options.include_inor = false;
      options.include_ehtr = false;
      const auto res = sim::run_standard_comparison(trace, options);
      table.begin_row()
          .add(ambient, 0)
          .add(res.by_name("DNOR").energy_output_j, 1)
          .add(res.by_name("Baseline").energy_output_j, 1)
          .add(100.0 * res.dnor_gain_over_baseline(), 1);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("shape check: colder ambient -> larger dT -> more energy for\n"
                "both schemes; the reconfiguration gain persists everywhere.\n\n");
  }

  // 2. Ambient step event.
  {
    std::printf("-- ablation 2: 10 C ambient step at t=100 s (weather front) --\n");
    thermal::TraceGeneratorConfig config = base_config();
    config.ambient.steps = {{100.0, 10.0}};
    const auto trace = thermal::generate_trace(config);
    const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
    const power::ConverterParams charger;
    core::DnorReconfigurer dnor(device, charger);
    const auto res = sim::run_simulation(dnor, trace);
    std::size_t switches_before = 0, switches_after = 0;
    for (const auto& s : res.steps) {
      if (s.switch_actuations > 0) {
        (s.time_s < 100.0 ? switches_before : switches_after)++;
      }
    }
    std::printf("DNOR switches before/after the front: %zu / %zu\n",
                switches_before, switches_after);
    std::printf("energy %.1f J, overhead %.2f J\n\n", res.energy_output_j,
                res.switch_overhead_j);
  }

  // 3. Value of prediction: MLR-DNOR vs clairvoyant oracle vs INOR.
  {
    std::printf("-- ablation 3: value of prediction (oracle upper bound) --\n");
    const auto trace = thermal::generate_trace(base_config());
    const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
    const power::ConverterParams charger;

    core::DnorReconfigurer dnor(device, charger);
    core::PrescientReconfigurer oracle(device, charger, trace);
    core::InorReconfigurer inor(device, charger);

    util::TextTable table({"controller", "energy (J)", "overhead (J)", "switches"});
    for (auto* rec : std::initializer_list<core::Reconfigurer*>{
             &oracle, &dnor, &inor}) {
      const auto res = sim::run_simulation(*rec, trace);
      table.begin_row()
          .add(res.algorithm)
          .add(res.energy_output_j, 1)
          .add(res.switch_overhead_j, 2)
          .add(static_cast<long long>(res.num_switch_events));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading: the MLR-DNOR gap to the oracle is the total cost of\n"
                "imperfect prediction; the gap from INOR to either is the value\n"
                "of the switch-or-hold rule itself.\n");
  }
  return 0;
}
