#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tegrec::util::json {

Value::Value(Array a)
    : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return *array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return *object_;
}

const Value& Value::at(const std::string& key) const {
  for (const auto& [name, value] : as_object()) {
    if (name == key) return value;
  }
  throw std::out_of_range("json: no member '" + key + "'");
}

bool Value::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [name, value] : *object_) {
    (void)value;
    if (name == key) return true;
  }
  return false;
}

// ----------------------------------------------------------------- dump

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double n, std::string& out) {
  if (!std::isfinite(n)) {
    throw std::invalid_argument("json: NaN/Inf cannot be serialised");
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", n);
  out += buffer;
}

void dump_value(const Value& value, int indent, int depth, std::string& out) {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (value.kind()) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: dump_number(value.as_number(), out); break;
    case Value::Kind::kString: dump_string(value.as_string(), out); break;
    case Value::Kind::kArray: {
      const Array& items = value.as_array();
      if (items.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        dump_value(items[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      const Object& members = value.as_object();
      if (members.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        dump_string(members[i].first, out);
        out += indent > 0 ? ": " : ":";
        dump_value(members[i].second, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, out);
  if (indent > 0) out += '\n';
  return out;
}

// ---------------------------------------------------------------- parse

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value document() {
    const Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("null")) return Value();
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    return parse_number();
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return Value(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) fail("malformed \\u escape");
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') { ++pos_; return Value(std::move(items)); }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(items));
      if (c != ',') { --pos_; fail("expected ',' or ']'"); }
    }
  }

  Value parse_object() {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') { ++pos_; return Value(std::move(members)); }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(members));
      if (c != ',') { --pos_; fail("expected ',' or '}'"); }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).document(); }

}  // namespace tegrec::util::json
