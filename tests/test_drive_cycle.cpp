#include "thermal/drive_cycle.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace tegrec::thermal {
namespace {

TEST(EnginePower, IdleIsAccessoryLoadOnly) {
  const VehicleParams v;
  EXPECT_NEAR(engine_power_kw(v, 0.0, 0.0, 0.0), v.idle_power_kw, 1e-9);
}

TEST(EnginePower, IncreasesWithSpeed) {
  const VehicleParams v;
  double prev = 0.0;
  for (double kmh : {10.0, 30.0, 60.0, 90.0, 120.0}) {
    const double p = engine_power_kw(v, kmh, 0.0, 0.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(EnginePower, GradeAddsLoad) {
  const VehicleParams v;
  const double flat = engine_power_kw(v, 50.0, 0.0, 0.0);
  const double hill = engine_power_kw(v, 50.0, 0.0, 6.0);
  EXPECT_GT(hill, flat + 5.0);  // 6% at 50 km/h on 1.9 t: >> 5 kW extra
}

TEST(EnginePower, ClampedToRating) {
  const VehicleParams v;
  EXPECT_LE(engine_power_kw(v, 200.0, 3.0, 15.0), v.max_engine_power_kw);
}

TEST(EnginePower, NoRegenOnDecel) {
  const VehicleParams v;
  // Hard braking: wheel power negative, engine power clamps to accessories.
  EXPECT_NEAR(engine_power_kw(v, 40.0, -4.0, 0.0), v.idle_power_kw, 1e-9);
}

TEST(EnginePower, NegativeSpeedThrows) {
  EXPECT_THROW(engine_power_kw(VehicleParams{}, -1.0, 0.0, 0.0),
               std::invalid_argument);
}

TEST(DriveCycle, DurationMatchesSegments) {
  const auto segments = default_porter_cycle();
  double expected = 0.0;
  for (const auto& s : segments) expected += s.duration_s;
  const DriveCycle cycle =
      generate_drive_cycle(segments, VehicleParams{}, 0.1, 1);
  EXPECT_NEAR(cycle.duration_s(), expected, 0.11);
  EXPECT_EQ(cycle.speed_kmh.size(), cycle.engine_power_kw.size());
}

TEST(DriveCycle, DefaultCycleIs800Seconds) {
  const auto segments = default_porter_cycle();
  double total = 0.0;
  for (const auto& s : segments) total += s.duration_s;
  EXPECT_DOUBLE_EQ(total, 800.0);
}

TEST(DriveCycle, SpeedsNonNegativeAndBounded) {
  const DriveCycle cycle =
      generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 2);
  for (double v : cycle.speed_kmh) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 130.0);
  }
}

TEST(DriveCycle, DeterministicForSameSeed) {
  const auto a = generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 7);
  const auto b = generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 7);
  ASSERT_EQ(a.speed_kmh.size(), b.speed_kmh.size());
  for (std::size_t i = 0; i < a.speed_kmh.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.speed_kmh[i], b.speed_kmh[i]);
  }
}

TEST(DriveCycle, DifferentSeedsDiffer) {
  const auto a = generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 1);
  const auto b = generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 2);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.speed_kmh.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.speed_kmh[i] - b.speed_kmh[i]));
  }
  EXPECT_GT(max_diff, 0.5);
}

TEST(DriveCycle, AccelerationBounded) {
  const DriveCycle cycle =
      generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 3);
  for (std::size_t i = 1; i < cycle.speed_kmh.size(); ++i) {
    const double accel_kmh_s = (cycle.speed_kmh[i] - cycle.speed_kmh[i - 1]) / 0.1;
    EXPECT_LE(accel_kmh_s, 7.6);
    EXPECT_GE(accel_kmh_s, -12.1);
  }
}

TEST(DriveCycle, UrbanSegmentsReachStops) {
  // The stop-and-go model must actually bring the truck to (near) rest.
  std::vector<DriveSegment> segments{
      {DriveSegment::Kind::kUrban, 200.0, 35.0, 0.0}};
  const DriveCycle cycle = generate_drive_cycle(segments, VehicleParams{}, 0.1, 4);
  double min_speed = 1e9;
  // Skip the initial ramp from standstill.
  for (std::size_t i = 300; i < cycle.speed_kmh.size(); ++i) {
    min_speed = std::min(min_speed, cycle.speed_kmh[i]);
  }
  EXPECT_LT(min_speed, 3.0);
}

TEST(DriveCycle, HighwaySegmentsHoldCruise) {
  std::vector<DriveSegment> segments{
      {DriveSegment::Kind::kCruise, 120.0, 90.0, 0.0}};
  const DriveCycle cycle = generate_drive_cycle(segments, VehicleParams{}, 0.1, 5);
  std::vector<double> tail(cycle.speed_kmh.begin() + 600, cycle.speed_kmh.end());
  EXPECT_NEAR(util::mean(tail), 90.0, 8.0);
}

TEST(DriveCycle, InvalidArgsThrow) {
  EXPECT_THROW(generate_drive_cycle({}, VehicleParams{}, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(
      generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.0, 1),
      std::invalid_argument);
}

TEST(DriveCycle, SegmentKindNames) {
  EXPECT_EQ(to_string(DriveSegment::Kind::kIdle), "idle");
  EXPECT_EQ(to_string(DriveSegment::Kind::kUrban), "urban");
  EXPECT_EQ(to_string(DriveSegment::Kind::kCruise), "cruise");
  EXPECT_EQ(to_string(DriveSegment::Kind::kHill), "hill");
  EXPECT_EQ(to_string(DriveSegment::Kind::kStopStart), "stop_start");
  EXPECT_EQ(to_string(DriveSegment::Kind::kColdStart), "cold_start");
  EXPECT_EQ(to_string(DriveSegment::Kind::kSteadyProcess), "steady_process");
  EXPECT_EQ(to_string(DriveSegment::Kind::kLoadRamp), "load_ramp");
  EXPECT_EQ(to_string(DriveSegment::Kind::kBatchCycle), "batch_cycle");
}

TEST(StopStart, DwellsAreEngineOffWithZeroPower) {
  std::vector<DriveSegment> segments{
      {DriveSegment::Kind::kStopStart, 330.0, 40.0, 0.0}};
  const DriveCycle cycle = generate_drive_cycle(segments, VehicleParams{}, 0.1, 6);
  ASSERT_EQ(cycle.engine_on.size(), cycle.num_steps());
  std::size_t off_steps = 0;
  for (std::size_t k = 0; k < cycle.num_steps(); ++k) {
    if (!cycle.engine_on_at(k)) {
      ++off_steps;
      // Idle-stop means combustion off: power exactly zero, vehicle at rest.
      EXPECT_DOUBLE_EQ(cycle.engine_power_kw[k], 0.0);
      EXPECT_LT(cycle.speed_kmh[k], 0.5);
    } else {
      // A running engine always burns at least the accessory load.
      EXPECT_GT(cycle.engine_power_kw[k], 0.0);
    }
  }
  // Six signal cycles of ~36% dwell each: a substantial off share, but the
  // launches dominate.
  EXPECT_GT(off_steps, cycle.num_steps() / 6);
  EXPECT_LT(off_steps, cycle.num_steps() / 2);
}

TEST(StopStart, LegacyKindsNeverSwitchOff) {
  const DriveCycle cycle =
      generate_drive_cycle(default_porter_cycle(), VehicleParams{}, 0.1, 7);
  for (std::size_t k = 0; k < cycle.num_steps(); ++k) {
    EXPECT_TRUE(cycle.engine_on_at(k));
  }
  // Hand-built cycles that predate the engine_on field read as always-on.
  DriveCycle bare;
  bare.speed_kmh = {10.0};
  bare.engine_power_kw = {5.0};
  EXPECT_TRUE(bare.engine_on_at(0));
}

TEST(ColdStart, HoldsFastIdleThenDrivesAwayGently) {
  std::vector<DriveSegment> segments{
      {DriveSegment::Kind::kColdStart, 240.0, 40.0, 0.0}};
  const VehicleParams v;
  const DriveCycle cycle = generate_drive_cycle(segments, v, 0.1, 8);
  // Warm-up idle: stationary, but burning more than a warm idle would
  // (fast idle + cold friction surcharge).
  for (std::size_t k = 0; k < 300; ++k) {
    EXPECT_DOUBLE_EQ(cycle.speed_kmh[k], 0.0);
    EXPECT_GT(cycle.engine_power_kw[k], v.idle_power_kw + 1.0);
  }
  // Drive-away reaches the target eventually, under the gentle accel cap.
  EXPECT_NEAR(cycle.speed_kmh[cycle.num_steps() - 1], 40.0, 10.0);
  for (std::size_t k = 1; k < cycle.num_steps(); ++k) {
    EXPECT_LE((cycle.speed_kmh[k] - cycle.speed_kmh[k - 1]) / 0.1, 4.1);
  }
}

TEST(ProcessLoad, SteadyRampAndBatchSchedules) {
  DriveSegment steady{DriveSegment::Kind::kSteadyProcess, 100.0, 0.0, 0.0,
                      220.0};
  EXPECT_DOUBLE_EQ(process_power_kw(steady, 0.0), 220.0);
  EXPECT_DOUBLE_EQ(process_power_kw(steady, 99.0), 220.0);

  DriveSegment ramp{DriveSegment::Kind::kLoadRamp, 100.0, 0.0, 0.0, 100.0,
                    300.0};
  EXPECT_DOUBLE_EQ(process_power_kw(ramp, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(process_power_kw(ramp, 50.0), 200.0);
  EXPECT_DOUBLE_EQ(process_power_kw(ramp, 100.0), 300.0);

  DriveSegment batch{DriveSegment::Kind::kBatchCycle, 400.0, 0.0, 0.0, 280.0,
                     40.0, 200.0};
  EXPECT_DOUBLE_EQ(process_power_kw(batch, 10.0), 280.0);   // high fire
  EXPECT_DOUBLE_EQ(process_power_kw(batch, 150.0), 40.0);   // low fire
  EXPECT_DOUBLE_EQ(process_power_kw(batch, 210.0), 280.0);  // next batch
  // The modulation ramp between levels is finite, not a step.
  const double mid = process_power_kw(batch, 0.55 * 200.0 + 5.0);
  EXPECT_GT(mid, 40.0);
  EXPECT_LT(mid, 280.0);

  EXPECT_THROW(process_power_kw({DriveSegment::Kind::kUrban, 10.0, 30.0, 0.0},
                                0.0),
               std::invalid_argument);
}

TEST(ProcessLoad, GeneratedCycleIsStationaryAndTracksTheSchedule) {
  std::vector<DriveSegment> segments{
      {DriveSegment::Kind::kLoadRamp, 60.0, 0.0, 0.0, 100.0, 200.0},
      {DriveSegment::Kind::kBatchCycle, 120.0, 0.0, 0.0, 250.0, 50.0, 60.0}};
  VehicleParams plant;
  plant.idle_power_kw = 10.0;
  plant.max_engine_power_kw = 400.0;
  const DriveCycle cycle = generate_drive_cycle(segments, plant, 0.1, 9);
  for (std::size_t k = 0; k < cycle.num_steps(); ++k) {
    EXPECT_DOUBLE_EQ(cycle.speed_kmh[k], 0.0);
    EXPECT_TRUE(cycle.engine_on_at(k));
  }
  // Power tracks firing + auxiliaries to within the ~1% combustion ripple.
  EXPECT_NEAR(cycle.engine_power_kw[100], 100.0 + 100.0 / 6.0 + 10.0, 15.0);
  EXPECT_NEAR(cycle.engine_power_kw[650], 250.0 + 10.0, 15.0);   // high fire
  EXPECT_NEAR(cycle.engine_power_kw[1050], 50.0 + 10.0, 10.0);   // low fire
  EXPECT_TRUE(is_process_kind(DriveSegment::Kind::kBatchCycle));
  EXPECT_FALSE(is_process_kind(DriveSegment::Kind::kStopStart));
}

TEST(ProcessLoad, ClampedToRatedCapacity) {
  std::vector<DriveSegment> segments{
      {DriveSegment::Kind::kSteadyProcess, 10.0, 0.0, 0.0, 900.0}};
  VehicleParams plant;
  plant.max_engine_power_kw = 350.0;
  const DriveCycle cycle = generate_drive_cycle(segments, plant, 0.1, 10);
  for (double p : cycle.engine_power_kw) EXPECT_LE(p, 350.0);
}

}  // namespace
}  // namespace tegrec::thermal
