// Scalability scenario from the paper's conclusion: a larger-scale heat
// source ("industrial boilers and heat exchangers") instrumented with a
// 400-module TEG array.
//
// Demonstrates (a) that the library is not hard-wired to the vehicle
// radiator — layout, exchanger and drive profile are all configurable —
// and (b) the O(N) vs O(N^3) runtime gap that motivates INOR/DNOR at this
// scale.
//
//   ./build/examples/industrial_boiler
#include <chrono>
#include <cstdio>

#include "core/dnor.hpp"
#include "core/ehtr.hpp"
#include "core/fixed_baseline.hpp"
#include "core/inor.hpp"
#include "sim/simulator.hpp"
#include "thermal/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  // A boiler economiser duct: 16 m of serpentine flue path, 400 modules,
  // hotter water-side inlet, slow load swings instead of a drive cycle.
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 400;
  config.layout.exchanger.tube_length_m = 16.0;
  config.layout.exchanger.k_per_length_w_mk = 700.0;
  config.layout.surface_coupling = 0.72;
  config.engine.thermostat_open_c = 96.0;   // process-control band
  config.engine.thermostat_full_c = 104.0;
  config.engine.initial_coolant_c = 97.0;
  config.engine.thermal_mass_j_k = 500000.0;  // big steel mass
  // "Load profile" reuses the drive-cycle machinery: cruise = steady load,
  // hill = firing-rate excursion.
  config.segments = {{thermal::DriveSegment::Kind::kCruise, 120.0, 60.0, 0.0},
                     {thermal::DriveSegment::Kind::kHill, 60.0, 50.0, 4.0},
                     {thermal::DriveSegment::Kind::kCruise, 120.0, 60.0, 0.0}};
  config.seed = 404;
  const thermal::TemperatureTrace trace = thermal::generate_trace(config);
  std::printf("boiler trace: %zu modules over %.0f m, %.0f s\n",
              trace.num_modules(), config.layout.exchanger.tube_length_m,
              trace.duration_s());
  const auto dt0 = trace.step_delta_t(0);
  std::printf("dT profile at t=0: %.1f K (inlet) .. %.1f K (outlet)\n\n",
              dt0.front(), dt0.back());

  const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
  const power::ConverterParams charger;

  // One-shot search runtime at N=400: the scalability claim in numbers.
  {
    const teg::TegArray array(device, dt0, trace.ambient_c(0));
    const power::Converter conv(charger);
    const auto t0 = std::chrono::steady_clock::now();
    const teg::ArrayConfig c_inor = core::inor_search(array, conv);
    const auto t1 = std::chrono::steady_clock::now();
    const teg::ArrayConfig c_ehtr = core::ehtr_search(array, conv);
    const auto t2 = std::chrono::steady_clock::now();
    const double ms_inor = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_ehtr = std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("single reconfiguration at N=400:\n");
    std::printf("  INOR  %8.2f ms -> n=%zu groups\n", ms_inor, c_inor.num_groups());
    std::printf("  EHTR  %8.2f ms -> n=%zu groups   (%.0fx slower)\n\n", ms_ehtr,
                c_ehtr.num_groups(), ms_ehtr / ms_inor);
  }

  // Full 300 s harvest comparison (EHTR's 0.5 s period is already marginal
  // against its own runtime at this scale — exactly the paper's point).
  core::DnorReconfigurer dnor(device, charger);
  core::InorReconfigurer inor(device, charger);
  auto baseline = core::FixedBaselineReconfigurer::square_grid(trace.num_modules());

  std::vector<sim::SimulationResult> runs;
  runs.push_back(sim::run_simulation(dnor, trace));
  runs.push_back(sim::run_simulation(inor, trace));
  runs.push_back(sim::run_simulation(baseline, trace));

  util::TextTable table({"scheme", "energy (J)", "overhead (J)", "switches",
                         "avg runtime (ms)", "P/Pideal"});
  for (const auto& r : runs) {
    table.begin_row()
        .add(r.algorithm)
        .add(r.energy_output_j, 1)
        .add(r.switch_overhead_j, 2)
        .add(static_cast<long long>(r.num_switch_events))
        .add(r.avg_runtime_ms, 3)
        .add(r.ratio_to_ideal(), 3);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("DNOR vs hardwired grid at N=400: %+.1f%% energy\n",
              100.0 * (runs[0].energy_output_j / runs[2].energy_output_j - 1.0));
  return 0;
}
