// Content hashing for the experiment cache (FNV-1a, 64 bit).
//
// The experiment service addresses cached results by a fingerprint of the
// spec's canonical serialisation (plus, for CSV trace sources, the file
// bytes).  FNV-1a is deterministic across platforms, has no dependencies,
// and is cheap enough to hash a 10k-module trace without showing up in a
// profile.  Fingerprints concatenate two independently seeded 64-bit
// hashes (128 bits total), and every cache lookup additionally compares
// the canonical text, so a hash collision can never serve a wrong result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tegrec::util {

/// FNV-1a offset basis (the standard 64-bit seed).
inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
/// A second, unrelated seed for the fingerprint's high half.
inline constexpr std::uint64_t kFnv1aAltBasis = 0x6c62272e07bb0142ULL;

/// One FNV-1a step over a byte range, continuing from `state`.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t state = kFnv1aOffsetBasis);

/// Convenience overload for strings.
std::uint64_t fnv1a64(std::string_view text,
                      std::uint64_t state = kFnv1aOffsetBasis);

/// Hashes a file's raw bytes, continuing from `state`; throws
/// std::runtime_error if the file cannot be read.
std::uint64_t fnv1a64_file(const std::string& path,
                           std::uint64_t state = kFnv1aOffsetBasis);

/// Dual-state variant: one pass over the file advances both fingerprint
/// halves (reading the file twice would double the IO of every submit).
void fnv1a64_file(const std::string& path, std::uint64_t& state_a,
                  std::uint64_t& state_b);

/// Hashes a double by bit pattern (so -0.0 != 0.0 and every NaN payload is
/// distinct — the exactness the bit-identical cache guarantee needs).
std::uint64_t fnv1a64_double(double value, std::uint64_t state);

/// 16 lowercase hex digits.
std::string hex64(std::uint64_t value);

}  // namespace tegrec::util
