// Common interface of the temperature-distribution predictors (Section IV).
//
// All predictors are autoregressive on per-module lag windows: the model is
// fit on every (module, time) pair in the history (pooled across modules so
// N multiplies the training set), then rolled forward recursively for
// multi-step horizons.  Implementations: MLR (mlr.hpp), BPNN (bpnn.hpp),
// SVR (svr.hpp) and a persistence baseline (persistence.hpp).
#pragma once

#include <string>
#include <vector>

#include "predict/history.hpp"

namespace tegrec::predict {

class Predictor {
 public:
  virtual ~Predictor() = default;

  virtual std::string name() const = 0;

  /// Number of lagged samples the model consumes per prediction.
  virtual std::size_t num_lags() const = 0;

  /// Fits on the history; requires history.size() > num_lags().
  virtual void fit(const TemperatureHistory& history) = 0;

  /// True when fit() is a pure function of the history — refitting on the
  /// same rows reproduces the same model.  DNOR re-fits its predictor from
  /// the archived history before every decision, so a pure-refit predictor
  /// makes the whole controller checkpointable through that history alone.
  /// BPNN overrides this to false: its SGD shuffles with a persistent RNG
  /// that advances across fits, so a refit after restore diverges.
  virtual bool refit_is_pure() const { return true; }

  virtual bool is_fitted() const = 0;

  /// One-step-ahead forecast of every module's temperature.
  virtual std::vector<double> predict_next(const TemperatureHistory& history) const = 0;

  /// `horizon`-step forecast by recursive application of predict_next;
  /// returns one row per future step (horizon rows of N columns).
  std::vector<std::vector<double>> predict_horizon(
      const TemperatureHistory& history, std::size_t horizon) const;
};

}  // namespace tegrec::predict
