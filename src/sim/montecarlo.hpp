// Monte-Carlo aggregation of the scheme comparison over trace seeds.
//
// One synthetic drive is one sample; the paper's headline numbers ("+30%",
// "~100x") deserve confidence intervals over drives.  This module re-runs
// the standard comparison across seeds and aggregates the headline metrics
// with RunningStats (mean / stddev / extrema).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.hpp"
#include "thermal/trace.hpp"
#include "util/stats.hpp"

namespace tegrec::sim {

struct MonteCarloOptions {
  thermal::TraceGeneratorConfig base_trace;  ///< seed field is overwritten
  ComparisonOptions comparison;
  std::size_t num_seeds = 10;
  std::uint64_t first_seed = 1;
  /// Worker threads for the per-seed simulations: 0 = one per hardware
  /// thread, 1 = serial.  Every seed owns a deterministic RNG stream and a
  /// private output slot, and the summary statistics are folded in seed
  /// order afterwards, so the result is bit-identical for any value.
  std::size_t num_threads = 0;
};

/// Per-seed record of the headline metrics.
struct MonteCarloSample {
  std::uint64_t seed = 0;
  double dnor_energy_j = 0.0;
  double baseline_energy_j = 0.0;
  double gain = 0.0;              ///< DNOR/baseline - 1
  double dnor_overhead_j = 0.0;
  double dnor_switches = 0.0;
};

struct MonteCarloSummary {
  std::vector<MonteCarloSample> samples;
  util::RunningStats gain;        ///< distribution of the "+30%" number
  util::RunningStats dnor_energy_j;
  util::RunningStats dnor_overhead_j;
  util::RunningStats dnor_switches;
};

/// Runs the comparison for seeds first_seed .. first_seed + num_seeds - 1,
/// in parallel across `options.num_threads` workers (seeds are independent
/// drives, so this is embarrassingly parallel and exactly reproducible).
/// Requires DNOR and the baseline to be enabled in `comparison`.
MonteCarloSummary run_monte_carlo(const MonteCarloOptions& options);

}  // namespace tegrec::sim
