#include "core/inor.hpp"

#include <cmath>
#include <stdexcept>

#include "core/objective.hpp"
#include "core/state_codec.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::core {

teg::ArrayConfig inor_partition(const std::vector<double>& mpp_currents,
                                std::size_t n) {
  const std::size_t count = mpp_currents.size();
  if (n == 0 || n > count) {
    throw std::invalid_argument("inor_partition: bad group count");
  }
  // Prefix sums of the MPP currents: prefix[i] = sum of the first i values.
  // Zero currents (stone-cold modules) are legal; negatives are not.
  std::vector<double> prefix(count + 1, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    if (mpp_currents[i] < 0.0) {
      throw std::invalid_argument("inor_partition: negative MPP current");
    }
    prefix[i + 1] = prefix[i] + mpp_currents[i];
  }
  if (prefix[count] <= 0.0) {
    // Dead array: any balanced partition is as good as any other.
    return teg::ArrayConfig::uniform(count, n);
  }
  const double i_ideal = prefix[count] / static_cast<double>(n);

  std::vector<std::size_t> starts{0};
  std::size_t boundary = 0;  // end (exclusive) of the previous group
  for (std::size_t j = 1; j < n; ++j) {
    // Group j-1 spans [starts.back(), g).  Walk g forward while moving the
    // group sum closer to Iideal; currents are positive so the deviation is
    // unimodal in g and the scan can stop at the first worsening step.
    const double base = prefix[boundary];
    std::size_t g = boundary + 1;              // at least one module per group
    const std::size_t g_max = count - (n - j); // leave one module per later group
    while (g < g_max && std::abs(prefix[g + 1] - base - i_ideal) <=
                            std::abs(prefix[g] - base - i_ideal)) {
      ++g;
    }
    starts.push_back(g);
    boundary = g;
  }
  return teg::ArrayConfig(std::move(starts), count);
}

teg::ArrayConfig inor_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             const InorOptions& options) {
  std::size_t nmin = options.nmin;
  std::size_t nmax = options.nmax;
  if (nmin == 0 && nmax == 0) {
    const auto window = group_count_window(array, converter);
    nmin = window.nmin;
    nmax = window.nmax;
  }
  if (nmin == 0 || nmax < nmin || nmax > array.size()) {
    throw std::invalid_argument("inor_search: bad n window");
  }

  const std::vector<double> impp = array.module_mpp_currents();
  const teg::ArrayEvaluator evaluator(array);
  double best_power = -1.0;
  teg::ArrayConfig best;
  for (std::size_t n = nmin; n <= nmax; ++n) {
    teg::ArrayConfig candidate = inor_partition(impp, n);
    const double p = config_power_w(evaluator, converter, candidate);
    if (p > best_power) {
      best_power = p;
      best = std::move(candidate);
    }
  }
  return best;
}

InorReconfigurer::InorReconfigurer(const teg::DeviceParams& device,
                                   const power::ConverterParams& converter,
                                   double period_s, const InorOptions& options)
    : device_(device), converter_(converter), period_s_(period_s),
      options_(options) {
  if (period_s <= 0.0) throw std::invalid_argument("InorReconfigurer: period <= 0");
}

UpdateResult InorReconfigurer::update(double time_s,
                                      const std::vector<double>& delta_t_k,
                                      double ambient_c) {
  UpdateResult result;
  if (has_config_ && time_s + 1e-9 < next_run_time_s_) {
    result.config = current_;
    return result;  // between periods: hold
  }
  const util::MonotonicTimer timer;
  const teg::TegArray array(device_, delta_t_k, ambient_c);
  teg::ArrayConfig next = inor_search(array, converter_, options_);
  result.compute_time_s = timer.seconds();
  result.invoked = true;
  result.switched = !has_config_ || next != current_;
  result.actuate = true;  // periodic scheme: rebuild on every invocation
  current_ = std::move(next);
  has_config_ = true;
  next_run_time_s_ = time_s + period_s_;
  result.config = current_;
  return result;
}

void InorReconfigurer::reset() {
  has_config_ = false;
  next_run_time_s_ = 0.0;
  current_ = teg::ArrayConfig();
}

std::string InorReconfigurer::checkpoint_state() const {
  return detail::encode_periodic_state(
      "inor-v1", {next_run_time_s_, has_config_, current_});
}

void InorReconfigurer::restore_checkpoint_state(const std::string& state) {
  detail::PeriodicState decoded = detail::decode_periodic_state("inor-v1", state);
  next_run_time_s_ = decoded.next_run_time_s;
  has_config_ = decoded.has_config;
  current_ = std::move(decoded.current);
}

}  // namespace tegrec::core
