#include "power/converter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tegrec::power {

Converter::Converter(const ConverterParams& params) : params_(params) {
  if (params_.output_voltage_v <= 0.0) {
    throw std::invalid_argument("Converter: output voltage <= 0");
  }
  if (params_.eta_peak <= 0.0 || params_.eta_peak > 1.0) {
    throw std::invalid_argument("Converter: eta_peak out of (0,1]");
  }
  if (params_.min_input_v <= 0.0 || params_.max_input_v <= params_.min_input_v) {
    throw std::invalid_argument("Converter: bad input window");
  }
}

bool Converter::input_in_range(double vin_v) const {
  return vin_v >= params_.min_input_v && vin_v <= params_.max_input_v;
}

double Converter::efficiency(double vin_v, double pin_w) const {
  if (!input_in_range(vin_v) || pin_w <= 0.0) return 0.0;
  const double lr = std::log(vin_v / params_.output_voltage_v);
  double eta = params_.eta_peak - params_.voltage_penalty * lr * lr;
  eta = std::clamp(eta, 0.0, params_.eta_peak);
  // Light-load derating from the fixed loss floor.
  eta *= pin_w / (pin_w + params_.fixed_loss_w);
  return eta;
}

double Converter::output_power_w(double vin_v, double pin_w) const {
  const double pin = std::min(pin_w, params_.max_input_power_w);
  return efficiency(vin_v, pin) * pin;
}

Converter::GroupRange Converter::efficient_group_range(
    double group_vmpp_v, std::size_t max_groups, double width_factor) const {
  GroupRange range;
  if (group_vmpp_v <= 0.0 || max_groups == 0) return range;
  const double lo = std::max(params_.output_voltage_v / width_factor,
                             params_.min_input_v);
  const double hi = std::min(params_.output_voltage_v * width_factor,
                             params_.max_input_v);
  auto clamp_groups = [max_groups](double x) {
    const double r = std::clamp(x, 1.0, static_cast<double>(max_groups));
    return static_cast<std::size_t>(r);
  };
  range.nmin = clamp_groups(std::ceil(lo / group_vmpp_v));
  range.nmax = clamp_groups(std::floor(hi / group_vmpp_v));
  if (range.nmax < range.nmin) range.nmax = range.nmin;
  return range;
}

}  // namespace tegrec::power
