// Sanctioned warning sink for library code.
//
// The api-io lint rule bans console I/O in src/ so library behaviour stays
// embeddable, but graceful-degradation paths (an unwritable cache
// directory, a disk that filled mid-run) must be able to say *once* why a
// feature silently turned itself off.  This header is the one door: a
// warning callback type that components accept in their options (tests
// install a capturing lambda) and a default sink that writes a single
// prefixed line to stderr.
#pragma once

#include <functional>
#include <string>

namespace tegrec::util {

/// Warning callback: receives one complete, human-readable message.
using WarnFn = std::function<void(const std::string&)>;

/// Default sink: writes "tegrec: warning: <message>" + newline to stderr.
/// The one sanctioned console write in library code.
void warn_to_stderr(const std::string& message);

}  // namespace tegrec::util
