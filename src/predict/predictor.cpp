#include "predict/predictor.hpp"

#include <stdexcept>

namespace tegrec::predict {

std::vector<std::vector<double>> Predictor::predict_horizon(
    const TemperatureHistory& history, std::size_t horizon) const {
  if (horizon == 0) throw std::invalid_argument("predict_horizon: horizon == 0");
  // Roll the forecast forward on a scratch copy of the history so the
  // caller's buffer is untouched.
  TemperatureHistory scratch(history.num_modules(),
                             history.capacity() + horizon);
  for (std::size_t r = 0; r < history.size(); ++r) scratch.push(history.row(r));

  std::vector<std::vector<double>> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    std::vector<double> next = predict_next(scratch);
    scratch.push(next);
    out.push_back(std::move(next));
  }
  return out;
}

}  // namespace tegrec::predict
