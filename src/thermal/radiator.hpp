// Radiator geometry and TEG hot-side temperature sampling.
//
// Section III.A of the paper: the 2-D radiator is treated as a parallel
// bundle of identical 1-D S-shaped tubes, so a single 1-D model with N TEG
// modules placed along the coolant path suffices.  Each module's hot side
// is clamped to the radiator surface; its cold side sees the heatsink,
// assumed at ambient temperature (typical vehicle operating condition per
// the paper).  The surface does not reach coolant temperature: tube wall,
// contact and spreading resistances divide the coolant-to-ambient drop,
// captured by `surface_coupling`.
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/heat_exchanger.hpp"

namespace tegrec::thermal {

/// Static description of the instrumented radiator.
struct RadiatorLayout {
  HeatExchangerParams exchanger;
  std::size_t num_modules = 100;  ///< N TEG modules along the S-shaped path
  /// Fraction of the coolant-to-ambient temperature difference that appears
  /// across the TEG module:  T_hot(i) - T_amb = coupling * (T(d_i) - T_amb).
  /// 1.0 would mean a perfect thermal short from coolant to module hot side.
  double surface_coupling = 0.72;

  /// Module-centre distance from the radiator entrance [m].
  double module_position_m(std::size_t i) const;
};

/// Hot-side temperatures of all N modules for the given stream conditions.
/// Element i corresponds to the i-th module from the coolant entrance
/// (1-indexed in the paper, 0-indexed here).
std::vector<double> module_hot_side_temperatures(const RadiatorLayout& layout,
                                                 const StreamConditions& cond);

/// Per-module temperature difference dT(i) = T_hot(i) - T_ambient, the
/// quantity that drives TEG output (Section II).
std::vector<double> module_delta_t(const RadiatorLayout& layout,
                                   const StreamConditions& cond);

}  // namespace tegrec::thermal
