#include "teg/device.hpp"

#include <gtest/gtest.h>

namespace tegrec::teg {
namespace {

TEST(DeviceParams, Tgm199Defaults) {
  const DeviceParams p = tgm_199_1_4_0_8();
  EXPECT_EQ(p.num_couples, 199);
  EXPECT_GT(p.seebeck_total_v_k(), 0.05);  // ~0.08 V/K module-level
  EXPECT_LT(p.seebeck_total_v_k(), 0.12);
  EXPECT_GT(p.internal_resistance_ohm, 1.0);
  EXPECT_LT(p.internal_resistance_ohm, 2.5);
}

TEST(DeviceParams, SeebeckTotalIsPerCoupleTimesCouples) {
  DeviceParams p;
  p.num_couples = 100;
  p.seebeck_v_k_couple = 5e-4;
  EXPECT_DOUBLE_EQ(p.seebeck_total_v_k(), 0.05);
}

TEST(DeviceParams, ResistanceGrowsWithTemperature) {
  const DeviceParams p = tgm_199_1_4_0_8();
  const double r25 = p.resistance_at(25.0);
  const double r80 = p.resistance_at(80.0);
  EXPECT_DOUBLE_EQ(r25, p.internal_resistance_ohm);
  EXPECT_GT(r80, r25);
  EXPECT_NEAR(r80, r25 * (1.0 + p.resistance_temp_coeff * 55.0), 1e-12);
}

TEST(DeviceParams, ResistanceClampedAtLowTemperature) {
  const DeviceParams p = tgm_199_1_4_0_8();
  // Far below the fit range the clamp prevents non-physical values.
  EXPECT_GE(p.resistance_at(-300.0), 0.25 * p.internal_resistance_ohm);
}

TEST(DeviceParams, ValidateRejectsNonsense) {
  DeviceParams p = tgm_199_1_4_0_8();
  p.num_couples = 0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = tgm_199_1_4_0_8();
  p.seebeck_v_k_couple = -1e-4;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = tgm_199_1_4_0_8();
  p.internal_resistance_ohm = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = tgm_199_1_4_0_8();
  p.max_delta_t_k = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  EXPECT_NO_THROW(validate(tgm_199_1_4_0_8()));
}

}  // namespace
}  // namespace tegrec::teg
