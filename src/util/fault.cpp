#include "util/fault.hpp"

#include <limits>
#include <stdexcept>

#include "util/env_snapshot.hpp"
#include "util/parse.hpp"

namespace tegrec::util {

namespace {

constexpr std::uint64_t kOpenEnd = std::numeric_limits<std::uint64_t>::max();

/// Splits on ',' and ';', trimming spaces; empty entries are skipped so
/// trailing separators are harmless.
std::vector<std::string> split_entries(const std::string& config) {
  std::vector<std::string> entries;
  std::string current;
  for (const char c : config) {
    if (c == ',' || c == ';') {
      if (!current.empty()) entries.push_back(current);
      current.clear();
    } else if (c != ' ' && c != '\t') {
      current += c;
    }
  }
  if (!current.empty()) entries.push_back(current);
  return entries;
}

}  // namespace

FaultInjector::FaultInjector(const std::string& config) {
  for (const std::string& entry : split_entries(config)) {
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size()) {
      throw std::invalid_argument("fault config entry '" + entry +
                                  "' is not of the form site@hits");
    }
    const std::string site = entry.substr(0, at);
    const std::string spec = entry.substr(at + 1);
    if (spec == "*") {
      arm(site, 1, kOpenEnd);
      continue;
    }
    const std::size_t dash = spec.find('-');
    try {
      if (dash == std::string::npos) {
        const std::uint64_t hit = parse_u64(spec);
        arm(site, hit, hit);
      } else if (dash + 1 == spec.size()) {
        arm(site, parse_u64(spec.substr(0, dash)), kOpenEnd);
      } else {
        arm(site, parse_u64(spec.substr(0, dash)),
            parse_u64(spec.substr(dash + 1)));
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("fault config entry '" + entry +
                                  "' has an unparseable hit range");
    }
  }
}

void FaultInjector::arm(const std::string& site, std::uint64_t first,
                        std::uint64_t last) {
  if (first == 0 || last < first) {
    throw std::invalid_argument("fault range for '" + site +
                                "' must be 1-based and non-empty");
  }
  MutexLock lock(mutex_);
  sites_[site].ranges.emplace_back(first, last);
}

bool FaultInjector::should_fire(const std::string& site) {
  MutexLock lock(mutex_);
  Site& s = sites_[site];
  const std::uint64_t hit = ++s.hits;
  for (const auto& [first, last] : s.ranges) {
    if (hit >= first && hit <= last) return true;
  }
  return false;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

bool FaultInjector::armed() const {
  MutexLock lock(mutex_);
  for (const auto& [site, s] : sites_) {
    if (!s.ranges.empty()) return true;
  }
  return false;
}

FaultInjector& process_faults() {
  // The environment is read through the one-shot snapshot in
  // util/env_snapshot.hpp, so no getenv call happens after threads exist.
  static FaultInjector injector(
      env_snapshot("TEGREC_FAULTS").value_or(std::string()));
  return injector;
}

}  // namespace tegrec::util
