#include "core/ehtr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/objective.hpp"
#include "core/state_codec.hpp"
#include "teg/array_evaluator.hpp"
#include "util/parallel.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fills dp_cur / parent_cur for columns [lo, hi] of one DP layer, knowing
// the argmin of every column lies in [klo, khi]:
//
//   dp_cur[i] = min_{k in [klo, min(khi, i - 1)]} dp_prev[k]
//               + (prefix[i] - prefix[k])^2
//
// The squared-segment-sum cost is Monge (quadrangle inequality) for
// non-negative currents, so the lowest argmin is monotone non-decreasing in
// i and the classic divide-and-conquer optimisation applies: solve the
// middle column by scanning its window, then recurse left/right with the
// window split at the found argmin.  Each recursion level scans O(hi - lo +
// khi - klo) candidates and the depth is O(log N), giving O(N log N) per
// layer.  The initial call passes klo = j (the layer's smallest legal k)
// and recursion only ever raises it, so klo stays legal throughout.  Ties
// resolve to the lowest k — the same first-strict-improvement rule as the
// cubic oracle, which keeps the two DPs' costs bit-identical whenever the
// rounded costs stay Monge (inputs are validated finite; same-scale
// physical MPP currents keep rounding far below the Monge gap).
void solve_layer(const std::vector<double>& prefix,
                 const std::vector<double>& dp_prev, std::size_t lo,
                 std::size_t hi, std::size_t klo, std::size_t khi,
                 std::vector<double>& dp_cur, std::uint32_t* parent_cur) {
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::size_t k_end = std::min(khi, mid - 1);  // inclusive; mid >= 2
  double best = kInf;
  std::size_t best_k = klo;
  for (std::size_t k = klo; k <= k_end; ++k) {
    const double s = prefix[mid] - prefix[k];
    const double c = dp_prev[k] + s * s;
    if (c < best) {
      best = c;
      best_k = k;
    }
  }
  dp_cur[mid] = best;
  parent_cur[mid] = static_cast<std::uint32_t>(best_k);
  if (mid > lo) {
    solve_layer(prefix, dp_prev, lo, mid - 1, klo, best_k, dp_cur, parent_cur);
  }
  if (mid < hi) {
    solve_layer(prefix, dp_prev, mid + 1, hi, best_k, khi, dp_cur, parent_cur);
  }
}

}  // namespace

PartitionTable::PartitionTable(const std::vector<double>& mpp_currents,
                               std::size_t max_groups, PartitionDp dp_kind)
    : count_(mpp_currents.size()), max_groups_(max_groups) {
  if (count_ == 0) throw std::invalid_argument("PartitionTable: empty input");
  if (max_groups_ == 0 || max_groups_ > count_) {
    throw std::invalid_argument("PartitionTable: bad max_groups");
  }
  if (count_ >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("PartitionTable: array too large");
  }
  std::vector<double> prefix(count_ + 1, 0.0);
  for (std::size_t i = 0; i < count_; ++i) {
    // Rejecting NaN/inf here (not just negatives) is what lets the
    // divide-and-conquer path promise oracle-identical results: non-finite
    // costs would break the argmin monotonicity the recursion relies on.
    if (!std::isfinite(mpp_currents[i]) || mpp_currents[i] < 0.0) {
      throw std::invalid_argument("PartitionTable: non-finite or negative current");
    }
    prefix[i + 1] = prefix[i] + mpp_currents[i];
  }
  auto seg_cost = [&prefix](std::size_t from, std::size_t to) {
    const double s = prefix[to] - prefix[from];
    return s * s;
  };

  // Layer j (j+1 groups) is valid for columns i in [j+1, count].  Only two
  // value rows are live at a time; parents are kept per layer for the
  // backtrack in one flat uint32 arena — half the footprint of size_t at
  // N = 10k, and the only DP state that outlives construction.
  const std::size_t stride = count_ + 1;
  parents_.assign((max_groups_ - 1) * stride, 0);
  std::vector<double> dp_prev(count_ + 1, kInf);
  std::vector<double> dp_cur(count_ + 1, kInf);
  for (std::size_t i = 1; i <= count_; ++i) dp_prev[i] = seg_cost(0, i);
  for (std::size_t j = 1; j < max_groups_; ++j) {
    std::uint32_t* parent_row = parents_.data() + (j - 1) * stride;
    if (dp_kind == PartitionDp::kLegacyCubic) {
      for (std::size_t i = j + 1; i <= count_; ++i) {
        double best = kInf;
        std::size_t best_k = j;
        for (std::size_t k = j; k < i; ++k) {
          const double c = dp_prev[k] + seg_cost(k, i);
          if (c < best) {
            best = c;
            best_k = k;
          }
        }
        dp_cur[i] = best;
        parent_row[i] = static_cast<std::uint32_t>(best_k);
      }
    } else {
      solve_layer(prefix, dp_prev, j + 1, count_, j, count_ - 1, dp_cur,
                  parent_row);
    }
    dp_prev.swap(dp_cur);
  }
}

void PartitionTable::reconstruct(std::size_t n,
                                 std::vector<std::size_t>& starts) const {
  if (n == 0 || n > max_groups_) {
    throw std::out_of_range("PartitionTable::reconstruct: bad group count");
  }
  starts.resize(n);
  const std::size_t stride = count_ + 1;
  std::size_t i = count_;
  for (std::size_t j = n; j-- > 1;) {
    const std::size_t k = parents_[(j - 1) * stride + i];
    starts[j] = k;
    i = k;
  }
  starts[0] = 0;
}

teg::ArrayConfig PartitionTable::config(std::size_t n) const {
  std::vector<std::size_t> starts;
  reconstruct(n, starts);
  return teg::ArrayConfig(std::move(starts), count_);
}

std::vector<teg::ArrayConfig> balanced_partitions(
    const std::vector<double>& mpp_currents, std::size_t max_n,
    PartitionDp dp_kind) {
  const PartitionTable table(mpp_currents, max_n, dp_kind);
  std::vector<teg::ArrayConfig> out;
  out.reserve(max_n);
  table.for_each_candidate([&](std::size_t, const std::vector<std::size_t>& starts) {
    out.emplace_back(starts, table.num_modules());
  });
  return out;
}

teg::ArrayConfig ehtr_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             std::size_t num_threads, PartitionDp dp_kind,
                             std::size_t max_groups) {
  std::vector<double> impp = array.module_mpp_currents();
  // The DP only accepts finite currents; treat non-finite modules (NaN
  // temperatures, open faults) as stone cold, the same way inor_partition
  // treats dead modules.  Scoring below still sees the true NaN powers, so
  // a fully degenerate array falls back to the first candidate.
  for (double& x : impp) {
    if (!std::isfinite(x)) x = 0.0;
  }
  const std::size_t count = array.size();
  if (max_groups == 0 || max_groups > count) max_groups = count;
  const PartitionTable table(impp, max_groups, dp_kind);
  const teg::ArrayEvaluator evaluator(array);

  // Streamed scoring: candidates are reconstructed chunk by chunk into
  // per-chunk scratch and scored immediately — only the score table (O(N)
  // doubles) and one starts buffer per in-flight chunk stay resident,
  // never the O(N^2) materialised candidate vector.  Scores are identical
  // to the materialising path for any chunking, and the argmax below is a
  // sequential lowest-index scan, so the chosen config is bit-identical
  // for every thread count.
  std::vector<double> scores(max_groups);
  const std::size_t workers =
      num_threads == 0 ? util::default_parallelism() : num_threads;
  // ~4 chunks per worker keeps the atomic-claiming load balancer effective
  // while amortising each chunk's scratch buffer over many candidates.
  const std::size_t num_chunks =
      std::min(max_groups, std::max<std::size_t>(1, 4 * workers));
  const std::size_t chunk_len = (max_groups + num_chunks - 1) / num_chunks;
  util::parallel_for(num_chunks, num_threads, [&](std::size_t c) {
    const std::size_t first_n = 1 + c * chunk_len;
    const std::size_t last_n = std::min(max_groups, first_n + chunk_len - 1);
    std::vector<std::size_t> starts;
    starts.reserve(last_n);
    for (std::size_t n = first_n; n <= last_n; ++n) {
      table.reconstruct(n, starts);
      scores[n - 1] = config_power_w(evaluator, converter, starts);
    }
  });
  // Sequential lowest-index argmax: deterministic for every thread count.
  // NaN scores never beat the sentinel, so an all-NaN field degrades to the
  // first candidate instead of dereferencing null.
  std::size_t best_n = 1;
  double best_power = -1.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > best_power) {
      best_power = scores[i];
      best_n = i + 1;
    }
  }
  return table.config(best_n);
}

EhtrReconfigurer::EhtrReconfigurer(const teg::DeviceParams& device,
                                   const power::ConverterParams& converter,
                                   double period_s, std::size_t num_threads,
                                   std::size_t max_groups)
    : device_(device), converter_(converter), period_s_(period_s),
      num_threads_(num_threads), max_groups_(max_groups) {
  if (period_s <= 0.0) throw std::invalid_argument("EhtrReconfigurer: period <= 0");
}

UpdateResult EhtrReconfigurer::update(double time_s,
                                      const std::vector<double>& delta_t_k,
                                      double ambient_c) {
  UpdateResult result;
  if (has_config_ && time_s + 1e-9 < next_run_time_s_) {
    result.config = current_;
    return result;
  }
  const util::MonotonicTimer timer;
  const teg::TegArray array(device_, delta_t_k, ambient_c);
  teg::ArrayConfig next = ehtr_search(array, converter_, num_threads_,
                                      PartitionDp::kDivideAndConquer,
                                      max_groups_);
  result.compute_time_s = timer.seconds();
  result.invoked = true;
  result.switched = !has_config_ || next != current_;
  result.actuate = true;  // periodic scheme: rebuild on every invocation
  current_ = std::move(next);
  has_config_ = true;
  next_run_time_s_ = time_s + period_s_;
  result.config = current_;
  return result;
}

void EhtrReconfigurer::reset() {
  has_config_ = false;
  next_run_time_s_ = 0.0;
  current_ = teg::ArrayConfig();
}

std::string EhtrReconfigurer::checkpoint_state() const {
  return detail::encode_periodic_state(
      "ehtr-v1", {next_run_time_s_, has_config_, current_});
}

void EhtrReconfigurer::restore_checkpoint_state(const std::string& state) {
  detail::PeriodicState decoded = detail::decode_periodic_state("ehtr-v1", state);
  next_run_time_s_ = decoded.next_run_time_s;
  has_config_ = decoded.has_config;
  current_ = std::move(decoded.current);
}

}  // namespace tegrec::core
