#include "predict/bpnn.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tegrec::predict {
namespace {

TemperatureHistory smooth_history(std::size_t modules, std::size_t steps) {
  TemperatureHistory h(modules, steps);
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<double> row(modules);
    for (std::size_t m = 0; m < modules; ++m) {
      row[m] = 85.0 - 2.0 * static_cast<double>(m) +
               3.0 * std::sin(0.07 * static_cast<double>(t));
    }
    h.push(row);
  }
  return h;
}

TEST(Bpnn, LearnsPersistenceLikeMapping) {
  // On a slowly varying signal the network must land close to the target.
  BpnnPredictor nn(BpnnParams{.lags = 4, .hidden_units = 8, .epochs = 60});
  const TemperatureHistory h = smooth_history(6, 40);
  nn.fit(h);
  ASSERT_TRUE(nn.is_fitted());
  const auto pred = nn.predict_next(h);
  for (std::size_t m = 0; m < 6; ++m) {
    EXPECT_NEAR(pred[m], h.latest()[m], 1.5) << "module " << m;
  }
  EXPECT_LT(nn.last_training_mse(), 0.05);
}

TEST(Bpnn, DeterministicForSeed) {
  const BpnnParams params{.lags = 3, .hidden_units = 6, .epochs = 20, .seed = 42};
  BpnnPredictor a(params), b(params);
  const TemperatureHistory h = smooth_history(4, 30);
  a.fit(h);
  b.fit(h);
  const auto pa = a.predict_next(h);
  const auto pb = b.predict_next(h);
  for (std::size_t m = 0; m < 4; ++m) EXPECT_DOUBLE_EQ(pa[m], pb[m]);
}

TEST(Bpnn, WarmStartImprovesOverFirstFit) {
  // Refitting on the same data from the previous weights must not be worse.
  BpnnPredictor nn(BpnnParams{.lags = 4, .hidden_units = 8, .epochs = 15});
  const TemperatureHistory h = smooth_history(6, 40);
  nn.fit(h);
  const double first = nn.last_training_mse();
  nn.fit(h);
  EXPECT_LE(nn.last_training_mse(), first * 1.5);  // no catastrophic reset
}

TEST(Bpnn, ModuleStrideSubsampling) {
  BpnnPredictor nn(BpnnParams{.lags = 3, .hidden_units = 6, .epochs = 30,
                              .module_stride = 3});
  const TemperatureHistory h = smooth_history(9, 30);
  nn.fit(h);
  // Prediction still spans all modules despite subsampled training.
  EXPECT_EQ(nn.predict_next(h).size(), 9u);
}

TEST(Bpnn, ErrorsOnMisuse) {
  EXPECT_THROW(BpnnPredictor(BpnnParams{.lags = 0}), std::invalid_argument);
  EXPECT_THROW(BpnnPredictor(BpnnParams{.hidden_units = 0}),
               std::invalid_argument);
  EXPECT_THROW(BpnnPredictor(BpnnParams{.module_stride = 0}),
               std::invalid_argument);
  BpnnPredictor nn;
  TemperatureHistory h(2, 10);
  h.push({1.0, 2.0});
  EXPECT_THROW(nn.fit(h), std::invalid_argument);
  EXPECT_THROW(nn.predict_next(h), std::logic_error);
}

TEST(Bpnn, NameAndLags) {
  BpnnPredictor nn(BpnnParams{.lags = 5});
  EXPECT_EQ(nn.name(), "BPNN");
  EXPECT_EQ(nn.num_lags(), 5u);
}

TEST(Bpnn, HandlesNoisySignalWithoutDiverging) {
  util::Rng rng(77);
  BpnnPredictor nn(BpnnParams{.lags = 4, .hidden_units = 8, .epochs = 25});
  TemperatureHistory h(8, 50);
  std::vector<double> x(8, 88.0);
  for (int t = 0; t < 50; ++t) {
    for (auto& v : x) v += rng.gaussian(0.0, 0.3);
    h.push(x);
  }
  nn.fit(h);
  const auto pred = nn.predict_next(h);
  for (double p : pred) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GT(p, 70.0);
    EXPECT_LT(p, 105.0);
  }
}

}  // namespace
}  // namespace tegrec::predict
