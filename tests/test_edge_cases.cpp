// Boundary and edge-case coverage across modules: end-of-trace behaviour,
// degenerate slices, single-element structures, and controller composition
// paths not exercised by the main suites.
#include <gtest/gtest.h>

#include "core/bank.hpp"
#include "core/dnor.hpp"
#include "core/objective.hpp"
#include "core/prescient.hpp"
#include "predict/ensemble.hpp"
#include "predict/evaluate.hpp"
#include "predict/holt.hpp"
#include "predict/mlr.hpp"
#include "sim/simulator.hpp"
#include "teg/string_bank.hpp"
#include "thermal/trace.hpp"

namespace tegrec {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

thermal::TemperatureTrace mini_trace(double duration_s = 30.0) {
  thermal::TraceGeneratorConfig config;
  config.layout.num_modules = 16;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, duration_s, 30.0, 0.0}};
  config.seed = 55;
  return thermal::generate_trace(config);
}

TEST(EdgeCases, TraceSliceBeyondEndIsEmpty) {
  const auto trace = mini_trace();
  const auto empty = trace.slice(trace.duration_s() + 10.0,
                                 trace.duration_s() + 20.0);
  EXPECT_LE(empty.num_steps(), 1u);  // at most the clamped last step
}

TEST(EdgeCases, TraceSliceZeroWidth) {
  const auto trace = mini_trace();
  const auto empty = trace.slice(5.0, 5.0);
  EXPECT_EQ(empty.num_steps(), 0u);
}

TEST(EdgeCases, PrescientTruncatesLookaheadAtTraceEnd) {
  // Decisions near the end of the trace must not read past it.
  const auto trace = mini_trace(12.0);
  core::PrescientReconfigurer oracle(kDev, kConv, trace);
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    EXPECT_NO_THROW(oracle.update(0.5 * static_cast<double>(t),
                                  trace.step_delta_t(t), trace.ambient_c(t)));
  }
}

TEST(EdgeCases, DnorWithEnsemblePredictor) {
  // Controller composition: DNOR driven by an MLR+Holt ensemble.
  std::vector<std::unique_ptr<predict::Predictor>> members;
  members.push_back(std::make_unique<predict::MlrPredictor>());
  members.push_back(std::make_unique<predict::HoltPredictor>());
  core::DnorParams params;
  params.history_window = 12;
  core::DnorReconfigurer dnor(
      kDev, kConv, params,
      std::make_unique<predict::EnsemblePredictor>(std::move(members)));
  const auto trace = mini_trace();
  const sim::SimulationResult res = sim::run_simulation(dnor, trace);
  EXPECT_GT(res.energy_output_j, 0.0);
}

TEST(EdgeCases, SingleModulePerGroupBankRow) {
  // A bank whose rows are full-series strings (every group a singleton).
  std::vector<double> dts{30.0, 25.0, 20.0, 15.0};
  const teg::TegArray array(kDev, dts);
  const teg::SeriesString full_series =
      array.build_string(teg::ArrayConfig::all_series(4));
  const teg::StringBank bank({full_series, full_series});
  EXPECT_NEAR(bank.mpp_power_w(), 2.0 * full_series.mpp_power_w(), 1e-9);
}

TEST(EdgeCases, BankSearchSingleRowMatchesInor) {
  // With one row the bank search must reduce exactly to 1-D INOR.
  std::vector<double> dts(20);
  for (std::size_t i = 0; i < 20; ++i) dts[i] = 34.0 - 1.3 * i;
  const std::vector<teg::TegArray> rows{teg::TegArray(kDev, dts)};
  const power::Converter conv(kConv);
  const auto bank = core::bank_search(rows, conv);
  const teg::ArrayConfig direct = core::inor_search(rows[0], conv);
  EXPECT_EQ(bank.row_configs[0], direct);
}

TEST(EdgeCases, ModuleAtMaxValidDeltaT) {
  const teg::Module m = teg::Module::from_delta_t(kDev, kDev.max_delta_t_k);
  EXPECT_GT(m.mpp_power_w(), 0.0);
  EXPECT_LE(m.open_circuit_voltage_v(),
            kDev.seebeck_total_v_k() * kDev.max_delta_t_k + 1e-9);
}

TEST(EdgeCases, TwoModuleArrayEndToEnd) {
  // The smallest array the switch fabric supports.
  const teg::TegArray array(kDev, {30.0, 12.0});
  const power::Converter conv(kConv);
  const teg::ArrayConfig c =
      core::inor_search(array, conv, core::InorOptions{.nmin = 1, .nmax = 2});
  EXPECT_LE(core::config_power_w(array, conv, c), array.ideal_power_w() + 1e-9);
}

TEST(EdgeCases, SimulatorSingleStepTrace) {
  thermal::TemperatureTrace one(0.5, 8);
  one.append({55, 52, 49, 46, 43, 40, 38, 36}, 25.0);
  core::DnorReconfigurer dnor(kDev, kConv);
  const sim::SimulationResult res = sim::run_simulation(dnor, one);
  EXPECT_EQ(res.steps.size(), 1u);
  // The installation step is free of overhead.
  EXPECT_DOUBLE_EQ(res.switch_overhead_j, 0.0);
}

TEST(EdgeCases, EvaluateOnlineWithHolt) {
  predict::HoltPredictor holt;
  predict::EvaluationOptions options;
  options.window = 12;
  const auto res = predict::evaluate_online(holt, mini_trace(), options);
  EXPECT_EQ(res.predictor_name, "Holt");
  EXPECT_LT(res.mean_mape_percent, 3.0);
}

TEST(EdgeCases, ConverterGroupRangeCustomWidth) {
  const power::Converter conv{kConv};
  const auto narrow = conv.efficient_group_range(1.0, 100, 1.2);
  const auto wide = conv.efficient_group_range(1.0, 100, 3.0);
  EXPECT_GE(narrow.nmin, wide.nmin);
  EXPECT_LE(narrow.nmax, wide.nmax);
  EXPECT_LT(narrow.nmax - narrow.nmin, wide.nmax - wide.nmin);
}

}  // namespace
}  // namespace tegrec
