// Randomized property suite for the incremental switch fabric
// (ISSUE 10 satellite): arbitrary configuration sequences must keep the
// O(changed)-cost diff/apply path indistinguishable from a from-scratch
// fabric rebuild, with actuation counts exactly 3x the flipped adjacencies.
#include "switchfab/switch_network.hpp"

#include <cstddef>
#include <gtest/gtest.h>
#include <vector>

#include "teg/config.hpp"
#include "util/rng.hpp"

namespace tegrec::switchfab {
namespace {

using teg::ArrayConfig;

ArrayConfig random_config(util::Rng& rng, std::size_t num_modules,
                          double boundary_density) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 1; i < num_modules; ++i) {
    if (rng.bernoulli(boundary_density)) starts.push_back(i);
  }
  return ArrayConfig(starts, num_modules);
}

TEST(ActuationDiff, RandomSequencesMatchFromScratchConstruction) {
  // The one property that implies all the others: after any apply
  // sequence, the incrementally maintained fabric is cell-for-cell
  // identical to a fabric constructed directly from the final config.
  util::Rng rng(2024);
  for (const std::size_t n : {2u, 3u, 17u, 64u, 257u}) {
    SwitchNetwork net(n);
    for (int step = 0; step < 50; ++step) {
      // Sweep the density so the walk visits all-parallel-ish,
      // all-series-ish, and balanced configurations.
      const double density = rng.uniform(0.02, 0.98);
      const ArrayConfig target = random_config(rng, n, density);
      net.apply(target);

      const SwitchNetwork fresh(n, target);
      ASSERT_EQ(net.num_cells(), fresh.num_cells());
      for (std::size_t i = 0; i < net.num_cells(); ++i) {
        const SwitchCell& a = net.cell(i);
        const SwitchCell& b = fresh.cell(i);
        ASSERT_EQ(a.series_closed, b.series_closed) << "n=" << n << " cell " << i;
        ASSERT_EQ(a.parallel_top_closed, b.parallel_top_closed);
        ASSERT_EQ(a.parallel_bottom_closed, b.parallel_bottom_closed);
      }
    }
  }
}

TEST(ActuationDiff, ActuationsAreThreePerFlippedAdjacency) {
  util::Rng rng(7);
  const std::size_t n = 120;
  SwitchNetwork net(n);
  ArrayConfig previous = ArrayConfig::all_parallel(n);
  std::size_t expected_total = 0;
  for (int step = 0; step < 200; ++step) {
    const ArrayConfig target = random_config(rng, n, rng.uniform(0.05, 0.9));
    const std::size_t flipped = previous.boundary_distance(target);

    const ActuationPlan plan = net.diff(target);
    EXPECT_EQ(plan.flip_cells.size(), flipped);
    EXPECT_EQ(plan.num_switch_actuations(), 3 * flipped);
    EXPECT_EQ(plan.empty(), flipped == 0);
    // Plan cells are ascending, in range, and actually differ between the
    // two configurations.
    for (std::size_t k = 0; k < plan.flip_cells.size(); ++k) {
      const std::size_t cell = plan.flip_cells[k];
      ASSERT_LT(cell, n - 1);
      if (k > 0) {
        ASSERT_LT(plan.flip_cells[k - 1], cell);
      }
      EXPECT_NE(previous.is_series_boundary(cell),
                target.is_series_boundary(cell));
    }

    EXPECT_EQ(net.apply(target), 3 * flipped);
    expected_total += 3 * flipped;
    EXPECT_EQ(net.total_actuations(), expected_total);
    previous = target;
  }
}

TEST(ActuationDiff, StateStaysValidAndRoundTrips) {
  util::Rng rng(99);
  const std::size_t n = 40;
  SwitchNetwork net(n);
  std::size_t events = 0;
  for (int step = 0; step < 300; ++step) {
    const ArrayConfig target = random_config(rng, n, rng.uniform(0.0, 1.0));
    const bool changes = !net.diff(target).empty();
    net.apply(target);
    if (changes) ++events;
    ASSERT_TRUE(net.is_valid());
    ASSERT_EQ(net.current_config(), target);
    ASSERT_EQ(net.reconfiguration_events(), events);
  }
}

TEST(ActuationDiff, RepeatedApplyIsIdempotentAndFree) {
  util::Rng rng(5);
  const std::size_t n = 30;
  SwitchNetwork net(n);
  for (int step = 0; step < 50; ++step) {
    const ArrayConfig target = random_config(rng, n, 0.4);
    net.apply(target);
    const std::size_t before = net.total_actuations();
    EXPECT_EQ(net.apply(target), 0u);  // second apply flips nothing
    EXPECT_EQ(net.total_actuations(), before);
    EXPECT_EQ(net.current_config(), target);
  }
}

}  // namespace
}  // namespace tegrec::switchfab
