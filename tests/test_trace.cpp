#include "thermal/trace.hpp"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

namespace tegrec::thermal {
namespace {

TemperatureTrace tiny_trace() {
  TemperatureTrace trace(0.5, 3);
  trace.append({50.0, 40.0, 30.0}, 25.0);
  trace.append({51.0, 41.0, 31.0}, 25.0);
  trace.append({52.0, 42.0, 32.0}, 26.0);
  return trace;
}

TEST(TemperatureTrace, AppendAndAccess) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.num_steps(), 3u);
  EXPECT_EQ(trace.num_modules(), 3u);
  EXPECT_DOUBLE_EQ(trace.temperature_c(1, 2), 31.0);
  EXPECT_DOUBLE_EQ(trace.ambient_c(2), 26.0);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 1.5);
}

TEST(TemperatureTrace, StepTemperaturesAndDeltaT) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.step_temperatures(0), (std::vector<double>{50.0, 40.0, 30.0}));
  EXPECT_EQ(trace.step_delta_t(2), (std::vector<double>{26.0, 16.0, 6.0}));
}

TEST(TemperatureTrace, DeltaTClampedAtZero) {
  TemperatureTrace trace(1.0, 2);
  trace.append({24.0, 30.0}, 25.0);  // first module below ambient
  const auto dt = trace.step_delta_t(0);
  EXPECT_DOUBLE_EQ(dt[0], 0.0);
  EXPECT_DOUBLE_EQ(dt[1], 5.0);
}

TEST(TemperatureTrace, ModuleSeries) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.module_series(1), (std::vector<double>{40.0, 41.0, 42.0}));
  EXPECT_THROW(trace.module_series(3), std::out_of_range);
}

TEST(TemperatureTrace, StepAtTime) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_EQ(trace.step_at_time(-1.0), 0u);
  EXPECT_EQ(trace.step_at_time(0.0), 0u);
  EXPECT_EQ(trace.step_at_time(0.6), 1u);
  EXPECT_EQ(trace.step_at_time(100.0), 2u);  // clamped
}

TEST(TemperatureTrace, Slice) {
  const TemperatureTrace trace = tiny_trace();
  const TemperatureTrace mid = trace.slice(0.5, 1.0);
  EXPECT_EQ(mid.num_steps(), 1u);
  EXPECT_DOUBLE_EQ(mid.temperature_c(0, 0), 51.0);
  EXPECT_THROW(trace.slice(1.0, 0.5), std::invalid_argument);
}

TEST(TemperatureTrace, WrongWidthAppendThrows) {
  TemperatureTrace trace(1.0, 2);
  EXPECT_THROW(trace.append({1.0}, 25.0), std::invalid_argument);
}

TEST(TemperatureTrace, InvalidConstructionThrows) {
  EXPECT_THROW(TemperatureTrace(0.0, 3), std::invalid_argument);
  EXPECT_THROW(TemperatureTrace(1.0, 0), std::invalid_argument);
}

TEST(TemperatureTrace, OutOfRangeAccessThrows) {
  const TemperatureTrace trace = tiny_trace();
  EXPECT_THROW(trace.temperature_c(3, 0), std::out_of_range);
  EXPECT_THROW(trace.temperature_c(0, 3), std::out_of_range);
  EXPECT_THROW(trace.ambient_c(3), std::out_of_range);
}

TEST(TemperatureTrace, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tegrec_trace_test.csv";
  const TemperatureTrace trace = tiny_trace();
  trace.save_csv(path);
  const TemperatureTrace back = TemperatureTrace::load_csv(path);
  ASSERT_EQ(back.num_steps(), trace.num_steps());
  ASSERT_EQ(back.num_modules(), trace.num_modules());
  EXPECT_NEAR(back.dt_s(), trace.dt_s(), 1e-9);
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    EXPECT_NEAR(back.ambient_c(t), trace.ambient_c(t), 1e-9);
    for (std::size_t m = 0; m < trace.num_modules(); ++m) {
      EXPECT_NEAR(back.temperature_c(t, m), trace.temperature_c(t, m), 1e-9);
    }
  }
  std::remove(path.c_str());
}

namespace {
std::string write_temp_csv(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream f(path);
  f << text;
  return path;
}
}  // namespace

TEST(TemperatureTraceLoadCsv, SingleRowWithoutDtThrows) {
  // A single-row file has no time base; the old loader silently assumed
  // dt = 1.0 and imported a wrong one.
  const std::string path = write_temp_csv(
      "tegrec_single_row.csv", "time_s,ambient_c,t0,t1\n0,25,50,40\n");
  EXPECT_THROW(TemperatureTrace::load_csv(path), std::runtime_error);
  // An explicit dt resolves it.
  const TemperatureTrace trace = TemperatureTrace::load_csv(path, 0.25);
  EXPECT_EQ(trace.num_steps(), 1u);
  EXPECT_DOUBLE_EQ(trace.dt_s(), 0.25);
  EXPECT_DOUBLE_EQ(trace.temperature_c(0, 1), 40.0);
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, EmptyFileThrows) {
  const std::string path =
      write_temp_csv("tegrec_empty_trace.csv", "time_s,ambient_c,t0\n");
  EXPECT_THROW(TemperatureTrace::load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, IrregularTimeBaseThrows) {
  // dt used to be derived from only the first two rows; a later jump in
  // the time column silently stretched the trace.
  const std::string path = write_temp_csv(
      "tegrec_irregular.csv",
      "time_s,ambient_c,t0\n0,25,50\n0.5,25,51\n2.0,25,52\n");
  EXPECT_THROW(TemperatureTrace::load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, ExplicitDtMismatchThrows) {
  // An explicit dt that contradicts the timestamps is an import error,
  // not a silent rebase.
  const std::string path = write_temp_csv(
      "tegrec_dt_mismatch.csv",
      "time_s,ambient_c,t0\n0,25,50\n0.5,25,51\n1.0,25,52\n");
  EXPECT_THROW(TemperatureTrace::load_csv(path, 1.0), std::runtime_error);
  const TemperatureTrace ok = TemperatureTrace::load_csv(path, 0.5);
  EXPECT_EQ(ok.num_steps(), 3u);
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, ExplicitDtAcceptsRoundedTimestamps) {
  // Real logs quantise their time column (here: a 30 Hz file rounded to
  // milliseconds).  An explicit dt vouches for the grid, so stamps within
  // half a step of it import; deriving dt from the rounded stamps would
  // (rightly) fail the strict grid check.
  const std::string path = write_temp_csv(
      "tegrec_rounded_30hz.csv",
      "time_s,ambient_c,t0\n0.000,25,50\n0.033,25,51\n0.067,25,52\n"
      "0.100,25,53\n");
  EXPECT_THROW(TemperatureTrace::load_csv(path), std::runtime_error);
  const TemperatureTrace trace = TemperatureTrace::load_csv(path, 1.0 / 30.0);
  EXPECT_EQ(trace.num_steps(), 4u);
  EXPECT_DOUBLE_EQ(trace.dt_s(), 1.0 / 30.0);
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, NonZeroStartTimeAccepted) {
  // Sliced/real traces may not start at t = 0; only the spacing matters.
  const std::string path = write_temp_csv(
      "tegrec_offset_start.csv",
      "time_s,ambient_c,t0\n10.0,25,50\n10.5,25,51\n11.0,25,52\n");
  const TemperatureTrace trace = TemperatureTrace::load_csv(path);
  EXPECT_EQ(trace.num_steps(), 3u);
  EXPECT_DOUBLE_EQ(trace.dt_s(), 0.5);
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, TruncatedRowRejectedWithLineNumber) {
  // A real log cut off mid-write: the last line still has the right comma
  // count, but its tail cells are empty.  Empty CSV cells parse as NaN (the
  // bench writers' unmeasured-value convention), and the old loader
  // imported them as NaN temperatures without a whisper — poisoning every
  // simulation downstream.  It must throw, naming the offending line.
  const std::string path = write_temp_csv(
      "tegrec_truncated_log.csv",
      "time_s,ambient_c,t0,t1,t2\n"
      "0.0,24.8,81.2,79.9,76.4\n"
      "0.5,24.8,81.3,80.1,76.6\n"
      "1.0,24.9,81.5,,\n");  // writer died after t0
  try {
    TemperatureTrace::load_csv(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("t1"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, ShortRowRejectedWithLineNumber) {
  // Truncation that drops whole cells changes the row width; the CSV layer
  // itself must point at the line.
  const std::string path = write_temp_csv(
      "tegrec_short_row.csv",
      "time_s,ambient_c,t0,t1\n0.0,25,50,40\n0.5,25,51\n");
  try {
    TemperatureTrace::load_csv(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TemperatureTraceLoadCsv, BlankAmbientCellRejected) {
  const std::string path = write_temp_csv(
      "tegrec_blank_ambient.csv",
      "time_s,ambient_c,t0\n0.0,25,50\n0.5,,51\n");
  EXPECT_THROW(TemperatureTrace::load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GenerateTrace, NonIntegralSampleRatioThrows) {
  // 0.25 s samples from a 0.1 s sim step would round to a stride of 2 or
  // 3 — a silently different rate than requested.
  TraceGeneratorConfig config;
  config.sample_dt_s = 0.25;
  config.sim_dt_s = 0.1;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
}

TEST(GenerateTrace, IntegralSampleRatioAccepted) {
  TraceGeneratorConfig config;
  config.sample_dt_s = 0.2;
  config.sim_dt_s = 0.1;
  config.segments = {{DriveSegment::Kind::kCruise, 5.0, 60.0, 0.0}};
  const TemperatureTrace trace = generate_trace(config);
  EXPECT_GT(trace.num_steps(), 0u);
  EXPECT_DOUBLE_EQ(trace.dt_s(), 0.2);
}

class GeneratedTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new TemperatureTrace(default_experiment_trace(99));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static TemperatureTrace* trace_;
};

TemperatureTrace* GeneratedTraceTest::trace_ = nullptr;

TEST_F(GeneratedTraceTest, DefaultShape) {
  EXPECT_EQ(trace_->num_modules(), 100u);
  EXPECT_NEAR(trace_->duration_s(), 800.0, 1.0);
  EXPECT_DOUBLE_EQ(trace_->dt_s(), 0.5);
}

TEST_F(GeneratedTraceTest, SpatialProfileDecreasesOnAverage) {
  // Entrance modules must run hotter than exit modules at every step.
  for (std::size_t t = 0; t < trace_->num_steps(); t += 100) {
    const auto temps = trace_->step_temperatures(t);
    EXPECT_GT(temps.front(), temps.back() + 5.0) << "step " << t;
  }
}

TEST_F(GeneratedTraceTest, TemperaturesPhysicallyPlausible) {
  for (std::size_t t = 0; t < trace_->num_steps(); t += 37) {
    const auto temps = trace_->step_temperatures(t);
    for (double temp : temps) {
      EXPECT_GT(temp, 25.0);
      EXPECT_LT(temp, 110.0);
    }
  }
}

TEST_F(GeneratedTraceTest, DeterministicBySeed) {
  const TemperatureTrace again = default_experiment_trace(99);
  EXPECT_DOUBLE_EQ(again.temperature_c(100, 50), trace_->temperature_c(100, 50));
  const TemperatureTrace other = default_experiment_trace(100);
  EXPECT_NE(other.temperature_c(100, 50), trace_->temperature_c(100, 50));
}

TEST(GenerateTrace, SampleCoarserThanSimRequired) {
  TraceGeneratorConfig config;
  config.sample_dt_s = 0.05;
  config.sim_dt_s = 0.1;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::thermal
