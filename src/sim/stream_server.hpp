// Streaming reconfiguration server.
//
// Tracks one or more named TEG arrays concurrently: each array owns a
// telemetry source (sim/telemetry.hpp), a controller, and a SimStepper,
// and runs on its own thread; reconfiguration decisions and stream-order
// incidents are emitted as single-line JSON (JSONL) through one shared,
// mutex-serialised sink.  Per-step latency is measured around every
// SimStepper::step and reported per array.
//
// Durability: an array with a checkpoint path persists its full state —
// stepper snapshot AND its decision log so far — through the
// fingerprint-stamped codec (sim/checkpoint.hpp) every
// `checkpoint_every_steps` steps and once more on exit (including a stop
// requested by signal).  On resume the restored log is handed to the
// caller *before* any new line is emitted, so a file-backed sink can be
// atomically rewritten to the exact checkpointed prefix and the
// concatenated log ends up identical to an uninterrupted run, no matter
// where the previous process died.  A checkpoint *write* failure degrades
// gracefully: one warning, checkpointing disabled, streaming continues
// (availability over durability, matching the cache-dir policy); only the
// injected crash fault (stream.checkpoint.crash) aborts, because it
// models the process dying mid-write.
//
// The decision log deliberately contains only deterministic,
// stream-derived events (decisions, gaps, out-of-order drops) — no
// timestamps, no end-of-run marker — so the log of [run, die, resume,
// finish] is byte-identical to the log of one uninterrupted run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/telemetry.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace tegrec::sim {

/// Receives one complete JSONL line (no trailing newline) per call.
/// Called with the emitter's lock held — keep it fast and non-reentrant.
using LineSink = std::function<void(const std::string&)>;

/// Serialises all JSONL and warning output across the array threads.
class StreamEmitter {
 public:
  StreamEmitter(LineSink sink, util::WarnFn warn);

  /// Forwards one JSONL line to the sink (no-op on a null sink).
  void emit(const std::string& line);
  /// Forwards one human-readable warning (no-op on a null warn fn).
  void warn(const std::string& message);

 private:
  util::Mutex mutex_;
  LineSink sink_ TEGREC_GUARDED_BY(mutex_);
  util::WarnFn warn_ TEGREC_GUARDED_BY(mutex_);
};

/// One named array tracked by the server.
struct StreamArrayOptions {
  std::string name = "main";
  /// Scheme, cadence, grid, physics.  dt_s == 0 and/or num_modules == 0
  /// derive the grid from the telemetry stream itself (first two data
  /// lines / header) — except under `resume`, which needs the grid up
  /// front to validate the checkpoint stamp before any data flows.
  StreamConfig config;
  std::unique_ptr<ByteFeed> feed;
  GapPolicy gap_policy = GapPolicy::kHoldLast;
  /// Checkpoint file; empty disables checkpointing for this array.
  std::string checkpoint_path;
  /// Restore from checkpoint_path before streaming.  A missing file is a
  /// fresh start; a corrupt, truncated, or differently-configured one is
  /// a loud failure (the array errors out rather than silently restart).
  bool resume = false;
  /// Checkpoint every N consumed steps (0 = only on exit).
  std::size_t checkpoint_every_steps = 0;
  /// Called from the array's thread, before any new line is emitted, with
  /// the decision-log lines restored from the checkpoint — the hook for
  /// rewriting a file-backed sink to the checkpointed prefix.
  std::function<void(const std::vector<std::string>&)> on_resume;
  /// Fault injector for the checkpoint writes (site "stream.checkpoint").
  /// nullptr falls back to the process-wide injector.
  util::FaultInjector* faults = nullptr;
};

struct StreamServerOptions {
  /// Sleep between polls while the stream is idle.
  std::uint64_t poll_ms = 20;
  /// Warn (once per episode) when no sample arrives for this long;
  /// 0 never warns.
  std::uint64_t stall_timeout_ms = 5000;
  /// End an array's run after this much continuous idleness; 0 waits
  /// forever (until end-of-stream or a stop request).
  std::uint64_t idle_exit_ms = 0;
  /// Warning sink; defaults to util::warn_to_stderr.
  util::WarnFn warn;
};

/// Outcome of one array's run.
struct StreamArrayReport {
  std::string name;
  SimulationResult result;           ///< partial-run aggregate (simulator.hpp)
  std::size_t decisions = 0;         ///< decision lines emitted (this process)
  std::size_t gaps = 0;
  std::size_t out_of_order = 0;
  std::size_t stalls = 0;            ///< stall episodes observed
  std::size_t replayed = 0;          ///< replayed lines skipped after resume
  bool resumed = false;              ///< a checkpoint was restored
  bool checkpointing_disabled = false;  ///< write failure degraded the run
  util::RunningStats step_latency_ms;   ///< per-SimStepper::step wall latency
  std::string error;                 ///< non-empty: the run failed with this
};

/// The server.  add_array() all arrays first, then run() once; run()
/// spawns one thread per array, joins them all, and returns one report
/// per array in add order.  A per-array failure lands in that array's
/// report rather than aborting the siblings.
class StreamServer {
 public:
  explicit StreamServer(LineSink sink, StreamServerOptions options = {});

  void add_array(StreamArrayOptions array);

  /// Runs every array to completion.  `stop_flag`, when non-null, is
  /// polled between steps: setting it requests a graceful shutdown
  /// (final checkpoint included) — the signal-handler integration point.
  std::vector<StreamArrayReport> run(
      const std::atomic<bool>* stop_flag = nullptr);

 private:
  void run_array(StreamArrayOptions& array, StreamArrayReport& report,
                 const std::atomic<bool>* stop_flag);

  std::shared_ptr<StreamEmitter> emitter_;
  StreamServerOptions options_;
  std::vector<StreamArrayOptions> arrays_;
  bool ran_ = false;
};

}  // namespace tegrec::sim
