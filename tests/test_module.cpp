#include "teg/module.hpp"

#include <gtest/gtest.h>

namespace tegrec::teg {
namespace {

const DeviceParams kDev = tgm_199_1_4_0_8();

TEST(Module, OpenCircuitVoltageLinearInDeltaT) {
  const Module m20 = Module::from_delta_t(kDev, 20.0);
  const Module m40 = Module::from_delta_t(kDev, 40.0);
  EXPECT_NEAR(m40.open_circuit_voltage_v(), 2.0 * m20.open_circuit_voltage_v(),
              1e-12);
  EXPECT_NEAR(m20.open_circuit_voltage_v(), kDev.seebeck_total_v_k() * 20.0,
              1e-12);
}

TEST(Module, Equation2PowerIntoLoad) {
  // P = (alpha dT Ncpl / (R + RL))^2 * RL, Eq. (2).
  const Module m = Module::from_delta_t(kDev, 30.0);
  const double r_load = 2.0;
  const double e = m.open_circuit_voltage_v();
  const double r = m.internal_resistance_ohm();
  const double expected = e / (r + r_load) * (e / (r + r_load)) * r_load;
  EXPECT_NEAR(m.power_into_load(r_load), expected, 1e-12);
}

TEST(Module, MaximumPowerTransferAtMatchedLoad) {
  // Sweep load resistance: the maximum must occur at RL == Rteg and equal
  // the closed-form MPP power.
  const Module m = Module::from_delta_t(kDev, 35.0);
  const double r_int = m.internal_resistance_ohm();
  double best_power = 0.0, best_r = 0.0;
  for (double rl = 0.05; rl < 10.0; rl += 0.005) {
    const double p = m.power_into_load(rl);
    if (p > best_power) {
      best_power = p;
      best_r = rl;
    }
  }
  EXPECT_NEAR(best_r, r_int, 0.01);
  EXPECT_NEAR(best_power, m.mpp_power_w(), 1e-4);
}

TEST(Module, MppRelations) {
  const Module m = Module::from_delta_t(kDev, 25.0);
  EXPECT_NEAR(m.mpp_voltage_v(), m.open_circuit_voltage_v() / 2.0, 1e-12);
  EXPECT_NEAR(m.mpp_current_a(),
              m.open_circuit_voltage_v() / (2.0 * m.internal_resistance_ohm()),
              1e-12);
  EXPECT_NEAR(m.mpp_power_w(), m.mpp_voltage_v() * m.mpp_current_a(), 1e-12);
  // MPP power is the max over the V sweep.
  for (double frac = 0.0; frac <= 1.0; frac += 0.01) {
    EXPECT_LE(m.power_at_voltage(frac * m.open_circuit_voltage_v()),
              m.mpp_power_w() + 1e-12);
  }
}

TEST(Module, IvSweepShape) {
  const Module m = Module::from_delta_t(kDev, 40.0);
  const auto sweep = m.iv_sweep(50);
  ASSERT_EQ(sweep.size(), 50u);
  // Endpoints: V=0 -> I=Isc, P=0;  V=Voc -> I=0, P=0.
  EXPECT_DOUBLE_EQ(sweep.front().voltage_v, 0.0);
  EXPECT_NEAR(sweep.front().current_a,
              m.open_circuit_voltage_v() / m.internal_resistance_ohm(), 1e-12);
  EXPECT_NEAR(sweep.front().power_w, 0.0, 1e-12);
  EXPECT_NEAR(sweep.back().voltage_v, m.open_circuit_voltage_v(), 1e-12);
  EXPECT_NEAR(sweep.back().current_a, 0.0, 1e-12);
  // Current strictly decreasing in V (linear source).
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].current_a, sweep[i - 1].current_a);
  }
}

TEST(Module, IvSweepNeedsTwoPoints) {
  const Module m = Module::from_delta_t(kDev, 10.0);
  EXPECT_THROW(m.iv_sweep(1), std::invalid_argument);
}

TEST(Module, InvalidConstructionThrows) {
  EXPECT_THROW(Module(kDev, 20.0, 25.0), std::invalid_argument);  // hot < cold
  EXPECT_THROW(Module::from_delta_t(kDev, kDev.max_delta_t_k + 1.0),
               std::invalid_argument);
  EXPECT_THROW(Module::from_delta_t(kDev, -1.0), std::invalid_argument);
}

TEST(Module, ZeroDeltaTProducesNothing) {
  const Module m = Module::from_delta_t(kDev, 0.0);
  EXPECT_DOUBLE_EQ(m.open_circuit_voltage_v(), 0.0);
  EXPECT_DOUBLE_EQ(m.mpp_power_w(), 0.0);
}

TEST(Module, NegativeLoadThrows) {
  const Module m = Module::from_delta_t(kDev, 10.0);
  EXPECT_THROW(m.power_into_load(-1.0), std::invalid_argument);
}

TEST(Module, HotterMeanTemperatureRaisesResistance) {
  // Same dT at two cold-side temperatures: the hotter module has higher R
  // and thus lower MPP power.
  const Module cool = Module::from_delta_t(kDev, 30.0, 25.0);
  const Module hot = Module::from_delta_t(kDev, 30.0, 60.0);
  EXPECT_GT(hot.internal_resistance_ohm(), cool.internal_resistance_ohm());
  EXPECT_LT(hot.mpp_power_w(), cool.mpp_power_w());
}

TEST(ModuleVectorHelpers, MatchPerModuleValues) {
  const std::vector<double> dts{10.0, 20.0, 30.0};
  const auto currents = mpp_currents(kDev, dts);
  const auto powers = mpp_powers(kDev, dts);
  ASSERT_EQ(currents.size(), 3u);
  for (std::size_t i = 0; i < dts.size(); ++i) {
    const Module m = Module::from_delta_t(kDev, dts[i]);
    EXPECT_NEAR(currents[i], m.mpp_current_a(), 1e-12);
    EXPECT_NEAR(powers[i], m.mpp_power_w(), 1e-12);
  }
  EXPECT_NEAR(ideal_power_w(kDev, dts), powers[0] + powers[1] + powers[2], 1e-12);
}

// Parameterised across the paper's Fig. 1 temperature range: MPP power must
// grow superlinearly (quadratically modulo the R(T) derating) with dT.
class ModuleMppSweep : public ::testing::TestWithParam<double> {};

TEST_P(ModuleMppSweep, PowerScalesRoughlyQuadratically) {
  const double dt = GetParam();
  const Module m1 = Module::from_delta_t(kDev, dt);
  const Module m2 = Module::from_delta_t(kDev, 2.0 * dt);
  const double ratio = m2.mpp_power_w() / m1.mpp_power_w();
  EXPECT_GT(ratio, 3.0);   // pure quadratic would be 4; R(T) derates a bit
  EXPECT_LT(ratio, 4.05);
}

INSTANTIATE_TEST_SUITE_P(Fig1Range, ModuleMppSweep,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0, 40.0));

}  // namespace
}  // namespace tegrec::teg
