// EHTR — Efficient Heuristic TEG Reconfiguration (prior work, Baek et al.,
// ISLPED 2017 [2]; re-implemented as the paper's comparison baseline).
//
// EHTR searches far harder than INOR: for every group count n in [1, N] it
// finds the *optimal* contiguous partition balancing the group MPP-current
// sums.  Minimising sum_j (S_j - Iideal)^2 for fixed n is equivalent to
// minimising sum_j S_j^2 (the cross terms are constant), which is
// n-independent and solvable for all n at once by dynamic programming:
//
//   dp[j][i] = min_k dp[j-1][k] + (prefix[i] - prefix[k])^2
//
// The naive DP is O(N^2) states with O(N) transitions — the O(N^3) runtime
// the paper attributes to EHTR.  The squared-segment-sum cost satisfies the
// quadrangle inequality for non-negative currents, so the per-layer argmin
// is monotone in i and each layer collapses to O(N log N) by
// divide-and-conquer optimisation: O(max_n * N log N) overall.  The cubic
// DP is retained behind PartitionDp::kLegacyCubic as the reference oracle
// (tests/test_ehtr_opt.cpp proves cost-identical partitions).  Each n's
// partition is then scored with the same charger-aware objective.  Like
// INOR in the paper's evaluation it re-runs every 0.5 s and always
// actuates, hence its large switching overhead in Table I.
//
// Warm starts (docs/actuation.md): across consecutive actuations the
// temperature field drifts slowly, so the optimal group count moves little.
// ehtr_search can therefore solve the DP only up to a neighbourhood of the
// incumbent group count and *certify* the rest away with a per-n upper
// bound on any n-group config's charger-aware score; whenever the bound
// can't rule a region out, the DP is extended into it and scored for real.
// In the worst case that converges to the full cold sweep, so the chosen
// config is bit-identical to cold search by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/reconfigurer.hpp"
#include "power/converter.hpp"
#include "teg/array.hpp"

namespace tegrec::core {

/// Which partition DP to run.  For the finite, same-scale currents the
/// validation admits, both return cost-identical partitions; the cubic
/// oracle exists for equivalence tests and old-vs-new benchmarking.
enum class PartitionDp {
  kDivideAndConquer,  ///< O(max_n * N log N) monotone divide-and-conquer
  kLegacyCubic,       ///< O(max_n * N^2) full-scan reference oracle
};

/// Owns the partition DP's backtracking state: one flat uint32 parent arena
/// (solved layers x N + 1 columns) instead of N materialised ArrayConfigs.
/// Candidates are reconstructed on demand into a caller scratch buffer, so
/// a full EHTR sweep keeps O(N) bytes of candidate state resident where
/// materialising all partitions costs O(N^2) (~400 MB at N = 10k) on top of
/// the arena.
///
/// The table solves lazily: layer j depends only on layer j - 1, so the two
/// live DP value rows are retained and extend_to() appends further layers
/// on demand.  Layers are bit-identical however the solve is split —
/// solving to H then extending to H' equals solving to H' in one shot —
/// which is what lets the warm-started search stop early yet stay
/// bit-identical to the cold sweep.  The parent arena grows with the solved
/// layer count, so a warm pass that stops at H groups keeps H/max_groups of
/// the cold arena footprint.
class PartitionTable {
 public:
  /// Validates inputs and solves the balanced-partition DP for group
  /// counts 1..initial_groups (0 = all max_groups).  Throws
  /// std::invalid_argument on empty/non-finite/negative currents or
  /// max_groups outside [1, N] — same contract as balanced_partitions.
  PartitionTable(const std::vector<double>& mpp_currents,
                 std::size_t max_groups,
                 PartitionDp dp = PartitionDp::kDivideAndConquer,
                 std::size_t initial_groups = 0);

  std::size_t num_modules() const { return count_; }
  std::size_t max_groups() const { return max_groups_; }
  /// Group counts 1..solved_groups() are reconstructible right now.
  std::size_t solved_groups() const { return solved_groups_; }

  /// Solves further DP layers until group counts 1..n are available
  /// (clamped to max_groups; no-op when already solved that far).
  void extend_to(std::size_t n);

  /// Writes the optimal n-group partition's group starts into `starts`
  /// (resized to n; capacity is reused across calls).  n must be in
  /// [1, solved_groups()].
  void reconstruct(std::size_t n, std::vector<std::size_t>& starts) const;

  /// Materialises the optimal n-group partition as an ArrayConfig.
  teg::ArrayConfig config(std::size_t n) const;

  /// Calls fn(n, starts) for every solved n in [1, solved_groups()] in
  /// order, reusing one scratch buffer — the streaming replacement for
  /// iterating a materialised candidate vector.
  template <typename Fn>
  void for_each_candidate(Fn&& fn) const {
    std::vector<std::size_t> starts;
    starts.reserve(solved_groups_);
    for (std::size_t n = 1; n <= solved_groups_; ++n) {
      reconstruct(n, starts);
      fn(n, static_cast<const std::vector<std::size_t>&>(starts));
    }
  }

 private:
  void solve_one_layer(std::size_t j);

  std::size_t count_ = 0;
  std::size_t max_groups_ = 0;
  std::size_t solved_groups_ = 0;
  PartitionDp dp_kind_ = PartitionDp::kDivideAndConquer;
  /// Layer-major: parents_[(j - 1) * (count_ + 1) + i] is the best split
  /// point k for dp[j][i] (layer j = one more group than layer j - 1).
  /// Sized for the solved layers only; extend_to() grows it.
  std::vector<std::uint32_t> parents_;
  std::vector<double> prefix_;   ///< current prefix sums (DP cost basis)
  std::vector<double> dp_prev_;  ///< value row of the last solved layer
  std::vector<double> dp_cur_;   ///< scratch value row for the next layer
};

/// Optimal contiguous partitions (by squared group-sum balance) of the MPP
/// currents into every group count 1..max_n.  Element n-1 of the result is
/// the best partition into n groups.  Thin materialising wrapper over
/// PartitionTable (O(N * max_n) memory) for callers that genuinely need
/// every candidate at once; the EHTR hot path streams instead.
std::vector<teg::ArrayConfig> balanced_partitions(
    const std::vector<double>& mpp_currents, std::size_t max_n,
    PartitionDp dp = PartitionDp::kDivideAndConquer);

/// Warm-start request for ehtr_search.  `incumbent_groups` seeds the
/// neighbourhood (0 = none; the search then seeds from the converter's
/// efficient group-count window) and `width` is how far past the seed the
/// first DP solve reaches.  Purely a performance hint: the certified
/// extension loop guarantees the chosen config is bit-identical to the
/// cold sweep for every setting.
struct EhtrWarmStart {
  bool enabled = false;
  std::size_t incumbent_groups = 0;
  std::size_t width = 64;
};

/// Observability counters for one ehtr_search call (bench + tests).
struct EhtrSearchStats {
  std::size_t max_groups = 0;        ///< full sweep bound after clamping
  std::size_t groups_certified = 0;  ///< group counts actually solved+scored
  bool warm_used = false;            ///< warm pass engaged (prereqs held)
};

/// Full EHTR search: group counts 1..max_groups (0 = all N, values above N
/// clamp to N), charger-aware scoring over a cached ArrayEvaluator.
/// Candidates are streamed out of a PartitionTable and scored in parallel
/// chunks with per-thread scratch (`num_threads` as in util::parallel_for:
/// 0 = hardware, 1 = inline), so only the chosen config is ever
/// materialised — O(N) candidate bytes instead of the old O(N^2) vector.
/// The argmax is a sequential lowest-index scan over the score table, so
/// the result is bit-identical to scoring the materialised candidate list
/// for every thread count; if no candidate scores above the sentinel
/// (e.g. an all-NaN temperature field) the first candidate is returned.
///
/// With `warm.enabled`, the DP is solved only to a neighbourhood of the
/// incumbent group count and group counts beyond the frontier are pruned
/// by a provable score bound: any n-group config scores at most
/// eta_peak * min(P_cap, max_{v in window} v*(Vtop(n)-v)*G/n^2), where
/// Vtop(n) is the sum of the n largest module open-circuit voltages (each
/// group's voc is a conductance-weighted mean <= its max member) and G the
/// total module conductance (r_string >= n^2/G by AM-HM).  Counts whose
/// bound ties or beats the scored best force a DP extension and real
/// scoring; only counts the bound strictly rules out are skipped, so the
/// strict-improvement argmax provably can't land there and the result
/// stays bit-identical to cold search.  Degenerate inputs (non-finite
/// vocs or conductances) disable the warm pass entirely.
teg::ArrayConfig ehtr_search(const teg::TegArray& array,
                             const power::Converter& converter,
                             std::size_t num_threads = 1,
                             PartitionDp dp = PartitionDp::kDivideAndConquer,
                             std::size_t max_groups = 0,
                             const EhtrWarmStart& warm = {},
                             EhtrSearchStats* stats = nullptr);

/// Periodic controller wrapping ehtr_search (0.5 s period per [5]).
/// `max_groups` bounds both the candidate sweep and the DP parent arena
/// (0 = no cap); operators of farm-scale arrays use it to trade optimality
/// headroom for memory.  `warm_start` enables the certified warm pass,
/// seeding each invocation's neighbourhood with the held config's group
/// count (`warm_width` past it); decisions are bit-identical either way.
class EhtrReconfigurer final : public Reconfigurer {
 public:
  EhtrReconfigurer(const teg::DeviceParams& device,
                   const power::ConverterParams& converter,
                   double period_s = 0.5, std::size_t num_threads = 1,
                   std::size_t max_groups = 0, bool warm_start = false,
                   std::size_t warm_width = 64);

  std::string name() const override { return "EHTR"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;
  AlgorithmCost algorithm_cost() const override;

  /// Stateless between invocations apart from the (next run time, held
  /// config) pair, so checkpoints round-trip trivially.  The DP runs fresh
  /// per invocation and is bit-identical for every thread count and warm
  /// setting, so the restored decision stream matches regardless of
  /// num_threads or warm_start (the restored config re-seeds the
  /// neighbourhood exactly as the live run's would have).
  bool supports_checkpoint() const override { return true; }
  std::string checkpoint_state() const override;
  void restore_checkpoint_state(const std::string& state) override;

 private:
  teg::DeviceParams device_;
  power::Converter converter_;
  double period_s_;
  std::size_t num_threads_;
  std::size_t max_groups_;
  bool warm_start_;
  std::size_t warm_width_;
  double next_run_time_s_ = 0.0;
  bool has_config_ = false;
  teg::ArrayConfig current_;
};

}  // namespace tegrec::core
