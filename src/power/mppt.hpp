// Maximum-power-point tracking for the array charger.
//
// The paper's charger runs perturb-and-observe MPPT (Femia et al. [10])
// on the overall string current after each reconfiguration.  Because the
// string of linear sources has a strictly concave P(I), P&O converges to a
// neighbourhood of the optimum whose size is the perturbation step.
//
// Two trackers are provided:
//  * PerturbObserveTracker — the faithful iterative controller;
//  * optimal_operating_point — a golden-section oracle on the
//    post-converter power, used by the simulator (which models a settled
//    tracker) and by tests as the convergence reference.
#pragma once

#include <cstddef>

#include "power/converter.hpp"
#include "teg/string.hpp"

namespace tegrec::power {

/// Result of tracking on one string/converter pair.
struct OperatingPoint {
  double current_a = 0.0;      ///< string current
  double voltage_v = 0.0;      ///< string (converter input) voltage
  double array_power_w = 0.0;  ///< power leaving the array
  double output_power_w = 0.0; ///< power after conversion losses
};

/// Golden-section search for the current maximising post-converter power.
/// The search interval is [0, Isc]; tolerance is on current.
OperatingPoint optimal_operating_point(const teg::SeriesString& string,
                                       const Converter& converter,
                                       double tol_a = 1e-6);

/// Same search on a bare Thevenin port model V(I) = voc_v - I * r_ohm —
/// the string reduced to its two scalars (e.g. by teg::ArrayEvaluator),
/// bit-identical to the SeriesString overload for equal (voc, R).
OperatingPoint optimal_operating_point(double voc_v, double r_ohm,
                                       const Converter& converter,
                                       double tol_a = 1e-6);

/// Ideal-charger variant: maximises raw array power (closed form).
OperatingPoint array_mpp_operating_point(const teg::SeriesString& string);

/// Classic fixed-step perturb & observe controller.
class PerturbObserveTracker {
 public:
  /// `step_a` is the current perturbation per iteration.
  explicit PerturbObserveTracker(double step_a = 0.02);

  /// Re-seeds the tracker (e.g. after a reconfiguration) at a current.
  void reset(double current_a);

  /// One P&O iteration against the live string; returns the new point.
  OperatingPoint step(const teg::SeriesString& string, const Converter& converter);

  /// Runs `iters` iterations and returns the final point.
  OperatingPoint run(const teg::SeriesString& string, const Converter& converter,
                     std::size_t iters);

  double current_a() const { return current_a_; }

 private:
  double step_a_;
  double current_a_ = 0.0;
  double prev_power_w_ = 0.0;
  double direction_ = 1.0;
  bool primed_ = false;
};

}  // namespace tegrec::power
