// Series string of parallel groups: the array's output port model.
//
// The reconfigurable array (paper Fig. 4) always reduces to n parallel
// groups connected in series.  All groups carry the same string current I
// (paper Fig. 3b); the port behaviour is the series sum of the group
// Thevenin equivalents:
//
//   V(I) = sum Voc_eq_j  -  I * sum R_eq_j
//
// so the string itself is one linear source with a closed-form MPP.  The
// charger's MPPT walks this curve; reconfiguration chooses which linear
// source the charger sees.
#pragma once

#include <vector>

#include "teg/group.hpp"

namespace tegrec::teg {

class SeriesString {
 public:
  SeriesString() = default;
  explicit SeriesString(std::vector<ParallelGroup> groups);

  std::size_t num_groups() const { return groups_.size(); }
  const std::vector<ParallelGroup>& groups() const { return groups_; }

  double total_voc_v() const { return voc_v_; }
  double total_resistance_ohm() const { return r_ohm_; }

  double voltage_at_current(double current_a) const;
  double power_at_current(double current_a) const;

  double mpp_current_a() const;
  double mpp_voltage_v() const;
  double mpp_power_w() const;

  /// Per-group terminal voltages at a string current (diagnostics).
  std::vector<double> group_voltages_at_current(double current_a) const;

  /// Sum over groups of the members' individual MPP powers.
  double ideal_power_w() const;

 private:
  std::vector<ParallelGroup> groups_;
  double voc_v_ = 0.0;
  double r_ohm_ = 0.0;
};

}  // namespace tegrec::teg
