// Fixture bindings for cache_key_config.hpp: serialises every DemoConfig
// field except `not_serialised_w` (the planted violation) and
// `debug_label` (the planted exclusion-list entry).  Mentions in comments
// do not count: not_serialised_w appears right here in prose and the
// check must still flag it.  Never compiled.
#include <string>

namespace demo {

std::string canonical_text(int mode, double duration_s,
                           const double* gains) {
  std::string text;
  text += "mode = " + std::to_string(mode) + "\n";
  text += "duration_s = " + std::to_string(duration_s) + "\n";
  text += "gains = " + std::to_string(gains[0]) + "\n";
  return text;
}

}  // namespace demo
