#include "core/objective.hpp"

namespace tegrec::core {

double config_power_w(const teg::TegArray& array, const power::Converter& converter,
                      const teg::ArrayConfig& config) {
  return config_operating_point(array, converter, config).output_power_w;
}

power::OperatingPoint config_operating_point(const teg::TegArray& array,
                                             const power::Converter& converter,
                                             const teg::ArrayConfig& config) {
  const teg::SeriesString string = array.build_string(config);
  return power::optimal_operating_point(string, converter);
}

double config_power_w(const teg::ArrayEvaluator& evaluator,
                      const power::Converter& converter,
                      const teg::ArrayConfig& config) {
  return config_operating_point(evaluator, converter, config).output_power_w;
}

power::OperatingPoint config_operating_point(const teg::ArrayEvaluator& evaluator,
                                             const power::Converter& converter,
                                             const teg::ArrayConfig& config) {
  const teg::LinearSource port = evaluator.string_equivalent(config);
  return power::optimal_operating_point(port.voc_v, port.r_ohm, converter);
}

double config_power_w(const teg::ArrayEvaluator& evaluator,
                      const power::Converter& converter,
                      std::span<const std::size_t> group_starts) {
  return config_operating_point(evaluator, converter, group_starts)
      .output_power_w;
}

power::OperatingPoint config_operating_point(
    const teg::ArrayEvaluator& evaluator, const power::Converter& converter,
    std::span<const std::size_t> group_starts) {
  const teg::LinearSource port = evaluator.string_equivalent(group_starts);
  return power::optimal_operating_point(port.voc_v, port.r_ohm, converter);
}

power::Converter::GroupRange group_count_window(const teg::TegArray& array,
                                                const power::Converter& converter) {
  double mean_vmpp = 0.0;
  for (std::size_t i = 0; i < array.size(); ++i) {
    mean_vmpp += array.module(i).mpp_voltage_v();
  }
  mean_vmpp /= static_cast<double>(array.size());
  return converter.efficient_group_range(mean_vmpp, array.size());
}

}  // namespace tegrec::core
