// tegrec_cli — command-line front end for the library.
//
//   tegrec_cli trace      --out trace.csv [--seed S] [--modules N]
//                         [--duration T]
//   tegrec_cli simulate   --trace trace.csv
//                         [--scheme dnor|inor|ehtr|baseline|all]
//                         [--threads W] [--max-groups G]
//   tegrec_cli predict    --trace trace.csv [--method mlr|bpnn|svr|holt]
//                         [--horizon H]
//   tegrec_cli montecarlo [--seeds K] [--first-seed S] [--modules N]
//                         [--duration T] [--threads W]
//
// `trace` synthesises a drive and writes the per-module temperature CSV;
// `simulate` replays a CSV through the chosen controller(s) and prints the
// Table-I style summary; `predict` scores a predictor on the CSV;
// `montecarlo` runs the multi-core DNOR-vs-baseline study across seeds.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <map>
#include <string>

#include "predict/bpnn.hpp"
#include "predict/evaluate.hpp"
#include "predict/holt.hpp"
#include "predict/mlr.hpp"
#include "predict/svr.hpp"
#include "sim/experiment.hpp"
#include "sim/montecarlo.hpp"
#include "sim/results.hpp"
#include "thermal/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace tegrec;

// Tiny --key value parser: every option takes exactly one argument.
std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
      throw std::invalid_argument("expected --key value pairs, got '" + key + "'");
    }
    flags[key.substr(2)] = argv[++i];
  }
  return flags;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int cmd_trace(const std::map<std::string, std::string>& flags) {
  thermal::TraceGeneratorConfig config;
  config.seed = std::strtoull(flag_or(flags, "seed", "2018").c_str(), nullptr, 10);
  config.layout.num_modules =
      std::strtoul(flag_or(flags, "modules", "100").c_str(), nullptr, 10);
  const double duration =
      std::strtod(flag_or(flags, "duration", "800").c_str(), nullptr);
  if (duration > 0.0 && duration != 800.0) {
    // Scale the default cycle's segments proportionally.
    auto segments = thermal::default_porter_cycle();
    for (auto& s : segments) s.duration_s *= duration / 800.0;
    config.segments = std::move(segments);
  }
  const thermal::TemperatureTrace trace = thermal::generate_trace(config);
  const std::string out = flag_or(flags, "out", "trace.csv");
  trace.save_csv(out);
  std::printf("wrote %zu steps x %zu modules (%.0f s) to %s\n", trace.num_steps(),
              trace.num_modules(), trace.duration_s(), out.c_str());
  return 0;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  const std::string path = flag_or(flags, "trace", "");
  const thermal::TemperatureTrace trace =
      path.empty() ? thermal::default_experiment_trace()
                   : thermal::TemperatureTrace::load_csv(path);
  const std::string scheme = flag_or(flags, "scheme", "all");

  sim::ComparisonOptions options;
  options.sim.num_threads =
      std::strtoul(flag_or(flags, "threads", "1").c_str(), nullptr, 10);
  options.sim.ehtr_max_groups =
      std::strtoul(flag_or(flags, "max-groups", "0").c_str(), nullptr, 10);
  if (scheme != "all") {
    options.include_dnor = scheme == "dnor";
    options.include_inor = scheme == "inor";
    options.include_ehtr = scheme == "ehtr";
    options.include_baseline = scheme == "baseline";
    if (!options.include_dnor && !options.include_inor && !options.include_ehtr &&
        !options.include_baseline) {
      std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
      return 1;
    }
  }
  const sim::ComparisonResult res = sim::run_standard_comparison(trace, options);
  std::printf("%s\n", sim::render_table1(res.runs).c_str());
  return 0;
}

int cmd_predict(const std::map<std::string, std::string>& flags) {
  const std::string path = flag_or(flags, "trace", "");
  const thermal::TemperatureTrace trace =
      path.empty() ? thermal::default_experiment_trace()
                   : thermal::TemperatureTrace::load_csv(path);
  const std::string method = flag_or(flags, "method", "mlr");
  const double horizon_s = std::strtod(flag_or(flags, "horizon", "1").c_str(), nullptr);

  std::unique_ptr<predict::Predictor> predictor;
  if (method == "mlr") {
    predictor = std::make_unique<predict::MlrPredictor>();
  } else if (method == "bpnn") {
    predict::BpnnParams p;
    p.epochs = 8;
    p.module_stride = 5;
    predictor = std::make_unique<predict::BpnnPredictor>(p);
  } else if (method == "svr") {
    predict::SvrParams p;
    p.iterations = 120;
    p.module_stride = 5;
    predictor = std::make_unique<predict::SvrPredictor>(p);
  } else if (method == "holt") {
    predictor = std::make_unique<predict::HoltPredictor>();
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 1;
  }

  predict::EvaluationOptions options;
  options.window = 30;
  options.horizon_steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(horizon_s / trace.dt_s()));
  const auto res = predict::evaluate_online(*predictor, trace, options);
  std::printf("%s @ %.1f s horizon: mean MAPE %.4f %%, max %.4f %%, "
              "fit %.3f ms, predict %.3f ms\n",
              res.predictor_name.c_str(), horizon_s, res.mean_mape_percent,
              res.max_mape_percent, res.mean_fit_time_ms, res.mean_predict_time_ms);
  return 0;
}

int cmd_montecarlo(const std::map<std::string, std::string>& flags) {
  sim::MonteCarloOptions options;
  options.base_trace.seed = 0;  // overwritten per seed below
  options.base_trace.layout.num_modules =
      std::strtoul(flag_or(flags, "modules", "100").c_str(), nullptr, 10);
  const double duration =
      std::strtod(flag_or(flags, "duration", "200").c_str(), nullptr);
  // Short mixed slice per seed, urban then cruise, scaled to --duration.
  options.base_trace.segments = {
      {thermal::DriveSegment::Kind::kUrban, duration / 2.0, 32.0, 0.0},
      {thermal::DriveSegment::Kind::kCruise, duration / 2.0, 70.0, 0.0}};
  options.comparison.include_inor = false;
  options.comparison.include_ehtr = false;
  options.num_seeds =
      std::strtoul(flag_or(flags, "seeds", "10").c_str(), nullptr, 10);
  options.first_seed =
      std::strtoull(flag_or(flags, "first-seed", "100").c_str(), nullptr, 10);
  options.num_threads =
      std::strtoul(flag_or(flags, "threads", "0").c_str(), nullptr, 10);

  const sim::MonteCarloSummary summary = sim::run_monte_carlo(options);

  util::TextTable table({"seed", "DNOR (J)", "Baseline (J)", "gain %"});
  for (const auto& s : summary.samples) {
    table.begin_row()
        .add(static_cast<long long>(s.seed))
        .add(s.dnor_energy_j, 1)
        .add(s.baseline_energy_j, 1)
        .add(100.0 * s.gain, 1);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("gain over %zu drives: mean %.1f %%, sd %.1f %%, "
              "range [%.1f, %.1f] %%\n",
              summary.samples.size(), 100.0 * summary.gain.mean(),
              100.0 * summary.gain.stddev(), 100.0 * summary.gain.min(),
              100.0 * summary.gain.max());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tegrec_cli trace    [--out F] [--seed S] [--modules N] "
               "[--duration T]\n"
               "  tegrec_cli simulate [--trace F] [--scheme dnor|inor|ehtr|"
               "baseline|all]\n"
               "                      [--threads W] [--max-groups G]\n"
               "  tegrec_cli predict  [--trace F] [--method mlr|bpnn|svr|holt] "
               "[--horizon H]\n"
               "  tegrec_cli montecarlo [--seeds K] [--first-seed S] "
               "[--modules N] [--duration T] [--threads W]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (command == "trace") return cmd_trace(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "predict") return cmd_predict(flags);
    if (command == "montecarlo") return cmd_montecarlo(flags);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
