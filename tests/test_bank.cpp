#include "core/bank.hpp"

#include <gtest/gtest.h>

#include "thermal/radiator2d.hpp"

namespace tegrec::core {
namespace {

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

std::vector<teg::TegArray> make_rows(double imbalance, std::size_t num_rows = 4,
                                     std::size_t per_row = 25) {
  thermal::Radiator2DLayout layout;
  layout.num_rows = num_rows;
  layout.flow_imbalance = imbalance;
  layout.row.num_modules = per_row;
  thermal::StreamConditions total;
  total.hot_inlet_c = 92.0;
  total.cold_inlet_c = 25.0;
  total.hot_capacity_w_k = 2400.0;
  total.cold_capacity_w_k = 2200.0;
  std::vector<teg::TegArray> rows;
  for (const auto& dts : thermal::row_module_delta_t(layout, total)) {
    rows.emplace_back(kDev, dts, total.cold_inlet_c);
  }
  return rows;
}

TEST(BankSearch, EmptyRowsThrow) {
  const power::Converter conv(kConv);
  EXPECT_THROW(bank_search({}, conv), std::invalid_argument);
}

TEST(BankSearch, ProducesOneConfigPerRow) {
  const power::Converter conv(kConv);
  const auto rows = make_rows(0.3);
  const BankSearchResult res = bank_search(rows, conv);
  ASSERT_EQ(res.row_configs.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(res.row_configs[r].num_modules(), rows[r].size());
  }
  EXPECT_GT(res.output_power_w, 0.0);
}

TEST(BankSearch, BalancedRowsBothStrategiesAgree) {
  const power::Converter conv(kConv);
  const auto rows = make_rows(0.0);
  const double p_ind =
      bank_search(rows, conv, BankStrategy::kIndependent).output_power_w;
  const double p_match =
      bank_search(rows, conv, BankStrategy::kVoltageMatched).output_power_w;
  EXPECT_NEAR(p_ind, p_match, 0.01 * p_ind);
}

TEST(BankSearch, VoltageMatchingHelpsOnImbalancedRows) {
  // With a strong header imbalance the independent reduction leaves rows
  // at different MPP voltages; the matching pass must recover power.
  const power::Converter conv(kConv);
  const auto rows = make_rows(0.5);
  const double p_ind =
      bank_search(rows, conv, BankStrategy::kIndependent).output_power_w;
  const double p_match =
      bank_search(rows, conv, BankStrategy::kVoltageMatched).output_power_w;
  EXPECT_GE(p_match, p_ind - 1e-9);
}

TEST(BankSearch, BoundedByIdeal) {
  const power::Converter conv(kConv);
  const auto rows = make_rows(0.3);
  const BankSearchResult res = bank_search(rows, conv);
  EXPECT_LE(res.output_power_w, res.bank.ideal_power_w() + 1e-9);
  EXPECT_LE(res.bank.mpp_power_w(), res.bank.rowwise_ideal_power_w() + 1e-9);
}

TEST(BankPower, MatchesBankMppUnderIdealConverter) {
  power::ConverterParams ideal;
  ideal.voltage_penalty = 0.0;
  ideal.fixed_loss_w = 0.0;
  ideal.eta_peak = 1.0;
  ideal.min_input_v = 0.01;
  ideal.max_input_v = 1000.0;
  ideal.max_input_power_w = 1e9;
  const power::Converter conv(ideal);
  const auto rows = make_rows(0.2);
  const BankSearchResult res = bank_search(rows, conv);
  EXPECT_NEAR(bank_power_w(res.bank, conv), res.bank.mpp_power_w(),
              0.01 * res.bank.mpp_power_w());
}

TEST(BankSearch, TwoDBankComparableToFlattened1D) {
  // Sanity link between the 2-D reduction and the paper's 1-D model: the
  // per-row reconfigured bank must land in the same power ballpark as an
  // equivalent single-string treatment of all modules.
  const power::Converter conv(kConv);
  const auto rows = make_rows(0.2);
  const BankSearchResult bank = bank_search(rows, conv);
  double ideal_total = 0.0;
  for (const auto& row : rows) ideal_total += row.ideal_power_w();
  EXPECT_GT(bank.output_power_w, 0.75 * ideal_total);
}

}  // namespace
}  // namespace tegrec::core
