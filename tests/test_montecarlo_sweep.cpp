#include <gtest/gtest.h>

#include <limits>

#include "sim/montecarlo.hpp"
#include "sim/sweep.hpp"

namespace tegrec::sim {
namespace {

thermal::TraceGeneratorConfig tiny_config() {
  thermal::TraceGeneratorConfig config;
  // 24 modules: small enough for speed, large enough that the square-grid
  // baseline's string voltage clears the converter's input floor.
  config.layout.num_modules = 24;
  config.segments = {{thermal::DriveSegment::Kind::kUrban, 25.0, 30.0, 0.0}};
  return config;
}

ComparisonOptions fast_comparison() {
  ComparisonOptions options;
  options.include_inor = false;
  options.include_ehtr = false;
  return options;
}

TEST(MonteCarlo, AggregatesAcrossSeeds) {
  MonteCarloOptions options;
  options.base_trace = tiny_config();
  options.comparison = fast_comparison();
  options.num_seeds = 4;
  options.first_seed = 10;
  const MonteCarloSummary summary = run_monte_carlo(options);
  ASSERT_EQ(summary.samples.size(), 4u);
  EXPECT_EQ(summary.samples.front().seed, 10u);
  EXPECT_EQ(summary.samples.back().seed, 13u);
  EXPECT_EQ(summary.gain.count(), 4u);
  // The reconfiguration gain must be positive on average across drives.
  EXPECT_GT(summary.gain.mean(), 0.0);
  EXPECT_GT(summary.dnor_energy_j.min(), 0.0);
}

TEST(MonteCarlo, NanGainSampleLeftOutOfAggregate) {
  // A zero-harvest baseline makes a seed's gain NaN (undefined, not 0).
  // That sample must not poison the statistics of every valid seed — it
  // simply reduces gain.count().  Energies always aggregate.
  MonteCarloSummary summary;
  summary.samples.resize(3);
  summary.samples[0].gain = 0.5;
  summary.samples[0].dnor_energy_j = 10.0;
  summary.samples[1].gain = std::numeric_limits<double>::quiet_NaN();
  summary.samples[1].dnor_energy_j = 11.0;
  summary.samples[2].gain = 0.7;
  summary.samples[2].dnor_energy_j = 12.0;
  detail::fold_monte_carlo_stats(summary);
  EXPECT_EQ(summary.gain.count(), 2u);
  EXPECT_DOUBLE_EQ(summary.gain.mean(), 0.6);
  EXPECT_EQ(summary.dnor_energy_j.count(), 3u);
}

TEST(MonteCarlo, DistinctSeedsGiveDistinctSamples) {
  MonteCarloOptions options;
  options.base_trace = tiny_config();
  options.comparison = fast_comparison();
  options.num_seeds = 3;
  const MonteCarloSummary summary = run_monte_carlo(options);
  EXPECT_NE(summary.samples[0].dnor_energy_j, summary.samples[1].dnor_energy_j);
  EXPECT_GT(summary.dnor_energy_j.stddev(), 0.0);
}

TEST(MonteCarlo, Validation) {
  MonteCarloOptions options;
  options.base_trace = tiny_config();
  options.num_seeds = 0;
  EXPECT_THROW(run_monte_carlo(options), std::invalid_argument);
  options.num_seeds = 2;
  options.comparison.include_baseline = false;
  EXPECT_THROW(run_monte_carlo(options), std::invalid_argument);
}

TEST(Sweep, CouplingSweepMonotoneEnergy) {
  const auto points = sweep_parameter(
      tiny_config(), {0.55, 0.7, 0.85},
      [](thermal::TraceGeneratorConfig& config, double value) {
        config.layout.surface_coupling = value;
      },
      fast_comparison());
  ASSERT_EQ(points.size(), 3u);
  // Better thermal coupling -> more dT -> more energy for both schemes.
  EXPECT_LT(points[0].dnor_energy_j, points[1].dnor_energy_j);
  EXPECT_LT(points[1].dnor_energy_j, points[2].dnor_energy_j);
  for (const auto& p : points) {
    EXPECT_GT(p.gain, 0.0);
    EXPECT_GT(p.dnor_ratio_to_ideal, 0.5);
  }
}

TEST(Sweep, Validation) {
  EXPECT_THROW(
      sweep_parameter(tiny_config(), {},
                      [](thermal::TraceGeneratorConfig&, double) {}),
      std::invalid_argument);
  EXPECT_THROW(sweep_parameter(tiny_config(), {1.0}, nullptr),
               std::invalid_argument);
  ComparisonOptions no_base = fast_comparison();
  no_base.include_baseline = false;
  EXPECT_THROW(
      sweep_parameter(tiny_config(), {1.0},
                      [](thermal::TraceGeneratorConfig&, double) {}, no_base),
      std::invalid_argument);
}

TEST(Sweep, CsvExport) {
  const auto points = sweep_parameter(
      tiny_config(), {0.5, 0.7},
      [](thermal::TraceGeneratorConfig& config, double value) {
        config.layout.surface_coupling = value;
      },
      fast_comparison());
  const util::CsvTable table = sweep_to_csv("coupling", points);
  EXPECT_EQ(table.header.front(), "coupling");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 0.5);
  EXPECT_NEAR(table.rows[1][3], 100.0 * points[1].gain, 1e-9);
}

}  // namespace
}  // namespace tegrec::sim
