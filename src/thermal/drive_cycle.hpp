// Synthetic workload generation: drive cycles and industrial duty cycles.
//
// The paper's evaluation uses an 800-second measured drive of a Hyundai
// Porter II pickup; its conclusion points at larger heat sources
// (industrial boilers and heat exchangers).  Without measured traces we
// synthesise the heat-source load profile from composable segments and
// derive the power delivered to the coolant loop from one of two models:
//
//  * Road-load kinds — kIdle, kUrban, kCruise, kHill, kStopStart,
//    kColdStart — synthesise a speed profile (stop-and-go oscillation,
//    cruise ripple, signalised stop-start with engine-off dwells, a
//    cold-start fast-idle + gentle drive-away) and push it through the
//    longitudinal vehicle load equation (engine_power_kw).  kStopStart
//    marks its stopped dwells engine-off, so the coolant genuinely cools
//    between launches; kColdStart adds a decaying cold-friction/fast-idle
//    surcharge on top of the road load.
//
//  * Process-load kinds — kSteadyProcess, kLoadRamp, kBatchCycle — model a
//    fired process (boiler, kiln) instead of a vehicle: speed is
//    identically zero and the power series comes directly from the
//    segment's firing schedule (steady hold, linear ramp, periodic
//    high/low-fire batch cycle with burner modulation ramps), clamped to
//    the rated capacity `VehicleParams::max_engine_power_kw`.
//
// The result feeds the lumped thermal model (thermal/engine_thermal.hpp),
// which does not care whether the heat source is an engine or a burner.
// Named, ready-made combinations live in thermal/scenario.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace tegrec::thermal {

/// One homogeneous stretch of the workload.
struct DriveSegment {
  enum class Kind {
    // Road-load kinds (speed profile -> longitudinal load equation).
    kIdle,       ///< stationary, engine running at accessory load
    kUrban,      ///< stop-and-go city blocks (~42 s light cycle)
    kCruise,     ///< steady arterial/highway cruise with mild ripple
    kHill,       ///< loaded climb at `grade_percent`
    kStopStart,  ///< signalised traffic: launch/brake/dwell cycles with
                 ///< engine-off idle-stop phases (power is exactly zero
                 ///< while stopped, so the coolant cools between launches)
    kColdStart,  ///< below-thermostat warm-up: stationary fast idle, then a
                 ///< gentle drive-away, with a decaying cold-friction
                 ///< surcharge (pair with a low
                 ///< EngineThermalParams::initial_coolant_c soak temperature)
    // Process-load kinds (firing schedule, no vehicle dynamics).
    kSteadyProcess,  ///< constant firing at `process_power_kw`
    kLoadRamp,       ///< linear ramp `process_power_kw` ->
                     ///< `process_power_end_kw` over the segment
    kBatchCycle,     ///< periodic high-fire (`process_power_kw`) / low-fire
                     ///< (`process_power_end_kw`) batch schedule
  };
  Kind kind = Kind::kIdle;
  double duration_s = 60.0;
  double target_speed_kmh = 0.0;  ///< mean speed (road-load kinds)
  double grade_percent = 0.0;     ///< road grade (hill segments)
  // Fields below are appended so the historical 4-element aggregate
  // initialisation `{kind, duration, speed, grade}` keeps compiling.
  /// Firing power for process-load kinds [kW]; the level the segment
  /// starts at (kSteadyProcess holds it, kLoadRamp ramps away from it,
  /// kBatchCycle uses it as the high-fire level).
  double process_power_kw = 0.0;
  /// kLoadRamp: firing power at the segment end; kBatchCycle: low-fire
  /// power between batches [kW].
  double process_power_end_kw = 0.0;
  /// Schedule period [s]: signal cycle for kStopStart, batch cycle for
  /// kBatchCycle.  0 selects the kind's default (55 s signal, 120 s batch).
  double period_s = 0.0;
};

/// Vehicle constants for the road-load equation (3.0 L diesel pickup).
/// Process-load kinds reuse only `idle_power_kw` (pilot/auxiliary load)
/// and `max_engine_power_kw` (rated firing capacity).
struct VehicleParams {
  double mass_kg = 1900.0;
  double frontal_area_m2 = 2.7;
  double drag_coefficient = 0.45;
  double rolling_resistance = 0.012;
  double air_density_kg_m3 = 1.184;
  double driveline_efficiency = 0.9;
  double idle_power_kw = 4.0;      ///< fuel power at idle (accessories etc.)
  double max_engine_power_kw = 96.0;
};

/// Sampled workload: time base plus speed and heat-source power series.
struct DriveCycle {
  double dt_s = 0.1;
  std::vector<double> speed_kmh;
  std::vector<double> engine_power_kw;
  /// Heat source firing per step; false only during kStopStart's engine-off
  /// dwells.  Empty means "always on" (hand-built cycles predate the field).
  std::vector<std::uint8_t> engine_on;

  std::size_t num_steps() const { return speed_kmh.size(); }
  double duration_s() const { return dt_s * static_cast<double>(num_steps()); }
  /// Engine/burner state at a step, tolerant of hand-built cycles that
  /// never filled `engine_on`.
  bool engine_on_at(std::size_t step) const {
    return engine_on.empty() ? true : engine_on[step] != 0;
  }
};

/// The default 800 s mixed cycle used by the experiment reproductions:
/// idle -> urban stop-go -> arterial cruise -> hill climb -> highway ->
/// urban -> idle, mirroring the temperature swings visible in the paper's
/// 120 s plots (Figs. 6-7).
std::vector<DriveSegment> default_porter_cycle();

/// Generates the speed/power profile for the given segments.  `seed`
/// controls stochastic fluctuation; the same seed reproduces the same
/// cycle.
DriveCycle generate_drive_cycle(const std::vector<DriveSegment>& segments,
                                const VehicleParams& vehicle, double dt_s,
                                std::uint64_t seed);

/// Road-load mechanical power at the wheels for a steady speed/grade, plus
/// inertial power for the given acceleration; clamped to [0, max engine].
double engine_power_kw(const VehicleParams& vehicle, double speed_kmh,
                       double accel_ms2, double grade_percent);

/// Firing power of a process-load segment at `t_in_segment` seconds into
/// it (before capacity clamping and noise); throws std::invalid_argument
/// for road-load kinds.
double process_power_kw(const DriveSegment& segment, double t_in_segment);

/// True for the industrial duty-cycle kinds driven by the process-load
/// model (speed identically zero, power from the firing schedule).
bool is_process_kind(DriveSegment::Kind kind);

/// All (kind, canonical name) pairs — the single table both to_string and
/// the spec serialiser (`trace.gen.segment.<i>.kind` values) read, so the
/// two can never drift when a kind is added.
const std::vector<std::pair<DriveSegment::Kind, const char*>>&
segment_kind_names();

/// Human-readable name of a segment kind (bench/report/spec output).
std::string to_string(DriveSegment::Kind kind);

}  // namespace tegrec::thermal
