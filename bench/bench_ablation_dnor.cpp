// Ablation study of DNOR's design choices (DESIGN.md section 6):
//   1. prediction lead tp (decision cadence tp+1),
//   2. predictor choice inside DNOR (MLR vs BPNN vs SVR vs persistence),
//   3. the converter-derived [nmin, nmax] window vs a naive full window,
//   4. switching-overhead magnitude sensitivity.
//
// Run on a 200 s window so the whole ablation stays under a minute.
#include <cstdio>

#include "core/dnor.hpp"
#include "core/inor.hpp"
#include "predict/bpnn.hpp"
#include "predict/persistence.hpp"
#include "predict/svr.hpp"
#include "sim/simulator.hpp"
#include "thermal/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace tegrec;

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();
const power::ConverterParams kConv;

void report_run(util::TextTable& table, const std::string& label,
                const sim::SimulationResult& r) {
  table.begin_row()
      .add(label)
      .add(r.energy_output_j, 1)
      .add(r.switch_overhead_j, 2)
      .add(static_cast<long long>(r.num_switch_events))
      .add(r.avg_runtime_ms, 3);
}

}  // namespace

int main() {
  std::printf("=== DNOR ablation study (200 s window) ===\n\n");
  const thermal::TemperatureTrace trace =
      thermal::default_experiment_trace().slice(100.0, 300.0);
  const sim::SimulationOptions options;

  // 1. Prediction lead tp.
  {
    std::printf("-- ablation 1: prediction lead tp --\n");
    util::TextTable table({"tp (s)", "energy (J)", "overhead (J)", "switches",
                           "runtime (ms)"});
    for (double tp : {1.0, 2.0, 4.0, 8.0}) {
      core::DnorParams p;
      p.tp_s = tp;
      core::DnorReconfigurer dnor(kDev, kConv, p);
      report_run(table, util::format_fixed(tp, 0), sim::run_simulation(dnor, trace, options));
    }
    std::printf("%s\n", table.render().c_str());
  }

  // 2. Predictor choice inside DNOR.
  {
    std::printf("-- ablation 2: predictor inside DNOR --\n");
    util::TextTable table({"predictor", "energy (J)", "overhead (J)", "switches",
                           "runtime (ms)"});
    {
      core::DnorReconfigurer dnor(kDev, kConv, core::DnorParams{});  // MLR
      report_run(table, "MLR", sim::run_simulation(dnor, trace, options));
    }
    {
      predict::BpnnParams nn;
      nn.epochs = 8;
      nn.module_stride = 5;
      core::DnorReconfigurer dnor(kDev, kConv, core::DnorParams{},
                                  std::make_unique<predict::BpnnPredictor>(nn));
      report_run(table, "BPNN", sim::run_simulation(dnor, trace, options));
    }
    {
      predict::SvrParams svr;
      svr.iterations = 120;
      svr.module_stride = 5;
      core::DnorReconfigurer dnor(kDev, kConv, core::DnorParams{},
                                  std::make_unique<predict::SvrPredictor>(svr));
      report_run(table, "SVR", sim::run_simulation(dnor, trace, options));
    }
    {
      core::DnorReconfigurer dnor(
          kDev, kConv, core::DnorParams{},
          std::make_unique<predict::PersistencePredictor>());
      report_run(table, "Persistence", sim::run_simulation(dnor, trace, options));
    }
    std::printf("%s\n", table.render().c_str());
  }

  // 3. Converter-derived n window vs naive full window (INOR, no prediction,
  //    isolating the charger-awareness design choice).
  {
    std::printf("-- ablation 3: group-count window (INOR) --\n");
    util::TextTable table({"window", "energy (J)", "overhead (J)", "switches",
                           "runtime (ms)"});
    {
      core::InorReconfigurer inor(kDev, kConv);  // converter-derived window
      report_run(table, "converter-derived", sim::run_simulation(inor, trace, options));
    }
    {
      core::InorReconfigurer inor(kDev, kConv, 0.5,
                                  core::InorOptions{.nmin = 1, .nmax = 100});
      report_run(table, "full 1..N", sim::run_simulation(inor, trace, options));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(full-window INOR pays ~5x runtime for no extra energy:\n"
                " the converter window prunes candidates that convert poorly)\n\n");
  }

  // 4. Overhead magnitude sensitivity: DNOR must degrade gracefully.
  {
    std::printf("-- ablation 4: overhead magnitude scaling --\n");
    util::TextTable table({"overhead scale", "energy (J)", "overhead (J)",
                           "switches", "runtime (ms)"});
    for (double scale : {0.1, 1.0, 10.0}) {
      core::DnorParams p;
      p.overhead.sensing_delay_s *= scale;
      p.overhead.mppt_settle_s *= scale;
      p.overhead.per_switch_delay_s *= scale;
      p.overhead.per_switch_energy_j *= scale;
      sim::SimulationOptions opt = options;
      opt.overhead = p.overhead;
      core::DnorReconfigurer dnor(kDev, kConv, p);
      report_run(table, util::format_fixed(scale, 1),
                 sim::run_simulation(dnor, trace, opt));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("shape check: more expensive switching -> fewer DNOR switches.\n");
  }
  return 0;
}
