// util::json — the batch CLI's machine-readable output must round-trip.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/json.hpp"

namespace tegrec::util::json {
namespace {

Value sample_document() {
  Array points;
  points.push_back(Object{{"value", 0.5}, {"gain", 0.3}});
  points.push_back(Object{{"value", 0.75}, {"gain", Value()}});
  return Object{{"schema", 1},
                {"ok", true},
                {"name", std::string("sweep \"x\"\nline2\t\\end")},
                {"empty_list", Array{}},
                {"empty_obj", Object{}},
                {"points", std::move(points)}};
}

TEST(Json, DumpParseAreInverses) {
  const Value doc = sample_document();
  for (const int indent : {0, 2}) {
    const std::string text = dump(doc, indent);
    const Value parsed = parse(text);
    // Canonical comparison: a second dump of the parse must be byte-equal
    // (objects are insertion-ordered, so this is well-defined).
    EXPECT_EQ(dump(parsed, indent), text);
  }
}

TEST(Json, AccessorsAndLookup) {
  const Value doc = parse(dump(sample_document()));
  EXPECT_EQ(doc.at("schema").as_number(), 1.0);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("name").as_string(), "sweep \"x\"\nline2\t\\end");
  EXPECT_TRUE(doc.contains("points"));
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_THROW(doc.at("missing"), std::out_of_range);
  const Array& points = doc.at("points").as_array();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(points[1].at("gain").is_null());
  EXPECT_THROW(doc.at("schema").as_string(), std::runtime_error);
}

TEST(Json, NumbersSurviveExactly) {
  const Value doc = Object{{"x", 0.1}, {"y", 1e-300}, {"z", 12345678901234.0}};
  const Value parsed = parse(dump(doc));
  EXPECT_EQ(parsed.at("x").as_number(), 0.1);
  EXPECT_EQ(parsed.at("y").as_number(), 1e-300);
  EXPECT_EQ(parsed.at("z").as_number(), 12345678901234.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("true false"), std::runtime_error);  // trailing junk
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
}

TEST(Json, RejectsNonFiniteNumbersOnDump) {
  EXPECT_THROW(dump(Value(std::numeric_limits<double>::quiet_NaN())),
               std::invalid_argument);
  EXPECT_THROW(dump(Value(std::numeric_limits<double>::infinity())),
               std::invalid_argument);
}

}  // namespace
}  // namespace tegrec::util::json
