// The reconfigurable TEG array: temperatures + configuration -> port model.
//
// TegArray binds the device parameters to a per-module temperature
// distribution and evaluates any ArrayConfig into a SeriesString whose MPP
// the charger then tracks.  It also provides P_ideal (all modules at their
// own MPP), the normaliser of the paper's Fig. 7.
#pragma once

#include <vector>

#include "teg/config.hpp"
#include "teg/string.hpp"

namespace tegrec::teg {

class TegArray {
 public:
  /// `delta_t_k[i]` is module i's face temperature difference; `ambient_c`
  /// the cold-side (heatsink) temperature used for resistance derating.
  TegArray(const DeviceParams& params, std::vector<double> delta_t_k,
           double ambient_c = 25.0);

  std::size_t size() const { return delta_t_k_.size(); }
  const DeviceParams& device() const { return params_; }
  const std::vector<double>& delta_t_k() const { return delta_t_k_; }
  double ambient_c() const { return ambient_c_; }

  /// Updates the temperature distribution (array geometry unchanged).
  void set_delta_t(std::vector<double> delta_t_k, double ambient_c);

  const Module& module(std::size_t i) const;

  /// Evaluates a configuration into its series-string port model.
  SeriesString build_string(const ArrayConfig& config) const;

  /// Maximum power of the configuration with an ideal charger (closed form).
  double mpp_power_w(const ArrayConfig& config) const;
  /// String voltage at that maximum power point.
  double mpp_voltage_v(const ArrayConfig& config) const;

  /// Sum of per-module MPPs: the P_ideal upper bound (Fig. 7 normaliser).
  double ideal_power_w() const;

  /// Per-module MPP currents (input of Algorithm 1).
  std::vector<double> module_mpp_currents() const;

 private:
  DeviceParams params_;
  std::vector<double> delta_t_k_;
  double ambient_c_ = 25.0;
  std::vector<Module> modules_;

  void rebuild_modules();
};

}  // namespace tegrec::teg
