#include "util/linalg.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/float_cmp.hpp"

namespace tegrec::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      if (is_exactly_zero(a)) continue;  // exact sparsity skip
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.data_[r * other.cols_ + c] += a * other.data_[k * other.cols_ + c];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix subtract: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix add: dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

namespace {

// In-place Cholesky of a copy; returns lower-triangular factor.
// Throws if a pivot goes non-positive.
Matrix cholesky_factor(Matrix a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("cholesky: matrix not square");
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0) throw std::runtime_error("cholesky: matrix not SPD");
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= a(i, k) * a(j, k);
      a(i, j) = acc / ljj;
    }
    for (std::size_t c = j + 1; c < n; ++c) a(j, c) = 0.0;
  }
  return a;
}

std::vector<double> cholesky_substitute(const Matrix& l, std::vector<double> b) {
  const std::size_t n = l.rows();
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * b[k];
    b[i] = acc / l(i, i);
  }
  // Back solve L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * b[k];
    b[ii] = acc / l(ii, ii);
  }
  return b;
}

}  // namespace

std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("cholesky_solve: dimension mismatch");
  }
  try {
    return cholesky_substitute(cholesky_factor(a), b);
  } catch (const std::runtime_error&) {
    // Retry once with diagonal jitter scaled to the matrix magnitude: the
    // normal-equation matrices here are occasionally semi-definite when the
    // history window contains constant signals.
    Matrix jittered = a;
    const double eps = 1e-10 * (1.0 + a.frobenius_norm());
    for (std::size_t i = 0; i < a.rows(); ++i) jittered(i, i) += eps;
    return cholesky_substitute(cholesky_factor(jittered), b);
  }
}

std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("least_squares: dimension mismatch");
  }
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  const double scale = 1.0 + ata.frobenius_norm();
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge * scale;
  return cholesky_solve(ata, at * b);
}

std::vector<double> qr_least_squares(const Matrix& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) throw std::invalid_argument("qr_least_squares: underdetermined");
  if (m != b.size()) throw std::invalid_argument("qr_least_squares: dim mismatch");

  Matrix r = a;
  std::vector<double> rhs = b;
  // Householder transforms applied column by column.
  for (std::size_t k = 0; k < n; ++k) {
    double sigma = 0.0;
    for (std::size_t i = k; i < m; ++i) sigma += r(i, k) * r(i, k);
    sigma = std::sqrt(sigma);
    if (is_exactly_zero(sigma)) continue;
    if (r(k, k) > 0) sigma = -sigma;
    std::vector<double> v(m, 0.0);
    for (std::size_t i = k; i < m; ++i) v[i] = r(i, k);
    v[k] -= sigma;
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (is_exactly_zero(vnorm2)) continue;
    for (std::size_t c = k; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i] * r(i, c);
      proj = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= proj * v[i];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i] * rhs[i];
    proj = 2.0 * proj / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= proj * v[i];
  }
  // Back substitution on the upper-triangular R.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = rhs[ii];
    for (std::size_t c = ii + 1; c < n; ++c) acc -= r(ii, c) * x[c];
    const double d = r(ii, ii);
    if (std::abs(d) < 1e-300) throw std::runtime_error("qr: rank deficient");
    x[ii] = acc / d;
  }
  return x;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> scaled(const std::vector<double>& v, double s) {
  std::vector<double> out = v;
  for (double& x : out) x *= s;
  return out;
}

}  // namespace tegrec::util
