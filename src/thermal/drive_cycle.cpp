#include "thermal/drive_cycle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tegrec::thermal {

namespace {

// kStopStart signal schedule (fractions of one period): accelerate/cruise,
// brake to rest, then dwell at the light with the engine stopped.
constexpr double kStopStartDefaultPeriodS = 55.0;
constexpr double kStopStartGoFraction = 0.50;
constexpr double kStopStartBrakeFraction = 0.14;  // rest of the period dwells

// kColdStart warm-up: stationary fast idle before drive-away, and the
// decaying cold-friction/fast-idle fuel surcharge.
constexpr double kColdStartIdleFractionMax = 0.25;
constexpr double kColdStartIdleCapS = 120.0;
constexpr double kColdStartSurchargeKw = 2.5;
constexpr double kColdStartSurchargeTauS = 150.0;

// kBatchCycle firing schedule: high fire, modulation ramp down, low fire,
// modulation ramp up (fractions of one period).
constexpr double kBatchDefaultPeriodS = 120.0;
constexpr double kBatchHighFraction = 0.55;
constexpr double kBatchRampFraction = 0.05;

double stop_start_period(const DriveSegment& seg) {
  return seg.period_s > 0.0 ? seg.period_s : kStopStartDefaultPeriodS;
}

/// Phase within the current signal cycle as a fraction of the period, and
/// the schedule's stopped-dwell window — the single source of truth both
/// the speed tracker and the engine-off predicate read, so "target speed
/// is zero because we are dwelling" and "the idle-stop controller may
/// kill the engine" can never drift apart.
double stop_start_phase(const DriveSegment& seg, double t_in_segment) {
  const double period = stop_start_period(seg);
  return std::fmod(t_in_segment, period) / period;
}

bool stop_start_in_dwell(double phase) {
  return phase >= kStopStartGoFraction + kStopStartBrakeFraction;
}

double cold_start_idle_s(const DriveSegment& seg) {
  return std::min(kColdStartIdleFractionMax * seg.duration_s,
                  kColdStartIdleCapS);
}

}  // namespace

std::vector<DriveSegment> default_porter_cycle() {
  using K = DriveSegment::Kind;
  return {
      {K::kIdle, 40.0, 0.0, 0.0},     // warm idle at departure
      {K::kUrban, 160.0, 32.0, 0.0},  // stop-and-go city blocks
      {K::kCruise, 120.0, 62.0, 0.0}, // arterial road
      {K::kHill, 100.0, 45.0, 5.5},   // loaded climb, peak coolant temp
      {K::kCruise, 180.0, 88.0, 0.0}, // highway stretch
      {K::kUrban, 140.0, 28.0, 0.0},  // back into town
      {K::kIdle, 60.0, 0.0, 0.0},     // final idle
  };
}

double engine_power_kw(const VehicleParams& vehicle, double speed_kmh,
                       double accel_ms2, double grade_percent) {
  if (speed_kmh < 0.0) throw std::invalid_argument("engine_power_kw: speed < 0");
  const double v = speed_kmh / 3.6;
  const double g = 9.81;
  const double grade = grade_percent / 100.0;
  const double f_aero = 0.5 * vehicle.air_density_kg_m3 * vehicle.drag_coefficient *
                        vehicle.frontal_area_m2 * v * v;
  const double f_roll = vehicle.rolling_resistance * vehicle.mass_kg * g;
  const double f_grade = vehicle.mass_kg * g * grade;
  const double f_inertia = vehicle.mass_kg * accel_ms2;
  const double wheel_power_w = (f_aero + f_roll + f_grade + f_inertia) * v;
  double engine_w = wheel_power_w / vehicle.driveline_efficiency;
  engine_w = std::max(engine_w, 0.0);  // no regen on a diesel pickup
  const double total_kw = vehicle.idle_power_kw + engine_w / 1000.0;
  return std::min(total_kw, vehicle.max_engine_power_kw);
}

bool is_process_kind(DriveSegment::Kind kind) {
  return kind == DriveSegment::Kind::kSteadyProcess ||
         kind == DriveSegment::Kind::kLoadRamp ||
         kind == DriveSegment::Kind::kBatchCycle;
}

double process_power_kw(const DriveSegment& seg, double t_in_segment) {
  switch (seg.kind) {
    case DriveSegment::Kind::kSteadyProcess:
      return seg.process_power_kw;
    case DriveSegment::Kind::kLoadRamp: {
      const double x =
          seg.duration_s > 0.0
              ? std::clamp(t_in_segment / seg.duration_s, 0.0, 1.0)
              : 1.0;
      return seg.process_power_kw +
             (seg.process_power_end_kw - seg.process_power_kw) * x;
    }
    case DriveSegment::Kind::kBatchCycle: {
      // High fire -> modulation ramp -> low fire -> modulation ramp back.
      // The ramps model burner turndown, which is never instantaneous.
      const double period =
          seg.period_s > 0.0 ? seg.period_s : kBatchDefaultPeriodS;
      const double phase = std::fmod(t_in_segment, period) / period;
      const double high = seg.process_power_kw;
      const double low = seg.process_power_end_kw;
      const double ramp = kBatchRampFraction;
      const double high_end = kBatchHighFraction;
      if (phase < high_end) return high;
      if (phase < high_end + ramp) {
        return high + (low - high) * (phase - high_end) / ramp;
      }
      if (phase < 1.0 - ramp) return low;
      return low + (high - low) * (phase - (1.0 - ramp)) / ramp;
    }
    default:
      throw std::invalid_argument(
          "process_power_kw: not a process-load segment kind");
  }
}

namespace {

// Smoothly tracks a target speed with bounded acceleration, adding
// segment-appropriate fluctuation (stop-go oscillation for urban, mild
// ripple for cruise, signal phases for stop-start, a fast-idle hold plus
// gentle drive-away for cold start).  Process-load kinds pin the speed to
// zero.
class SpeedTracker {
 public:
  explicit SpeedTracker(util::Rng& rng) : rng_(rng) {}

  double step(const DriveSegment& seg, double t_in_segment, double dt) {
    if (is_process_kind(seg.kind)) {
      speed_ = 0.0;
      return speed_;
    }
    double target = seg.target_speed_kmh;
    bool stationary_phase = false;
    switch (seg.kind) {
      case DriveSegment::Kind::kIdle:
        target = 0.0;
        stationary_phase = true;
        break;
      case DriveSegment::Kind::kUrban: {
        // Stop-and-go: ~40 s light cycle, dips to zero at intersections.
        const double phase = std::sin(2.0 * M_PI * t_in_segment / 42.0);
        target = seg.target_speed_kmh * std::max(0.0, 0.55 + 0.75 * phase);
        break;
      }
      case DriveSegment::Kind::kCruise:
        target = seg.target_speed_kmh *
                 (1.0 + 0.04 * std::sin(2.0 * M_PI * t_in_segment / 60.0));
        break;
      case DriveSegment::Kind::kHill:
        target = seg.target_speed_kmh *
                 (1.0 + 0.06 * std::sin(2.0 * M_PI * t_in_segment / 35.0));
        break;
      case DriveSegment::Kind::kStopStart: {
        // Signalised traffic: launch and hold, brake to rest, dwell.
        const double phase = stop_start_phase(seg, t_in_segment);
        if (phase < kStopStartGoFraction) {
          target = seg.target_speed_kmh;
        } else {
          target = 0.0;
          stationary_phase = stop_start_in_dwell(phase);
        }
        break;
      }
      case DriveSegment::Kind::kColdStart: {
        // Warm-up idle first, then a gentle ramp up to the target (cold
        // driveline: the driver keeps revs and acceleration down).
        const double idle_s = cold_start_idle_s(seg);
        if (t_in_segment < idle_s) {
          target = 0.0;
          stationary_phase = true;
        } else {
          const double drive_s = std::max(seg.duration_s - idle_s, 1.0);
          const double x = std::clamp((t_in_segment - idle_s) / (0.5 * drive_s),
                                      0.0, 1.0);
          target = seg.target_speed_kmh * x *
                   (1.0 + 0.03 * std::sin(2.0 * M_PI * t_in_segment / 50.0));
        }
        break;
      }
      default:
        break;
    }
    target += rng_.gaussian(0.0, stationary_phase ? 0.0 : 0.8);
    target = std::max(target, 0.0);

    double max_accel_kmh_s = 7.5;   // ~2.1 m/s^2
    const double max_brake_kmh_s = 12.0;  // ~3.3 m/s^2
    if (seg.kind == DriveSegment::Kind::kColdStart) {
      max_accel_kmh_s = 4.0;  // gentle launches on a cold driveline
    }
    const double delta = std::clamp(target - speed_, -max_brake_kmh_s * dt,
                                    max_accel_kmh_s * dt);
    speed_ = std::max(speed_ + delta, 0.0);
    return speed_;
  }

  double speed() const { return speed_; }

 private:
  util::Rng& rng_;
  double speed_ = 0.0;
};

// True while a kStopStart segment is inside its engine-off dwell: the
// schedule says "stopped" and the vehicle has actually come to rest (the
// idle-stop controller never kills the engine mid-brake).
bool stop_start_engine_off(const DriveSegment& seg, double t_in_segment,
                           double speed_kmh) {
  if (seg.kind != DriveSegment::Kind::kStopStart) return false;
  return stop_start_in_dwell(stop_start_phase(seg, t_in_segment)) &&
         speed_kmh < 0.5;
}

}  // namespace

DriveCycle generate_drive_cycle(const std::vector<DriveSegment>& segments,
                                const VehicleParams& vehicle, double dt_s,
                                std::uint64_t seed) {
  if (dt_s <= 0.0) throw std::invalid_argument("generate_drive_cycle: dt <= 0");
  if (segments.empty()) {
    throw std::invalid_argument("generate_drive_cycle: no segments");
  }
  util::Rng rng(seed);
  SpeedTracker tracker(rng);

  DriveCycle cycle;
  cycle.dt_s = dt_s;
  double prev_speed = 0.0;
  for (const DriveSegment& seg : segments) {
    const auto steps = static_cast<std::size_t>(std::llround(seg.duration_s / dt_s));
    for (std::size_t k = 0; k < steps; ++k) {
      const double t_in = static_cast<double>(k) * dt_s;
      const double v = tracker.step(seg, t_in, dt_s);
      const double accel = (v - prev_speed) / 3.6 / dt_s;
      double power_kw = 0.0;
      bool on = true;
      if (is_process_kind(seg.kind)) {
        // Process-load model: the firing schedule is the power series.  A
        // ~1% combustion ripple stands in for burner/fuel variability; the
        // pilot/auxiliary load keeps the plant above zero between batches.
        double firing = process_power_kw(seg, t_in);
        firing += rng.gaussian(0.0, 0.01 * std::max(firing, 1.0));
        power_kw = std::clamp(firing + vehicle.idle_power_kw, 0.0,
                              vehicle.max_engine_power_kw);
      } else if (stop_start_engine_off(seg, t_in, v)) {
        // Idle-stop dwell: combustion is off, so the heat input is exactly
        // zero and the coolant cools until the next launch.
        power_kw = 0.0;
        on = false;
      } else {
        power_kw = engine_power_kw(vehicle, v, accel, seg.grade_percent);
        if (seg.kind == DriveSegment::Kind::kColdStart) {
          // Fast idle plus cold-friction surcharge, decaying as oil and
          // combustion chambers warm.
          power_kw = std::min(
              power_kw + kColdStartSurchargeKw *
                             std::exp(-t_in / kColdStartSurchargeTauS),
              vehicle.max_engine_power_kw);
        }
      }
      cycle.speed_kmh.push_back(v);
      cycle.engine_power_kw.push_back(power_kw);
      cycle.engine_on.push_back(on ? 1 : 0);
      prev_speed = v;
    }
  }
  return cycle;
}

const std::vector<std::pair<DriveSegment::Kind, const char*>>&
segment_kind_names() {
  static const std::vector<std::pair<DriveSegment::Kind, const char*>> names =
      {{DriveSegment::Kind::kIdle, "idle"},
       {DriveSegment::Kind::kUrban, "urban"},
       {DriveSegment::Kind::kCruise, "cruise"},
       {DriveSegment::Kind::kHill, "hill"},
       {DriveSegment::Kind::kStopStart, "stop_start"},
       {DriveSegment::Kind::kColdStart, "cold_start"},
       {DriveSegment::Kind::kSteadyProcess, "steady_process"},
       {DriveSegment::Kind::kLoadRamp, "load_ramp"},
       {DriveSegment::Kind::kBatchCycle, "batch_cycle"}};
  return names;
}

std::string to_string(DriveSegment::Kind kind) {
  for (const auto& [value, name] : segment_kind_names()) {
    if (kind == value) return name;
  }
  return "unknown";
}

}  // namespace tegrec::thermal
