// Reproduces Fig. 3: output power loss caused by hot-side temperature
// differences among modules in (a) parallel and (b) series connections.
//
// Two modules are held at dT1 = 40 K while dT2 sweeps downward; for each
// spread the harvested maximum power of the 2-module parallel group /
// series string is compared against the sum of the individual MPPs
// ("ideal").  The loss grows with the spread — the motivation for
// reconfiguration.
#include <cstdio>

#include "teg/group.hpp"
#include "teg/string.hpp"
#include "util/table.hpp"

int main() {
  using namespace tegrec;

  const teg::DeviceParams device = teg::tgm_199_1_4_0_8();
  const double dt_hot = 40.0;

  std::printf("=== Fig. 3: mismatch loss in parallel and series connections ===\n\n");
  util::TextTable table({"dT1 (K)", "dT2 (K)", "ideal (W)", "parallel (W)",
                         "par loss %", "series (W)", "ser loss %"});
  for (double dt_cold = 40.0; dt_cold >= 5.0; dt_cold -= 5.0) {
    const teg::Module hot = teg::Module::from_delta_t(device, dt_hot);
    const teg::Module cold = teg::Module::from_delta_t(device, dt_cold);
    const double ideal = hot.mpp_power_w() + cold.mpp_power_w();

    // (a) parallel connection: same terminal voltage.
    const teg::ParallelGroup parallel({hot, cold});
    const double p_par = parallel.mpp_power_w();

    // (b) series connection: same current through both.
    const teg::SeriesString series(
        {teg::ParallelGroup({hot}), teg::ParallelGroup({cold})});
    const double p_ser = series.mpp_power_w();

    table.begin_row()
        .add(dt_hot, 0)
        .add(dt_cold, 0)
        .add(ideal, 3)
        .add(p_par, 3)
        .add(100.0 * (1.0 - p_par / ideal), 2)
        .add(p_ser, 3)
        .add(100.0 * (1.0 - p_ser / ideal), 2);
  }
  std::printf("%s\n", table.render().c_str());

  // Larger chains: loss along a realistic decaying profile, all-parallel vs
  // all-series vs balanced grouping.
  std::printf("-- 10-module decaying profile (40 K -> 8 K) --\n");
  std::vector<teg::Module> modules;
  for (int i = 0; i < 10; ++i) {
    modules.push_back(teg::Module::from_delta_t(device, 40.0 - 3.5 * i));
  }
  double ideal10 = 0.0;
  for (const auto& m : modules) ideal10 += m.mpp_power_w();

  const teg::ParallelGroup all_par(modules);
  std::vector<teg::ParallelGroup> singles;
  for (const auto& m : modules) singles.emplace_back(std::vector<teg::Module>{m});
  const teg::SeriesString all_ser(singles);

  util::TextTable t10({"topology", "P (W)", "loss %"});
  t10.begin_row().add("ideal (all at own MPP)").add(ideal10, 3).add(0.0, 2);
  t10.begin_row()
      .add("all parallel")
      .add(all_par.mpp_power_w(), 3)
      .add(100.0 * (1.0 - all_par.mpp_power_w() / ideal10), 2);
  t10.begin_row()
      .add("all series")
      .add(all_ser.mpp_power_w(), 3)
      .add(100.0 * (1.0 - all_ser.mpp_power_w() / ideal10), 2);
  std::printf("%s\n", t10.render().c_str());
  std::printf("shape check: loss grows monotonically with the dT spread;\n"
              "zero spread -> zero loss (first table row).\n");
  return 0;
}
