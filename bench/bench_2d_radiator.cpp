// 2-D radiator study (Section III.A's "parallel connection of multiple
// 1-dimensional ones", modelled explicitly).
//
//   1. header flow-imbalance sweep: how much power the paper's
//      independent-rows reduction leaves on the table as rows diverge;
//   2. independent vs voltage-matched row reconfiguration;
//   3. row-count sweep at fixed total module count.
#include <cstdio>

#include "core/bank.hpp"
#include "thermal/radiator2d.hpp"
#include "util/table.hpp"

namespace {

using namespace tegrec;

const teg::DeviceParams kDev = teg::tgm_199_1_4_0_8();

thermal::StreamConditions nominal_total() {
  thermal::StreamConditions total;
  total.hot_inlet_c = 92.0;
  total.cold_inlet_c = 25.0;
  total.hot_capacity_w_k = 2400.0;
  total.cold_capacity_w_k = 2200.0;
  return total;
}

std::vector<teg::TegArray> build_rows(std::size_t num_rows, std::size_t per_row,
                                      double imbalance) {
  thermal::Radiator2DLayout layout;
  layout.num_rows = num_rows;
  layout.flow_imbalance = imbalance;
  layout.row.num_modules = per_row;
  std::vector<teg::TegArray> rows;
  for (const auto& dts :
       thermal::row_module_delta_t(layout, nominal_total())) {
    rows.emplace_back(kDev, dts, nominal_total().cold_inlet_c);
  }
  return rows;
}

}  // namespace

int main() {
  const power::Converter conv{power::ConverterParams{}};

  std::printf("=== 2-D radiator: parallel rows of 1-D arrays ===\n\n");

  // 1+2: imbalance sweep, both strategies.
  {
    std::printf("-- flow-imbalance sweep (4 rows x 25 modules) --\n");
    util::TextTable table({"imbalance", "independent (W)", "matched (W)",
                           "matched gain %", "rowwise ideal (W)"});
    for (double imb : {0.0, 0.2, 0.4, 0.6}) {
      const auto rows = build_rows(4, 25, imb);
      const auto ind =
          core::bank_search(rows, conv, core::BankStrategy::kIndependent);
      const auto match =
          core::bank_search(rows, conv, core::BankStrategy::kVoltageMatched);
      table.begin_row()
          .add(imb, 2)
          .add(ind.output_power_w, 3)
          .add(match.output_power_w, 3)
          .add(100.0 * (match.output_power_w / ind.output_power_w - 1.0), 2)
          .add(ind.bank.rowwise_ideal_power_w(), 3);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("shape check: at zero imbalance both strategies coincide; the\n"
                "voltage-matched pass recovers more as the header skews.\n\n");
  }

  // 3: row count at fixed total modules.
  {
    std::printf("-- row-count sweep (100 modules total, imbalance 0.3) --\n");
    util::TextTable table({"rows", "per row", "bank power (W)",
                           "rowwise ideal (W)", "reduction quality %"});
    for (std::size_t rows_n : {1u, 2u, 4u, 5u, 10u}) {
      const auto rows = build_rows(rows_n, 100 / rows_n, 0.3);
      const auto res = core::bank_search(rows, conv);
      const double ideal = res.bank.rowwise_ideal_power_w();
      table.begin_row()
          .add(static_cast<long long>(rows_n))
          .add(static_cast<long long>(100 / rows_n))
          .add(res.output_power_w, 3)
          .add(ideal, 3)
          .add(100.0 * res.output_power_w / ideal, 2);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading: absolute power falls with more rows because each row\n"
                "receives 1/R of the air and coolant capacity (a thermal\n"
                "effect); the *electrical* quality of the paper's row-wise\n"
                "reduction — bank output over the sum of per-row string MPPs —\n"
                "stays high across the sweep, which is what justifies treating\n"
                "the 2-D radiator as parallel 1-D problems.\n");
  }
  return 0;
}
