#include "teg/group.hpp"

#include <gtest/gtest.h>

namespace tegrec::teg {
namespace {

const DeviceParams kDev = tgm_199_1_4_0_8();

std::vector<Module> modules_at(std::initializer_list<double> dts) {
  std::vector<Module> out;
  for (double dt : dts) out.push_back(Module::from_delta_t(kDev, dt));
  return out;
}

TEST(ParallelGroup, EmptyThrows) {
  EXPECT_THROW(ParallelGroup(std::vector<Module>{}), std::invalid_argument);
}

TEST(ParallelGroup, IdenticalModulesEquivalent) {
  // k identical modules in parallel: Voc unchanged, R divided by k.
  const auto mods = modules_at({30.0, 30.0, 30.0});
  const ParallelGroup g(mods);
  EXPECT_NEAR(g.equivalent_voc_v(), mods[0].open_circuit_voltage_v(), 1e-12);
  EXPECT_NEAR(g.equivalent_resistance_ohm(),
              mods[0].internal_resistance_ohm() / 3.0, 1e-12);
  // No mismatch: group MPP equals the sum of member MPPs.
  EXPECT_NEAR(g.mpp_power_w(), g.ideal_power_w(), 1e-9);
}

TEST(ParallelGroup, EquivalentVocIsConductanceWeightedMean) {
  const auto mods = modules_at({20.0, 40.0});
  const ParallelGroup g(mods);
  const double g1 = 1.0 / mods[0].internal_resistance_ohm();
  const double g2 = 1.0 / mods[1].internal_resistance_ohm();
  const double expected = (mods[0].open_circuit_voltage_v() * g1 +
                           mods[1].open_circuit_voltage_v() * g2) /
                          (g1 + g2);
  EXPECT_NEAR(g.equivalent_voc_v(), expected, 1e-12);
}

TEST(ParallelGroup, MismatchLosesPowerVsIdeal) {
  // Fig. 3(a): parallel modules at different dT cannot all sit at MPP.
  const ParallelGroup g(modules_at({40.0, 15.0}));
  EXPECT_LT(g.mpp_power_w(), g.ideal_power_w() - 1e-6);
}

TEST(ParallelGroup, MemberCurrentsSumToGroupCurrent) {
  const ParallelGroup g(modules_at({35.0, 25.0, 15.0}));
  const double v = 0.6;
  const auto currents = g.member_currents_at_voltage(v);
  double total = 0.0;
  for (double i : currents) total += i;
  EXPECT_NEAR(total, (g.equivalent_voc_v() - v) / g.equivalent_resistance_ohm(),
              1e-9);
}

TEST(ParallelGroup, ColdModuleBackFedAtHighVoltage) {
  // A much colder module is driven backwards near the hot module's MPP
  // voltage — the loss mechanism of Fig. 3(a).
  const auto mods = modules_at({45.0, 5.0});
  const ParallelGroup g(mods);
  const double v = mods[0].mpp_voltage_v();
  const auto currents = g.member_currents_at_voltage(v);
  EXPECT_GT(currents[0], 0.0);
  EXPECT_LT(currents[1], 0.0);
}

TEST(ParallelGroup, PowerConsistencyVoltageVsCurrent) {
  const ParallelGroup g(modules_at({30.0, 20.0}));
  const double i = 0.8;
  const double v = g.voltage_at_current(i);
  EXPECT_NEAR(g.power_at_current(i), g.power_at_voltage(v), 1e-9);
}

TEST(ParallelGroup, MppCurrentSumIsAlgorithmQuantity) {
  const auto mods = modules_at({30.0, 20.0, 10.0});
  const ParallelGroup g(mods);
  double expected = 0.0;
  for (const Module& m : mods) expected += m.mpp_current_a();
  EXPECT_NEAR(g.mpp_current_sum_a(), expected, 1e-12);
}

TEST(ParallelGroup, GroupMppBelowOrEqualIdealAlways) {
  // Property over random-ish spreads.
  for (double spread : {0.0, 5.0, 10.0, 20.0, 35.0}) {
    const ParallelGroup g(modules_at({40.0, 40.0 - spread}));
    EXPECT_LE(g.mpp_power_w(), g.ideal_power_w() + 1e-9) << "spread " << spread;
  }
}

}  // namespace
}  // namespace tegrec::teg
