// Fixed-topology baseline: the paper's 10 x 10 TEG array.
//
// No reconfiguration at all — the array keeps one series/parallel topology
// (10 series groups of 10 parallel modules for N = 100) and only the
// charger's MPPT adapts to temperature.  This is the "Baseline" column of
// Table I and the reference for the paper's "+30%" claim.
#pragma once

#include <cmath>

#include "core/reconfigurer.hpp"

namespace tegrec::core {

class FixedBaselineReconfigurer final : public Reconfigurer {
 public:
  /// Uses the given fixed configuration.
  explicit FixedBaselineReconfigurer(teg::ArrayConfig config);

  /// Square-ish grid: sqrt(N) series groups of sqrt(N) parallel modules
  /// (exact for perfect squares; nearest uniform split otherwise).
  static FixedBaselineReconfigurer square_grid(std::size_t num_modules);

  std::string name() const override { return "Baseline"; }
  UpdateResult update(double time_s, const std::vector<double>& delta_t_k,
                      double ambient_c) override;
  void reset() override;
  AlgorithmCost algorithm_cost() const override {
    return AlgorithmCost::baseline();
  }

  /// The only mutable state is the first-call flag (the fixed config is
  /// construction-time identity, guarded by the checkpoint's spec stamp).
  bool supports_checkpoint() const override { return true; }
  std::string checkpoint_state() const override;
  void restore_checkpoint_state(const std::string& state) override;

 private:
  teg::ArrayConfig config_;
  bool first_ = true;
};

}  // namespace tegrec::core
