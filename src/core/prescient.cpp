#include "core/prescient.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/objective.hpp"
#include "util/runtime_clock.hpp"

namespace tegrec::core {

PrescientReconfigurer::PrescientReconfigurer(
    const teg::DeviceParams& device, const power::ConverterParams& converter,
    const thermal::TemperatureTrace& trace, const PrescientParams& params)
    : device_(device), converter_(converter), trace_(&trace), params_(params) {
  if (params_.control_period_s <= 0.0 || params_.tp_s <= 0.0) {
    throw std::invalid_argument("PrescientReconfigurer: non-positive period");
  }
  if (trace.num_steps() == 0) {
    throw std::invalid_argument("PrescientReconfigurer: empty trace");
  }
}

std::pair<double, double> PrescientReconfigurer::future_energies_j(
    const teg::ArrayConfig& c_old, const teg::ArrayConfig& c_new,
    double from_time_s) const {
  // True output energies over [from, from + tp + 1) read straight from the
  // trace — the quantities DNOR can only estimate.
  const double dt = trace_->dt_s();
  const std::size_t first = trace_->step_at_time(from_time_s);
  const auto steps = static_cast<std::size_t>(
      std::llround((params_.tp_s + 1.0) / dt));
  double e_old = 0.0;
  double e_new = 0.0;
  for (std::size_t k = 0; k < steps; ++k) {
    const std::size_t t = first + k;
    if (t >= trace_->num_steps()) break;
    const teg::TegArray array(device_, trace_->step_delta_t(t),
                              trace_->ambient_c(t));
    const teg::ArrayEvaluator evaluator(array);
    e_old += config_power_w(evaluator, converter_, c_old) * dt;
    e_new += config_power_w(evaluator, converter_, c_new) * dt;
  }
  return {e_old, e_new};
}

UpdateResult PrescientReconfigurer::update(double time_s,
                                           const std::vector<double>& delta_t_k,
                                           double ambient_c) {
  UpdateResult result;
  if (has_config_ && time_s + 1e-9 < next_decision_time_s_) {
    result.config = current_;
    return result;
  }
  const util::MonotonicTimer timer;
  const teg::TegArray array(device_, delta_t_k, ambient_c);
  teg::ArrayConfig c_new = inor_search(array, converter_, params_.inor);

  bool adopt = true;
  if (has_config_ && c_new != current_) {
    const auto [e_old, e_new] = future_energies_j(current_, c_new, time_s);
    const std::size_t toggles = 3 * current_.boundary_distance(c_new);
    const double p_now = config_power_w(array, converter_, current_);
    // Mirrors the stepper's actuation charge, own compute budget included.
    const double e_overhead =
        switchfab::reconfiguration_cost(
            params_.overhead, toggles, p_now,
            algorithm_cost().budget_s(params_.overhead))
            .energy_j;
    adopt = e_old <= e_new - e_overhead;  // Algorithm 2's rule, oracle inputs
  } else if (has_config_) {
    adopt = false;
  }

  result.compute_time_s = timer.seconds();
  result.invoked = true;
  if (adopt) {
    result.switched = !has_config_ || c_new != current_;
    result.actuate = result.switched;
    current_ = std::move(c_new);
    has_config_ = true;
    if (result.switched) ++switches_;
  }
  next_decision_time_s_ = time_s + params_.tp_s + 1.0;
  result.config = current_;
  return result;
}

void PrescientReconfigurer::reset() {
  next_decision_time_s_ = 0.0;
  has_config_ = false;
  current_ = teg::ArrayConfig();
  switches_ = 0;
}

}  // namespace tegrec::core
