#include "core/bank.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/objective.hpp"

namespace tegrec::core {

namespace {

// Golden-section search for the bank's best common terminal voltage under
// the converter's efficiency curve.
double best_bank_power(const teg::StringBank& bank,
                       const power::Converter& converter) {
  const double lo_init = 0.0;
  const double hi_init = std::max(bank.equivalent_voc_v(), 1e-9);
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  auto value = [&](double v) {
    const double raw = bank.power_at_voltage(v);
    return raw <= 0.0 ? 0.0 : converter.output_power_w(v, raw);
  };
  double lo = lo_init, hi = hi_init;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = value(x1), f2 = value(x2);
  while (hi - lo > 1e-6 * hi_init) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = value(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = value(x1);
    }
  }
  return value(0.5 * (lo + hi));
}

}  // namespace

double bank_power_w(const teg::StringBank& bank,
                    const power::Converter& converter) {
  return best_bank_power(bank, converter);
}

BankSearchResult bank_search(const std::vector<teg::TegArray>& rows,
                             const power::Converter& converter,
                             BankStrategy strategy) {
  if (rows.empty()) throw std::invalid_argument("bank_search: no rows");

  // Pass 1: the paper's reduction — independent INOR per row.
  std::vector<teg::ArrayConfig> configs;
  configs.reserve(rows.size());
  for (const teg::TegArray& row : rows) {
    configs.push_back(inor_search(row, converter));
  }

  if (strategy == BankStrategy::kVoltageMatched && rows.size() > 1) {
    // Pass 2: align row MPP voltages to the median.  For each row, scan
    // group counts around the independent choice and keep the one whose
    // string VMPP is closest to the median voltage while not sacrificing
    // more than a sliver of its own power.
    std::vector<double> vmpps;
    vmpps.reserve(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      vmpps.push_back(rows[r].mpp_voltage_v(configs[r]));
    }
    std::vector<double> sorted = vmpps;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double target_v = sorted[sorted.size() / 2];

    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::size_t n0 = configs[r].num_groups();
      const auto impp = rows[r].module_mpp_currents();
      double best_dist = std::abs(vmpps[r] - target_v);
      const std::size_t n_lo = n0 > 3 ? n0 - 3 : 1;
      const std::size_t n_hi = std::min(rows[r].size(), n0 + 3);
      for (std::size_t n = n_lo; n <= n_hi; ++n) {
        teg::ArrayConfig candidate = inor_partition(impp, n);
        const double v = rows[r].mpp_voltage_v(candidate);
        const double dist = std::abs(v - target_v);
        if (dist < best_dist) {
          best_dist = dist;
          configs[r] = std::move(candidate);
        }
      }
    }
  }

  // Evaluate the bank at the chosen configurations.
  std::vector<teg::SeriesString> strings;
  strings.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    strings.push_back(rows[r].build_string(configs[r]));
  }
  teg::StringBank bank(std::move(strings));
  BankSearchResult result{std::move(configs), bank, 0.0};
  result.output_power_w = best_bank_power(result.bank, converter);
  return result;
}

}  // namespace tegrec::core
