// Tiny key = value codec shared by the controllers' checkpoint blobs.
//
// Every Reconfigurer that supports streaming checkpoints serialises its
// mutable state as ordered `key = value` lines (doubles at %.17g so the
// restored controller replays bit-identically).  The helpers here keep the
// four implementations on one dialect: emit_kv appends a line, KvReader
// consumes lines in declaration order and throws std::runtime_error on any
// deviation — a truncated or reordered blob must fail the restore loudly,
// never half-apply.
#pragma once

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "teg/config.hpp"
#include "util/parse.hpp"

namespace tegrec::core::detail {

inline std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

inline void emit_kv(std::string& out, const std::string& key,
                    const std::string& value) {
  out += key;
  out += " = ";
  out += value;
  out += '\n';
}

/// Comma-joined %.17g doubles ("" for an empty vector).
inline std::string join_doubles(const std::vector<double>& values) {
  std::string joined;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ',';
    joined += format_double(values[i]);
  }
  return joined;
}

inline std::vector<double> split_doubles(const std::string& text) {
  std::vector<double> values;
  if (text.empty()) return values;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    values.push_back(util::parse_double(token));
  }
  return values;
}

/// Comma-joined unsigned indices (group starts).
inline std::string join_indices(const std::vector<std::size_t>& values) {
  std::string joined;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ',';
    joined += std::to_string(values[i]);
  }
  return joined;
}

inline std::vector<std::size_t> split_indices(const std::string& text) {
  std::vector<std::size_t> values;
  if (text.empty()) return values;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    values.push_back(static_cast<std::size_t>(util::parse_u64(token)));
  }
  return values;
}

/// Sequential reader over `key = value` lines.  Keys are demanded in the
/// exact order the writer emitted them: state blobs are versioned wholes,
/// not grab-bags, so a missing/extra/reordered line is corruption.
class KvReader {
 public:
  explicit KvReader(const std::string& text) : is_(text) {}

  /// Consumes one line, requiring its key; returns the value text.
  std::string expect(const std::string& key) {
    std::string line;
    if (!std::getline(is_, line)) {
      throw std::runtime_error("controller state blob truncated (expected '" +
                               key + "')");
    }
    const std::string prefix = key + " = ";
    if (line.rfind(prefix, 0) != 0) {
      throw std::runtime_error("controller state blob: expected '" + key +
                               "', got '" + line + "'");
    }
    return line.substr(prefix.size());
  }

  double expect_double(const std::string& key) {
    return util::parse_double(expect(key));
  }

  std::uint64_t expect_u64(const std::string& key) {
    return util::parse_u64(expect(key));
  }

  bool expect_bool(const std::string& key) {
    return util::parse_bool(expect(key));
  }

  /// The blob must be fully consumed — trailing lines are corruption.
  void finish() {
    std::string line;
    if (std::getline(is_, line)) {
      throw std::runtime_error("controller state blob: trailing line '" +
                               line + "'");
    }
  }

 private:
  std::istringstream is_;
};

// The periodic controllers (INOR, EHTR) hold exactly one mutable triple:
// next scheduled run time, whether a configuration is held, and the held
// configuration.  One shared codec keeps their blobs structurally identical
// (distinguished by the version tag) and their restores all-or-nothing.

struct PeriodicState {
  double next_run_time_s = 0.0;
  bool has_config = false;
  teg::ArrayConfig current;
};

inline std::string encode_periodic_state(const std::string& version,
                                         const PeriodicState& state) {
  std::string out;
  emit_kv(out, "state", version);
  emit_kv(out, "next_run_time_s", format_double(state.next_run_time_s));
  emit_kv(out, "has_config", state.has_config ? "1" : "0");
  emit_kv(out, "config_starts", join_indices(state.current.group_starts()));
  emit_kv(out, "config_modules", std::to_string(state.current.num_modules()));
  return out;
}

inline PeriodicState decode_periodic_state(const std::string& version,
                                           const std::string& text) {
  KvReader reader(text);
  if (reader.expect("state") != version) {
    throw std::runtime_error("controller state blob: expected version '" +
                             version + "'");
  }
  PeriodicState state;
  state.next_run_time_s = reader.expect_double("next_run_time_s");
  state.has_config = reader.expect_bool("has_config");
  std::vector<std::size_t> starts = split_indices(reader.expect("config_starts"));
  const auto modules = static_cast<std::size_t>(reader.expect_u64("config_modules"));
  reader.finish();
  if (state.has_config) {
    state.current = teg::ArrayConfig(std::move(starts), modules);
  }
  return state;
}

}  // namespace tegrec::core::detail
