#include "core/fixed_baseline.hpp"

#include <gtest/gtest.h>

namespace tegrec::core {
namespace {

TEST(FixedBaseline, SquareGridFor100Modules) {
  auto rec = FixedBaselineReconfigurer::square_grid(100);
  const UpdateResult r = rec.update(0.0, std::vector<double>(100, 20.0), 25.0);
  EXPECT_EQ(r.config.num_groups(), 10u);
  for (std::size_t j = 0; j < 10; ++j) EXPECT_EQ(r.config.group_size(j), 10u);
}

TEST(FixedBaseline, FirstCallInstallsThenNothing) {
  auto rec = FixedBaselineReconfigurer::square_grid(16);
  const std::vector<double> dts(16, 15.0);
  const UpdateResult r0 = rec.update(0.0, dts, 25.0);
  EXPECT_TRUE(r0.switched);
  EXPECT_TRUE(r0.actuate);
  EXPECT_FALSE(r0.invoked);  // no algorithm runs for a hardwired array
  for (double t = 0.5; t < 5.0; t += 0.5) {
    const UpdateResult r = rec.update(t, dts, 25.0);
    EXPECT_FALSE(r.switched);
    EXPECT_FALSE(r.actuate);
    EXPECT_FALSE(r.invoked);
    EXPECT_EQ(r.config, r0.config);
  }
}

TEST(FixedBaseline, IgnoresTemperatures) {
  auto rec = FixedBaselineReconfigurer::square_grid(9);
  const UpdateResult a = rec.update(0.0, std::vector<double>(9, 40.0), 25.0);
  const UpdateResult b = rec.update(1.0, std::vector<double>(9, 5.0), 25.0);
  EXPECT_EQ(a.config, b.config);
}

TEST(FixedBaseline, CustomConfig) {
  const teg::ArrayConfig custom({0, 2, 5}, 8);
  FixedBaselineReconfigurer rec(custom);
  EXPECT_EQ(rec.update(0.0, std::vector<double>(8, 10.0), 25.0).config, custom);
  EXPECT_EQ(rec.name(), "Baseline");
}

TEST(FixedBaseline, ResetReinstalls) {
  auto rec = FixedBaselineReconfigurer::square_grid(4);
  const std::vector<double> dts(4, 10.0);
  rec.update(0.0, dts, 25.0);
  rec.reset();
  EXPECT_TRUE(rec.update(0.0, dts, 25.0).actuate);
}

TEST(FixedBaseline, NonSquareCounts) {
  // 20 modules -> side 4 or 5; must produce a valid partition either way.
  auto rec = FixedBaselineReconfigurer::square_grid(20);
  const UpdateResult r = rec.update(0.0, std::vector<double>(20, 10.0), 25.0);
  std::size_t total = 0;
  for (std::size_t j = 0; j < r.config.num_groups(); ++j) {
    total += r.config.group_size(j);
  }
  EXPECT_EQ(total, 20u);
}

}  // namespace
}  // namespace tegrec::core
