// Result formatting shared by the benches and examples.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace tegrec::sim {

/// Renders the Table I layout (rows: energy output, switch overhead,
/// average runtime) for a set of completed runs, in the given order.
std::string render_table1(const std::vector<SimulationResult>& runs);

/// Renders a per-step power timeline (Fig. 6) as CSV-ish aligned columns:
/// time, one power column per run, plus the ideal power from the first run.
/// `stride` thins the rows for readability.
std::string render_power_timeline(const std::vector<SimulationResult>& runs,
                                  std::size_t stride = 1);

/// Renders the power/ideal ratio timeline (Fig. 7); DNOR switch points can
/// be located via the 'sw' marker column of the corresponding run.
std::string render_ratio_timeline(const std::vector<SimulationResult>& runs,
                                  std::size_t stride = 1);

}  // namespace tegrec::sim
