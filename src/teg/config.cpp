#include "teg/config.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tegrec::teg {

ArrayConfig::ArrayConfig(std::vector<std::size_t> group_starts,
                         std::size_t num_modules)
    : starts_(std::move(group_starts)), num_modules_(num_modules) {
  if (num_modules_ == 0) throw std::invalid_argument("ArrayConfig: N == 0");
  if (starts_.empty() || starts_.front() != 0) {
    throw std::invalid_argument("ArrayConfig: first group must start at 0");
  }
  for (std::size_t j = 1; j < starts_.size(); ++j) {
    if (starts_[j] <= starts_[j - 1]) {
      throw std::invalid_argument("ArrayConfig: starts not strictly increasing");
    }
  }
  if (starts_.back() >= num_modules_) {
    throw std::invalid_argument("ArrayConfig: start beyond module count");
  }
}

ArrayConfig ArrayConfig::uniform(std::size_t num_modules, std::size_t num_groups) {
  if (num_groups == 0 || num_groups > num_modules) {
    throw std::invalid_argument("ArrayConfig::uniform: bad group count");
  }
  std::vector<std::size_t> starts;
  starts.reserve(num_groups);
  for (std::size_t j = 0; j < num_groups; ++j) {
    starts.push_back(j * num_modules / num_groups);
  }
  // Integer division can duplicate starts when num_groups ~ num_modules;
  // dedupe to keep the invariant (the resulting config may have fewer groups).
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  return ArrayConfig(std::move(starts), num_modules);
}

ArrayConfig ArrayConfig::all_parallel(std::size_t num_modules) {
  return ArrayConfig({0}, num_modules);
}

ArrayConfig ArrayConfig::all_series(std::size_t num_modules) {
  std::vector<std::size_t> starts(num_modules);
  for (std::size_t i = 0; i < num_modules; ++i) starts[i] = i;
  return ArrayConfig(std::move(starts), num_modules);
}

std::size_t ArrayConfig::group_begin(std::size_t j) const {
  if (j >= starts_.size()) throw std::out_of_range("ArrayConfig::group_begin");
  return starts_[j];
}

std::size_t ArrayConfig::group_end(std::size_t j) const {
  if (j >= starts_.size()) throw std::out_of_range("ArrayConfig::group_end");
  return j + 1 < starts_.size() ? starts_[j + 1] : num_modules_;
}

std::size_t ArrayConfig::group_size(std::size_t j) const {
  return group_end(j) - group_begin(j);
}

std::size_t ArrayConfig::group_of(std::size_t i) const {
  if (i >= num_modules_) throw std::out_of_range("ArrayConfig::group_of");
  // starts_ is sorted; find the last start <= i.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), i);
  return static_cast<std::size_t>(it - starts_.begin()) - 1;
}

bool ArrayConfig::is_series_boundary(std::size_t i) const {
  if (i + 1 >= num_modules_) {
    throw std::out_of_range("ArrayConfig::is_series_boundary");
  }
  return std::binary_search(starts_.begin(), starts_.end(), i + 1);
}

std::size_t ArrayConfig::boundary_distance(const ArrayConfig& other) const {
  if (num_modules_ != other.num_modules_) {
    throw std::invalid_argument("boundary_distance: module count mismatch");
  }
  std::size_t diff = 0;
  for (std::size_t i = 0; i + 1 < num_modules_; ++i) {
    if (is_series_boundary(i) != other.is_series_boundary(i)) ++diff;
  }
  return diff;
}

std::string ArrayConfig::to_string() const {
  std::ostringstream os;
  os << "C(n=" << num_groups() << ": ";
  for (std::size_t j = 0; j < starts_.size(); ++j) {
    os << starts_[j] << (j + 1 < starts_.size() ? "," : "");
  }
  os << " of N=" << num_modules_ << ")";
  return os.str();
}

}  // namespace tegrec::teg
