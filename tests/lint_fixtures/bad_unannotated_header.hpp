// annotation-drift fixture: a concurrency-layer header that names a
// mutex but never uses a TEGREC_* annotation has drifted out of the
// compile-time lock-discipline net.
#pragma once

#include "util/mutex.hpp"

class DriftedCounters {
 public:
  void bump();

 private:
  mutable tegrec::util::Mutex mutex_;
  unsigned long long bumps_ = 0;  // also fires guarded-member
};
